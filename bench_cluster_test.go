// Benchmarks for the shared L2 tier (DESIGN.md §5h): where a response
// is served from decides what a request costs. The three benchmarks
// walk the hierarchy one level at a time over the same operation and
// the same HTTP loopback origin, so the levels are comparable:
//
//   - ClusterL1Hit:  in-process hit, no wire at all
//   - ClusterL2Hit:  L1 miss served by a wscached-style daemon over the
//     cluster protocol (loopback TCP round trip + wire decode)
//   - ClusterOrigin: full origin invocation (loopback HTTP round trip +
//     SOAP encode/serve/decode)
//
// The acceptance claim is the ordering L1 < L2 < origin: a daemon hit
// must beat re-invoking the backend, or the shared tier has no reason
// to exist.
package repro_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/invalidate"
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/tier"
	"repro/internal/transport"
)

// benchClusterEnv is the shared scenery: an item-store origin behind
// real HTTP and a shared daemon on loopback TCP.
type benchClusterEnv struct {
	codec      *soap.Codec
	originURL  string
	daemonAddr string
}

func newBenchClusterEnv(b *testing.B) *benchClusterEnv {
	b.Helper()
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		b.Fatal(err)
	}
	googleapi.NewItemStore().Register(disp)
	srv := httptest.NewServer(disp)
	b.Cleanup(srv.Close)
	daemon := startClusterDaemon(b, "")
	return &benchClusterEnv{codec: codec, originURL: srv.URL, daemonAddr: daemon.addr}
}

// stack builds one client process: L1 cache over the shared daemon,
// calling the HTTP origin. withTier false gives the cacheless baseline.
func (e *benchClusterEnv) stack(b *testing.B, withTier bool) (*core.Cache, *client.Call) {
	b.Helper()
	var handlers []client.Handler
	var cache *core.Cache
	if withTier {
		inv := invalidate.New(googleapi.ItemGraph(), nil)
		remote, err := cluster.New(cluster.Config{
			Addrs:       []string{e.daemonAddr},
			Inv:         inv,
			BaseContext: context.Background(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { remote.Close() })
		cache = core.MustNew(core.Config{
			KeyGen:      rep.NewStringKey(),
			Rep:         rep.NewRegistry(e.codec.Registry(), e.codec),
			DefaultTTL:  time.Hour,
			Invalidator: inv,
			Tiers:       []tier.Tier{remote},
			Policy: core.Policy{
				DefaultExplicit: true,
				Operations: map[string]core.OperationPolicy{
					googleapi.OpGetItem: {Cacheable: true},
				},
			},
		})
		handlers = append(handlers, cache)
	}
	call := client.NewCall(e.codec, &transport.HTTP{}, e.originURL, googleapi.Namespace,
		googleapi.OpGetItem, "urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: handlers})
	return cache, call
}

// BenchmarkClusterL1Hit serves one warm key from the process-local
// cache; the daemon is configured but never consulted after the fill.
func BenchmarkClusterL1Hit(b *testing.B) {
	e := newBenchClusterEnv(b)
	_, call := e.stack(b, true)
	ctx := context.Background()
	params := googleapi.GetItemParams("warm")
	if _, err := call.Invoke(ctx, params...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := call.Invoke(ctx, params...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterL2Hit reads keys another process already pushed into
// the daemon: every iteration is an L1 miss answered by the shared
// tier without touching the origin — the cross-process case the tier
// exists for.
func BenchmarkClusterL2Hit(b *testing.B) {
	e := newBenchClusterEnv(b)
	_, seeder := e.stack(b, true)
	reader, call := e.stack(b, true)
	ctx := context.Background()
	keys := make([][]soap.Param, b.N)
	for i := range keys {
		keys[i] = googleapi.GetItemParams(fmt.Sprintf("k%d", i))
		if _, err := seeder.Invoke(ctx, keys[i]...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := call.Invoke(ctx, keys[i]...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if hits := reader.Stats().TierHits; hits != int64(b.N) {
		b.Fatalf("tier hits = %d, want %d (every read must be served by the daemon)", hits, b.N)
	}
}

// BenchmarkClusterOrigin is the no-cache floor: every read pays the
// full SOAP round trip to the HTTP origin.
func BenchmarkClusterOrigin(b *testing.B) {
	e := newBenchClusterEnv(b)
	_, call := e.stack(b, false)
	ctx := context.Background()
	params := googleapi.GetItemParams("origin")
	if _, err := call.Invoke(ctx, params...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := call.Invoke(ctx, params...); err != nil {
			b.Fatal(err)
		}
	}
}
