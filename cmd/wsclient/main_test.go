package main

import (
	"testing"

	"repro/internal/googleapi"
	"repro/internal/typemap"
	"repro/internal/wsdl"
	"repro/internal/xsd"
)

func googleDefs(t *testing.T) *wsdl.Definitions {
	t.Helper()
	defs, err := wsdl.Parse([]byte(googleapi.WSDL))
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

func TestBuildParamsOrdersAndTypes(t *testing.T) {
	defs := googleDefs(t)
	params, err := buildParams(defs, "doGoogleSearch", []string{
		// Deliberately out of order: the WSDL message order must win.
		"oe=latin1", "key=k", "q=golang", "start=5", "maxResults=10",
		"filter=true", "restrict=", "safeSearch=false", "lr=lang_en", "ie=latin1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 10 {
		t.Fatalf("params = %d", len(params))
	}
	if params[0].Name != "key" || params[1].Name != "q" {
		t.Errorf("order = %s, %s", params[0].Name, params[1].Name)
	}
	if v, ok := params[2].Value.(int); !ok || v != 5 {
		t.Errorf("start = %#v", params[2].Value)
	}
	if v, ok := params[4].Value.(bool); !ok || v != true {
		t.Errorf("filter = %#v", params[4].Value)
	}
	if v, ok := params[6].Value.(bool); !ok || v != false {
		t.Errorf("safeSearch = %#v", params[6].Value)
	}
}

func TestBuildParamsErrors(t *testing.T) {
	defs := googleDefs(t)
	if _, err := buildParams(defs, "doSpellingSuggestion", []string{"key=k"}); err == nil {
		t.Error("missing argument accepted")
	}
	if _, err := buildParams(defs, "doSpellingSuggestion", []string{"key=k", "phrase=p", "extra=x"}); err == nil {
		t.Error("unknown argument accepted")
	}
	if _, err := buildParams(defs, "doSpellingSuggestion", []string{"noequals"}); err == nil {
		t.Error("malformed argument accepted")
	}
	if _, err := buildParams(defs, "noSuchOp", nil); err == nil {
		t.Error("unknown operation accepted")
	}
	if _, err := buildParams(defs, "doGoogleSearch", []string{
		"key=k", "q=x", "start=notanumber", "maxResults=10",
		"filter=false", "restrict=", "safeSearch=false", "lr=", "ie=", "oe=",
	}); err == nil {
		t.Error("uncoercible int accepted")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		ty   string
		raw  string
		want any
	}{
		{"string", "hello", "hello"},
		{"boolean", "true", true},
		{"int", "42", 42},
		{"long", "9999999999", int64(9999999999)},
		{"double", "2.5", 2.5},
		{"float", "1.5", float32(1.5)},
		{"unsignedLong", "7", uint64(7)},
		{"base64Binary", "raw", []byte("raw")},
	}
	for _, c := range cases {
		got, err := coerce(xsd.BuiltinQName(c.ty), c.raw)
		if err != nil {
			t.Errorf("%s: %v", c.ty, err)
			continue
		}
		if b, ok := c.want.([]byte); ok {
			if string(got.([]byte)) != string(b) {
				t.Errorf("%s = %#v", c.ty, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s = %#v (%T), want %#v", c.ty, got, got, c.want)
		}
	}

	if _, err := coerce(typemap.QName{Space: "urn:x", Local: "Complex"}, "x"); err == nil {
		t.Error("complex type accepted")
	}
	if _, err := coerce(xsd.BuiltinQName("boolean"), "maybe"); err == nil {
		t.Error("bad boolean accepted")
	}
}
