// Command wsclient is a generic WSDL-driven SOAP client: it reads a
// service description, coerces command-line arguments to the declared
// parameter types, invokes the operation over HTTP, and prints the
// decoded application object. With -cache it keeps a response cache for
// the life of the process and reports hits (useful with -repeat).
//
// Usage:
//
//	wsclient -wsdl google -endpoint http://localhost:8080/ \
//	    doSpellingSuggestion key=demo phrase="worl peace"
//
//	wsclient -wsdl service.wsdl -cache -repeat 3 \
//	    doGoogleSearch key=demo q=golang start=0 maxResults=10 \
//	    filter=false restrict= safeSearch=false lr= ie=latin1 oe=latin1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/invalidate"
	"repro/internal/obs"
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/tier"
	"repro/internal/transport"
	"repro/internal/typemap"
	"repro/internal/wsdl"
	"repro/internal/xsd"
)

func main() {
	wsdlSrc := flag.String("wsdl", "google", `WSDL source: "google" (embedded) or a file path`)
	endpoint := flag.String("endpoint", "", "endpoint override (default: the WSDL's soap:address)")
	useCache := flag.Bool("cache", false, "enable the client response cache")
	l2 := flag.String("l2", "", "comma-separated wscached addresses for a shared L2 tier (implies -cache)")
	repName := flag.String("rep", "adaptive", `cache value representation: a registry name (sax, dom, gob, raw, xmltmpl, ...), "auto" (static classifier), or "adaptive" (measured-cost selector); pinning a streaming rep (raw, xmltmpl) makes hits yield replayable bytes instead of objects`)
	repeat := flag.Int("repeat", 1, "invoke the operation this many times")
	timeout := flag.Duration("timeout", 30*time.Second, "per-call timeout")
	retries := flag.Int("retries", 1, "total attempts per call (>1 retries transient transport failures)")
	maxResp := flag.Int64("max-response", 0, "response size cap in bytes (0 = default, -1 = unlimited)")
	showObs := flag.Bool("obs", false, "print the observability snapshot (stage latencies, counters) as JSON after the calls")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: wsclient [flags] <operation> [name=value ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := runConfig{
		wsdlSrc:   *wsdlSrc,
		endpoint:  *endpoint,
		operation: flag.Arg(0),
		args:      flag.Args()[1:],
		useCache:  *useCache || *l2 != "",
		l2:        *l2,
		rep:       *repName,
		repeat:    *repeat,
		timeout:   *timeout,
		retries:   *retries,
		maxResp:   *maxResp,
		showObs:   *showObs,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "wsclient:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed command line.
type runConfig struct {
	wsdlSrc   string
	endpoint  string
	operation string
	args      []string
	useCache  bool
	l2        string
	rep       string
	repeat    int
	timeout   time.Duration
	retries   int
	maxResp   int64
	showObs   bool
}

func run(cfg runConfig) error {
	wsdlSrc, endpoint, operation, args := cfg.wsdlSrc, cfg.endpoint, cfg.operation, cfg.args
	useCache, repeat, timeout := cfg.useCache, cfg.repeat, cfg.timeout
	doc := []byte(googleapi.WSDL)
	if wsdlSrc != "google" {
		var err error
		doc, err = os.ReadFile(wsdlSrc)
		if err != nil {
			return err
		}
	}
	defs, err := wsdl.Parse(doc)
	if err != nil {
		return err
	}

	reg := typemap.NewRegistry()
	if defs.TargetNamespace == googleapi.Namespace {
		if err := googleapi.RegisterTypes(reg); err != nil {
			return err
		}
	}
	codec := soap.NewCodec(reg)

	// With -obs one registry spans the whole stack (cache, client
	// pivot, retries, transport) so the final snapshot is coherent.
	var obsReg *obs.Registry
	if cfg.showObs {
		obsReg = obs.NewRegistry()
	}

	var handlers []client.Handler
	var cache *core.Cache
	var remote *cluster.Remote
	if useCache {
		reps := rep.NewRegistry(reg, codec)
		coreCfg := core.Config{
			KeyGen:     rep.NewStringKey(),
			DefaultTTL: time.Hour,
			Obs:        obsReg,
		}
		// "adaptive" rides core's default selector (which sizes its cost
		// model to the cache's byte budget); anything else resolves
		// through the registry. The registry is kept as coreCfg.Rep
		// either way: a tier stack needs a wire-capable selector even
		// when the L1 representation is pinned by -rep.
		coreCfg.Rep = reps
		if !strings.EqualFold(cfg.rep, "adaptive") {
			store, err := reps.Store(cfg.rep)
			if err != nil {
				return err
			}
			coreCfg.Store = store
		}
		if cfg.l2 != "" {
			// The invalidator is what carries epoch bumps between this
			// process's L1 and the shared daemon; without one the tier
			// still works, TTL-only.
			inv := invalidate.New(nil, obsReg)
			coreCfg.Invalidator = inv
			remote, err = cluster.New(cluster.Config{
				Addrs:       strings.Split(cfg.l2, ","),
				Inv:         inv,
				BaseContext: context.Background(),
			})
			if err != nil {
				return err
			}
			coreCfg.Tiers = []tier.Tier{remote}
		}
		if err := coreCfg.Validate(); err != nil {
			return err
		}
		cache = core.MustNew(coreCfg)
		handlers = append(handlers, cache)
	}
	if remote != nil {
		defer remote.Close()
	}

	opts := client.Options{RecordEvents: true, Handlers: handlers, Obs: obsReg}
	if cfg.retries > 1 {
		opts.Retry = &transport.RetryPolicy{MaxAttempts: cfg.retries, Obs: obsReg}
	}
	svc, err := client.NewService(defs, codec, &transport.HTTP{MaxResponseBytes: cfg.maxResp, Obs: obsReg}, client.ServiceConfig{
		Endpoint: endpoint,
		Options:  opts,
	})
	if err != nil {
		return err
	}
	call, err := svc.Call(operation)
	if err != nil {
		return err
	}

	params, err := buildParams(defs, operation, args)
	if err != nil {
		return err
	}

	for i := 0; i < repeat; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		start := time.Now()
		ictx, err := call.InvokeContext(ctx, params...)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("call %d (%v, hit=%v):\n", i+1, time.Since(start).Round(time.Microsecond), ictx.CacheHit)
		printResult(ictx.Result)
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Printf("cache: %d hits, %d misses, %d bytes\n", s.Hits, s.Misses, s.Bytes)
	}
	if obsReg != nil {
		body, err := json.MarshalIndent(obsReg.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("observability snapshot:\n%s\n", body)
	}
	return nil
}

// buildParams coerces name=value arguments to the types the WSDL
// declares for the operation's input message, in message-part order.
func buildParams(defs *wsdl.Definitions, operation string, args []string) ([]soap.Param, error) {
	in, _, err := defs.OperationIO(operation)
	if err != nil {
		return nil, err
	}
	given := make(map[string]string, len(args))
	for _, a := range args {
		name, value, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not name=value", a)
		}
		given[name] = value
	}
	params := make([]soap.Param, 0, len(in.Parts))
	for _, part := range in.Parts {
		raw, ok := given[part.Name]
		if !ok {
			return nil, fmt.Errorf("missing argument %s (type %s)", part.Name, part.Type.Local)
		}
		delete(given, part.Name)
		v, err := coerce(part.Type, raw)
		if err != nil {
			return nil, fmt.Errorf("argument %s: %w", part.Name, err)
		}
		params = append(params, soap.Param{Name: part.Name, Value: v})
	}
	for name := range given {
		return nil, fmt.Errorf("unknown argument %s (operation %s takes %d parameters)", name, operation, len(in.Parts))
	}
	return params, nil
}

// coerce converts a textual argument to the Go value for a schema type.
func coerce(q typemap.QName, raw string) (any, error) {
	if !xsd.IsBuiltin(q) {
		return nil, fmt.Errorf("complex parameter type %s not supported on the command line", q)
	}
	switch q.Local {
	case "string", "anyURI", "dateTime":
		return raw, nil
	case "boolean":
		return strconv.ParseBool(raw)
	case "int", "integer", "short", "byte":
		return strconv.Atoi(raw)
	case "long":
		return strconv.ParseInt(raw, 10, 64)
	case "unsignedInt", "unsignedLong":
		return strconv.ParseUint(raw, 10, 64)
	case "float":
		f, err := strconv.ParseFloat(raw, 32)
		return float32(f), err
	case "double", "decimal":
		return strconv.ParseFloat(raw, 64)
	case "base64Binary":
		return []byte(raw), nil
	default:
		return nil, fmt.Errorf("unsupported parameter type %s", q)
	}
}

// printResult renders the decoded application object.
func printResult(result any) {
	switch r := result.(type) {
	case *googleapi.GoogleSearchResult:
		fmt.Printf("  %d of about %d results (%.3fs) for %q\n",
			len(r.ResultElements), r.EstimatedTotalResultsCount, r.SearchTime, r.SearchQuery)
		for i := range r.ResultElements {
			e := &r.ResultElements[i]
			fmt.Printf("  %d. %s\n     %s\n", i+1, e.Title, e.URL)
		}
	case []byte:
		const max = 200
		s := string(r)
		if len(s) > max {
			s = s[:max] + fmt.Sprintf("... (%d bytes total)", len(r))
		}
		fmt.Printf("  %s\n", s)
	case nil:
		fmt.Println("  <no result>")
	default:
		fmt.Printf("  %+v\n", r)
	}
}
