// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so benchmark runs can be archived
// and diffed across commits (the perf trajectory of the hit path lives
// in BENCH_core.json at the repo root).
//
// Usage:
//
//	go test -run NONE -bench BenchmarkHit -benchmem ./internal/core | benchjson -o BENCH_core.json
//
// Standard result lines are parsed into name, iterations, and every
// reported metric (ns/op, B/op, allocs/op, plus custom b.ReportMetric
// units); ops_per_sec is derived from ns/op. goos/goarch/pkg/cpu
// header lines become document metadata. Unrecognized lines are
// ignored, so the converter can sit at the end of any `go test` pipe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	OpsPerSec   float64            `json:"ops_per_sec,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	GeneratedAt string            `json:"generated_at"`
	Env         map[string]string `json:"env,omitempty"`
	Note        string            `json:"note,omitempty"`
	Benchmarks  []Result          `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the document (machine context, baseline reference)")
	flag.Parse()

	doc, err := parse(os.Stdin, *note)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	body = append(body, '\n')
	if *out == "" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads benchmark output and collects results and metadata.
func parse(r *os.File, note string) (*Doc, error) {
	doc := &Doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Env:         map[string]string{},
		Note:        note,
		Benchmarks:  []Result{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			// Several packages may contribute; keep the first pkg and
			// the shared machine facts.
			if _, dup := doc.Env[k]; !dup {
				doc.Env[k] = strings.TrimSpace(v)
			}
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseResult parses one result line:
//
//	BenchmarkHitParallel/16  4850193  243.0 ns/op  16 B/op  1 allocs/op
//
// Fields after the iteration count come in value/unit pairs.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp = val
			if val > 0 {
				res.OpsPerSec = 1e9 / val
			}
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		default:
			res.Metrics[unit] = val
		}
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, true
}
