// Command wscachelint runs the repository's domain-specific static
// analyzers (internal/lint/checks) over Go packages, _test.go files
// included.
//
// Usage:
//
//	wscachelint [flags] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when no diagnostics are found, 1 when diagnostics are
// reported, and 2 when loading or type-checking fails.
//
// Output formats (-format): "text" (default, file:line:col lines),
// "json" (a JSON array of diagnostics), and "sarif" (a SARIF 2.1.0
// log for code-scanning upload). -fix applies every suggested fix to
// the files in place and reports what changed; diagnostics without a
// mechanical fix still print.
//
// Diagnostics can be suppressed per line with
//
//	//lint:ignore <check> <reason>
//
// which covers the comment's own line and the line directly below it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/checks"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("wscachelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (alias for -format json)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	fix := fs.Bool("fix", false, "apply suggested fixes to the files in place")
	only := fs.String("checks", "", "comma-separated list of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	all := checks.All()
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: wscachelint [flags] [packages]\n\nflags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nchecks:\n")
		for _, a := range all {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := all
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "wscachelint: unknown format %q (text, json, or sarif)\n", *format)
		return 2
	}
	if *jsonOut {
		*format = "json"
	}

	// The full registry stays the suppression vocabulary even when
	// -checks narrows what runs: an ignore naming a check that merely
	// isn't running this invocation is not a typo.
	known := make([]string, 0, len(all))
	for _, a := range all {
		known = append(known, a.Name)
	}

	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "wscachelint: unknown check %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "wscachelint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "wscachelint: %v\n", err)
		return 2
	}

	diags := lint.RunKnown(cwd, pkgs, analyzers, known)

	if *fix {
		changed, err := lint.ApplyFixes(cwd, diags)
		if err != nil {
			fmt.Fprintf(stderr, "wscachelint: %v\n", err)
			return 2
		}
		for _, file := range changed {
			fmt.Fprintf(stdout, "fixed: %s\n", file)
		}
		// What remains after fixing is what still needs a human; report
		// only diagnostics that carried no fix.
		unfixed := diags[:0]
		for _, d := range diags {
			if d.Fix == nil {
				unfixed = append(unfixed, d)
			}
		}
		diags = unfixed
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "wscachelint: %v\n", err)
			return 2
		}
	case "sarif":
		out, err := lint.SARIF(diags, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "wscachelint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	default:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
