// Command wscachelint runs the repository's domain-specific static
// analyzers (internal/lint/checks) over Go packages.
//
// Usage:
//
//	wscachelint [flags] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when no diagnostics are found, 1 when diagnostics are
// reported, and 2 when loading or type-checking fails.
//
// Diagnostics can be suppressed per line with
//
//	//lint:ignore <check> <reason>
//
// which covers the comment's own line and the line directly below it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/checks"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("wscachelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	only := fs.String("checks", "", "comma-separated list of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "wscachelint: unknown check %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "wscachelint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "wscachelint: %v\n", err)
		return 2
	}

	diags := lint.Run(cwd, pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "wscachelint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
