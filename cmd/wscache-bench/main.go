// Command wscache-bench regenerates the paper's micro-benchmark tables
// (Tables 6–9): cache-key generation time, cached-data retrieval time,
// and the memory sizes of cache keys and cached objects, for the three
// Google operations.
//
// Usage:
//
//	wscache-bench              # all four tables, 10,000 iterations
//	wscache-bench -table 7     # one table
//	wscache-bench -iters 50000 # heavier timing run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (6, 7, 8 or 9); 0 means all")
	iters := flag.Int("iters", bench.DefaultIterations, "iterations per timed cell (Tables 6 and 7)")
	format := flag.String("format", "text", `output format: "text" or "csv"`)
	flag.Parse()

	if err := run(*table, *iters, *format); err != nil {
		fmt.Fprintln(os.Stderr, "wscache-bench:", err)
		os.Exit(1)
	}
}

func run(table, iters int, format string) error {
	if format != "text" && format != "csv" {
		return fmt.Errorf("unknown format %q (text or csv)", format)
	}
	env, err := bench.NewEnv()
	if err != nil {
		return err
	}

	produce := map[int]func() (*bench.Table, error){
		6: func() (*bench.Table, error) { return env.Table6(iters) },
		7: func() (*bench.Table, error) { return env.Table7(iters) },
		8: env.Table8,
		9: env.Table9,
	}

	order := []int{6, 7, 8, 9}
	if table != 0 {
		f, ok := produce[table]
		if !ok {
			return fmt.Errorf("no such table %d (have 6, 7, 8, 9)", table)
		}
		return printTable(f, format)
	}
	for _, id := range order {
		if err := printTable(produce[id], format); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func printTable(f func() (*bench.Table, error), format string) error {
	t, err := f()
	if err != nil {
		return err
	}
	if format == "csv" {
		fmt.Print(t.CSV())
		return nil
	}
	fmt.Print(t.Format())
	return nil
}
