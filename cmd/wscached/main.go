// Command wscached is the shared L2 cache daemon: a standalone process
// holding one core.Cache of wire-encoded entries and serving it to
// wsclient fleets over the compact binary protocol in internal/cluster.
//
// Clients route keys to daemons by consistent hashing, so a fleet runs
// N wscached processes and every client lists all N addresses. The
// daemon is representation-aware only in that it stores the wire bytes
// a client selected (raw, xmltmpl, binser, compact-sax, xml, gob) and hands them
// back verbatim; decoding happens client-side. Epoch bumps pushed by
// any writer advance the daemon's epoch table, and every response
// carries the table version so other clients resync their L1s on next
// contact.
//
// Run it:
//
//	wscached -addr :7070 -obs-addr :7071 -max-bytes 268435456
//
// and point clients at it with wsclient -l2 host:7070.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/invalidate"
	"repro/internal/obs"
	"repro/internal/rep"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "address to serve the cluster protocol on")
		obsAddr    = flag.String("obs-addr", "", "address for the metrics endpoint (empty disables it)")
		maxEntries = flag.Int("max-entries", 0, "entry bound for the shared cache (0 = unbounded)")
		maxBytes   = flag.Int("max-bytes", 0, "byte bound for the shared cache (0 = unbounded)")
		shards     = flag.Int("shards", 0, "shard count (0 picks the default)")
		maxPayload = flag.Int("max-payload", 0, "request frame payload bound in bytes (0 = 4 MiB default)")
		ttl        = flag.Duration("ttl", time.Hour, "fallback TTL for entries stored without one")
		sweep      = flag.Duration("sweep", time.Minute, "expired-entry sweep interval (0 disables sweeping)")
	)
	flag.Parse()

	if err := run(*addr, *obsAddr, *maxEntries, *maxBytes, *shards, *maxPayload, *ttl, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "wscached:", err)
		os.Exit(1)
	}
}

func run(addr, obsAddr string, maxEntries, maxBytes, shards, maxPayload int, ttl, sweep time.Duration) error {
	reg := obs.NewRegistry()
	inv := invalidate.New(nil, reg)

	// The daemon never generates keys or decodes values — clients ship
	// pre-hashed tier keys and pre-encoded wire bytes — so the KeyGen
	// and Store here only have to satisfy Validate; the tier path never
	// calls them. Validate runs the same flag checks a programmatic
	// misuse would hit (negative bounds, negative TTL).
	cfg := core.Config{
		KeyGen:      rep.NewStringKey(),
		Store:       rep.NewCloneCopyStore(),
		MaxEntries:  maxEntries,
		MaxBytes:    maxBytes,
		Shards:      shards,
		DefaultTTL:  ttl,
		Invalidator: inv,
		Obs:         reg,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if maxPayload < 0 {
		return fmt.Errorf("-max-payload is %d; want ≥ 0", maxPayload)
	}
	cache, err := core.New(cfg)
	if err != nil {
		return err
	}
	if sweep > 0 {
		defer core.NewSweeperContext(context.Background(), cache, sweep).Shutdown()
	}

	srv, err := cluster.NewServer(cluster.ServerConfig{
		Tier:       cache,
		Inv:        inv,
		MaxPayload: maxPayload,
		Obs:        reg,
	})
	if err != nil {
		return err
	}

	if obsAddr != "" {
		obsSrv := &http.Server{
			Addr:              obsAddr,
			Handler:           obs.Handler(reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("wscached: obs endpoint: %v", err)
			}
		}()
		defer obsSrv.Close()
		log.Printf("wscached: metrics on http://%s/", obsAddr)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		log.Printf("wscached: shutting down")
		srv.Close()
	}()

	log.Printf("wscached: serving on %s (boot %#x)", addr, srv.BootID())
	if err := srv.ListenAndServe(ctx, addr); err != nil {
		return err
	}
	log.Printf("wscached: stopped")
	return nil
}
