// Command dummygoogle serves the simulated Google Web services over
// HTTP: the test double the paper's portal scenario calls (Section
// 5.2). It exposes the SOAP endpoint at / and the service WSDL at
// /wsdl. Besides the paper's three read-only operations, the
// dispatcher serves the mutable item operations (doGetItem, doPutItem,
// doListItems) backed by an in-memory store, so a cache in front of it
// can exercise write-through invalidation (see package invalidate).
//
// Usage:
//
//	dummygoogle -addr :8080                  # full SOAP dispatcher
//	dummygoogle -addr :8080 -fixed           # precomputed identical responses
//	dummygoogle -cache                       # server-side response cache (raw bodies)
//	dummygoogle -cache -cache-rep compact    # ... resident as compact SAX events
//	dummygoogle -cache -cache-rep xmltmpl    # ... resident as splice templates
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/rep"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fixed := flag.Bool("fixed", false, "serve precomputed fixed responses (cheapest back end)")
	ttl := flag.Duration("ttl", time.Hour, "Cache-Control max-age stamped on responses (0 disables)")
	useCache := flag.Bool("cache", false, "wrap the dispatcher in the server-side response cache")
	cacheRep := flag.String("cache-rep", "raw", `resident representation for cached bodies: "raw", "compact-sax", or "xmltmpl" (shared splice template per response shape)`)
	flag.Parse()

	if err := run(*addr, *fixed, *ttl, *useCache, *cacheRep); err != nil {
		fmt.Fprintln(os.Stderr, "dummygoogle:", err)
		os.Exit(1)
	}
}

func run(addr string, fixed bool, ttl time.Duration, useCache bool, cacheRep string) error {
	if useCache && fixed {
		return fmt.Errorf("-cache has no effect with -fixed (responses are already precomputed)")
	}
	// The flag surface overlaps core.Config's, so validate through it:
	// a bad -ttl fails at startup with the same message a programmatic
	// misuse of the cache would get.
	probe := core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewCloneCopyStore(),
		DefaultTTL: ttl,
	}
	if err := probe.Validate(); err != nil {
		return err
	}
	var soapHandler http.Handler
	if fixed {
		soapHandler = googleapi.NewFixedResponseHandler()
	} else {
		d, _, err := googleapi.NewDispatcher()
		if err != nil {
			return err
		}
		if ttl > 0 {
			d.SetValidatorPolicy(time.Now(), ttl)
		}
		soapHandler = d
		if useCache {
			body, err := rep.BodyStoreFor(cacheRep)
			if err != nil {
				return err
			}
			soapHandler = server.NewResponseCache(d, server.ResponseCacheConfig{
				TTL:  ttl,
				Body: body,
			})
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", soapHandler)
	mux.HandleFunc("/wsdl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = w.Write([]byte(googleapi.WSDL))
	})

	fmt.Fprintf(os.Stderr, "dummygoogle: serving %s (fixed=%v); WSDL at /wsdl\n", addr, fixed)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
