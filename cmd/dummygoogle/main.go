// Command dummygoogle serves the simulated Google Web services over
// HTTP: the test double the paper's portal scenario calls (Section
// 5.2). It exposes the SOAP endpoint at / and the service WSDL at
// /wsdl.
//
// Usage:
//
//	dummygoogle -addr :8080          # full SOAP dispatcher
//	dummygoogle -addr :8080 -fixed   # precomputed identical responses
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/googleapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fixed := flag.Bool("fixed", false, "serve precomputed fixed responses (cheapest back end)")
	ttl := flag.Duration("ttl", time.Hour, "Cache-Control max-age stamped on responses (0 disables)")
	flag.Parse()

	if err := run(*addr, *fixed, *ttl); err != nil {
		fmt.Fprintln(os.Stderr, "dummygoogle:", err)
		os.Exit(1)
	}
}

func run(addr string, fixed bool, ttl time.Duration) error {
	var soapHandler http.Handler
	if fixed {
		soapHandler = googleapi.NewFixedResponseHandler()
	} else {
		d, _, err := googleapi.NewDispatcher()
		if err != nil {
			return err
		}
		if ttl > 0 {
			d.SetValidatorPolicy(time.Now(), ttl)
		}
		soapHandler = d
	}

	mux := http.NewServeMux()
	mux.Handle("/", soapHandler)
	mux.HandleFunc("/wsdl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = w.Write([]byte(googleapi.WSDL))
	})

	fmt.Fprintf(os.Stderr, "dummygoogle: serving %s (fixed=%v); WSDL at /wsdl\n", addr, fixed)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
