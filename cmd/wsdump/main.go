// Command wsdump inspects WSDL service descriptions and prints the
// paper's descriptive tables. Without arguments it dumps the embedded
// GoogleSearch WSDL; -f reads a WSDL file; -tables prints Tables 1–5
// (operation catalogs, representation matrices, the SAX event example,
// and the operation shape summary).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/amazonapi"
	"repro/internal/googleapi"
	"repro/internal/rep"
	"repro/internal/sax"
	"repro/internal/wsdl"
)

func main() {
	file := flag.String("f", "", "WSDL file to dump (default: embedded GoogleSearch WSDL)")
	tables := flag.Bool("tables", false, "print the paper's descriptive tables (1-5)")
	flag.Parse()

	if err := run(*file, *tables); err != nil {
		fmt.Fprintln(os.Stderr, "wsdump:", err)
		os.Exit(1)
	}
}

func run(file string, tables bool) error {
	doc := []byte(googleapi.WSDL)
	if file != "" {
		var err error
		doc, err = os.ReadFile(file)
		if err != nil {
			return err
		}
	}
	defs, err := wsdl.Parse(doc)
	if err != nil {
		return err
	}
	dumpDefinitions(defs)
	if tables {
		fmt.Println()
		printDescriptiveTables(defs)
	}
	return nil
}

// dumpDefinitions prints the service model.
func dumpDefinitions(defs *wsdl.Definitions) {
	fmt.Printf("WSDL %q  targetNamespace=%s\n", defs.Name, defs.TargetNamespace)
	if loc, ok := defs.Endpoint(); ok {
		fmt.Printf("endpoint: %s\n", loc)
	}

	for _, name := range sortedKeys(defs.PortTypes) {
		pt := defs.PortTypes[name]
		fmt.Printf("\nportType %s:\n", pt.Name)
		for _, opName := range sortedKeys(pt.Operations) {
			op := pt.Operations[opName]
			in, out, err := defs.OperationIO(op.Name)
			if err != nil {
				fmt.Printf("  %s: %v\n", op.Name, err)
				continue
			}
			params := make([]string, 0, len(in.Parts))
			for _, p := range in.Parts {
				params = append(params, p.Name+" "+p.Type.Local)
			}
			ret := "void"
			if len(out.Parts) > 0 {
				ret = out.Parts[0].Type.Local
			}
			fmt.Printf("  %s(%s) -> %s\n", op.Name, strings.Join(params, ", "), ret)
		}
	}

	for _, s := range defs.Schemas {
		var names []string
		for n := range s.Types {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("\nschema %s types: %s\n", s.TargetNamespace, strings.Join(names, ", "))
	}
}

// printDescriptiveTables prints the paper's Tables 1-5.
func printDescriptiveTables(defs *wsdl.Definitions) {
	fmt.Println("Table 1. Operations in Google/Amazon Web services")
	fmt.Printf("  Google Web services (all cacheable):\n    %s\n",
		strings.Join(googleapi.Operations, ", "))
	fmt.Printf("  Amazon Web services, cacheable search operations (%d):\n    %s\n",
		len(amazonapi.SearchOperations), strings.Join(amazonapi.SearchOperations, ", "))
	fmt.Printf("  Amazon Web services, uncacheable cart operations (%d):\n    %s\n",
		len(amazonapi.CartOperations), strings.Join(amazonapi.CartOperations, ", "))

	fmt.Println("\nTable 2. Cache key data representation")
	printMatrix(rep.KeyRepresentations())

	fmt.Println("\nTable 3. Cache value data representation")
	printMatrix(rep.ValueRepresentations())

	fmt.Println("\nTable 4. An example of a SAX events sequence")
	fmt.Println("  XML document: <doc><para>Hello, world!</para></doc>")
	events, err := sax.Record([]byte("<doc><para>Hello, world!</para></doc>"))
	if err != nil {
		fmt.Println("  error:", err)
	} else {
		for _, e := range events {
			fmt.Printf("  %s\n", e)
		}
	}

	fmt.Println("\nTable 5. Summary of the three Google operations")
	printTable5(defs)
}

// printMatrix renders a representation matrix.
func printMatrix(rows []rep.RepresentationInfo) {
	for _, r := range rows {
		fmt.Printf("  %-22s method: %-58s limitation: %s\n", r.Representation, r.Method, r.Limitation)
	}
}

// printTable5 summarizes request/return shapes from the WSDL itself.
func printTable5(defs *wsdl.Definitions) {
	classes := map[string]string{
		googleapi.OpSpellingSuggestion: "small and simple",
		googleapi.OpGetCachedPage:      "large and simple",
		googleapi.OpGoogleSearch:       "large and complex",
	}
	for _, opName := range googleapi.Operations {
		in, out, err := defs.OperationIO(opName)
		if err != nil {
			fmt.Printf("  %s: %v\n", opName, err)
			continue
		}
		counts := map[string]int{}
		for _, p := range in.Parts {
			counts[p.Type.Local]++
		}
		var parts []string
		for _, ty := range sortedKeys(counts) {
			parts = append(parts, fmt.Sprintf("%s x %d", ty, counts[ty]))
		}
		ret := "void"
		if len(out.Parts) > 0 {
			ret = out.Parts[0].Type.Local
		}
		fmt.Printf("  %-22s request: %-38s return: %s (%s)\n",
			opName, strings.Join(parts, ", "), ret, classes[opName])
	}
}

// sortedKeys returns the sorted keys of a map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
