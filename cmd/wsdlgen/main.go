// Command wsdlgen is the WSDL compiler: it generates Go source — typed
// structs with deep CloneDeep methods, RegisterTypes, and a typed
// service client — from a WSDL service description. The analog of
// Axis's WSDL2Java, extended with the clone generation the paper calls
// for (Section 4.2.3-C).
//
// Usage:
//
//	wsdlgen -pkg googlegen > googlegen.go           # embedded Google WSDL
//	wsdlgen -wsdl service.wsdl -pkg mysvc -o mysvc/mysvc.go
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/googleapi"
	"repro/internal/wsdl"
	"repro/internal/wsdlgen"
)

func main() {
	wsdlPath := flag.String("wsdl", "", "WSDL file (default: the embedded GoogleSearch WSDL)")
	pkg := flag.String("pkg", "", "generated package name (required)")
	out := flag.String("o", "", "output file (default stdout)")
	skipClient := flag.Bool("types-only", false, "generate types without the service client")
	flag.Parse()

	if err := run(*wsdlPath, *pkg, *out, *skipClient); err != nil {
		fmt.Fprintln(os.Stderr, "wsdlgen:", err)
		os.Exit(1)
	}
}

func run(wsdlPath, pkg, out string, skipClient bool) error {
	if pkg == "" {
		return fmt.Errorf("-pkg is required")
	}
	doc := []byte(googleapi.WSDL)
	if wsdlPath != "" {
		var err error
		doc, err = os.ReadFile(wsdlPath)
		if err != nil {
			return err
		}
	}
	defs, err := wsdl.Parse(doc)
	if err != nil {
		return err
	}
	src, err := wsdlgen.Generate(defs, wsdlgen.Options{Package: pkg, SkipClient: skipClient})
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(src)
		return err
	}
	return os.WriteFile(out, src, 0o644)
}
