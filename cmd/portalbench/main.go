// Command portalbench regenerates the paper's portal-site scenario
// figures (Section 5.2): throughput and average response time of a
// portal backed by dummy Google Web services through the caching
// client, as the cache-hit ratio sweeps 0–100% for each cache value
// representation.
//
// Usage:
//
//	portalbench -figure 3                # 1 user (no concurrency)
//	portalbench -figure 4                # 25 concurrent users
//	portalbench -concurrency 64          # override the figure's user count
//	portalbench -requests 2000           # heavier run per point
//	portalbench -figure 3 -store "Pass by Reference"
//	portalbench -figure 3 -rep adaptive     # the measured-cost selector
//	portalbench -obs-dump                # print the final /debug/wscache snapshot
//	portalbench -obs-addr :9091          # serve it live while the sweep runs
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/googleapi"
	"repro/internal/obs"
)

func main() {
	figure := flag.Int("figure", 3, "figure to regenerate: 3 (sequential) or 4 (25 concurrent users)")
	concurrency := flag.Int("concurrency", 0, "simulated users; 0 means the figure's own count (1 or 25)")
	requests := flag.Int("requests", 1000, "portal page requests per measured point")
	hot := flag.Int("hot", 4, "distinct pre-warmed (hot) queries")
	storeFilter := flag.String("store", "", "run only the named cache method (substring match)")
	repName := flag.String("rep", "", `run a single representation by registry name ("sax", "adaptive", ...); overrides -store`)
	op := flag.String("op", googleapi.OpGoogleSearch, "back-end operation under load (doGoogleSearch, doSpellingSuggestion, doGetCachedPage)")
	format := flag.String("format", "text", `output format: "text" or "csv"`)
	obsDump := flag.Bool("obs-dump", false, "print the sweep's observability snapshot as JSON when done")
	obsAddr := flag.String("obs-addr", "", "serve the live observability snapshot at this address under "+obs.DebugPath)
	flag.Parse()

	cfg := runCfg{
		figure:      *figure,
		concurrency: *concurrency,
		requests:    *requests,
		hot:         *hot,
		storeFilter: *storeFilter,
		rep:         *repName,
		op:          *op,
		format:      *format,
		obsDump:     *obsDump,
		obsAddr:     *obsAddr,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "portalbench:", err)
		os.Exit(1)
	}
}

// runCfg carries the parsed command line.
type runCfg struct {
	figure      int
	concurrency int
	requests    int
	hot         int
	storeFilter string
	rep         string
	op          string
	format      string
	obsDump     bool
	obsAddr     string
}

func run(cfg runCfg) error {
	var concurrency int
	var title string
	switch cfg.figure {
	case 3:
		concurrency = 1
		title = "Throughput and average response time without concurrent access"
	case 4:
		concurrency = 25
		title = "Throughput and average response time with 25 concurrent accesses"
	default:
		return fmt.Errorf("no such figure %d (have 3 and 4)", cfg.figure)
	}
	if cfg.concurrency > 0 {
		concurrency = cfg.concurrency
		title = fmt.Sprintf("%s (concurrency %d)", title, concurrency)
	}

	stores := bench.FigureStores()
	if cfg.rep != "" {
		spec, err := bench.StoreSpecByName(cfg.rep)
		if err != nil {
			return err
		}
		stores = []bench.StoreSpec{spec}
	} else if cfg.storeFilter != "" {
		var filtered []bench.StoreSpec
		for _, s := range stores {
			if strings.Contains(strings.ToLower(s.Name), strings.ToLower(cfg.storeFilter)) {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no cache method matches %q", cfg.storeFilter)
		}
		stores = filtered
	}

	// Observability: one registry accumulates across the whole sweep.
	// Beware that stage timing itself costs a little; leave both flags
	// off for the most faithful figures.
	var reg *obs.Registry
	if cfg.obsDump || cfg.obsAddr != "" {
		reg = obs.NewRegistry()
	}
	if cfg.obsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle(obs.DebugPath, obs.Handler(reg))
		srv := &http.Server{Addr: cfg.obsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "portalbench: obs server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "portalbench: observability at http://%s%s\n", cfg.obsAddr, obs.DebugPath)
	}

	fmt.Fprintf(os.Stderr, "portalbench: figure %d, op %s, %d requests/point, concurrency %d, %d methods × 6 ratios\n",
		cfg.figure, cfg.op, cfg.requests, concurrency, len(stores))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	series, err := bench.FigureContext(ctx, bench.FigureConfig{
		Concurrency:      concurrency,
		RequestsPerPoint: cfg.requests,
		Stores:           stores,
		HotQueries:       cfg.hot,
		Operation:        cfg.op,
		Obs:              reg,
	})
	if err != nil {
		return err
	}
	if cfg.format == "csv" {
		fmt.Print(bench.CSVFigure(series))
	} else {
		fmt.Print(bench.FormatFigure(fmt.Sprintf("Figure %d", cfg.figure), title, series))
	}
	if cfg.obsDump {
		body, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "observability snapshot:\n%s\n", body)
	}
	return nil
}
