// Command portalbench regenerates the paper's portal-site scenario
// figures (Section 5.2): throughput and average response time of a
// portal backed by dummy Google Web services through the caching
// client, as the cache-hit ratio sweeps 0–100% for each cache value
// representation.
//
// Usage:
//
//	portalbench -figure 3                # 1 user (no concurrency)
//	portalbench -figure 4                # 25 concurrent users
//	portalbench -requests 2000           # heavier run per point
//	portalbench -figure 3 -store "Pass by Reference"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/bench"
	"repro/internal/googleapi"
)

func main() {
	figure := flag.Int("figure", 3, "figure to regenerate: 3 (sequential) or 4 (25 concurrent users)")
	requests := flag.Int("requests", 1000, "portal page requests per measured point")
	hot := flag.Int("hot", 4, "distinct pre-warmed (hot) queries")
	storeFilter := flag.String("store", "", "run only the named cache method (substring match)")
	op := flag.String("op", googleapi.OpGoogleSearch, "back-end operation under load (doGoogleSearch, doSpellingSuggestion, doGetCachedPage)")
	format := flag.String("format", "text", `output format: "text" or "csv"`)
	flag.Parse()

	if err := run(*figure, *requests, *hot, *storeFilter, *op, *format); err != nil {
		fmt.Fprintln(os.Stderr, "portalbench:", err)
		os.Exit(1)
	}
}

func run(figure, requests, hot int, storeFilter, op, format string) error {
	var concurrency int
	var title string
	switch figure {
	case 3:
		concurrency = 1
		title = "Throughput and average response time without concurrent access"
	case 4:
		concurrency = 25
		title = "Throughput and average response time with 25 concurrent accesses"
	default:
		return fmt.Errorf("no such figure %d (have 3 and 4)", figure)
	}

	stores := bench.FigureStores()
	if storeFilter != "" {
		var filtered []bench.StoreSpec
		for _, s := range stores {
			if strings.Contains(strings.ToLower(s.Name), strings.ToLower(storeFilter)) {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no cache method matches %q", storeFilter)
		}
		stores = filtered
	}

	fmt.Fprintf(os.Stderr, "portalbench: figure %d, op %s, %d requests/point, concurrency %d, %d methods × 6 ratios\n",
		figure, op, requests, concurrency, len(stores))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	series, err := bench.FigureContext(ctx, bench.FigureConfig{
		Concurrency:      concurrency,
		RequestsPerPoint: requests,
		Stores:           stores,
		HotQueries:       hot,
		Operation:        op,
	})
	if err != nil {
		return err
	}
	if format == "csv" {
		fmt.Print(bench.CSVFigure(series))
		return nil
	}
	fmt.Print(bench.FormatFigure(fmt.Sprintf("Figure %d", figure), title, series))
	return nil
}
