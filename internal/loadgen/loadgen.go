// Package loadgen is the load simulator for the portal-site scenario
// (paper Section 5.2, "Web Performance Tool"): a closed-loop generator
// with a configurable number of concurrent virtual users and an
// artificially controlled cache-hit ratio, swept 0–100% in the paper's
// Figures 3 and 4. For resilience scenarios it also supports
// context-cancelled shutdown mid-run and per-class failure accounting
// (errors bucketed by a caller-supplied classifier, e.g. breaker
// rejections vs timeouts vs degraded stale serves).
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Config drives one load run.
type Config struct {
	// Concurrency is the number of virtual users. 1 reproduces the
	// paper's "without concurrent access" setup (Figure 3); 25 the
	// concurrent one (Figure 4).
	Concurrency int

	// Requests is the total number of requests to issue.
	Requests int

	// HitRatio in [0,1] is the fraction of requests that reuse a hot
	// query (one the cache has already stored). The schedule is
	// deterministic: exactly ⌊Requests·HitRatio⌋ requests are hits,
	// evenly interleaved.
	HitRatio float64

	// HotQueries are the pre-warmed queries reused by hit requests.
	HotQueries []string

	// MissQuery produces a unique query for the i-th miss.
	MissQuery func(i int) string

	// Do performs one request. It receives the query chosen by the
	// schedule.
	Do func(query string) error

	// WriteRatio in [0,1] is the fraction of requests that are writes
	// against a hot query, for mixed read/write profiles exercising
	// write-through invalidation. Writes are carved out of the schedule
	// first, evenly interleaved, cycling through HotQueries; the
	// remaining requests follow HitRatio as usual. HitRatio+WriteRatio
	// must not exceed 1.
	WriteRatio float64

	// Write performs one write request for the hot query chosen by the
	// schedule. Required when WriteRatio > 0.
	Write func(query string) error

	// Classify buckets a request error into a named class for
	// Result.Classes — failure-scenario runs separate breaker
	// rejections from timeouts from injected faults. nil buckets every
	// error as "error".
	Classify func(error) string
}

// Result aggregates a run.
type Result struct {
	Requests   int
	Writes     int // write requests issued (mixed read/write profiles)
	Errors     int
	Skipped    int // scheduled requests never issued (cancelled run)
	Elapsed    time.Duration
	Throughput float64 // requests per second
	AvgLatency time.Duration
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	// Classes counts errors per Config.Classify bucket.
	Classes map[string]int
}

// String formats the result as a report row.
func (r Result) String() string {
	s := fmt.Sprintf("%d req in %v: %.1f req/s, avg %v, p50 %v, p90 %v, p99 %v, %d errors",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.AvgLatency.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Errors)
	if r.Writes > 0 {
		s += fmt.Sprintf(", %d writes", r.Writes)
	}
	if r.Skipped > 0 {
		s += fmt.Sprintf(", %d skipped", r.Skipped)
	}
	return s
}

// RunContext executes the configured load, stopping early when ctx is
// cancelled: no further requests are issued, in-flight requests finish,
// and the partial result is returned alongside ctx's error. Requests
// the schedule never issued are reported in Result.Skipped and excluded
// from the latency aggregates.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Concurrency <= 0 {
		return Result{}, fmt.Errorf("loadgen: Concurrency must be positive")
	}
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("loadgen: Requests must be positive")
	}
	if cfg.HitRatio < 0 || cfg.HitRatio > 1 {
		return Result{}, fmt.Errorf("loadgen: HitRatio %v outside [0,1]", cfg.HitRatio)
	}
	if cfg.Do == nil {
		return Result{}, fmt.Errorf("loadgen: Do is required")
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 {
		return Result{}, fmt.Errorf("loadgen: WriteRatio %v outside [0,1]", cfg.WriteRatio)
	}
	if cfg.HitRatio+cfg.WriteRatio > 1+1e-9 {
		return Result{}, fmt.Errorf("loadgen: HitRatio %v + WriteRatio %v exceeds 1", cfg.HitRatio, cfg.WriteRatio)
	}
	if (cfg.HitRatio > 0 || cfg.WriteRatio > 0) && len(cfg.HotQueries) == 0 {
		return Result{}, fmt.Errorf("loadgen: HitRatio or WriteRatio > 0 requires HotQueries")
	}
	if cfg.WriteRatio > 0 && cfg.Write == nil {
		return Result{}, fmt.Errorf("loadgen: WriteRatio > 0 requires Write")
	}
	if cfg.HitRatio+cfg.WriteRatio < 1 && cfg.MissQuery == nil {
		return Result{}, fmt.Errorf("loadgen: HitRatio + WriteRatio < 1 requires MissQuery")
	}

	queries, writes := mixedSchedule(cfg.Requests, cfg.HitRatio, cfg.WriteRatio, cfg.HotQueries, cfg.MissQuery)

	latencies := make([]time.Duration, cfg.Requests)
	errs := make([]error, cfg.Requests)
	issued := make([]bool, cfg.Requests)
	var wg sync.WaitGroup
	work := make(chan int)

	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				if writes[i] {
					errs[i] = cfg.Write(queries[i])
				} else {
					errs[i] = cfg.Do(queries[i])
				}
				latencies[i] = time.Since(t0)
				issued[i] = true
			}
		}()
	}
feed:
	for i := 0; i < cfg.Requests; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	res := aggregate(latencies, errs, issued, elapsed, cfg.Classify)
	for i, ok := range issued {
		if ok && writes[i] {
			res.Writes++
		}
	}
	return res, ctx.Err()
}

// Schedule builds the deterministic query sequence: hits evenly
// interleaved with misses at the requested ratio.
func Schedule(requests int, hitRatio float64, hot []string, miss func(int) string) []string {
	queries, _ := mixedSchedule(requests, hitRatio, 0, hot, miss)
	return queries
}

// mixedSchedule builds the deterministic request sequence for a mixed
// read/write profile. Writes are carved out first at writeRatio, evenly
// interleaved and cycling through the hot queries; the remaining slots
// are hits and misses at hitRatio, exactly as Schedule produces.
func mixedSchedule(requests int, hitRatio, writeRatio float64, hot []string, miss func(int) string) ([]string, []bool) {
	queries := make([]string, requests)
	writes := make([]bool, requests)
	hits, misses, nwrites := 0, 0, 0
	acc, accW := 0.0, 0.0
	for i := 0; i < requests; i++ {
		accW += writeRatio
		if accW >= 1.0-1e-9 && len(hot) > 0 {
			accW -= 1.0
			queries[i] = hot[nwrites%len(hot)]
			writes[i] = true
			nwrites++
			continue
		}
		acc += hitRatio
		if acc >= 1.0-1e-9 && len(hot) > 0 {
			acc -= 1.0
			queries[i] = hot[hits%len(hot)]
			hits++
		} else {
			queries[i] = miss(misses)
			misses++
		}
	}
	return queries, writes
}

// aggregate folds per-request samples into a Result, counting only
// requests the run actually issued.
func aggregate(latencies []time.Duration, errs []error, issued []bool, elapsed time.Duration, classify func(error) string) Result {
	res := Result{Elapsed: elapsed}
	var completed []time.Duration
	for i, ok := range issued {
		if !ok {
			res.Skipped++
			continue
		}
		res.Requests++
		completed = append(completed, latencies[i])
		if errs[i] != nil {
			res.Errors++
			class := "error"
			if classify != nil {
				class = classify(errs[i])
			}
			if res.Classes == nil {
				res.Classes = make(map[string]int)
			}
			res.Classes[class]++
		}
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Requests) / elapsed.Seconds()
	}
	var total time.Duration
	for _, l := range completed {
		total += l
	}
	if len(completed) > 0 {
		res.AvgLatency = total / time.Duration(len(completed))
	}
	sort.Slice(completed, func(i, j int) bool { return completed[i] < completed[j] })
	res.P50 = percentile(completed, 0.50)
	res.P90 = percentile(completed, 0.90)
	res.P99 = percentile(completed, 0.99)
	return res
}

// percentile reads the p-quantile from sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
