package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleExactRatio(t *testing.T) {
	hot := []string{"h1", "h2"}
	miss := func(i int) string { return fmt.Sprintf("m%d", i) }

	for _, ratio := range []float64{0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0} {
		qs := Schedule(100, ratio, hot, miss)
		hits := 0
		for _, q := range qs {
			if strings.HasPrefix(q, "h") {
				hits++
			}
		}
		want := int(ratio * 100)
		if hits < want-1 || hits > want+1 {
			t.Errorf("ratio %.1f: %d hits, want ≈%d", ratio, hits, want)
		}
	}
}

func TestScheduleMissesUnique(t *testing.T) {
	qs := Schedule(50, 0.5, []string{"hot"}, func(i int) string { return fmt.Sprintf("m%d", i) })
	seen := map[string]int{}
	for _, q := range qs {
		seen[q]++
	}
	for q, n := range seen {
		if strings.HasPrefix(q, "m") && n != 1 {
			t.Errorf("miss query %q appears %d times", q, n)
		}
	}
}

func TestScheduleInterleaved(t *testing.T) {
	// At 50% the schedule must alternate, not front-load.
	qs := Schedule(10, 0.5, []string{"h"}, func(i int) string { return "m" })
	firstHalfHits := 0
	for _, q := range qs[:5] {
		if q == "h" {
			firstHalfHits++
		}
	}
	if firstHalfHits < 2 || firstHalfHits > 3 {
		t.Errorf("hits not interleaved: first half has %d", firstHalfHits)
	}
}

func TestRunCountsAndThroughput(t *testing.T) {
	var calls int64
	res, err := RunContext(context.Background(), Config{
		Concurrency: 4,
		Requests:    200,
		HitRatio:    0.5,
		HotQueries:  []string{"hot"},
		MissQuery:   func(i int) string { return fmt.Sprintf("m%d", i) },
		Do: func(string) error {
			atomic.AddInt64(&calls, 1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&calls) != 200 || res.Requests != 200 {
		t.Errorf("calls = %d, requests = %d", atomic.LoadInt64(&calls), res.Requests)
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Errorf("throughput = %v, elapsed = %v", res.Throughput, res.Elapsed)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
}

func TestRunErrorsCounted(t *testing.T) {
	boom := errors.New("x")
	res, err := RunContext(context.Background(), Config{
		Concurrency: 2,
		Requests:    10,
		HitRatio:    0,
		MissQuery:   func(i int) string { return fmt.Sprint(i) },
		Do: func(q string) error {
			if q == "3" {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 1 {
		t.Errorf("errors = %d", res.Errors)
	}
}

func TestRunConcurrencyActuallyParallel(t *testing.T) {
	var mu sync.Mutex
	active, peak := 0, 0
	res, err := RunContext(context.Background(), Config{
		Concurrency: 8,
		Requests:    64,
		HitRatio:    1,
		HotQueries:  []string{"h"},
		Do: func(string) error {
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("peak concurrency = %d, want > 1", peak)
	}
	if res.AvgLatency <= 0 || res.P50 <= 0 || res.P90 < res.P50 {
		t.Errorf("latency stats inconsistent: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	base := Config{
		Concurrency: 1,
		Requests:    1,
		Do:          func(string) error { return nil },
		MissQuery:   func(int) string { return "m" },
	}

	bad := base
	bad.Concurrency = 0
	if _, err := RunContext(context.Background(), bad); err == nil {
		t.Error("zero concurrency accepted")
	}
	bad = base
	bad.Requests = 0
	if _, err := RunContext(context.Background(), bad); err == nil {
		t.Error("zero requests accepted")
	}
	bad = base
	bad.HitRatio = 1.5
	if _, err := RunContext(context.Background(), bad); err == nil {
		t.Error("ratio > 1 accepted")
	}
	bad = base
	bad.Do = nil
	if _, err := RunContext(context.Background(), bad); err == nil {
		t.Error("nil Do accepted")
	}
	bad = base
	bad.HitRatio = 0.5
	bad.HotQueries = nil
	if _, err := RunContext(context.Background(), bad); err == nil {
		t.Error("hits without hot queries accepted")
	}
	bad = base
	bad.MissQuery = nil
	if _, err := RunContext(context.Background(), bad); err == nil {
		t.Error("misses without MissQuery accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Requests: 10, Elapsed: time.Second, Throughput: 10, AvgLatency: time.Millisecond}
	if !strings.Contains(r.String(), "10 req") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestPercentileEdges(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile not zero")
	}
	s := []time.Duration{1, 2, 3, 4, 5}
	if percentile(s, 0) != 1 || percentile(s, 1.0) != 5 {
		t.Error("percentile bounds wrong")
	}
}

func TestMixedScheduleWriteRatio(t *testing.T) {
	hot := []string{"h1", "h2"}
	miss := func(i int) string { return fmt.Sprintf("m%d", i) }

	qs, ws := mixedSchedule(100, 0.5, 0.2, hot, miss)
	writes, hits := 0, 0
	for i, q := range qs {
		if ws[i] {
			writes++
			if !strings.HasPrefix(q, "h") {
				t.Errorf("write %d targets %q, want a hot query", i, q)
			}
		} else if strings.HasPrefix(q, "h") {
			hits++
		}
	}
	if writes < 19 || writes > 21 {
		t.Errorf("%d writes, want ≈20", writes)
	}
	if hits < 38 || hits > 42 {
		t.Errorf("%d hits, want ≈40", hits)
	}
	// Writes must be spread out, not front-loaded.
	firstHalf := 0
	for i := 0; i < 50; i++ {
		if ws[i] {
			firstHalf++
		}
	}
	if firstHalf < 8 || firstHalf > 12 {
		t.Errorf("writes not interleaved: first half has %d", firstHalf)
	}
}

func TestRunMixedWrites(t *testing.T) {
	var reads, writes int64
	res, err := RunContext(context.Background(), Config{
		Concurrency: 4,
		Requests:    200,
		HitRatio:    0.4,
		WriteRatio:  0.25,
		HotQueries:  []string{"h1", "h2", "h3"},
		MissQuery:   func(i int) string { return fmt.Sprintf("m%d", i) },
		Do:          func(string) error { atomic.AddInt64(&reads, 1); return nil },
		Write:       func(string) error { atomic.AddInt64(&writes, 1); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Errorf("Requests = %d, want 200", res.Requests)
	}
	if res.Writes != 50 || atomic.LoadInt64(&writes) != 50 {
		t.Errorf("Writes = %d (func saw %d), want 50", res.Writes, atomic.LoadInt64(&writes))
	}
	if atomic.LoadInt64(&reads) != 150 {
		t.Errorf("reads = %d, want 150", atomic.LoadInt64(&reads))
	}
	if !strings.Contains(res.String(), "50 writes") {
		t.Errorf("String() = %q, missing write count", res.String())
	}
}

func TestRunMixedValidation(t *testing.T) {
	base := Config{
		Concurrency: 1,
		Requests:    10,
		HotQueries:  []string{"h"},
		MissQuery:   func(i int) string { return "m" },
		Do:          func(string) error { return nil },
	}
	for name, mutate := range map[string]func(*Config){
		"write ratio out of range": func(c *Config) { c.WriteRatio = 1.5 },
		"ratios exceed one":        func(c *Config) { c.HitRatio, c.WriteRatio = 0.8, 0.3 },
		"write func missing":       func(c *Config) { c.WriteRatio = 0.2; c.Write = nil },
		"hot queries missing":      func(c *Config) { c.WriteRatio = 0.2; c.Write = func(string) error { return nil }; c.HotQueries = nil },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := RunContext(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}
