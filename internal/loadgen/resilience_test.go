package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunContextCancellationStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var issued atomic.Int64
	res, err := RunContext(ctx, Config{
		Concurrency: 2,
		Requests:    1000,
		MissQuery:   func(i int) string { return fmt.Sprintf("q%d", i) },
		Do: func(query string) error {
			if issued.Add(1) == 10 {
				cancel() // a shutdown signal arrives mid-run
			}
			time.Sleep(time.Millisecond)
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Requests >= 1000 {
		t.Errorf("run did not stop early: %d requests", res.Requests)
	}
	if res.Requests+res.Skipped != 1000 {
		t.Errorf("requests %d + skipped %d != 1000", res.Requests, res.Skipped)
	}
	if res.Requests < 10 {
		t.Errorf("requests = %d, want at least the 10 issued before cancel", res.Requests)
	}
}

func TestRunContextCompletesWithoutCancellation(t *testing.T) {
	res, err := RunContext(context.Background(), Config{
		Concurrency: 4,
		Requests:    100,
		MissQuery:   func(i int) string { return fmt.Sprintf("q%d", i) },
		Do:          func(string) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 || res.Skipped != 0 {
		t.Errorf("requests = %d, skipped = %d", res.Requests, res.Skipped)
	}
}

func TestErrorClassification(t *testing.T) {
	errBreaker := errors.New("breaker open")
	errTimeout := errors.New("timeout")
	res, err := RunContext(context.Background(), Config{
		Concurrency: 1,
		Requests:    10,
		MissQuery:   func(i int) string { return fmt.Sprintf("q%d", i) },
		Do: func(query string) error {
			switch query {
			case "q0", "q1", "q2":
				return errBreaker
			case "q3":
				return errTimeout
			}
			return nil
		},
		Classify: func(err error) string {
			switch {
			case errors.Is(err, errBreaker):
				return "breaker-open"
			case errors.Is(err, errTimeout):
				return "timeout"
			}
			return "other"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 4 {
		t.Errorf("errors = %d, want 4", res.Errors)
	}
	if res.Classes["breaker-open"] != 3 || res.Classes["timeout"] != 1 {
		t.Errorf("classes = %v", res.Classes)
	}
}

func TestDefaultErrorClass(t *testing.T) {
	res, err := RunContext(context.Background(), Config{
		Concurrency: 1,
		Requests:    3,
		MissQuery:   func(i int) string { return fmt.Sprintf("q%d", i) },
		Do:          func(string) error { return errors.New("boom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes["error"] != 3 {
		t.Errorf("classes = %v, want 3 under \"error\"", res.Classes)
	}
}
