package cluster

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/tier"
)

// Message payload layouts. All integers are big-endian fixed width.
//
//	get/del req:  key.Hi u64 | key.Lo u64
//	put req:      bootID u64 | key.Hi u64 | key.Lo u64 | ttlNanos i64 |
//	              repLen u8 | rep | nStamps u16 |
//	              { ksLen u16 | ks | epoch u64 }* | value (rest)
//
// The put bootID is the daemon incarnation the sender's stamps were
// minted against. A daemon receiving a put for another incarnation
// drops it: stamp epochs from a previous boot are meaningless against
// the fresh epoch cells and could mask bumps (a stamp minted at epoch
// 5 would stay "fresh" through the first five post-restart bumps).
//	bump req:     n u16 | { ksLen u16 | ks }*
//	sync/ping req: empty
//	meta prefix (every response): bootID u64 | version u64
//	value resp:   meta | ttlNanos i64 | repLen u8 | rep | value (rest)
//	miss/ok resp: meta
//	table resp:   meta | n u32 | { ksLen u16 | ks | epoch u64 }*
//	err resp:     msgLen u16 | msg
//
// Strings (rep names, keyspaces) are bounded by their length prefix;
// the frame layer already bounds the whole payload, so decoders only
// need internal consistency checks, all funneled through the cursor.

// respMeta is the prefix of every non-error response: which daemon
// incarnation answered and how many epoch mutations it has seen. The
// client compares both against its per-node mirror after every round
// trip.
type respMeta struct {
	bootID  uint64
	version uint64
}

// cursor is a sticky-error reader over a payload. After the first
// failure every subsequent read returns zero values, so decoders can
// read a whole layout linearly and check err once.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: short %s", ErrMalformed, what)
	}
}

func (c *cursor) u8(what string) byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 1 {
		c.fail(what)
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u16(what string) uint16 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 2 {
		c.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *cursor) u32(what string) uint32 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 4 {
		c.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64(what string) uint64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// str reads n bytes as a string (copying out of the frame buffer).
func (c *cursor) str(n int, what string) string {
	if c.err != nil {
		return ""
	}
	if len(c.b) < n {
		c.fail(what)
		return ""
	}
	v := string(c.b[:n])
	c.b = c.b[n:]
	return v
}

// rest consumes the remaining bytes (the trailing value field).
func (c *cursor) rest() []byte {
	if c.err != nil {
		return nil
	}
	v := c.b
	c.b = nil
	return v
}

// done fails unless the payload was consumed exactly.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(c.b))
	}
	return nil
}

func (c *cursor) meta() respMeta {
	return respMeta{bootID: c.u64("boot id"), version: c.u64("version")}
}

func appendMeta(dst []byte, m respMeta) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.bootID)
	return binary.BigEndian.AppendUint64(dst, m.version)
}

func appendStr8(dst []byte, s string, what string) ([]byte, error) {
	if len(s) > 0xFF {
		return dst, fmt.Errorf("%w: %s %d bytes long", ErrMalformed, what, len(s))
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...), nil
}

func appendStr16(dst []byte, s string, what string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return dst, fmt.Errorf("%w: %s %d bytes long", ErrMalformed, what, len(s))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// --- get / del ------------------------------------------------------

func encodeKey(key tier.Key) []byte {
	b := make([]byte, 0, 16)
	b = binary.BigEndian.AppendUint64(b, key.Hi)
	return binary.BigEndian.AppendUint64(b, key.Lo)
}

func decodeKey(payload []byte) (tier.Key, error) {
	c := cursor{b: payload}
	k := tier.Key{Hi: c.u64("key hi"), Lo: c.u64("key lo")}
	return k, c.done()
}

// --- put ------------------------------------------------------------

func encodePut(bootID uint64, key tier.Key, e tier.Entry) ([]byte, error) {
	b := make([]byte, 0, 24+8+1+len(e.Rep)+2+len(e.Stamps)*16+len(e.Value))
	b = binary.BigEndian.AppendUint64(b, bootID)
	b = binary.BigEndian.AppendUint64(b, key.Hi)
	b = binary.BigEndian.AppendUint64(b, key.Lo)
	b = binary.BigEndian.AppendUint64(b, uint64(e.TTL.Nanoseconds()))
	var err error
	if b, err = appendStr8(b, e.Rep, "rep name"); err != nil {
		return nil, err
	}
	if len(e.Stamps) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d stamps", ErrMalformed, len(e.Stamps))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Stamps)))
	for _, st := range e.Stamps {
		if b, err = appendStr16(b, st.Keyspace, "keyspace"); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint64(b, st.Epoch)
	}
	return append(b, e.Value...), nil
}

func decodePut(payload []byte) (uint64, tier.Key, tier.Entry, error) {
	c := cursor{b: payload}
	bootID := c.u64("boot id")
	k := tier.Key{Hi: c.u64("key hi"), Lo: c.u64("key lo")}
	e := tier.Entry{TTL: time.Duration(c.u64("ttl"))}
	e.Rep = c.str(int(c.u8("rep length")), "rep name")
	n := int(c.u16("stamp count"))
	if c.err == nil && n > 0 {
		e.Stamps = make([]tier.Stamp, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			ks := c.str(int(c.u16("keyspace length")), "keyspace")
			e.Stamps = append(e.Stamps, tier.Stamp{Keyspace: ks, Epoch: c.u64("epoch")})
		}
	}
	e.Value = c.rest()
	if c.err != nil {
		return 0, tier.Key{}, tier.Entry{}, c.err
	}
	return bootID, k, e, nil
}

// --- value response -------------------------------------------------

func encodeValue(m respMeta, e tier.Entry) ([]byte, error) {
	b := make([]byte, 0, 16+8+1+len(e.Rep)+len(e.Value))
	b = appendMeta(b, m)
	b = binary.BigEndian.AppendUint64(b, uint64(e.TTL.Nanoseconds()))
	var err error
	if b, err = appendStr8(b, e.Rep, "rep name"); err != nil {
		return nil, err
	}
	return append(b, e.Value...), nil
}

func decodeValue(payload []byte) (respMeta, tier.Entry, error) {
	c := cursor{b: payload}
	m := c.meta()
	e := tier.Entry{TTL: time.Duration(c.u64("ttl"))}
	e.Rep = c.str(int(c.u8("rep length")), "rep name")
	e.Value = c.rest()
	if c.err != nil {
		return respMeta{}, tier.Entry{}, c.err
	}
	return m, e, nil
}

// --- meta-only responses (miss, ok) ---------------------------------

func encodeMetaOnly(m respMeta) []byte {
	return appendMeta(make([]byte, 0, 16), m)
}

func decodeMetaOnly(payload []byte) (respMeta, error) {
	c := cursor{b: payload}
	m := c.meta()
	return m, c.done()
}

// --- bump request ---------------------------------------------------

func encodeBump(keyspaces []string) ([]byte, error) {
	if len(keyspaces) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d keyspaces", ErrMalformed, len(keyspaces))
	}
	b := binary.BigEndian.AppendUint16(nil, uint16(len(keyspaces)))
	var err error
	for _, ks := range keyspaces {
		if b, err = appendStr16(b, ks, "keyspace"); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeBump(payload []byte) ([]string, error) {
	c := cursor{b: payload}
	n := int(c.u16("keyspace count"))
	var out []string
	for i := 0; i < n && c.err == nil; i++ {
		out = append(out, c.str(int(c.u16("keyspace length")), "keyspace"))
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- epoch table response -------------------------------------------

func encodeTable(m respMeta, epochs map[string]uint64) ([]byte, error) {
	b := appendMeta(make([]byte, 0, 16+4+len(epochs)*16), m)
	b = binary.BigEndian.AppendUint32(b, uint32(len(epochs)))
	var err error
	for ks, epoch := range epochs {
		if b, err = appendStr16(b, ks, "keyspace"); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint64(b, epoch)
	}
	return b, nil
}

func decodeTable(payload []byte) (respMeta, map[string]uint64, error) {
	c := cursor{b: payload}
	m := c.meta()
	n := int(c.u32("entry count"))
	// Each entry is at least 10 bytes; an entry count inconsistent with
	// the payload size is refused before allocating the map for it.
	if c.err == nil && n*10 > len(c.b) {
		return respMeta{}, nil, fmt.Errorf("%w: table declares %d entries in %d bytes", ErrMalformed, n, len(c.b))
	}
	epochs := make(map[string]uint64, n)
	for i := 0; i < n && c.err == nil; i++ {
		ks := c.str(int(c.u16("keyspace length")), "keyspace")
		epochs[ks] = c.u64("epoch")
	}
	if err := c.done(); err != nil {
		return respMeta{}, nil, err
	}
	return m, epochs, nil
}

// --- error response -------------------------------------------------

func encodeErr(msg string) []byte {
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	b := binary.BigEndian.AppendUint16(nil, uint16(len(msg)))
	return append(b, msg...)
}

func decodeErr(payload []byte) (string, error) {
	c := cursor{b: payload}
	msg := c.str(int(c.u16("message length")), "message")
	return msg, c.done()
}
