package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/invalidate"
	"repro/internal/tier"
	"sync/atomic"
)

// Config configures the client side of the cluster tier.
type Config struct {
	// Addrs are the daemon addresses (host:port). Keys are routed by
	// consistent hashing; one address is the common case. Required,
	// non-empty.
	Addrs []string
	// Inv is this process's invalidator. When set, the tier propagates
	// epochs both ways: local bumps are pushed to every daemon before
	// the write returns, and daemon-side bumps observed on any response
	// are applied locally (staling this process's L1 entries). When nil
	// the tier is TTL-only.
	Inv *invalidate.Invalidator
	// Name is the tier name in stats and counters; default "l2".
	Name string
	// Replicas is the virtual nodes per address on the hash ring;
	// ≤ 0 means the package default.
	Replicas int
	// MaxPayload bounds response frames; ≤ 0 means DefaultMaxPayload.
	MaxPayload int
	// DialTimeout bounds establishing a connection; default 1s.
	DialTimeout time.Duration
	// OpTimeout bounds one round trip (write + read); default 2s. A
	// request context with an earlier deadline tightens it further.
	OpTimeout time.Duration
	// PoolSize is the idle connections kept per daemon; default 2.
	PoolSize int
	// BaseContext bounds the background epoch pushes the OnBump hook
	// issues (each push additionally gets an OpTimeout deadline).
	// Required when Inv is set: the binary owns the root context, not
	// this package. Ignored otherwise.
	BaseContext context.Context
}

func (cfg *Config) withDefaults() Config {
	c := *cfg
	if c.Name == "" {
		c.Name = "l2"
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = DefaultMaxPayload
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 2 * time.Second
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	return c
}

// Remote is the client side of the shared L2: a tier.Tier whose
// storage lives in wscached daemons. Every response's meta (boot ID,
// epoch version) is compared against the per-daemon mirror, so any
// traffic at all — a hit, a miss, a put acknowledgment — carries
// invalidation: a version ahead of the mirror triggers an epoch-table
// sync whose diffs stale the local L1, and a changed boot ID (daemon
// restart, bumps lost) invalidates the local L1 outright.
type Remote struct {
	cfg   Config
	ring  *ring
	nodes []*node
	inv   *invalidate.Invalidator

	// Per-remote traffic counters, surfaced through TierStats (and,
	// when the tier is installed in a core.Cache, its "tiers"
	// inspection). Plain atomics rather than obs counters: the metric
	// name would have to carry the configured tier name, and obs
	// registry names are compile-time constants by convention.
	gets     atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	puts     atomic.Uint64
	errors   atomic.Uint64
	syncs    atomic.Uint64
	bumps    atomic.Uint64
	deferred atomic.Uint64
	restarts atomic.Uint64
}

var _ tier.Tier = (*Remote)(nil)

// node is the per-daemon state: the connection pool, the epoch mirror
// (this process's view of that daemon's table), and the pending-bump
// set (local bumps not yet acknowledged by that daemon).
//
// Lock order: pendingMu before epochMu; poolMu independent.
type node struct {
	addr string

	poolMu sync.Mutex
	idle   []*poolConn

	pendingMu sync.Mutex
	pending   map[string]struct{}

	epochMu sync.Mutex
	bootID  uint64 // 0 until first contact
	version uint64
	mirror  map[string]uint64
}

type poolConn struct {
	c       net.Conn
	br      *bufio.Reader
	scratch []byte
}

// New builds the cluster tier and, when cfg.Inv is set, hooks local
// epoch bumps to push to every daemon.
func New(cfg Config) (*Remote, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("cluster: Config.Addrs is required")
	}
	c := cfg.withDefaults()
	r := &Remote{
		cfg:  c,
		ring: newRing(c.Addrs, c.Replicas),
		inv:  c.Inv,
	}
	for _, addr := range c.Addrs {
		r.nodes = append(r.nodes, &node{
			addr:    addr,
			pending: make(map[string]struct{}),
			mirror:  make(map[string]uint64),
		})
	}
	if r.inv != nil {
		base := c.BaseContext
		if base == nil {
			return nil, errors.New("cluster: Config.BaseContext is required when Inv is set (the binary owns the root context)")
		}
		// Push local bumps synchronously: by the time the committing
		// write returns, every reachable daemon has the new epoch, so no
		// other process can fill a pre-write value into the shared tier
		// and have it accepted. An unreachable daemon's bumps go to its
		// pending set, flushed before this process talks to it again.
		r.inv.OnBump(func(keyspaces []invalidate.Keyspace) {
			names := make([]string, len(keyspaces))
			for i, ks := range keyspaces {
				names[i] = string(ks)
			}
			ctx, cancel := context.WithTimeout(base, c.OpTimeout)
			defer cancel()
			r.pushBumps(ctx, names)
		})
	}
	return r, nil
}

// Name implements tier.Tier.
func (r *Remote) Name() string { return r.cfg.Name }

// nodeFor routes a key.
func (r *Remote) nodeFor(key tier.Key) *node {
	return r.nodes[r.ring.node(key)]
}

// Get implements tier.Tier. Pending bumps for the key's daemon are
// flushed first — an entry must never be served from a daemon that has
// not yet seen this process's writes.
func (r *Remote) Get(ctx context.Context, key tier.Key) (tier.Entry, bool, error) {
	r.gets.Add(1)
	n := r.nodeFor(key)
	if err := r.flush(ctx, n); err != nil {
		return tier.Entry{}, false, fmt.Errorf("cluster: bump flush: %w", err)
	}
	op, resp, err := r.roundTrip(ctx, n, OpGet, encodeKey(key))
	if err != nil {
		return tier.Entry{}, false, err
	}
	switch op {
	case OpValue:
		m, e, err := decodeValue(resp)
		if err != nil {
			r.errors.Add(1)
			return tier.Entry{}, false, err
		}
		r.afterMeta(ctx, n, m)
		r.hits.Add(1)
		return e, true, nil
	case OpMiss:
		m, err := decodeMetaOnly(resp)
		if err != nil {
			r.errors.Add(1)
			return tier.Entry{}, false, err
		}
		r.afterMeta(ctx, n, m)
		r.misses.Add(1)
		return tier.Entry{}, false, nil
	}
	return tier.Entry{}, false, r.unexpected("get", op, resp)
}

// PutStamps implements tier.Tier: the epochs this process believes the
// key's daemon holds for the given keyspaces, snapshotted before the
// backend read. The mirror only ever trails the daemon within one
// incarnation, so a stale snapshot can only make the daemon refuse the
// fill — never accept a stale one. The boot ID the mirror belongs to
// is pinned into the stamps: a daemon restart between this snapshot
// and the fill resets the daemon's epoch counters, and post-restart
// bumps could advance a cell back to exactly the snapshotted value
// (ABA) — the fill must then be refused by the boot check, not judged
// by colliding epochs. An uncontacted daemon mirrors as all zeros
// under boot 0, the most conservative stamp.
func (r *Remote) PutStamps(key tier.Key, keyspaces []string) []tier.Stamp {
	n := r.nodeFor(key)
	stamps := make([]tier.Stamp, len(keyspaces))
	n.epochMu.Lock()
	for i, ks := range keyspaces {
		stamps[i] = tier.Stamp{Keyspace: ks, Epoch: n.mirror[ks], Boot: n.bootID}
	}
	n.epochMu.Unlock()
	return stamps
}

// Put implements tier.Tier. The put frame carries the boot ID the
// entry's stamps were snapshotted under (falling back to the node's
// current one for stamp-less entries): the daemon drops fills from
// another incarnation, and for stamp-less entries the freshest view is
// the best available.

func (r *Remote) Put(ctx context.Context, key tier.Key, e tier.Entry) error {
	n := r.nodeFor(key)
	if err := r.flush(ctx, n); err != nil {
		return fmt.Errorf("cluster: bump flush: %w", err)
	}
	var bootID uint64
	if len(e.Stamps) > 0 {
		bootID = e.Stamps[0].Boot
	} else {
		n.epochMu.Lock()
		bootID = n.bootID
		n.epochMu.Unlock()
	}
	payload, err := encodePut(bootID, key, e)
	if err != nil {
		return err
	}
	op, resp, err := r.roundTrip(ctx, n, OpPut, payload)
	if err != nil {
		return err
	}
	if op != OpOK {
		return r.unexpected("put", op, resp)
	}
	m, err := decodeMetaOnly(resp)
	if err != nil {
		r.errors.Add(1)
		return err
	}
	r.afterMeta(ctx, n, m)
	r.puts.Add(1)
	return nil
}

// Delete implements tier.Tier.
func (r *Remote) Delete(ctx context.Context, key tier.Key) error {
	n := r.nodeFor(key)
	if err := r.flush(ctx, n); err != nil {
		return fmt.Errorf("cluster: bump flush: %w", err)
	}
	op, resp, err := r.roundTrip(ctx, n, OpDel, encodeKey(key))
	if err != nil {
		return err
	}
	if op != OpOK {
		return r.unexpected("delete", op, resp)
	}
	m, err := decodeMetaOnly(resp)
	if err != nil {
		r.errors.Add(1)
		return err
	}
	r.afterMeta(ctx, n, m)
	return nil
}

// BumpEpoch implements tier.Tier: push the bumps to every daemon (all
// of them — a keyspace's entries hash across the whole ring).
func (r *Remote) BumpEpoch(ctx context.Context, keyspaces []string) error {
	return r.pushBumps(ctx, keyspaces)
}

// TierStats implements tier.Tier. Entry and byte counts live in the
// daemons; this side reports traffic.
func (r *Remote) TierStats() tier.Stats {
	return tier.Stats{
		Hits:   int64(r.hits.Load()),
		Misses: int64(r.misses.Load()),
		Stores: int64(r.puts.Load()),
		Errors: int64(r.errors.Load()),
	}
}

// Close drops every pooled connection.
func (r *Remote) Close() error {
	for _, n := range r.nodes {
		n.poolMu.Lock()
		for _, pc := range n.idle {
			pc.c.Close()
		}
		n.idle = nil
		n.poolMu.Unlock()
	}
	return nil
}

// pushBumps queues keyspaces on every node and flushes immediately.
// A node that cannot be reached keeps them pending (counted), to be
// flushed before this process's next request to it.
func (r *Remote) pushBumps(ctx context.Context, keyspaces []string) error {
	if len(keyspaces) == 0 {
		return nil
	}
	r.bumps.Add(1)
	var firstErr error
	for _, n := range r.nodes {
		n.pendingMu.Lock()
		for _, ks := range keyspaces {
			n.pending[ks] = struct{}{}
		}
		err := r.flushLocked(ctx, n)
		n.pendingMu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flush sends a node's pending bumps, if any.
func (r *Remote) flush(ctx context.Context, n *node) error {
	n.pendingMu.Lock()
	defer n.pendingMu.Unlock()
	return r.flushLocked(ctx, n)
}

// flushLocked sends the pending set as one OpBump and applies the
// returned table (skipping the local re-application of this process's
// own single-step bumps — they were already applied locally when the
// write committed). Pending entries clear only on acknowledgment.
func (r *Remote) flushLocked(ctx context.Context, n *node) error {
	if len(n.pending) == 0 {
		return nil
	}
	names := make([]string, 0, len(n.pending))
	for ks := range n.pending {
		names = append(names, ks)
	}
	sort.Strings(names)
	payload, err := encodeBump(names)
	if err != nil {
		return err
	}
	op, resp, err := r.roundTrip(ctx, n, OpBump, payload)
	if err != nil {
		r.deferred.Add(1)
		return err
	}
	if op != OpTable {
		r.deferred.Add(1)
		return r.unexpected("bump", op, resp)
	}
	m, table, err := decodeTable(resp)
	if err != nil {
		r.deferred.Add(1)
		r.errors.Add(1)
		return err
	}
	own := make(map[string]bool, len(names))
	for _, ks := range names {
		own[ks] = true
	}
	for ks := range n.pending {
		delete(n.pending, ks)
	}
	r.applyTable(n, m, table, own)
	return nil
}

// afterMeta reconciles a meta-only response against the node's mirror,
// fetching the epoch table when the response shows state this process
// has not seen. It completes before the triggering operation returns,
// so a Get's caller observes any invalidation that Get's response
// implied.
func (r *Remote) afterMeta(ctx context.Context, n *node, m respMeta) {
	n.epochMu.Lock()
	needSync := m.bootID != n.bootID || m.version > n.version
	n.epochMu.Unlock()
	if !needSync {
		return
	}
	op, resp, err := r.roundTrip(ctx, n, OpSync, nil)
	if err != nil || op != OpTable {
		// Leave the mirror stale: bootID/version were not updated, so the
		// next response re-triggers the sync.
		r.errors.Add(1)
		return
	}
	m2, table, err := decodeTable(resp)
	if err != nil {
		r.errors.Add(1)
		return
	}
	r.syncs.Add(1)
	r.applyTable(n, m2, table, nil)
}

// applyTable folds a daemon epoch table into the node mirror and
// applies newly observed bumps to the local invalidator. own marks
// keyspaces whose single-step advance is this process's just-pushed
// bump: those were applied locally at commit time, and re-applying
// would stale this process's own fresh fill. A jump of more than one
// step means another process also bumped, so it is applied.
func (r *Remote) applyTable(n *node, m respMeta, table map[string]uint64, own map[string]bool) {
	n.epochMu.Lock()
	restarted := n.bootID != 0 && n.bootID != m.bootID
	if n.bootID != m.bootID {
		n.bootID = m.bootID
		n.version = 0
		n.mirror = make(map[string]uint64, len(table))
		if restarted {
			// Step counting is meaningless across a restart. On FIRST
			// contact it is fine: the empty mirror reads as all zeros, so a
			// just-pushed own bump lands on old+1 only when it really is
			// the sole advance.
			own = nil
		}
	}
	var stale []string
	for ks, epoch := range table {
		old := n.mirror[ks]
		if epoch <= old {
			continue
		}
		n.mirror[ks] = epoch
		if !(own[ks] && epoch == old+1) {
			stale = append(stale, ks)
		}
	}
	if m.version > n.version {
		n.version = m.version
	}
	n.epochMu.Unlock()

	if r.inv == nil {
		return
	}
	if restarted {
		// The daemon lost every bump its previous incarnation absorbed;
		// local entries validated against them can no longer be trusted.
		r.restarts.Add(1)
		r.inv.InvalidateAll()
		return
	}
	for _, ks := range stale {
		r.inv.ApplyRemote(invalidate.Keyspace(ks))
	}
}

// unexpected normalizes a response that does not fit the request.
func (r *Remote) unexpected(verb string, op Opcode, resp []byte) error {
	r.errors.Add(1)
	if op == OpErr {
		if msg, err := decodeErr(resp); err == nil {
			return fmt.Errorf("cluster: %s: daemon: %s", verb, msg)
		}
	}
	return fmt.Errorf("cluster: %s: unexpected response opcode %#x", verb, byte(op))
}

// roundTrip sends one request on a pooled connection and reads its
// response. One retry on an IO failure covers the common pool staleness
// (daemon restarted, idle timeout): the retry dials fresh because the
// failed connection was discarded, not repooled. All requests are safe
// to retry — get/put/delete/sync are idempotent and a duplicated bump
// only over-invalidates.
func (r *Remote) roundTrip(ctx context.Context, n *node, op Opcode, payload []byte) (Opcode, []byte, error) {
	deadline := time.Now().Add(r.cfg.OpTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			break
		}
		pc, err := n.acquire(r.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		pc.c.SetDeadline(deadline)
		if err := writeFrame(pc.c, &pc.scratch, op, payload); err != nil {
			pc.c.Close()
			lastErr = err
			continue
		}
		respOp, resp, err := readFrame(pc.br, r.cfg.MaxPayload)
		if err != nil {
			pc.c.Close()
			lastErr = err
			continue
		}
		pc.c.SetDeadline(time.Time{})
		n.release(pc, r.cfg.PoolSize)
		return respOp, resp, nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	r.errors.Add(1)
	return 0, nil, fmt.Errorf("cluster: %s: %w", n.addr, lastErr)
}

// acquire pops an idle connection or dials a fresh one.
func (n *node) acquire(dialTimeout time.Duration) (*poolConn, error) {
	n.poolMu.Lock()
	if len(n.idle) > 0 {
		pc := n.idle[len(n.idle)-1]
		n.idle = n.idle[:len(n.idle)-1]
		n.poolMu.Unlock()
		return pc, nil
	}
	n.poolMu.Unlock()
	c, err := net.DialTimeout("tcp", n.addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return &poolConn{c: c, br: bufio.NewReader(c)}, nil
}

// release returns a healthy connection to the pool, capped.
func (n *node) release(pc *poolConn, cap int) {
	n.poolMu.Lock()
	if len(n.idle) >= cap {
		n.poolMu.Unlock()
		pc.c.Close()
		return
	}
	n.idle = append(n.idle, pc)
	n.poolMu.Unlock()
}
