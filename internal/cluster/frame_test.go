package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/tier"
)

// typedDecodeErr reports whether err is one of the package's sentinel
// decode errors — the contract every malformed input must satisfy.
func typedDecodeErr(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrVersionSkew) || errors.Is(err, ErrUnknownOpcode) ||
		errors.Is(err, ErrMalformed)
}

// TestDecodeFrameMalformed is the malformed-frame table: each corrupt
// input must yield its specific typed error, never a panic.
func TestDecodeFrameMalformed(t *testing.T) {
	valid := AppendFrame(nil, OpGet, encodeKey(tier.Key{Hi: 1, Lo: 2}))
	cases := []struct {
		name string
		in   []byte
		max  int
		want error
	}{
		{"empty", nil, 0, ErrTruncated},
		{"truncated header", valid[:5], 0, ErrTruncated},
		{"header only, payload declared", valid[:headerSize], 0, ErrTruncated},
		{"truncated payload", valid[:len(valid)-1], 0, ErrTruncated},
		{"version zero", append([]byte{0}, valid[1:]...), 0, ErrVersionSkew},
		{"version future", append([]byte{2}, valid[1:]...), 0, ErrVersionSkew},
		{"unknown opcode", append([]byte{ProtocolVersion, 0x7E}, valid[2:]...), 0, ErrUnknownOpcode},
		{"oversized length", AppendFrame(nil, OpGet, make([]byte, 100)), 64, ErrFrameTooLarge},
		{
			"length overflowing input",
			func() []byte {
				b := append([]byte(nil), valid...)
				binary.BigEndian.PutUint32(b[4:8], 1<<20)
				return b
			}(),
			0,
			ErrTruncated,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := DecodeFrame(tc.in, tc.max)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame error = %v, want %v", err, tc.want)
			}
			// The stream reader must agree with the in-memory decoder,
			// except that zero bytes is a clean peer close there (io.EOF),
			// not a truncation.
			_, _, rerr := readFrame(bytes.NewReader(tc.in), tc.max)
			if !typedDecodeErr(rerr) && !(len(tc.in) == 0 && errors.Is(rerr, io.EOF)) {
				t.Fatalf("readFrame error = %v, want a typed decode error", rerr)
			}
		})
	}
}

// TestReadFrameAgreesWithDecodeFrame: a valid frame round-trips through
// both decoders identically.
func TestReadFrameAgreesWithDecodeFrame(t *testing.T) {
	payload := []byte("hello frame")
	frame := AppendFrame(nil, OpPut, payload)

	op, p, rest, err := DecodeFrame(frame, 0)
	if err != nil || op != OpPut || !bytes.Equal(p, payload) || len(rest) != 0 {
		t.Fatalf("DecodeFrame = %v %q rest=%d err=%v", op, p, len(rest), err)
	}
	op, p, err = readFrame(bytes.NewReader(frame), 0)
	if err != nil || op != OpPut || !bytes.Equal(p, payload) {
		t.Fatalf("readFrame = %v %q err=%v", op, p, err)
	}
}

// FuzzFrameRoundTrip drives both directions: arbitrary bytes through
// the decoders must never panic and must fail with a typed error, and
// any payload framed by AppendFrame must decode back intact. The
// message-level decoders ride along on the same corpus — they are what
// a hostile payload reaches next.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, OpGet, encodeKey(tier.Key{Hi: 7, Lo: 9})))
	f.Add(AppendFrame(nil, OpPing, nil))
	f.Add([]byte{ProtocolVersion, byte(OpErr), 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	if p, err := encodePut(3, tier.Key{Hi: 1, Lo: 2}, tier.Entry{
		Rep: "binser", Value: []byte("v"), TTL: time.Second,
		Stamps: []tier.Stamp{{Keyspace: "items", Epoch: 4}},
	}); err == nil {
		f.Add(AppendFrame(nil, OpPut, p))
	}
	if p, err := encodeTable(respMeta{bootID: 1, version: 2}, map[string]uint64{"items": 3}); err == nil {
		f.Add(AppendFrame(nil, OpTable, p))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: hostile bytes. No panics; errors are typed.
		op, payload, rest, err := DecodeFrame(data, 1<<16)
		if err != nil {
			if !typedDecodeErr(err) {
				t.Fatalf("DecodeFrame: untyped error %v", err)
			}
		} else {
			if len(payload)+len(rest)+headerSize != len(data) {
				t.Fatalf("DecodeFrame: consumed %d+%d of %d", len(payload), len(rest), len(data))
			}
			if !op.valid() {
				t.Fatalf("DecodeFrame accepted opcode %#x", byte(op))
			}
		}
		if _, _, err := readFrame(bytes.NewReader(data), 1<<16); err != nil &&
			!typedDecodeErr(err) && !errors.Is(err, io.EOF) {
			// io.EOF = clean close before any header byte; everything else
			// must be a typed decode error.
			t.Fatalf("readFrame: untyped error %v", err)
		}

		// The message decoders must be equally total.
		if _, _, _, err := decodePut(data); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("decodePut: untyped error %v", err)
		}
		if _, err := decodeKey(data); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("decodeKey: untyped error %v", err)
		}
		if _, _, err := decodeValue(data); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("decodeValue: untyped error %v", err)
		}
		if _, _, err := decodeTable(data); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("decodeTable: untyped error %v", err)
		}
		if _, err := decodeBump(data); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("decodeBump: untyped error %v", err)
		}

		// Direction 2: anything we frame comes back intact.
		frame := AppendFrame(nil, OpPut, data)
		op2, p2, rest2, err := DecodeFrame(frame, len(data)+1)
		if err != nil || op2 != OpPut || !bytes.Equal(p2, data) || len(rest2) != 0 {
			t.Fatalf("round trip: op=%v err=%v", op2, err)
		}
	})
}

// TestMessageRoundTrips covers each payload codec.
func TestMessageRoundTrips(t *testing.T) {
	key := tier.Key{Hi: 0xDEADBEEF, Lo: 0xFEEDFACE}

	t.Run("key", func(t *testing.T) {
		got, err := decodeKey(encodeKey(key))
		if err != nil || got != key {
			t.Fatalf("got %+v err=%v", got, err)
		}
	})

	t.Run("put", func(t *testing.T) {
		e := tier.Entry{
			Rep:   "compact-sax",
			Value: []byte("payload bytes"),
			TTL:   90 * time.Second,
			Stamps: []tier.Stamp{
				{Keyspace: "items", Epoch: 12},
				{Keyspace: "users/7", Epoch: 0},
			},
		}
		p, err := encodePut(42, key, e)
		if err != nil {
			t.Fatal(err)
		}
		bootID, k, got, err := decodePut(p)
		if err != nil {
			t.Fatal(err)
		}
		if bootID != 42 || k != key || !reflect.DeepEqual(got, e) {
			t.Fatalf("got boot=%d key=%+v entry=%+v", bootID, k, got)
		}
	})

	t.Run("put empty", func(t *testing.T) {
		p, err := encodePut(1, key, tier.Entry{Rep: "xml"})
		if err != nil {
			t.Fatal(err)
		}
		_, _, got, err := decodePut(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rep != "xml" || len(got.Stamps) != 0 || len(got.Value) != 0 {
			t.Fatalf("got %+v", got)
		}
	})

	t.Run("value", func(t *testing.T) {
		m := respMeta{bootID: 5, version: 77}
		e := tier.Entry{Rep: "binser", Value: []byte{1, 2, 3}, TTL: time.Minute}
		p, err := encodeValue(m, e)
		if err != nil {
			t.Fatal(err)
		}
		gm, ge, err := decodeValue(p)
		if err != nil || gm != m {
			t.Fatalf("meta %+v err=%v", gm, err)
		}
		if ge.Rep != e.Rep || !bytes.Equal(ge.Value, e.Value) || ge.TTL != e.TTL {
			t.Fatalf("entry %+v", ge)
		}
	})

	t.Run("meta only", func(t *testing.T) {
		m := respMeta{bootID: 9, version: 3}
		got, err := decodeMetaOnly(encodeMetaOnly(m))
		if err != nil || got != m {
			t.Fatalf("got %+v err=%v", got, err)
		}
		if _, err := decodeMetaOnly(append(encodeMetaOnly(m), 0)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("trailing byte accepted: %v", err)
		}
	})

	t.Run("bump", func(t *testing.T) {
		want := []string{"items", "users/1", ""}
		p, err := encodeBump(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeBump(p)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %v err=%v", got, err)
		}
	})

	t.Run("table", func(t *testing.T) {
		m := respMeta{bootID: 8, version: 21}
		want := map[string]uint64{"items": 4, "users/2": 9, "orders": 0}
		p, err := encodeTable(m, want)
		if err != nil {
			t.Fatal(err)
		}
		gm, got, err := decodeTable(p)
		if err != nil || gm != m || !reflect.DeepEqual(got, want) {
			t.Fatalf("meta=%+v table=%v err=%v", gm, got, err)
		}
	})

	t.Run("table refuses absurd count", func(t *testing.T) {
		p := appendMeta(nil, respMeta{})
		p = binary.BigEndian.AppendUint32(p, 1<<30)
		if _, _, err := decodeTable(p); !errors.Is(err, ErrMalformed) {
			t.Fatalf("absurd count: %v", err)
		}
	})

	t.Run("err", func(t *testing.T) {
		msg, err := decodeErr(encodeErr("boom"))
		if err != nil || msg != "boom" {
			t.Fatalf("got %q err=%v", msg, err)
		}
		long := strings.Repeat("x", 0x12345)
		msg, err = decodeErr(encodeErr(long))
		if err != nil || len(msg) != 0xFFFF {
			t.Fatalf("long message: len=%d err=%v", len(msg), err)
		}
	})

	t.Run("oversized strings refused at encode", func(t *testing.T) {
		if _, err := encodePut(1, key, tier.Entry{Rep: strings.Repeat("r", 300)}); !errors.Is(err, ErrMalformed) {
			t.Fatalf("300-byte rep name: %v", err)
		}
		if _, err := encodeBump([]string{strings.Repeat("k", 1<<17)}); !errors.Is(err, ErrMalformed) {
			t.Fatalf("128KiB keyspace: %v", err)
		}
	})
}
