package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/invalidate"
	"repro/internal/tier"
)

// The keyspaces the cluster tests bump and stamp; package-level so
// every spelling has one source of truth (epochgraph).
const (
	ksItems = invalidate.Keyspace("items")
	ksUsers = invalidate.Keyspace("users")
)

// fakeTier is a daemon-side store for protocol tests: a plain map plus
// the daemon invalidator for epoch operations. Stamp validation (the
// real daemon's core.Cache does it) is out of scope here — these tests
// exercise the wire, the routing, and the epoch propagation.
type fakeTier struct {
	inv *invalidate.Invalidator

	mu      sync.Mutex
	entries map[tier.Key]tier.Entry
	puts    int
}

func newFakeTier(inv *invalidate.Invalidator) *fakeTier {
	return &fakeTier{inv: inv, entries: make(map[tier.Key]tier.Entry)}
}

func (f *fakeTier) Name() string { return "fake" }

func (f *fakeTier) Get(_ context.Context, key tier.Key) (tier.Entry, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[key]
	return e, ok, nil
}

func (f *fakeTier) PutStamps(_ tier.Key, keyspaces []string) []tier.Stamp {
	out := make([]tier.Stamp, len(keyspaces))
	for i, ks := range keyspaces {
		out[i] = tier.Stamp{Keyspace: ks, Epoch: f.inv.Epoch(invalidate.Keyspace(ks))}
	}
	return out
}

func (f *fakeTier) Put(_ context.Context, key tier.Key, e tier.Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entries[key] = e
	f.puts++
	return nil
}

func (f *fakeTier) Delete(_ context.Context, key tier.Key) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.entries, key)
	return nil
}

func (f *fakeTier) BumpEpoch(_ context.Context, keyspaces []string) error {
	for _, ks := range keyspaces {
		f.inv.ApplyRemote(invalidate.Keyspace(ks))
	}
	return nil
}

func (f *fakeTier) TierStats() tier.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return tier.Stats{Entries: len(f.entries)}
}

func (f *fakeTier) putCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.puts
}

// startDaemon boots a Server over a loopback listener and returns it
// with its address. The returned stop closes it (idempotent).
func startDaemon(t *testing.T, ft *fakeTier, inv *invalidate.Invalidator) (*Server, string, func()) {
	t.Helper()
	srv, err := NewServer(ServerConfig{Tier: ft, Inv: inv})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			srv.Close()
			if err := <-done; err != nil {
				t.Errorf("Serve: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return srv, lis.Addr().String(), stop
}

func newClient(t *testing.T, addr string, inv *invalidate.Invalidator) *Remote {
	t.Helper()
	r, err := New(Config{Addrs: []string{addr}, Inv: inv, BaseContext: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestClientServerRoundTrip(t *testing.T) {
	dinv := invalidate.New(nil, nil)
	ft := newFakeTier(dinv)
	_, addr, _ := startDaemon(t, ft, dinv)
	r := newClient(t, addr, nil)
	ctx := context.Background()

	key := tier.KeyOf([]byte("query-1"))
	if _, ok, err := r.Get(ctx, key); err != nil || ok {
		t.Fatalf("cold get: ok=%v err=%v", ok, err)
	}
	// Stamps must come from PutStamps: they pin the boot ID the epochs
	// were mirrored under, and the daemon drops fills pinned to another
	// incarnation (or to boot 0, the never-contacted sentinel).
	want := tier.Entry{
		Rep:    "binser",
		Value:  []byte("serialized result"),
		TTL:    30 * time.Second,
		Stamps: r.PutStamps(key, []string{string(ksItems)}),
	}
	if err := r.Put(ctx, key, want); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok, err := r.Get(ctx, key)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if got.Rep != want.Rep || string(got.Value) != string(want.Value) || got.TTL != want.TTL {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if err := r.Delete(ctx, key); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok, _ := r.Get(ctx, key); ok {
		t.Fatal("entry survived delete")
	}
	st := r.TierStats()
	if st.Hits != 1 || st.Misses != 2 || st.Stores != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEpochPropagation is the heart of the design: process A bumps a
// keyspace locally; the hook pushes it to the daemon before the bump
// call returns; process B learns of it on its next contact — ANY
// contact — and its local invalidator advances, staling B's L1
// entries, without B ever being messaged directly.
func TestEpochPropagation(t *testing.T) {
	dinv := invalidate.New(nil, nil)
	ft := newFakeTier(dinv)
	_, addr, _ := startDaemon(t, ft, dinv)

	invA := invalidate.New(nil, nil)
	invB := invalidate.New(nil, nil)
	newClient(t, addr, invA) // A: hook registered by New
	rB := newClient(t, addr, invB)
	ctx := context.Background()

	// B stamps an entry under the current (zero) epoch, as its cache
	// fill path would.
	ks := ksItems
	stamp := invB.StampWith(ks, invB.Epoch(ks))
	if invalidate.Stale([]invalidate.Stamp{stamp}) {
		t.Fatal("fresh stamp already stale")
	}

	// A commits a write: its local bump fires the hook synchronously.
	invA.Bump(ks)
	if got := dinv.Epoch(ks); got != 1 {
		t.Fatalf("daemon epoch after A's bump = %d, want 1", got)
	}
	// A's own cell advanced locally (the local bump), and the table in
	// the bump response must NOT have advanced it twice.
	if got := invA.Epoch(ks); got != 1 {
		t.Fatalf("A's epoch after its own bump = %d, want 1 (no echo)", got)
	}

	// B has heard nothing yet.
	if invalidate.Stale([]invalidate.Stamp{stamp}) {
		t.Fatal("B stale before any daemon contact")
	}
	// Any contact at all propagates: a plain miss on an unrelated key.
	if _, ok, err := rB.Get(ctx, tier.KeyOf([]byte("unrelated"))); err != nil || ok {
		t.Fatalf("B get: ok=%v err=%v", ok, err)
	}
	if !invalidate.Stale([]invalidate.Stamp{stamp}) {
		t.Fatal("B's stamp still fresh after contacting the daemon")
	}
	if got := invB.Epoch(ks); got != 1 {
		t.Fatalf("B's epoch = %d, want 1", got)
	}
}

// TestPutStampsColdStart: before first contact the mirror is empty, so
// stamps are all-zero — the conservative choice (the daemon refuses
// fills for keyspaces it has bumped).
func TestPutStampsColdStart(t *testing.T) {
	r, err := New(Config{Addrs: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	stamps := r.PutStamps(tier.Key{Hi: 1}, []string{"items", "users"})
	for _, s := range stamps {
		if s.Epoch != 0 {
			t.Fatalf("cold stamp %+v, want epoch 0", s)
		}
	}
}

// TestMirrorFeedsPutStamps: after contact, PutStamps reflects the
// daemon's table.
func TestMirrorFeedsPutStamps(t *testing.T) {
	dinv := invalidate.New(nil, nil)
	ft := newFakeTier(dinv)
	_, addr, _ := startDaemon(t, ft, dinv)
	r := newClient(t, addr, invalidate.New(nil, nil))
	ctx := context.Background()

	dinv.ApplyRemote(ksItems)
	dinv.ApplyRemote(ksItems)
	dinv.ApplyRemote(ksUsers)
	key := tier.KeyOf([]byte("q"))
	if _, _, err := r.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	stamps := r.PutStamps(key, []string{"items", "users", "untouched"})
	want := map[string]uint64{"items": 2, "users": 1, "untouched": 0}
	for _, s := range stamps {
		if s.Epoch != want[s.Keyspace] {
			t.Fatalf("stamp %+v, want epoch %d", s, want[s.Keyspace])
		}
	}
}

// TestDaemonRestart: a new daemon incarnation on the same address must
// (a) invalidate the client's local epochs — bumps pushed to the old
// incarnation are lost — and (b) refuse fills stamped under the old
// boot.
func TestDaemonRestart(t *testing.T) {
	dinv1 := invalidate.New(nil, nil)
	ft1 := newFakeTier(dinv1)
	_, addr, stop1 := startDaemon(t, ft1, dinv1)

	cinv := invalidate.New(nil, nil)
	r := newClient(t, addr, cinv)
	ctx := context.Background()

	// Establish contact and a local cell.
	ks := ksItems
	stamp := cinv.StampWith(ks, cinv.Epoch(ks))
	key := tier.KeyOf([]byte("q"))
	if _, _, err := r.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	oldBoot := r.nodes[0].bootID
	if oldBoot == 0 {
		t.Fatal("no boot id after contact")
	}

	// Restart on the same port.
	stop1()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	dinv2 := invalidate.New(nil, nil)
	ft2 := newFakeTier(dinv2)
	srv2, err := NewServer(ServerConfig{Tier: ft2, Inv: dinv2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv2.Serve(context.Background(), lis) }()
	t.Cleanup(func() { srv2.Close(); <-done })

	// Next contact retries over a fresh conn, sees the new boot ID, and
	// nukes local epochs.
	if _, _, err := r.Get(ctx, key); err != nil {
		t.Fatalf("get across restart: %v", err)
	}
	if got := r.nodes[0].bootID; got == oldBoot || got != srv2.BootID() {
		t.Fatalf("boot id %d, want new %d (old %d)", got, srv2.BootID(), oldBoot)
	}
	if !invalidate.Stale([]invalidate.Stamp{stamp}) {
		t.Fatal("pre-restart stamp still fresh after restart detection")
	}

	// A put minted before the client refreshed its boot view is dropped.
	r.nodes[0].epochMu.Lock()
	r.nodes[0].bootID = oldBoot // simulate a racing fill from the old view
	r.nodes[0].epochMu.Unlock()
	if err := r.Put(ctx, key, tier.Entry{Rep: "xml", Value: []byte("old")}); err != nil {
		t.Fatalf("stale-boot put errored: %v", err)
	}
	if ft2.putCount() != 0 {
		t.Fatal("daemon stored a fill stamped under the previous boot")
	}
	// The OK meta carried the new boot, so the client resynced and the
	// retry sticks.
	if err := r.Put(ctx, key, tier.Entry{Rep: "xml", Value: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if ft2.putCount() != 1 {
		t.Fatal("fresh-boot put not stored")
	}
}

// TestPendingBumpFlush: bumps that cannot reach the daemon stay
// pending and flush before the next successful request, so a Get is
// never answered by a daemon missing this process's writes.
func TestPendingBumpFlush(t *testing.T) {
	dinv := invalidate.New(nil, nil)
	ft := newFakeTier(dinv)
	_, addr, stop := startDaemon(t, ft, dinv)

	cinv := invalidate.New(nil, nil)
	r := newClient(t, addr, cinv)
	ctx := context.Background()
	if _, _, err := r.Get(ctx, tier.KeyOf([]byte("warm"))); err != nil {
		t.Fatal(err)
	}

	// Kill the daemon; a local bump cannot be pushed.
	stop()
	r.Close() // drop pooled conns so the failure is immediate
	cinv.Bump(ksItems)
	r.nodes[0].pendingMu.Lock()
	_, pending := r.nodes[0].pending["items"]
	r.nodes[0].pendingMu.Unlock()
	if !pending {
		t.Fatal("unreachable bump not pending")
	}

	// Daemon comes back (same address, new incarnation).
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	dinv2 := invalidate.New(nil, nil)
	srv2, err := NewServer(ServerConfig{Tier: newFakeTier(dinv2), Inv: dinv2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv2.Serve(context.Background(), lis) }()
	t.Cleanup(func() { srv2.Close(); <-done })

	// The next Get must flush the pending bump first.
	if _, _, err := r.Get(ctx, tier.KeyOf([]byte("after"))); err != nil {
		t.Fatalf("get after daemon return: %v", err)
	}
	if got := dinv2.Epoch(ksItems); got != 1 {
		t.Fatalf("daemon epoch after flush = %d, want 1", got)
	}
	r.nodes[0].pendingMu.Lock()
	left := len(r.nodes[0].pending)
	r.nodes[0].pendingMu.Unlock()
	if left != 0 {
		t.Fatalf("%d bumps still pending after flush", left)
	}
}

// TestRingDistribution: keys spread across addresses and routing is
// deterministic.
func TestRingDistribution(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	rg := newRing(addrs, 0)
	counts := make([]int, len(addrs))
	for i := 0; i < 3000; i++ {
		k := tier.KeyOf([]byte{byte(i), byte(i >> 8), 'x'})
		n := rg.node(k)
		if n != rg.node(k) {
			t.Fatal("routing not deterministic")
		}
		counts[n]++
	}
	for i, c := range counts {
		if c < 300 {
			t.Fatalf("address %d owns only %d/3000 keys: %v", i, c, counts)
		}
	}
}

// TestServerRefusesGarbage: a client speaking garbage gets an OpErr
// frame and the connection is dropped; the daemon survives.
func TestServerRefusesGarbage(t *testing.T) {
	dinv := invalidate.New(nil, nil)
	ft := newFakeTier(dinv)
	_, addr, _ := startDaemon(t, ft, dinv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte{99, 99, 99, 99, 99, 99, 99, 99}); err != nil {
		t.Fatal(err)
	}
	op, payload, err := readFrame(conn, 0)
	if err != nil {
		t.Fatalf("no error frame: %v", err)
	}
	if op != OpErr {
		t.Fatalf("opcode %#x, want OpErr", byte(op))
	}
	if msg, err := decodeErr(payload); err != nil || msg == "" {
		t.Fatalf("error message %q, err=%v", msg, err)
	}

	// The daemon still serves new connections.
	r := newClient(t, addr, nil)
	if _, ok, err := r.Get(context.Background(), tier.Key{Hi: 1}); err != nil || ok {
		t.Fatalf("daemon dead after garbage: ok=%v err=%v", ok, err)
	}
}
