// Package cluster is the shared L2 cache tier: a compact binary
// protocol (this file), consistent-hash routing across daemon
// addresses (ring.go), the client side implementing tier.Tier
// (client.go), and the daemon side serving any tier.Tier over a
// listener (server.go). cmd/wscached is the daemon binary; DESIGN.md
// §5h documents the wire format and the epoch-propagation rules.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is the wire protocol version carried in every frame
// header. A peer speaking a different version is refused outright
// (ErrVersionSkew): the protocol has no negotiation, matching versions
// are a deployment invariant like the shared key-generation strategy.
const ProtocolVersion = 1

// DefaultMaxPayload bounds a frame's payload when the configuration
// does not say otherwise. Response values are cache entries, which the
// cache budgets far below this; anything larger is a corrupt or
// hostile frame.
const DefaultMaxPayload = 4 << 20

// headerSize is the fixed frame header: version (1), opcode (1),
// reserved (2, zero), payload length (4, big-endian).
const headerSize = 8

// Opcode identifies a frame's meaning. Requests have the high bit
// clear, responses set; OpErr is the universal failure response.
type Opcode byte

// Request opcodes.
const (
	OpGet  Opcode = 0x01 // payload: key hi, lo
	OpPut  Opcode = 0x02 // payload: key, ttl, rep, stamps, value
	OpDel  Opcode = 0x03 // payload: key hi, lo
	OpBump Opcode = 0x04 // payload: keyspace list
	OpSync Opcode = 0x05 // payload: empty
	OpPing Opcode = 0x06 // payload: empty
)

// Response opcodes. Every response payload begins with the daemon's
// boot ID and epoch version (respMeta), the piggyback that drives
// cross-process invalidation: a client seeing a version ahead of its
// mirror syncs the epoch table, one seeing a changed boot ID knows the
// daemon restarted and lost state.
const (
	OpValue Opcode = 0x81 // OpGet hit: meta, ttl, rep, value
	OpMiss  Opcode = 0x82 // OpGet miss: meta
	OpOK    Opcode = 0x83 // OpPut/OpDel/OpPing: meta
	OpTable Opcode = 0x84 // OpSync/OpBump: meta, epoch table
	OpErr   Opcode = 0xFF // any request: error message
)

// valid reports whether op is a defined opcode.
func (o Opcode) valid() bool {
	switch o {
	case OpGet, OpPut, OpDel, OpBump, OpSync, OpPing,
		OpValue, OpMiss, OpOK, OpTable, OpErr:
		return true
	}
	return false
}

// Typed decode errors. Every malformed input maps onto one of these
// (possibly wrapped with position detail); the decoder never panics.
var (
	// ErrTruncated: the input ended inside a header or declared payload.
	ErrTruncated = errors.New("cluster: truncated frame")
	// ErrFrameTooLarge: the header declares a payload over the bound.
	ErrFrameTooLarge = errors.New("cluster: frame payload exceeds limit")
	// ErrVersionSkew: the peer speaks another protocol version.
	ErrVersionSkew = errors.New("cluster: protocol version mismatch")
	// ErrUnknownOpcode: the header names no defined opcode.
	ErrUnknownOpcode = errors.New("cluster: unknown opcode")
	// ErrMalformed: a payload's internal structure is inconsistent.
	ErrMalformed = errors.New("cluster: malformed payload")
)

// AppendFrame appends a complete frame (header + payload) to dst.
func AppendFrame(dst []byte, op Opcode, payload []byte) []byte {
	dst = append(dst, ProtocolVersion, byte(op), 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the front of b, returning the
// opcode, its payload (aliasing b), and the remaining bytes. maxPayload
// ≤ 0 means DefaultMaxPayload.
func DecodeFrame(b []byte, maxPayload int) (op Opcode, payload, rest []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(b) < headerSize {
		return 0, nil, b, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if b[0] != ProtocolVersion {
		return 0, nil, b, fmt.Errorf("%w: got %d, want %d", ErrVersionSkew, b[0], ProtocolVersion)
	}
	op = Opcode(b[1])
	if !op.valid() {
		return 0, nil, b, fmt.Errorf("%w: %#x", ErrUnknownOpcode, byte(op))
	}
	n := int(binary.BigEndian.Uint32(b[4:8]))
	if n > maxPayload {
		return 0, nil, b, fmt.Errorf("%w: %d bytes declared, limit %d", ErrFrameTooLarge, n, maxPayload)
	}
	if len(b) < headerSize+n {
		return 0, nil, b, fmt.Errorf("%w: payload declares %d bytes, %d available", ErrTruncated, n, len(b)-headerSize)
	}
	return op, b[headerSize : headerSize+n], b[headerSize+n:], nil
}

// writeFrame writes one frame to w. scratch, when non-nil, supplies a
// reusable buffer (per-connection, avoiding a fresh allocation per
// frame).
func writeFrame(w io.Writer, scratch *[]byte, op Opcode, payload []byte) error {
	var buf []byte
	if scratch != nil {
		buf = (*scratch)[:0]
	}
	buf = AppendFrame(buf, op, payload)
	if scratch != nil {
		*scratch = buf[:0]
	}
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame from r. The returned payload is freshly
// allocated; the caller owns it. Header validation mirrors DecodeFrame:
// a declared length over maxPayload is refused before any payload read,
// so a corrupt peer cannot make the reader allocate unboundedly.
func readFrame(r io.Reader, maxPayload int) (Opcode, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var h [headerSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
		}
		return 0, nil, err
	}
	if h[0] != ProtocolVersion {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrVersionSkew, h[0], ProtocolVersion)
	}
	op := Opcode(h[1])
	if !op.valid() {
		return 0, nil, fmt.Errorf("%w: %#x", ErrUnknownOpcode, h[1])
	}
	n := int(binary.BigEndian.Uint32(h[4:8]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes declared, limit %d", ErrFrameTooLarge, n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: payload: short read", ErrTruncated)
		}
		return 0, nil, err
	}
	return op, payload, nil
}
