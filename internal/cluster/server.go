package cluster

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/invalidate"
	"repro/internal/obs"
	"repro/internal/tier"
)

// ServerConfig configures a cluster daemon.
type ServerConfig struct {
	// Tier stores and serves the entries — any tier.Tier; wscached uses
	// a core.Cache. Required.
	Tier tier.Tier
	// Inv is the daemon's epoch table, stamped into every response and
	// served by OpSync/OpBump. It must be the same Invalidator the Tier
	// checks stamps against (for core.Cache, the one in its Config) or
	// epoch bumps will not invalidate stored entries. Required.
	Inv *invalidate.Invalidator
	// MaxPayload bounds request frames; ≤ 0 means DefaultMaxPayload.
	MaxPayload int
	// Obs receives daemon counters ("clusterd.*"). Optional.
	Obs *obs.Registry
}

// Server answers the cluster protocol over a listener. One goroutine
// per connection, one request in flight per connection (the client
// pipelines by pooling connections, not frames).
type Server struct {
	cfg    ServerConfig
	bootID uint64

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests   *obs.Counter
	errors     *obs.Counter
	staleBoots *obs.Counter
}

// NewServer validates cfg and mints the daemon's boot ID — a random
// 64-bit value clients use to detect a restart (and with it the loss
// of every epoch bump this incarnation had absorbed).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Tier == nil {
		return nil, errors.New("cluster: ServerConfig.Tier is required")
	}
	if cfg.Inv == nil {
		return nil, errors.New("cluster: ServerConfig.Inv is required")
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, fmt.Errorf("cluster: boot id: %w", err)
	}
	bootID := binary.BigEndian.Uint64(b[:])
	if bootID == 0 {
		bootID = 1 // 0 is the client's "never contacted" sentinel
	}
	reg := obs.Or(cfg.Obs)
	return &Server{
		cfg:        cfg,
		bootID:     bootID,
		conns:      make(map[net.Conn]struct{}),
		requests:   reg.Counter("clusterd.requests"),
		errors:     reg.Counter("clusterd.errors"),
		staleBoots: reg.Counter("clusterd.stale_boot_puts"),
	}, nil
}

// BootID returns this incarnation's identifier.
func (s *Server) BootID() uint64 { return s.bootID }

// Serve accepts connections on lis until Close. ctx is the root for
// every tier call a request dispatches; the binary owns it. Serve
// blocks; the error is nil after a clean Close.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("cluster: server closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(ctx, conn)
	}
}

// ListenAndServe listens on addr (TCP) and serves.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, lis)
}

// Close stops the listener, closes every live connection, and waits
// for their handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// serveConn runs the frame loop for one connection: read a request,
// dispatch, write the response. A decode failure answers OpErr and
// then drops the connection — after a malformed frame the stream
// offset can no longer be trusted.
func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	var scratch []byte
	for {
		op, payload, err := readFrame(conn, s.cfg.MaxPayload)
		if err != nil {
			if isProtocolErr(err) {
				s.errors.Add(1)
				writeFrame(conn, &scratch, OpErr, encodeErr(err.Error()))
			}
			return
		}
		s.requests.Add(1)
		respOp, resp := s.dispatch(ctx, op, payload)
		if respOp == OpErr {
			s.errors.Add(1)
		}
		if err := writeFrame(conn, &scratch, respOp, resp); err != nil {
			return
		}
	}
}

func isProtocolErr(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrVersionSkew) || errors.Is(err, ErrUnknownOpcode) ||
		errors.Is(err, ErrMalformed)
}

// meta captures the epoch view stamped on a response. Read before the
// operation's effect is computed it could under-report; the dispatch
// paths therefore read it after the tier call.
func (s *Server) meta() respMeta {
	return respMeta{bootID: s.bootID, version: s.cfg.Inv.Version()}
}

// dispatch executes one request and returns its response frame.
func (s *Server) dispatch(ctx context.Context, op Opcode, payload []byte) (Opcode, []byte) {
	switch op {
	case OpPing:
		return OpOK, encodeMetaOnly(s.meta())

	case OpGet:
		key, err := decodeKey(payload)
		if err != nil {
			return OpErr, encodeErr(err.Error())
		}
		e, ok, err := s.cfg.Tier.Get(ctx, key)
		if err != nil {
			return OpErr, encodeErr(err.Error())
		}
		if !ok {
			return OpMiss, encodeMetaOnly(s.meta())
		}
		resp, err := encodeValue(s.meta(), e)
		if err != nil {
			return OpErr, encodeErr(err.Error())
		}
		return OpValue, resp

	case OpPut:
		bootID, key, e, err := decodePut(payload)
		if err != nil {
			return OpErr, encodeErr(err.Error())
		}
		if bootID != s.bootID {
			// The sender's stamps belong to another incarnation; drop the
			// fill. The OK response's meta carries the current boot ID, so
			// the sender resyncs and its next fill sticks.
			s.staleBoots.Add(1)
			return OpOK, encodeMetaOnly(s.meta())
		}
		if err := s.cfg.Tier.Put(ctx, key, e); err != nil {
			return OpErr, encodeErr(err.Error())
		}
		return OpOK, encodeMetaOnly(s.meta())

	case OpDel:
		key, err := decodeKey(payload)
		if err != nil {
			return OpErr, encodeErr(err.Error())
		}
		if err := s.cfg.Tier.Delete(ctx, key); err != nil {
			return OpErr, encodeErr(err.Error())
		}
		return OpOK, encodeMetaOnly(s.meta())

	case OpBump:
		keyspaces, err := decodeBump(payload)
		if err != nil {
			return OpErr, encodeErr(err.Error())
		}
		if err := s.cfg.Tier.BumpEpoch(ctx, keyspaces); err != nil {
			return OpErr, encodeErr(err.Error())
		}
		return s.tableResp()

	case OpSync:
		return s.tableResp()
	}
	// readFrame validated the opcode, so only a response opcode sent as
	// a request lands here.
	return OpErr, encodeErr(fmt.Sprintf("cluster: opcode %#x is not a request", byte(op)))
}

// tableResp snapshots the epoch table. Version is read before the
// table: if a bump lands between the two reads the table is the newer
// state under an older version number, so the client will sync again —
// over-syncing is safe, a table newer than its version never hides a
// bump.
func (s *Server) tableResp() (Opcode, []byte) {
	m := s.meta()
	resp, err := encodeTable(m, s.cfg.Inv.Snapshot())
	if err != nil {
		return OpErr, encodeErr(err.Error())
	}
	return OpTable, resp
}
