package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"

	"repro/internal/tier"
)

// defaultReplicas is how many virtual nodes each daemon address gets on
// the hash ring. More points smooth the key distribution between
// unevenly hashed addresses; 64 keeps the per-address imbalance within
// a few percent for small fleets without making the ring large.
const defaultReplicas = 64

// ring maps tier keys onto daemon indices by consistent hashing:
// each address owns the arc below its virtual points, so adding or
// removing one address remaps only the keys on its own arcs rather
// than reshuffling the whole key space (what modular hashing would
// do, turning every topology change into a fleet-wide cold start).
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int
}

// newRing builds the ring over n addresses with the given number of
// virtual points each (≤ 0 means defaultReplicas).
func newRing(addrs []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, len(addrs)*replicas)}
	for i, addr := range addrs {
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			h.Write([]byte(addr))
			h.Write([]byte("#"))
			h.Write([]byte(strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h.Sum64(), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// node returns the index of the address owning key: the first virtual
// point at or above the key's position, wrapping at the top.
func (r *ring) node(key tier.Key) int {
	if len(r.points) == 0 {
		return 0
	}
	// Both key words are already uniform (FNV-1a 128); fold them so the
	// ring position differs from anything either word is used for alone.
	pos := key.Hi ^ (key.Lo*0x9e3779b97f4a7c15 + 1)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}
