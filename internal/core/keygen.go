package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/soap"
)

// KeyGenerator derives the cache key for an invocation. Per Section
// 4.1, the complete key covers the endpoint URL, the operation name,
// and all parameter names and values.
type KeyGenerator interface {
	// Name identifies the strategy in reports (Table 6 rows).
	Name() string
	// Key returns the cache key, or an error when the strategy's
	// limitation (Table 2) excludes these parameters.
	Key(ictx *client.Context) (string, error)
}

// XMLMessageKey generates the key by serializing the request to its
// XML message (Section 4.1.1). No limitation on parameter types, but
// serialization is paid on every lookup — including hits.
type XMLMessageKey struct {
	codec *soap.Codec
}

var _ KeyGenerator = (*XMLMessageKey)(nil)

// NewXMLMessageKey returns the XML-message key strategy.
func NewXMLMessageKey(codec *soap.Codec) *XMLMessageKey {
	return &XMLMessageKey{codec: codec}
}

// Name implements KeyGenerator.
func (k *XMLMessageKey) Name() string { return "XML message" }

// Key implements KeyGenerator.
func (k *XMLMessageKey) Key(ictx *client.Context) (string, error) {
	doc, err := k.codec.EncodeRequest(ictx.Namespace, ictx.Operation, ictx.Params)
	if err != nil {
		return "", fmt.Errorf("core: xml key: %w", err)
	}
	// The endpoint is not part of the message body; prepend it so two
	// services with identical operations do not collide.
	return ictx.Endpoint + "\x00" + string(doc), nil
}

// GobKey generates the key from the gob-serialized form of the
// parameter values (Section 4.1.2-A, the Java-serialization analog).
// Limitation: every parameter must be gob-encodable.
type GobKey struct{}

var _ KeyGenerator = GobKey{}

// NewGobKey returns the serialization key strategy.
func NewGobKey() GobKey { return GobKey{} }

// Name implements KeyGenerator.
func (GobKey) Name() string { return "Gob serialization" }

// Key implements KeyGenerator.
func (GobKey) Key(ictx *client.Context) (string, error) {
	var buf bytes.Buffer
	buf.WriteString(ictx.Endpoint)
	buf.WriteByte(0)
	buf.WriteString(ictx.Operation)
	buf.WriteByte(0)
	enc := gob.NewEncoder(&buf)
	for _, p := range ictx.Params {
		if err := registerGobValue(p.Value); err != nil {
			return "", fmt.Errorf("core: gob key: param %s: %w", p.Name, err)
		}
		if err := enc.Encode(p.Name); err != nil {
			return "", fmt.Errorf("core: gob key: %w", err)
		}
		if err := encodeGobAny(enc, p.Value); err != nil {
			return "", fmt.Errorf("core: gob key: param %s: %w", p.Name, err)
		}
	}
	return buf.String(), nil
}

// StringKey generates the key from the string forms of the parameter
// values (Section 4.1.2-B, the toString analog). Limitation: every
// parameter must be a primitive or implement fmt.Stringer; types whose
// only string form would be their address are rejected, exactly as the
// paper rejects Object.toString.
type StringKey struct{}

var _ KeyGenerator = StringKey{}

// NewStringKey returns the string key strategy.
func NewStringKey() StringKey { return StringKey{} }

// Name implements KeyGenerator.
func (StringKey) Name() string { return "String concatenation" }

// Key implements KeyGenerator.
func (StringKey) Key(ictx *client.Context) (string, error) {
	var b strings.Builder
	b.Grow(len(ictx.Endpoint) + len(ictx.Operation) + 32*len(ictx.Params))
	b.WriteString(ictx.Endpoint)
	b.WriteByte(0)
	b.WriteString(ictx.Operation)
	for _, p := range ictx.Params {
		b.WriteByte(0)
		b.WriteString(p.Name)
		b.WriteByte('=')
		if err := appendString(&b, p.Value); err != nil {
			return "", fmt.Errorf("core: string key: param %s: %w", p.Name, err)
		}
	}
	return b.String(), nil
}

// appendString renders one parameter value.
func appendString(b *strings.Builder, v any) error {
	switch x := v.(type) {
	case nil:
		b.WriteString("<nil>")
		return nil
	case string:
		b.WriteString(x)
		return nil
	case bool:
		b.WriteString(strconv.FormatBool(x))
		return nil
	case int:
		b.WriteString(strconv.Itoa(x))
		return nil
	case int8:
		b.WriteString(strconv.FormatInt(int64(x), 10))
		return nil
	case int16:
		b.WriteString(strconv.FormatInt(int64(x), 10))
		return nil
	case int32:
		b.WriteString(strconv.FormatInt(int64(x), 10))
		return nil
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
		return nil
	case uint:
		b.WriteString(strconv.FormatUint(uint64(x), 10))
		return nil
	case uint16:
		b.WriteString(strconv.FormatUint(uint64(x), 10))
		return nil
	case uint32:
		b.WriteString(strconv.FormatUint(uint64(x), 10))
		return nil
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
		return nil
	case float32:
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
		return nil
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		return nil
	case []byte:
		// Byte-array parameters are rare for cacheable retrievals but
		// cheap to render faithfully.
		b.Write(x)
		return nil
	case fmt.Stringer:
		b.WriteString(x.String())
		return nil
	default:
		return fmt.Errorf("type %T has no value-based string form", v)
	}
}

// encodeGobAny encodes a dynamically typed value. Gob cannot encode a
// bare interface, so the concrete value is encoded along with its type
// name (registered by registerGobValue).
func encodeGobAny(enc *gob.Encoder, v any) error {
	if v == nil {
		return enc.Encode("")
	}
	if err := enc.Encode(reflect.TypeOf(v).String()); err != nil {
		return err
	}
	return enc.EncodeValue(reflect.ValueOf(v))
}
