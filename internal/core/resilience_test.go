package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/soap"
	"repro/internal/transport"
)

// clockFixture is a mutex-guarded fake clock shared by cache and test.
type clockFixture struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clockFixture { return &clockFixture{now: time.Unix(1000, 0)} }

func (c *clockFixture) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clockFixture) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// failingNext returns an Invoker that always fails with err.
func failingNext(err error) client.Invoker {
	return func(*client.Context) error { return err }
}

func TestStaleOnErrorServesExpiredEntry(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.StaleIfError = 5 * time.Minute
		cfg.Clock = clock.Now
	})
	next, calls := countingNext(f, t, func() any { return &item{Name: "cached", Score: 7} })

	// Fill, then expire past the TTL but stay inside the grace window.
	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), next); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Minute)

	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	boom := errors.New("backend unreachable")
	if err := c.HandleInvoke(ictx, failingNext(boom)); err != nil {
		t.Fatalf("HandleInvoke = %v, want degraded success", err)
	}
	if !ictx.CacheHit || !ictx.ServedStale {
		t.Errorf("CacheHit=%v ServedStale=%v, want both true", ictx.CacheHit, ictx.ServedStale)
	}
	if got := ictx.Result.(*item); got.Name != "cached" {
		t.Errorf("result = %+v", got)
	}
	if s := c.Stats(); s.StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1", s.StaleServes)
	}
	if calls.Load() != 1 {
		t.Errorf("backend calls = %d", calls.Load())
	}

	// Once the backend answers again, the entry is refilled and served
	// fresh, not stale.
	ictx = f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if ictx.ServedStale {
		t.Error("recovered invocation flagged stale")
	}
}

func TestStaleOnErrorWindowExpires(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.StaleIfError = 2 * time.Minute
		cfg.Clock = clock.Now
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "cached"} })
	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), next); err != nil {
		t.Fatal(err)
	}

	// Past TTL + grace: the error must surface.
	clock.Advance(10 * time.Minute)
	boom := errors.New("backend unreachable")
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, failingNext(boom)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if ictx.ServedStale {
		t.Error("ServedStale set outside the grace window")
	}
}

func TestStaleOnErrorDoesNotMaskFaults(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.StaleIfError = time.Hour
		cfg.Clock = clock.Now
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "cached"} })
	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), next); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)

	// A SOAP fault is an application answer: it must propagate even
	// though a stale entry is available.
	fault := &soap.Fault{Code: "soapenv:Server", String: "no such symbol"}
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	err := c.HandleInvoke(ictx, failingNext(fault))
	var got *soap.Fault
	if !errors.As(err, &got) {
		t.Fatalf("err = %v, want fault", err)
	}
	if ictx.ServedStale {
		t.Error("fault masked by stale entry")
	}
	if s := c.Stats(); s.StaleServes != 0 {
		t.Errorf("StaleServes = %d", s.StaleServes)
	}
}

func TestStaleOnErrorDisabledByDefault(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.Clock = clock.Now
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "cached"} })
	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), next); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	boom := errors.New("down")
	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), failingNext(boom)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v (StaleIfError off)", err, boom)
	}
}

func TestErrorPropagationThroughCacheHandler(t *testing.T) {
	// Fault envelopes and HTTP status errors must pass through the
	// cache handler untouched, and must not create cache entries.
	f := newFixture(t)
	c := newCache(t, f, nil)

	fault := &soap.Fault{Code: "soapenv:Server", String: "boom"}
	err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "a"}), failingNext(fault))
	var gotFault *soap.Fault
	if !errors.As(err, &gotFault) || gotFault.String != "boom" {
		t.Fatalf("err = %v, want fault", err)
	}

	statusErr := &transport.StatusError{Status: 503, Body: "unavailable"}
	err = c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "b"}), failingNext(statusErr))
	var gotStatus *transport.StatusError
	if !errors.As(err, &gotStatus) || gotStatus.Status != 503 {
		t.Fatalf("err = %v, want StatusError 503", err)
	}

	if c.Len() != 0 {
		t.Errorf("failed invocations created %d cache entries", c.Len())
	}
	if s := c.Stats(); s.Stores != 0 {
		t.Errorf("Stores = %d", s.Stores)
	}
}

func TestCoalesceConcurrentMissesSingleBackendCall(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) {
		cfg.Coalesce = true
		cfg.DefaultTTL = time.Hour
	})

	const users = 25 // the paper's Figure 4 concurrency level
	release := make(chan struct{})
	inner, calls := countingNext(f, t, func() any { return &item{Name: "one", Score: 1} })
	next := func(ictx *client.Context) error {
		<-release // hold the leader until every follower is queued
		return inner(ictx)
	}

	results := make([]*client.Context, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "hot"})
			errs[i] = c.HandleInvoke(ictx, next)
			results[i] = ictx
		}(i)
	}
	// Give every goroutine time to miss and join the flight, then let
	// the single leader proceed.
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("backend calls = %d, want exactly 1", n)
	}
	for i := 0; i < users; i++ {
		if errs[i] != nil {
			t.Fatalf("user %d: %v", i, errs[i])
		}
		if got := results[i].Result.(*item); got.Name != "one" {
			t.Errorf("user %d result = %+v", i, got)
		}
	}
	s := c.Stats()
	if s.Coalesced != users-1 {
		t.Errorf("Coalesced = %d, want %d", s.Coalesced, users-1)
	}
	if s.Stores != 1 {
		t.Errorf("Stores = %d, want 1", s.Stores)
	}
}

func TestCoalesceSharesLeaderError(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) { cfg.Coalesce = true })

	const users = 8
	release := make(chan struct{})
	boom := errors.New("backend unreachable")
	var calls int
	var callMu sync.Mutex
	next := func(*client.Context) error {
		callMu.Lock()
		calls++
		callMu.Unlock()
		<-release
		return boom
	}

	errs := make([]error, users)
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "hot"}), next)
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	callMu.Lock()
	defer callMu.Unlock()
	if calls != 1 {
		t.Fatalf("backend calls = %d, want 1", calls)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("user %d err = %v, want shared leader error", i, err)
		}
	}
}

func TestCoalesceFollowerHonorsContextCancellation(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) { cfg.Coalesce = true })

	release := make(chan struct{})
	defer close(release)
	inner, _ := countingNext(f, t, func() any { return &item{Name: "slow"} })
	next := func(ictx *client.Context) error {
		<-release
		return inner(ictx)
	}

	leaderRunning := make(chan struct{})
	go func() {
		close(leaderRunning)
		_ = c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "hot"}), next)
	}()
	<-leaderRunning
	time.Sleep(50 * time.Millisecond) // let the leader register its flight

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "hot"})
	ictx.Ctx = ctx
	err := c.HandleInvoke(ictx, next)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded while waiting on flight", err)
	}
}

func TestCoalescedFollowersServeStaleOnLeaderError(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c := newCache(t, f, func(cfg *Config) {
		cfg.Coalesce = true
		cfg.DefaultTTL = time.Minute
		cfg.StaleIfError = time.Hour
		cfg.Clock = clock.Now
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "cached"} })
	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), next); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)

	const users = 5
	release := make(chan struct{})
	boom := errors.New("down")
	failing := func(*client.Context) error {
		<-release
		return boom
	}
	results := make([]*client.Context, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
			errs[i] = c.HandleInvoke(ictx, failing)
			results[i] = ictx
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < users; i++ {
		if errs[i] != nil {
			t.Errorf("user %d err = %v, want degraded success", i, errs[i])
			continue
		}
		if !results[i].ServedStale {
			t.Errorf("user %d not flagged stale", i)
		}
		if got := results[i].Result.(*item); got.Name != "cached" {
			t.Errorf("user %d result = %+v", i, got)
		}
	}
}

func TestSweepRespectsStaleWindow(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.StaleIfError = 5 * time.Minute
		cfg.Clock = clock.Now
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "x"} })
	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "a"}), next); err != nil {
		t.Fatal(err)
	}

	// Expired but inside the grace window: the sweeper must keep it —
	// it is the cache's only degraded-mode answer.
	clock.Advance(3 * time.Minute)
	if n := c.SweepExpired(); n != 0 {
		t.Errorf("sweep removed %d entries inside the stale window", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}

	// Past the window it is reclaimable.
	clock.Advance(10 * time.Minute)
	if n := c.SweepExpired(); n != 1 {
		t.Errorf("sweep removed %d, want 1", n)
	}
}

func TestSweeperContextCancellation(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil)
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSweeperContext(ctx, c, time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() {
		s.Shutdown() // must return promptly after cancellation, not hang
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown hung after context cancellation")
	}
	// Shutdown is idempotent.
	s.Shutdown()
}
