package core

import (
	"sort"
	"time"

	"repro/internal/rep"
)

// OperationPolicy is the per-operation cache configuration an
// administrator or deployer supplies (Section 3.2): whether responses
// are cacheable, for how long, with which value representation, and
// whether the client application has asserted read-only use of the
// results (enabling pass-by-reference for mutable types, Section
// 4.2.4).
type OperationPolicy struct {
	// Cacheable permits caching responses of this operation. Retrieval
	// operations are typically cacheable; update operations are not.
	Cacheable bool
	// TTL bounds entry freshness; 0 inherits the cache default.
	TTL time.Duration
	// ReadOnly asserts the client never mutates results of this
	// operation, allowing RefStore for mutable types.
	ReadOnly bool
	// Store overrides the cache's default value representation.
	Store rep.ValueStore
}

// Policy maps operations to their cache configuration. The zero value
// caches everything with the cache defaults (matching the simplest
// deployment); supply Default and Operations to restrict.
type Policy struct {
	// Default applies to operations absent from Operations. The zero
	// Policy treats every operation as cacheable; set DefaultExplicit
	// to make the zero-valued Default meaningful.
	Default OperationPolicy
	// DefaultExplicit marks Default as intentional. Without it a zero
	// Policy defaults to cache-everything.
	DefaultExplicit bool
	// Operations holds per-operation overrides.
	Operations map[string]OperationPolicy
}

// For returns the policy for an operation.
func (p Policy) For(operation string) OperationPolicy {
	if op, ok := p.Operations[operation]; ok {
		return op
	}
	if p.DefaultExplicit {
		return p.Default
	}
	return OperationPolicy{Cacheable: true}
}

// CacheableOps returns the sorted names of operations explicitly marked
// cacheable, for diagnostics.
func (p Policy) CacheableOps() []string {
	var out []string
	for name, op := range p.Operations {
		if op.Cacheable {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// UncacheableOps returns the sorted names of operations explicitly
// marked uncacheable.
func (p Policy) UncacheableOps() []string {
	var out []string
	for name, op := range p.Operations {
		if !op.Cacheable {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// NewPolicy builds a Policy that caches exactly the listed operations
// with the given TTL and treats everything else as uncacheable — the
// configuration shape the paper suggests for Google/Amazon Web services
// (Table 1).
func NewPolicy(ttl time.Duration, cacheable ...string) Policy {
	ops := make(map[string]OperationPolicy, len(cacheable))
	for _, name := range cacheable {
		ops[name] = OperationPolicy{Cacheable: true, TTL: ttl}
	}
	return Policy{
		Default:         OperationPolicy{Cacheable: false},
		DefaultExplicit: true,
		Operations:      ops,
	}
}
