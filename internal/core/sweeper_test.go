package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/soap"
)

func TestSweepExpired(t *testing.T) {
	f := newFixture(t)
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.Clock = clock
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "x"} })

	for _, q := range []string{"a", "b", "c"} {
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: q})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}

	// Nothing expired yet.
	if n := c.SweepExpired(); n != 0 {
		t.Errorf("sweep removed %d fresh entries", n)
	}

	advance(30 * time.Second)
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "d"})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}

	// a, b, c are now expired; d is fresh.
	advance(40 * time.Second)
	if n := c.SweepExpired(); n != 3 {
		t.Errorf("sweep removed %d, want 3", n)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	if c.Stats().Bytes <= 0 {
		t.Error("remaining entry has no accounted bytes")
	}
	// Bytes accounting went down to exactly the remaining entry.
	before := c.Stats().Bytes
	c.Clear()
	if c.Stats().Bytes != 0 {
		t.Errorf("bytes after clear = %d (was %d)", c.Stats().Bytes, before)
	}
}

func TestSweeperLifecycle(t *testing.T) {
	f := newFixture(t)
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Millisecond
		cfg.Clock = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}
	})
	next, _ := countingNext(f, t, func() any { return &item{} })
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}

	s := NewSweeperContext(context.Background(), c, 5*time.Millisecond)
	mu.Lock()
	now = now.Add(time.Hour) // everything expired
	mu.Unlock()

	deadline := time.Now().Add(2 * time.Second)
	for c.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Len() != 0 {
		t.Error("sweeper did not reclaim expired entry")
	}
	s.Shutdown() // must not hang or panic
}

func TestSweeperDefaultInterval(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil)
	s := NewSweeperContext(context.Background(), c, 0)
	s.Shutdown()
}
