package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/soap"
)

// TestCacheRecordsIntoRegistry drives a miss and a hit through an
// instrumented cache and checks what lands in the shared registry:
// per-operation and per-representation counters, stage histograms, and
// tracer callbacks.
func TestCacheRecordsIntoRegistry(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var traced []obs.Stage
	tracer := obs.TracerFunc(func(op string, stage obs.Stage, rep string, d time.Duration, err error) {
		if op != opGet {
			t.Errorf("OnStage op = %q, want get", op)
		}
		if err != nil {
			t.Errorf("OnStage(%s) err = %v", stage, err)
		}
		mu.Lock()
		traced = append(traced, stage)
		mu.Unlock()
	})
	c := newCache(t, f, func(cfg *Config) {
		cfg.Obs = reg
		cfg.Tracer = tracer
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "a"} })

	for i := 0; i < 2; i++ { // miss, then hit
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	op := snap.Operations[opGet]
	if op.Hits != 1 || op.Misses != 1 || op.Stores != 1 {
		t.Errorf("op counters = %+v, want 1 hit, 1 miss, 1 store", op)
	}
	rep := snap.Representations["Copy by reflection"]
	if rep.Hits != 1 || rep.Misses != 1 {
		t.Errorf("rep counters = %+v, want 1 hit (copy-out), 1 miss (fill)", rep)
	}
	for _, stage := range []obs.Stage{obs.StageKeyGen, obs.StageLookup, obs.StageInvoke, obs.StageCopyIn, obs.StageCopyOut} {
		found := false
		for _, s := range snap.Stages {
			if s.Stage == stage && s.Latency.Count > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %s not recorded", stage)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(traced) == 0 {
		t.Error("tracer saw no stages")
	}
}

// TestStatsMatchRegistry checks that Cache.Stats and the registry's
// core.* counters are the same numbers — Stats is a registry view.
func TestStatsMatchRegistry(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	c := newCache(t, f, func(cfg *Config) { cfg.Obs = reg })
	next, _ := countingNext(f, t, func() any { return &item{Name: "a"} })
	for i := 0; i < 3; i++ {
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
	}

	s := c.Stats()
	counters := reg.Snapshot().Counters
	if s.Hits != counters["core.hits"] || s.Misses != counters["core.misses"] || s.Stores != counters["core.stores"] {
		t.Errorf("Stats %+v != registry counters %+v", s, counters)
	}
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", s.Hits, s.Misses)
	}
	if c.Obs() != reg {
		t.Error("Obs() should return the configured registry")
	}
}

// TestUninstrumentedCacheSkipsStages checks the untimed default: Stats
// counters still work (private registry) but no stage latency series
// appear.
func TestUninstrumentedCacheSkipsStages(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil)
	next, _ := countingNext(f, t, func() any { return &item{Name: "a"} })
	for i := 0; i < 2; i++ {
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss", s)
	}
	if stages := c.Obs().Snapshot().Stages; len(stages) != 0 {
		t.Errorf("untimed cache recorded %d stage series, want 0", len(stages))
	}
}
