package core

import (
	"fmt"

	"repro/internal/rep"
)

// Validate checks the configuration without building a cache,
// returning the first problem found as a descriptive error. New calls
// it; binaries that assemble a Config from flags (cmd/wscached,
// cmd/dummygoogle) call it directly so a bad flag fails at startup
// with the same message a programmatic misuse would get.
func (cfg Config) Validate() error {
	if cfg.KeyGen == nil {
		return fmt.Errorf("core: Config.KeyGen is required")
	}
	if cfg.Store == nil && cfg.Rep == nil {
		return fmt.Errorf("core: Config.Store is required (or set Config.Rep for the adaptive default)")
	}
	if cfg.MaxEntries < 0 {
		return fmt.Errorf("core: Config.MaxEntries is %d; bounds must be ≥ 0 (0 means unbounded)", cfg.MaxEntries)
	}
	if cfg.MaxBytes < 0 {
		return fmt.Errorf("core: Config.MaxBytes is %d; bounds must be ≥ 0 (0 means unbounded)", cfg.MaxBytes)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("core: Config.Shards is %d; want ≥ 0 (0 picks the default)", cfg.Shards)
	}
	if cfg.DefaultTTL < 0 {
		return fmt.Errorf("core: Config.DefaultTTL is %v; negative lifetimes are not valid (0 means never expire)", cfg.DefaultTTL)
	}
	if cfg.StaleIfError < 0 {
		return fmt.Errorf("core: Config.StaleIfError is %v; want ≥ 0 (0 disables degraded serving)", cfg.StaleIfError)
	}
	for i, t := range cfg.Tiers {
		if t == nil {
			return fmt.Errorf("core: Config.Tiers[%d] is nil", i)
		}
	}
	if len(cfg.Tiers) > 0 {
		// A tier stack ships entries across process boundaries, which
		// needs a wire-capable representation selector: either the
		// registry (for the static or adaptive wire selector) or a Store
		// that selects wire representations itself.
		_, storeSelects := cfg.Store.(rep.WireSelector)
		if cfg.Rep == nil && !storeSelects {
			return fmt.Errorf("core: Config.Tiers requires Config.Rep (or a Store implementing rep.WireSelector) to encode entries for the wire")
		}
	}
	return nil
}
