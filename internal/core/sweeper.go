package core

import (
	"time"
)

// Sweeper proactively removes expired entries from a Cache on a fixed
// interval, bounding the memory held by entries that will never be
// asked for again. Without a sweeper, expired entries are reclaimed
// lazily when their key is next requested (or when LRU pressure evicts
// them), which is the paper's implicit behaviour; the sweeper is an
// operational extension for long-lived portal deployments.
//
// The goroutine's lifetime is owned by the Sweeper: Shutdown signals it
// to stop and waits for it to exit.
type Sweeper struct {
	cache    *Cache
	interval time.Duration

	stop chan struct{}
	done chan struct{}
}

// NewSweeper starts a sweeper over cache. interval must be positive.
func NewSweeper(cache *Cache, interval time.Duration) *Sweeper {
	if interval <= 0 {
		interval = time.Minute
	}
	s := &Sweeper{
		cache:    cache,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

// run is the sweep loop.
func (s *Sweeper) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.cache.SweepExpired()
		case <-s.stop:
			return
		}
	}
}

// Shutdown stops the sweeper and waits for its goroutine to exit. It is
// idempotent only for the first call; call it exactly once.
func (s *Sweeper) Shutdown() {
	close(s.stop)
	<-s.done
}

// SweepExpired removes every expired entry now and returns how many
// were removed. Entries kept stale for revalidation are also removed —
// a sweep is a reclamation decision that outranks the revalidation
// optimization.
func (c *Cache) SweepExpired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	removed := 0
	// Walk the LRU list rather than the map to touch entries in a
	// deterministic order.
	for e := c.head; e != nil; {
		next := e.next
		if e.expired(now) {
			c.removeLocked(e)
			c.stats.Expirations++
			removed++
		}
		e = next
	}
	return removed
}
