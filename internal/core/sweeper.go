package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/invalidate"
)

// Sweeper proactively removes expired entries from a Cache on a fixed
// interval, bounding the memory held by entries that will never be
// asked for again. Without a sweeper, expired entries are reclaimed
// lazily when their key is next requested (or when LRU pressure evicts
// them), which is the paper's implicit behaviour; the sweeper is an
// operational extension for long-lived portal deployments.
//
// The goroutine's lifetime is owned by the Sweeper: Shutdown (or
// cancellation of the context given to NewSweeperContext) signals it to
// stop; Shutdown waits for it to exit.
type Sweeper struct {
	cache    *Cache
	interval time.Duration

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewSweeperContext starts a sweeper whose goroutine also exits when
// ctx is cancelled, for deployments that tie background work to a
// server's lifecycle context. Shutdown remains available and is
// idempotent; after cancellation it returns as soon as the goroutine
// has exited.
func NewSweeperContext(ctx context.Context, cache *Cache, interval time.Duration) *Sweeper {
	if interval <= 0 {
		interval = time.Minute
	}
	s := &Sweeper{
		cache:    cache,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run(ctx)
	return s
}

// run is the sweep loop.
func (s *Sweeper) run(ctx context.Context) {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.cache.SweepExpired()
		case <-ctx.Done():
			return
		case <-s.stop:
			return
		}
	}
}

// Shutdown stops the sweeper and waits for its goroutine to exit. It is
// idempotent and safe to call after (or concurrently with) context
// cancellation.
func (s *Sweeper) Shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// SweepExpired removes every reclaimable expired entry now and returns
// how many were removed. Entries kept stale for revalidation are
// removed — a sweep is a reclamation decision that outranks the
// revalidation optimization — but entries still inside the
// StaleIfError grace window are retained: they are the cache's only
// answer if the backend fails, and the window bounds how long they
// linger.
//
// The sweep locks one shard at a time, never the whole cache, so hits
// on the other shards proceed while a shard is being swept.
func (c *Cache) SweepExpired() int {
	now := c.now()
	removed := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		// Walk the LRU list rather than the map to touch entries in a
		// deterministic order.
		for e := sh.head; e != nil; {
			next := e.next
			switch {
			case invalidate.Stale(e.stamps):
				// Write-invalidated entries can never be served again
				// (epochs only grow), so the sweep reclaims them
				// unconditionally — even inside the stale-on-error
				// grace window.
				sh.removeLocked(e)
				c.m.invalidations.Add(1)
				removed++
			case e.expired(now) && !c.withinStaleWindow(e, now):
				sh.removeLocked(e)
				c.m.expirations.Add(1)
				removed++
			}
			e = next
		}
		sh.mu.Unlock()
	}
	return removed
}
