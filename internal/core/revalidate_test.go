package core

import (
	"context"
	"fmt"
	"net/http"
	"repro/internal/rep"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/googleapi"
	"repro/internal/server"
	"repro/internal/transport"
)

// revalidationFixture wires a caching client to a dispatcher that
// supports HTTP validators, with a controllable clock.
type revalidationFixture struct {
	call    *client.Call
	cache   *Cache
	disp    *server.Dispatcher
	nowSec  *int64
	backend *int // backend invocation count (full responses only)
}

func newRevalidationFixture(t *testing.T, cacheTTL time.Duration, honorServerTTL bool) *revalidationFixture {
	t.Helper()
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	lastMod := time.Now().Add(-24 * time.Hour).Truncate(time.Second)
	disp.SetValidatorPolicy(lastMod, time.Minute)

	nowSec := new(int64)
	*nowSec = time.Now().Unix()
	clock := func() time.Time { return time.Unix(*nowSec, 0) }

	cache := MustNew(Config{
		KeyGen:         rep.NewStringKey(),
		Store:          rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL:     cacheTTL,
		Revalidate:     true,
		HonorServerTTL: honorServerTTL,
		Clock:          clock,
	})

	backend := new(int)
	countingTransport := transport.Func(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		inner := &transport.InProcess{Handler: disp}
		resp, err := inner.Send(ctx, req)
		if err == nil && !resp.NotModified() {
			*backend++
		}
		return resp, err
	})

	call := client.NewCall(codec, countingTransport, googleapi.Endpoint, googleapi.Namespace,
		googleapi.OpGoogleSearch, "urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	return &revalidationFixture{call: call, cache: cache, disp: disp, nowSec: nowSec, backend: backend}
}

func (f *revalidationFixture) invoke(t *testing.T, q string) *client.Context {
	t.Helper()
	ictx, err := f.call.InvokeContext(context.Background(),
		googleapi.SearchParams("k", q, 0, 10, false, "", false, "")...)
	if err != nil {
		t.Fatal(err)
	}
	return ictx
}

func TestRevalidation304RefreshesEntry(t *testing.T) {
	f := newRevalidationFixture(t, time.Minute, false)

	// Miss: full response, entry stored with the Last-Modified header.
	if ictx := f.invoke(t, "q"); ictx.CacheHit {
		t.Fatal("first call hit")
	}
	if *f.backend != 1 {
		t.Fatalf("backend = %d", *f.backend)
	}

	// Fresh hit: no traffic at all.
	if ictx := f.invoke(t, "q"); !ictx.CacheHit {
		t.Fatal("second call missed")
	}
	if *f.backend != 1 {
		t.Fatalf("backend = %d after fresh hit", *f.backend)
	}

	// Let the entry expire; the next call goes conditional and the
	// server answers 304 (it has not been modified since lastMod).
	*f.nowSec += 120
	ictx := f.invoke(t, "q")
	if !ictx.CacheHit {
		t.Fatal("revalidated call should report a hit")
	}
	if !ictx.NotModified {
		t.Fatal("expected a 304 answer")
	}
	if *f.backend != 1 {
		t.Fatalf("backend recomputed a full response: %d", *f.backend)
	}
	if got := ictx.Result.(*googleapi.GoogleSearchResult); got.SearchQuery != "q" {
		t.Errorf("revalidated result = %+v", got)
	}
	if f.cache.Stats().Revalidations != 1 {
		t.Errorf("revalidations = %d", f.cache.Stats().Revalidations)
	}

	// The refreshed entry is fresh again: plain hit, no traffic.
	if ictx := f.invoke(t, "q"); !ictx.CacheHit || ictx.NotModified {
		t.Error("entry not refreshed after 304")
	}
	if *f.backend != 1 {
		t.Errorf("backend = %d after refresh", *f.backend)
	}
}

func TestRevalidationModifiedServerSendsFull(t *testing.T) {
	f := newRevalidationFixture(t, time.Minute, false)
	f.invoke(t, "q")

	// The resource changes on the server: validator moves forward.
	f.disp.SetValidatorPolicy(time.Now().Add(time.Hour).Truncate(time.Second), time.Minute)

	*f.nowSec += 120
	ictx := f.invoke(t, "q")
	if ictx.CacheHit {
		t.Error("modified resource served from stale cache")
	}
	if ictx.NotModified {
		t.Error("expected a full response for a modified resource")
	}
	if *f.backend != 2 {
		t.Errorf("backend = %d, want 2 full responses", *f.backend)
	}

	// And the new response replaced the entry: next call is a hit.
	if ictx := f.invoke(t, "q"); !ictx.CacheHit {
		t.Error("refilled entry not hit")
	}
}

func TestRevalidationDisabledDropsExpired(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	disp.SetValidatorPolicy(time.Now().Add(-time.Hour), time.Minute)
	nowSec := new(int64)
	*nowSec = time.Now().Unix()
	cache := MustNew(Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Minute,
		Clock:      func() time.Time { return time.Unix(*nowSec, 0) },
	})
	call := client.NewCall(codec, &transport.InProcess{Handler: disp},
		googleapi.Endpoint, googleapi.Namespace, googleapi.OpGoogleSearch, "",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	params := googleapi.SearchParams("k", "q", 0, 10, false, "", false, "")
	if _, err := call.Invoke(context.Background(), params...); err != nil {
		t.Fatal(err)
	}
	*nowSec += 120
	ictx, err := call.InvokeContext(context.Background(), params...)
	if err != nil {
		t.Fatal(err)
	}
	if ictx.CacheHit || ictx.NotModified {
		t.Error("revalidation happened while disabled")
	}
	if cache.Len() != 1 {
		t.Errorf("entries = %d", cache.Len())
	}
}

func TestHonorServerTTL(t *testing.T) {
	// Server says max-age=60; cache default says a week. With
	// HonorServerTTL the server wins.
	f := newRevalidationFixture(t, 7*24*time.Hour, true)
	f.invoke(t, "q")

	*f.nowSec += 90 // past the server's 60s, well within the default
	ictx := f.invoke(t, "q")
	if !ictx.NotModified {
		t.Error("entry should have expired per server max-age and revalidated")
	}
	if f.cache.Stats().Revalidations != 1 {
		t.Errorf("revalidations = %d", f.cache.Stats().Revalidations)
	}
}

func TestRevalidationDistinctKeysIndependent(t *testing.T) {
	f := newRevalidationFixture(t, time.Minute, false)
	f.invoke(t, "a")
	f.invoke(t, "b")
	*f.nowSec += 120
	// Only "a" is revalidated; "b" stays stale until asked for.
	ictx := f.invoke(t, "a")
	if !ictx.NotModified {
		t.Error("a not revalidated")
	}
	if f.cache.Stats().Revalidations != 1 {
		t.Errorf("revalidations = %d", f.cache.Stats().Revalidations)
	}
}

// TestConditionalRequestHeaderFormat pins the exact header the cache
// sends, since the server parses it with http.ParseTime.
func TestConditionalRequestHeaderFormat(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	lastMod := time.Date(2004, 3, 1, 12, 0, 0, 0, time.UTC)
	disp.SetValidatorPolicy(lastMod, time.Minute)

	nowSec := new(int64)
	*nowSec = time.Now().Unix()
	cache := MustNew(Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Minute,
		Revalidate: true,
		Clock:      func() time.Time { return time.Unix(*nowSec, 0) },
	})

	var seen http.Header
	tr := transport.Func(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		if req.Header != nil {
			seen = req.Header.Clone()
		} else {
			seen = nil
		}
		return (&transport.InProcess{Handler: disp}).Send(ctx, req)
	})
	call := client.NewCall(codec, tr, googleapi.Endpoint, googleapi.Namespace,
		googleapi.OpGoogleSearch, "", client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	params := googleapi.SearchParams("k", "q", 0, 10, false, "", false, "")
	if _, err := call.Invoke(context.Background(), params...); err != nil {
		t.Fatal(err)
	}
	if seen.Get("If-Modified-Since") != "" {
		t.Error("conditional header sent on first request")
	}

	*nowSec += 120
	if _, err := call.Invoke(context.Background(), params...); err != nil {
		t.Fatal(err)
	}
	ims := seen.Get("If-Modified-Since")
	if ims != lastMod.Format(http.TimeFormat) {
		t.Errorf("If-Modified-Since = %q, want %q", ims, lastMod.Format(http.TimeFormat))
	}
	if _, err := http.ParseTime(ims); err != nil {
		t.Errorf("header not parseable: %v", err)
	}
}

// TestRevalidation304WithoutLifetimeHeaders covers servers that answer
// 304 without Cache-Control: the entry must be extended by its original
// lifetime, not pinned forever.
func TestRevalidation304WithoutLifetimeHeaders(t *testing.T) {
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	disp.SetValidatorPolicy(time.Now().Add(-24*time.Hour), time.Minute)

	nowSec := new(int64)
	*nowSec = time.Now().Unix()
	cache := MustNew(Config{
		KeyGen:         rep.NewStringKey(),
		Store:          rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL:     time.Minute,
		Revalidate:     true,
		HonorServerTTL: true,
		Clock:          func() time.Time { return time.Unix(*nowSec, 0) },
	})

	// Strip lifetime headers from 304 answers, as a minimal server
	// might.
	stripping := transport.Func(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		resp, err := (&transport.InProcess{Handler: disp}).Send(ctx, req)
		if err == nil && resp.NotModified() {
			resp.Header.Del("Cache-Control")
			resp.Header.Del("Last-Modified")
		}
		return resp, err
	})
	call := client.NewCall(codec, stripping, googleapi.Endpoint, googleapi.Namespace,
		googleapi.OpGoogleSearch, "", client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})
	params := googleapi.SearchParams("k", "q", 0, 10, false, "", false, "")

	if _, err := call.Invoke(context.Background(), params...); err != nil {
		t.Fatal(err)
	}
	*nowSec += 120
	ictx, err := call.InvokeContext(context.Background(), params...)
	if err != nil {
		t.Fatal(err)
	}
	if !ictx.NotModified {
		t.Fatal("expected a 304 refresh")
	}

	// The refreshed entry must expire again: two minutes later another
	// conditional request goes out instead of a bare hit.
	*nowSec += 120
	ictx2, err := call.InvokeContext(context.Background(), params...)
	if err != nil {
		t.Fatal(err)
	}
	if !ictx2.NotModified {
		t.Error("entry pinned forever after header-less 304")
	}
	if cache.Stats().Revalidations != 2 {
		t.Errorf("revalidations = %d, want 2", cache.Stats().Revalidations)
	}
}

// TestRevalidationUnderConcurrency hammers the stale-refresh path.
func TestRevalidationUnderConcurrency(t *testing.T) {
	f := newRevalidationFixture(t, time.Minute, false)
	f.invoke(t, "q")
	*f.nowSec += 120

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var err error
			defer func() { done <- err }()
			for i := 0; i < 50; i++ {
				_, err = f.call.Invoke(context.Background(),
					googleapi.SearchParams("k", "q", 0, 10, false, "", false, "")...)
				if err != nil {
					err = fmt.Errorf("iter %d: %w", i, err)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if f.cache.Stats().Revalidations == 0 {
		t.Error("no revalidations recorded")
	}
}
