package core

import (
	"context"
	"fmt"
	"repro/internal/rep"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/soap"
)

// newShardCache builds a cache over plain Go objects (pass-by-
// reference store, string keys) so shard-structure tests need no SOAP
// fixtures.
func newShardCache(t testing.TB, mutate func(*Config)) *Cache {
	t.Helper()
	cfg := Config{
		KeyGen: rep.NewStringKey(),
		Store:  rep.NewRefStore(nil, true),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// shardReq fabricates a request for query q.
func shardReq(q string) *client.Context {
	return &client.Context{
		Ctx:       context.Background(),
		Endpoint:  "http://test/endpoint",
		Namespace: "urn:ShardTest",
		Operation: opGet,
		Params:    []soap.Param{{Name: "q", Value: q}},
	}
}

func TestShardCountRounding(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{Shards: 1}, 1},
		{Config{Shards: 2}, 2},
		{Config{Shards: 3}, 4},
		{Config{Shards: 64}, 64},
		{Config{Shards: 65}, 128},
		// A bounded cache never gets more shards than entry budget:
		// every shard's slice must hold at least one entry.
		{Config{Shards: 64, MaxEntries: 2}, 2},
		{Config{Shards: 64, MaxEntries: 3}, 2},
		{Config{Shards: 64, MaxEntries: 100}, 64},
		{Config{Shards: 64, MaxBytes: 16}, 16},
	}
	for _, tc := range cases {
		if got := shardCount(tc.cfg); got != tc.want {
			t.Errorf("shardCount(Shards=%d MaxEntries=%d MaxBytes=%d) = %d, want %d",
				tc.cfg.Shards, tc.cfg.MaxEntries, tc.cfg.MaxBytes, got, tc.want)
		}
	}
	// The default is a power of two between 1 and 64.
	n := shardCount(Config{})
	if n < 1 || n > 64 || n&(n-1) != 0 {
		t.Errorf("default shard count %d not a power of two in [1,64]", n)
	}
	c := newShardCache(t, func(cfg *Config) { cfg.Shards = 5 })
	if c.Shards() != 8 {
		t.Errorf("Cache.Shards() = %d, want 8", c.Shards())
	}
}

func TestSliceBudgetSumsExactly(t *testing.T) {
	for _, tc := range []struct{ total, n int }{
		{10, 4}, {4096, 32}, {7, 8}, {1, 1}, {64, 64},
	} {
		sum := 0
		for i := 0; i < tc.n; i++ {
			b := sliceBudget(tc.total, tc.n, i)
			if b < 0 {
				t.Fatalf("sliceBudget(%d,%d,%d) = %d, want bounded", tc.total, tc.n, i, b)
			}
			sum += b
		}
		if sum != tc.total {
			t.Errorf("slices of %d across %d shards sum to %d", tc.total, tc.n, sum)
		}
	}
	if sliceBudget(0, 8, 3) != -1 {
		t.Error("unbounded budget must slice to -1")
	}
}

// TestShardedEvictionRespectsGlobalBound floods a bounded sharded
// cache with distinct keys: the per-shard slices must keep the total
// at or under MaxEntries no matter how keys hash.
func TestShardedEvictionRespectsGlobalBound(t *testing.T) {
	const maxEntries = 8
	c := newShardCache(t, func(cfg *Config) { cfg.MaxEntries = maxEntries })
	next := func(ictx *client.Context) error {
		ictx.Result = &benchResult{Name: "v"}
		return nil
	}
	for i := 0; i < 200; i++ {
		if err := c.HandleInvoke(shardReq(fmt.Sprintf("q%d", i)), next); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > maxEntries || n == 0 {
		t.Errorf("Len() = %d, want within (0, %d]", n, maxEntries)
	}
	if s := c.Stats(); s.Entries != c.Len() || s.Evictions == 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestDistinctKeysDistinctEntries drives many keys through the digest
// table and verifies each one serves its own value back — a routing or
// digest-aliasing bug would cross-serve results.
func TestDistinctKeysDistinctEntries(t *testing.T) {
	c := newShardCache(t, nil)
	next := func(ictx *client.Context) error {
		ictx.Result = &benchResult{Name: ictx.Params[0].Value.(string)}
		return nil
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.HandleInvoke(shardReq(fmt.Sprintf("q%d", i)), next); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != n {
		t.Fatalf("Len() = %d, want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("q%d", i)
		ictx := shardReq(q)
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
		if !ictx.CacheHit {
			t.Fatalf("key %s missed after fill", q)
		}
		if got := ictx.Result.(*benchResult).Name; got != q {
			t.Fatalf("key %s served value %q", q, got)
		}
	}
}

// TestStatsDoesNotBlockOnShardLocks holds every shard's structural
// lock — the state a fill or hit holds mid-operation — and requires
// Stats and Len to complete anyway: snapshots read the per-shard
// atomics, never the locks, so /debug/wscache cannot stall the hit
// path (or be stalled by it).
func TestStatsDoesNotBlockOnShardLocks(t *testing.T) {
	c := newShardCache(t, func(cfg *Config) { cfg.MaxEntries = 16 })
	next := func(ictx *client.Context) error {
		ictx.Result = &benchResult{Name: "v"}
		return nil
	}
	if err := c.HandleInvoke(shardReq("warm"), next); err != nil {
		t.Fatal(err)
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	done := make(chan Stats, 1)
	go func() {
		_ = c.Len()
		done <- c.Stats()
	}()
	select {
	case s := <-done:
		if s.Entries != 1 || s.Bytes <= 0 {
			t.Errorf("stats under held locks = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stats blocked on a shard lock")
	}
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}

// TestStatsDuringConcurrentLoad runs snapshots against a live fill
// storm: every snapshot must return promptly (the goroutine finishes)
// and see consistent non-negative structure numbers.
func TestStatsDuringConcurrentLoad(t *testing.T) {
	c := newShardCache(t, func(cfg *Config) { cfg.MaxEntries = 32 })
	next := func(ictx *client.Context) error {
		ictx.Result = &benchResult{Name: "v"}
		return nil
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.HandleInvoke(shardReq(fmt.Sprintf("q%d", (g*31+i)%128)), next); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := c.Stats()
		if s.Bytes < 0 || s.Entries < 0 {
			t.Errorf("negative structure stats: %+v", s)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentStress is the -race correctness storm: concurrent
// hits, misses, expirations, coalesced fills, Clear, sweeps and
// snapshots against one sharded cache, with per-key values so any
// digest misroute or lost store surfaces as a wrong or missing result.
func TestConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 400
		hotKeys    = 48
		maxEntries = 64
	)
	c := newShardCache(t, func(cfg *Config) {
		cfg.MaxEntries = maxEntries
		cfg.DefaultTTL = 2 * time.Millisecond // churn expirations under load
		cfg.Coalesce = true
		cfg.StaleIfError = 10 * time.Second
	})
	keys := make([]string, hotKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("stress key %d", i)
	}
	var calls atomic.Int64
	next := func(ictx *client.Context) error {
		n := calls.Add(1)
		if n%13 == 0 {
			return fmt.Errorf("injected backend failure %d", n)
		}
		ictx.Result = &benchResult{Name: ictx.Params[0].Value.(string)}
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := NewSweeperContext(ctx, c, time.Millisecond)
	defer sw.Shutdown()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := keys[(g*17+i)%hotKeys]
				ictx := shardReq(q)
				err := c.HandleInvoke(ictx, next)
				if err != nil {
					continue // injected failure with nothing stale to serve
				}
				if got := ictx.Result.(*benchResult).Name; got != q {
					t.Errorf("key %q served value %q", q, got)
					return
				}
				switch {
				case g == 0 && i%101 == 100:
					c.Clear()
				case g == 1 && i%67 == 66:
					c.SweepExpired()
				case i%29 == 0:
					if s := c.Stats(); s.Bytes < 0 || s.Entries < 0 {
						t.Errorf("negative stats mid-storm: %+v", s)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesced invariants.
	if n := c.Len(); n > maxEntries {
		t.Errorf("Len() = %d exceeds MaxEntries %d", n, maxEntries)
	}
	s := c.Stats()
	if s.Bytes < 0 || s.Entries != c.Len() {
		t.Errorf("quiesced stats = %+v, len = %d", s, c.Len())
	}
	// No lost stores: every key must still be servable with its own
	// value — fresh from the cache or refilled through the pivot.
	okNext := func(ictx *client.Context) error {
		ictx.Result = &benchResult{Name: ictx.Params[0].Value.(string)}
		return nil
	}
	for _, q := range keys {
		ictx := shardReq(q)
		if err := c.HandleInvoke(ictx, okNext); err != nil {
			t.Fatal(err)
		}
		if got := ictx.Result.(*benchResult).Name; got != q {
			t.Errorf("post-storm key %q served %q", q, got)
		}
	}
	c.Clear()
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Error("Clear left residue")
	}
}
