package core

import (
	"errors"
	"time"

	"repro/internal/client"
	"repro/internal/invalidate"
	"repro/internal/obs"
	"repro/internal/soap"
)

// This file holds the cache's fault-tolerance mechanics: stale-on-error
// degraded serving (Config.StaleIfError) and singleflight miss
// coalescing (Config.Coalesce). Both extend the paper's cache beyond
// its always-healthy-backend assumption; see DESIGN.md §5a.

// flight is one in-flight miss invocation other invocations of the
// same key can wait on.
type flight struct {
	done chan struct{} // closed when the leader finishes
	err  error         // the leader's outcome; written before done closes
}

// invokeCoalesced collapses concurrent misses on one key into one
// backend invocation. Flights live in the key's shard, so coalescing
// bookkeeping on different shards never contends. The first miss
// becomes the flight leader and runs the normal miss path; later
// misses wait for it and serve themselves from the cache the leader
// filled. A follower whose wait yields nothing usable (the leader's
// response was uncacheable, or its entry was already evicted) falls
// back to its own invocation rather than fail.
func (c *Cache) invokeCoalesced(d keyDigest, op OperationPolicy, ictx *client.Context, next client.Invoker) error {
	sh := c.shard(d)
	sh.flightMu.Lock()
	if f, ok := sh.flights[d]; ok {
		sh.flightMu.Unlock()
		return c.followFlight(f, d, op, ictx, next)
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[d] = f
	sh.flightMu.Unlock()

	// Retire the flight in a defer so a dying leader — a panicking
	// store, handler, or transport anywhere down the chain — still
	// closes the channel instead of stranding its followers forever.
	// The panic propagates to the leader's caller; followers observe a
	// nil flight error, find no entry, and fall back to their own
	// invocations.
	defer func() {
		sh.flightMu.Lock()
		delete(sh.flights, d)
		sh.flightMu.Unlock()
		close(f.done)
	}()
	f.err = c.invokeMiss(d, op, ictx, next)
	return f.err
}

// followFlight waits for the flight leader and serves the follower's
// invocation from the leader's outcome.
func (c *Cache) followFlight(f *flight, d keyDigest, op OperationPolicy, ictx *client.Context, next client.Invoker) error {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	if ictx.Ctx != nil {
		select {
		case <-f.done:
		case <-ictx.Ctx.Done():
			if c.timed {
				c.observe(ictx.Operation, obs.StageCoalesceWait, "", c.now().Sub(start), ictx.Ctx.Err())
			}
			return ictx.Ctx.Err()
		}
	} else {
		<-f.done
	}
	if c.timed {
		c.observe(ictx.Operation, obs.StageCoalesceWait, "", c.now().Sub(start), f.err)
	}
	c.m.coalesced.Add(1)

	if f.err != nil {
		// The leader failed. The follower is as entitled to degraded
		// serving as the leader was; otherwise it shares the error.
		if result, ok := c.staleOnError(d, ictx.Operation, f.err); ok {
			ictx.Result = result
			ictx.CacheHit = true
			ictx.ServedStale = true
			return nil
		}
		return f.err
	}
	if result, ok := c.lookup(d, ictx.Operation); ok {
		ictx.Result = result
		ictx.CacheHit = true
		c.reg.Op(ictx.Operation).Hits.Add(1)
		return nil
	}
	// The leader succeeded but left nothing loadable (uncacheable
	// response, store error, or eviction under pressure). Do the work
	// ourselves; correctness outranks coalescing.
	return c.invokeMiss(d, op, ictx, next)
}

// staleOnError serves a TTL-expired entry within the StaleIfError grace
// window after a backend failure. SOAP faults are excluded: a fault is
// an application-level answer from a live backend, and masking it with
// stale data would change program behaviour, not availability.
func (c *Cache) staleOnError(d keyDigest, op string, err error) (any, bool) {
	if c.staleIfError <= 0 {
		return nil, false
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		return nil, false
	}

	sh := c.shard(d)
	sh.mu.Lock()
	e, ok := sh.table[d]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	if invalidate.Stale(e.stamps) {
		// Degraded mode must never resurrect a write-invalidated entry:
		// its data provably predates a committed write, and serving it
		// would trade an availability gap for a correctness violation.
		// The refusal is counted so operators can see degraded serving
		// being denied by invalidation.
		sh.removeLocked(e)
		sh.mu.Unlock()
		c.m.invalidations.Add(1)
		c.m.staleRefused.Add(1)
		return nil, false
	}
	now := c.now()
	// Serve a fresh entry too (it can appear between the miss and this
	// recovery when another invocation refills the key); otherwise the
	// entry must be within its grace window.
	if e.expired(now) && !c.withinStaleWindow(e, now) {
		sh.mu.Unlock()
		return nil, false
	}
	sh.moveToFrontLocked(e)
	payload, store := e.payload, e.store
	sh.mu.Unlock()
	c.m.staleServes.Add(1)

	result, ok := c.loadPayload(op, store, payload)
	if !ok {
		c.m.errors.Add(1)
		return nil, false
	}
	return result, true
}

// withinStaleWindow reports whether an expired entry is still eligible
// for stale-on-error serving at now.
func (c *Cache) withinStaleWindow(e *entry, now time.Time) bool {
	return c.staleIfError > 0 && !now.After(e.expires.Add(c.staleIfError))
}

// retainStaleLocked reports whether an expired entry must be kept for a
// later degraded use: 304 revalidation (validator present) or
// stale-on-error serving (grace window not yet passed). Callers hold
// the entry's shard lock.
func (c *Cache) retainStaleLocked(e *entry, now time.Time) bool {
	if c.revalidate && !e.lastModified.IsZero() {
		return true
	}
	return c.withinStaleWindow(e, now)
}
