package core

import (
	"testing"
	"time"

	"repro/internal/invalidate"
	"repro/internal/soap"
)

// The invalidation benchmarks price the epoch check on the hit path:
// with a configured Invalidator, every entry filled for a declared
// read operation carries epoch stamps, and every hit re-validates them
// (a handful of atomic loads). BenchmarkHitInval mirrors
// BenchmarkHitSerial with stamps present; TestInvalHitOverhead is the
// acceptance guard holding the delta under 5%.

// benchInvalidator builds an invalidator whose graph declares the
// benchmark's opGet operation as reading two keyspaces — one per-key,
// one shared — so every cached entry carries two stamps, matching the
// item-store shape (item:<key> plus the listing keyspace).
func benchInvalidator() *invalidate.Invalidator {
	g := invalidate.NewGraph().
		Read(opGet, func(params []soap.Param) []invalidate.Keyspace {
			q, _ := params[1].Value.(string)
			return []invalidate.Keyspace{invalidate.Keyspace(itemPrefix + q), ksItems}
		}).
		Write(opPut, func(params []soap.Param) []invalidate.Keyspace {
			q, _ := params[1].Value.(string)
			return []invalidate.Keyspace{invalidate.Keyspace(itemPrefix + q), ksItems}
		})
	return invalidate.New(g, nil)
}

// BenchmarkHitInval is BenchmarkHitSerial with epoch stamps on every
// entry: the hit-path cost of dependency-aware invalidation.
func BenchmarkHitInval(b *testing.B) {
	c, qs := newHitBench(b, func(cfg *Config) {
		cfg.Invalidator = benchInvalidator()
	})
	b.ReportAllocs()
	b.ResetTimer()
	hitLoop(b, c, qs, 0, b.N)
}

// TestInvalHitOverhead enforces the ≤5% bound on the epoch check:
// a steady-state hit with two stamps per entry must cost no more than
// 1.05× the stampless hit. Timing is interleaved and the best of
// several trials is taken to damp scheduler noise.
func TestInvalHitOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in -short")
	}
	plain, pqs := newHitBench(t, nil)
	inval, iqs := newHitBench(t, func(cfg *Config) {
		cfg.Invalidator = benchInvalidator()
	})

	measure := func(c *Cache, qs []any, n int) time.Duration {
		start := time.Now()
		hitLoop(t, c, qs, 0, n)
		return time.Since(start)
	}
	measure(plain, pqs, 2000) // warm: settle allocators and branch caches
	measure(inval, iqs, 2000)

	const trials, n, limit = 5, 50000, 1.05
	best := 0.0
	for i := 0; i < trials; i++ {
		p := measure(plain, pqs, n)
		v := measure(inval, iqs, n)
		ratio := float64(v) / float64(p)
		if i == 0 || ratio < best {
			best = ratio
		}
	}
	if best > limit {
		t.Errorf("epoch-check hit overhead %.3f× exceeds %.2f×", best, limit)
	} else {
		t.Logf("epoch-check hit overhead %.3f× (limit %.2f×)", best, limit)
	}
}
