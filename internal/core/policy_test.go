package core

import "testing"

func TestPolicyDefaults(t *testing.T) {
	var p Policy
	if !p.For("anything").Cacheable {
		t.Error("zero policy should cache everything")
	}

	p2 := NewPolicy(0, "a", "b")
	if !p2.For("a").Cacheable || !p2.For("b").Cacheable {
		t.Error("listed ops must be cacheable")
	}
	if p2.For("c").Cacheable {
		t.Error("unlisted op must not be cacheable")
	}
	if got := p2.CacheableOps(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("cacheable ops = %v", got)
	}

	p3 := Policy{
		Default:         OperationPolicy{Cacheable: true},
		DefaultExplicit: true,
		Operations: map[string]OperationPolicy{
			"update": {Cacheable: false},
		},
	}
	if p3.For("update").Cacheable {
		t.Error("explicit uncacheable ignored")
	}
	if !p3.For("read").Cacheable {
		t.Error("explicit default ignored")
	}
	if got := p3.UncacheableOps(); len(got) != 1 || got[0] != "update" {
		t.Errorf("uncacheable ops = %v", got)
	}
}
