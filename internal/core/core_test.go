package core

import (
	"context"
	"errors"
	"fmt"
	"repro/internal/rep"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/sax"
	"repro/internal/soap"
	"repro/internal/typemap"
)

const testNS = "urn:CacheTest"

type item struct {
	Name  string
	Score float64
	Tags  []string
}

type cloneableItem struct {
	Name string
}

func (c *cloneableItem) CloneDeep() any { out := *c; return &out }

type opaqueResult struct {
	Name   string
	secret int
}

// fixture bundles the registry/codec and fabricates invocation contexts
// as the client middleware would populate them.
type fixture struct {
	reg   *typemap.Registry
	codec *soap.Codec
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "Item"}, item{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(typemap.QName{Space: testNS, Local: "CloneableItem"}, cloneableItem{}); err != nil {
		t.Fatal(err)
	}
	return &fixture{reg: reg, codec: soap.NewCodec(reg)}
}

// ictx fabricates a post-pivot invocation context: result plus response
// XML and recorded events, exactly what a real invocation captures.
func (f *fixture) ictx(t *testing.T, op string, result any, params ...soap.Param) *client.Context {
	t.Helper()
	respXML, err := f.codec.EncodeResponse(testNS, op, result)
	if err != nil {
		t.Fatal(err)
	}
	events, err := sax.Record(respXML)
	if err != nil {
		t.Fatal(err)
	}
	return &client.Context{
		Ctx:            context.Background(),
		Endpoint:       "http://test/endpoint",
		Namespace:      testNS,
		Operation:      op,
		Params:         params,
		ResponseXML:    respXML,
		ResponseEvents: events,
		Result:         result,
	}
}

// reqCtx fabricates a pre-invocation context (request side only).
func (f *fixture) reqCtx(op string, params ...soap.Param) *client.Context {
	return &client.Context{
		Ctx:       context.Background(),
		Endpoint:  "http://test/endpoint",
		Namespace: testNS,
		Operation: op,
		Params:    params,
	}
}

// countingNext returns an Invoker that fills the context from fill and
// counts invocations. The counter is atomic so concurrent tests can
// share the invoker.
func countingNext(f *fixture, t *testing.T, result func() any) (client.Invoker, *atomic.Int64) {
	calls := new(atomic.Int64)
	return func(ictx *client.Context) error {
		calls.Add(1)
		full := f.ictx(t, ictx.Operation, result(), ictx.Params...)
		ictx.Result = full.Result
		ictx.ResponseXML = full.ResponseXML
		ictx.ResponseEvents = full.ResponseEvents
		return nil
	}, calls
}

func newCache(t *testing.T, f *fixture, mutate func(*Config)) *Cache {
	t.Helper()
	cfg := Config{
		KeyGen: rep.NewStringKey(),
		Store:  rep.NewReflectCopyStore(f.reg),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHitSkipsPivot(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil)
	next, calls := countingNext(f, t, func() any { return &item{Name: "a", Score: 1} })

	ictx1 := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx1, next); err != nil {
		t.Fatal(err)
	}
	if ictx1.CacheHit {
		t.Error("first call reported as hit")
	}

	ictx2 := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx2, next); err != nil {
		t.Fatal(err)
	}
	if !ictx2.CacheHit {
		t.Error("second call not a hit")
	}
	if calls.Load() != 1 {
		t.Errorf("pivot calls = %d, want 1", calls.Load())
	}
	got := ictx2.Result.(*item)
	if got.Name != "a" || got.Score != 1 {
		t.Errorf("hit result = %+v", got)
	}

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v", s.HitRatio())
	}
}

func TestCacheDifferentParamsMiss(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil)
	n := 0
	next, calls := countingNext(f, t, func() any { n++; return &item{Name: fmt.Sprintf("r%d", n)} })

	for _, q := range []string{"a", "b", "a", "b"} {
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: q})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("pivot calls = %d, want 2", calls.Load())
	}
}

func TestCallByCopySemantics(t *testing.T) {
	// Paper Section 3.1: mutations by the client must not leak into the
	// cache, in either direction.
	f := newFixture(t)
	c := newCache(t, f, nil)
	orig := &item{Name: "original", Tags: []string{"t1"}}
	next, _ := countingNext(f, t, func() any { return orig })

	ictx1 := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx1, next); err != nil {
		t.Fatal(err)
	}
	// Client mutates the object it received on the miss path.
	ictx1.Result.(*item).Name = "mutated-by-client"
	ictx1.Result.(*item).Tags[0] = "mutated"

	ictx2 := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx2, next); err != nil {
		t.Fatal(err)
	}
	got := ictx2.Result.(*item)
	if got.Name != "original" || got.Tags[0] != "t1" {
		t.Errorf("cache corrupted by client mutation: %+v", got)
	}

	// Mutating the hit result must not affect later hits either.
	got.Name = "mutated-again"
	ictx3 := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx3, next); err != nil {
		t.Fatal(err)
	}
	if ictx3.Result.(*item).Name != "original" {
		t.Error("cache corrupted by mutation of a hit result")
	}
	if ictx3.Result == ictx2.Result {
		t.Error("hits share an object")
	}
}

func TestTTLExpiry(t *testing.T) {
	f := newFixture(t)
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Hour
		cfg.Clock = clock
	})
	next, calls := countingNext(f, t, func() any { return &item{Name: "x"} })

	run := func() *client.Context {
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
		return ictx
	}

	run()
	now = now.Add(30 * time.Minute)
	if !run().CacheHit {
		t.Error("entry expired too early")
	}
	now = now.Add(31 * time.Minute)
	if run().CacheHit {
		t.Error("entry served after TTL")
	}
	if calls.Load() != 2 {
		t.Errorf("pivot calls = %d, want 2", calls.Load())
	}
	if c.Stats().Expirations != 1 {
		t.Errorf("expirations = %d", c.Stats().Expirations)
	}
}

func TestPerOperationTTL(t *testing.T) {
	f := newFixture(t)
	now := time.Unix(1000, 0)
	c := newCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Hour
		cfg.Clock = func() time.Time { return now }
		cfg.Policy = Policy{Operations: map[string]OperationPolicy{
			"fast": {Cacheable: true, TTL: time.Minute},
		}}
	})
	next, _ := countingNext(f, t, func() any { return &item{} })

	ictx := f.reqCtx("fast", soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	ictx2 := f.reqCtx("fast", soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx2, next); err != nil {
		t.Fatal(err)
	}
	if ictx2.CacheHit {
		t.Error("per-operation TTL not honored")
	}
}

func TestUncacheableOperationBypasses(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) {
		cfg.Policy = NewPolicy(time.Hour, "search")
	})
	next, calls := countingNext(f, t, func() any { return &item{} })

	for i := 0; i < 3; i++ {
		ictx := f.reqCtx("addToCart", soap.Param{Name: "item", Value: "x"})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
		if ictx.CacheHit {
			t.Error("uncacheable op hit the cache")
		}
	}
	if calls.Load() != 3 {
		t.Errorf("pivot calls = %d, want 3", calls.Load())
	}
	s := c.Stats()
	if s.Bypass != 3 || s.Stores != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestErrorFromPivotNotCached(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil)
	boom := errors.New("backend down")
	fail := true
	next := func(ictx *client.Context) error {
		if fail {
			return boom
		}
		full := f.ictx(t, ictx.Operation, &item{Name: "ok"}, ictx.Params...)
		ictx.Result, ictx.ResponseXML, ictx.ResponseEvents = full.Result, full.ResponseXML, full.ResponseEvents
		return nil
	}

	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, next); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Error("failed invocation was cached")
	}

	fail = false
	ictx2 := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx2, next); err != nil {
		t.Fatal(err)
	}
	if ictx2.CacheHit {
		t.Error("hit after only a failed invocation")
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	f := newFixture(t)
	// Shards: 1 keeps the exact global LRU order this test asserts;
	// with several shards eviction is per-shard LRU and the victim
	// depends on key placement.
	c := newCache(t, f, func(cfg *Config) { cfg.MaxEntries = 2; cfg.Shards = 1 })
	next, _ := countingNext(f, t, func() any { return &item{Name: "v"} })

	get := func(q string) *client.Context {
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: q})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
		return ictx
	}

	get("a")
	get("b")
	get("a") // refresh a
	get("c") // evicts b (LRU)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if !get("a").CacheHit {
		t.Error("a should have survived (recently used)")
	}
	if get("b").CacheHit {
		t.Error("b should have been evicted")
	}
	if c.Stats().Evictions < 1 {
		t.Error("no evictions recorded")
	}
}

func TestEvictionByBytes(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) {
		cfg.MaxBytes = 4096
		cfg.Shards = 1 // one shard owns the whole byte budget
		cfg.Store = rep.NewXMLMessageStore(f.codec)
	})
	big := make([]string, 40)
	for i := range big {
		big[i] = "tag-with-some-length"
	}
	next, _ := countingNext(f, t, func() any { return &item{Name: "v", Tags: big} })

	for i := 0; i < 10; i++ {
		ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: fmt.Sprintf("q%d", i)})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Bytes > 4096 {
		t.Errorf("bytes = %d over budget", s.Bytes)
	}
	if s.Evictions == 0 {
		t.Error("expected evictions under byte budget")
	}
	if s.Entries != c.Len() {
		t.Errorf("entries stat mismatch: %d vs %d", s.Entries, c.Len())
	}
}

func TestClear(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil)
	next, _ := countingNext(f, t, func() any { return &item{} })
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("clear left entries")
	}
	if c.Stats().Bytes != 0 {
		t.Error("clear left bytes")
	}
}

func TestKeyGenFailureFailsOpen(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, nil) // StringKey
	next, calls := countingNext(f, t, func() any { return &item{} })

	// A struct param has no value-based string form: key generation
	// fails, the invocation must still succeed, uncached.
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: &item{Name: "param"}})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 || ictx.CacheHit {
		t.Errorf("calls = %d hit = %v", calls.Load(), ictx.CacheHit)
	}
	if c.Stats().Errors == 0 {
		t.Error("key failure not counted")
	}
}

func TestStoreFailureFailsOpen(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) { cfg.Store = rep.NewCloneCopyStore() })
	next, _ := countingNext(f, t, func() any { return &item{} }) // item is not a Cloner

	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if ictx.Result == nil {
		t.Error("result lost on store failure")
	}
	if c.Len() != 0 {
		t.Error("unapplicable store created an entry")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Store: rep.NewCloneCopyStore()}); err == nil {
		t.Error("missing KeyGen accepted")
	}
	if _, err := New(Config{KeyGen: rep.NewStringKey()}); err == nil {
		t.Error("missing Store accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestStatsByOperation(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) {
		cfg.Policy = NewPolicy(time.Hour, "search")
	})
	next, _ := countingNext(f, t, func() any { return &item{} })

	invoke := func(op, q string) {
		t.Helper()
		ictx := f.reqCtx(op, soap.Param{Name: "q", Value: q})
		if err := c.HandleInvoke(ictx, next); err != nil {
			t.Fatal(err)
		}
	}
	invoke("search", "a") // miss + store
	invoke("search", "a") // hit
	invoke("search", "b") // miss + store
	invoke("addToCart", "x")
	invoke("addToCart", "y")

	stats := c.StatsByOperation()
	s := stats["search"]
	if s.Hits != 1 || s.Misses != 2 || s.Stores != 2 || s.Bypass != 0 {
		t.Errorf("search stats = %+v", s)
	}
	if got := s.HitRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("search hit ratio = %v", got)
	}
	cart := stats["addToCart"]
	if cart.Bypass != 2 || cart.Hits != 0 || cart.Stores != 0 {
		t.Errorf("cart stats = %+v", cart)
	}
	if (OperationStats{}).HitRatio() != 0 {
		t.Error("empty ratio not 0")
	}
	// The snapshot is a copy: mutating it does not affect the cache.
	stats["search"] = OperationStats{Hits: 999}
	if c.StatsByOperation()["search"].Hits == 999 {
		t.Error("snapshot aliased internal state")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) { cfg.MaxEntries = 16 })
	next, _ := countingNext(f, t, func() any { return &item{Name: "v", Tags: []string{"a"}} })

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			defer func() { done <- err }()
			for i := 0; i < 200; i++ {
				ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: fmt.Sprintf("q%d", (g+i)%24)})
				if e := c.HandleInvoke(ictx, next); e != nil {
					err = e
					return
				}
				if it, ok := ictx.Result.(*item); !ok || it.Name != "v" {
					err = fmt.Errorf("bad result %#v", ictx.Result)
					return
				}
				// Hammer the copy: mutations must stay private.
				ictx.Result.(*item).Tags[0] = "mutated"
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
