package core

import (
	"context"
	"fmt"
	"repro/internal/rep"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/soap"
)

// The hit-path benchmarks measure the cache core itself: key
// generation, routing, and table lookup, with result materialization
// held to a no-op (pass-by-reference store) so the numbers isolate the
// cache's own cost. BenchmarkHitSerial is the single-goroutine
// regression guard; BenchmarkHitParallel sweeps goroutine counts to
// expose lock contention on the hit path — the single global mutex of
// the pre-sharding core flatlines here, the sharded core scales.

// benchResult is the shared payload every hit returns by reference.
type benchResult struct {
	Name  string
	Score float64
}

// benchKeys is the hot-key working set; a power of two so the modulo in
// the loop is cheap and the keys spread across shards.
const benchKeys = 64

// newHitBench builds a cache pre-filled with benchKeys entries and
// returns it with the query values used to address them. The values
// are pre-boxed into any so the measured loop swaps a parameter
// without the string-to-interface allocation.
func newHitBench(b testing.TB, mutate func(*Config)) (*Cache, []any) {
	b.Helper()
	cfg := Config{
		KeyGen: rep.NewStringKey(),
		Store:  rep.NewRefStore(nil, true),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	result := &benchResult{Name: "hit", Score: 1}
	fill := func(ictx *client.Context) error {
		ictx.Result = result
		return nil
	}
	qs := make([]any, benchKeys)
	for i := range qs {
		qs[i] = fmt.Sprintf("hot query %d", i)
		ictx := benchCtx(qs[i])
		if err := c.HandleInvoke(ictx, fill); err != nil {
			b.Fatal(err)
		}
	}
	return c, qs
}

// benchCtx fabricates a request-side invocation context.
func benchCtx(q any) *client.Context {
	return &client.Context{
		Ctx:       context.Background(),
		Endpoint:  "http://bench/endpoint",
		Namespace: "urn:Bench",
		Operation: opGet,
		Params: []soap.Param{
			{Name: "key", Value: "k"},
			{Name: "q", Value: q},
			{Name: "start", Value: 0},
			{Name: "max", Value: 10},
		},
	}
}

// failNext is the invoker for pure-hit loops: reaching it means a key
// missed, which the benchmark treats as a failure.
func failNext(*client.Context) error {
	return fmt.Errorf("benchmark expected a cache hit")
}

// hitLoop drives n hits through one reused context, rotating the
// working set starting at off.
func hitLoop(b testing.TB, c *Cache, qs []any, off, n int) {
	ictx := benchCtx(qs[0])
	for i := 0; i < n; i++ {
		ictx.Params[1].Value = qs[(off+i)%len(qs)]
		ictx.Result = nil
		ictx.CacheHit = false
		if err := c.HandleInvoke(ictx, failNext); err != nil {
			b.Error(err)
			return
		}
		if !ictx.CacheHit {
			b.Error("miss on a pre-filled key")
			return
		}
	}
}

// BenchmarkHitSerial is the single-goroutine hit latency: the number
// the sharded core must not regress by more than 5%.
func BenchmarkHitSerial(b *testing.B) {
	c, qs := newHitBench(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	hitLoop(b, c, qs, 0, b.N)
}

// BenchmarkHitParallel sweeps the hit path across goroutine counts.
// b.N iterations are split evenly across the goroutines, so ns/op is
// wall-clock per hit and falling ns/op with rising goroutine count is
// scaling. The acceptance bar: /16 at ≥4× the ops/sec of the
// single-lock baseline.
func BenchmarkHitParallel(b *testing.B) {
	for _, g := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprint(g), func(b *testing.B) {
			c, qs := newHitBench(b, nil)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				n := b.N / g
				if w < b.N%g {
					n++
				}
				wg.Add(1)
				go func(off, n int) {
					defer wg.Done()
					hitLoop(b, c, qs, off, n)
				}(w*7, n)
			}
			wg.Wait()
		})
	}
}
