package core_test

import (
	"context"
	"fmt"
	"log"
	"repro/internal/rep"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/transport"
)

// Example wires the response cache into a client call against the
// dummy Google service and shows the second identical request being
// served from the cache.
func Example() {
	dispatcher, codec, err := googleapi.NewDispatcher()
	if err != nil {
		log.Fatal(err)
	}

	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Hour,
	})

	call := client.NewCall(codec, &transport.InProcess{Handler: dispatcher},
		googleapi.Endpoint, googleapi.Namespace,
		googleapi.OpGoogleSearch, "urn:GoogleSearchAction",
		client.Options{RecordEvents: true, Handlers: []client.Handler{cache}})

	params := googleapi.SearchParams("key", "caching", 0, 10, false, "", false, "")
	for i := 0; i < 2; i++ {
		ictx, err := call.InvokeContext(context.Background(), params...)
		if err != nil {
			log.Fatal(err)
		}
		result := ictx.Result.(*googleapi.GoogleSearchResult)
		fmt.Printf("hit=%v results=%d\n", ictx.CacheHit, len(result.ResultElements))
	}
	stats := cache.Stats()
	fmt.Printf("hits=%d misses=%d\n", stats.Hits, stats.Misses)
	// Output:
	// hit=false results=3
	// hit=true results=3
	// hits=1 misses=1
}

// ExampleNewPolicy configures the paper's suggested policy shape: an
// allow-list of cacheable retrieval operations, everything else
// uncacheable.
func ExampleNewPolicy() {
	policy := core.NewPolicy(time.Hour, "KeywordSearch", "AuthorSearch")
	fmt.Println(policy.For("KeywordSearch").Cacheable)
	fmt.Println(policy.For("AddShoppingCartItems").Cacheable)
	// Output:
	// true
	// false
}

// ExampleAutoStore_Classify shows the Section 6 run-time classifier
// choosing a representation per result type.
func ExampleAutoStore_Classify() {
	_, codec, err := googleapi.NewDispatcher()
	if err != nil {
		log.Fatal(err)
	}
	auto := rep.NewAutoStore(codec.Registry(), codec)

	for _, result := range []any{
		"a plain string",
		googleapi.Search("q", 0, 3),
		[]byte{1, 2, 3},
	} {
		ictx := &client.Context{Result: result}
		fmt.Printf("%-30T %s\n", result, auto.Classify(ictx))
	}
	// Output:
	// string                         Pass by reference
	// *googleapi.GoogleSearchResult  Copy by clone
	// []uint8                        Copy by reflection
}
