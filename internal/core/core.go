// Package core implements the paper's primary contribution: a response
// cache for Web services client middleware that selects the optimal
// data representation for cache keys and cache values (Takase &
// Tatsubori, ICDCS 2004).
//
// The cache installs into the client handler chain (package client). On
// an invocation it generates a key from the request (endpoint URL,
// operation name, and all parameter names and values — Section 4.1),
// looks it up, and on a fresh hit materializes the stored value back
// into an application object using the entry's value representation;
// the serialize/transport/parse/deserialize pipeline is skipped to the
// extent the representation allows (Section 3.3).
//
// Key representations (Table 2): the request XML message, the
// binary-serialized parameters (Go analog of Java serialization; an
// encoding/gob variant is retained for ablation), or a canonical
// string (Go analog of toString).
//
// Value representations (Table 3): the response XML message, the
// recorded SAX event sequence (naive or compact), the DOM tree, the
// binary-serialized application object, a reflection deep copy, a
// Cloner deep copy, or a shared reference for read-only/immutable
// objects. The representations themselves live in package rep;
// rep.AutoStore picks per result type at run time, implementing the
// optimal configuration of Section 6, and rep.AdaptiveSelector — the
// default when Config.Rep is set and Config.Store is not — refines
// that choice online from measured Store/Load cost.
//
// Concurrency: the table is sharded (Config.Shards). Keys are reduced
// to a seeded 128-bit digest; the digest routes the request to one of a
// power-of-two number of independent shards, each owning its own lock,
// hash table, LRU list, byte-budget slice, and in-flight coalescing
// map. Goroutines hitting different shards never contend, so hit
// throughput scales with cores instead of serializing on one global
// mutex; see DESIGN.md §5d.
package core

import (
	"fmt"
	"hash/maphash"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/invalidate"
	"repro/internal/obs"
	"repro/internal/rep"
	"repro/internal/tier"
	"repro/internal/transport"
)

// Config configures a response cache.
type Config struct {
	// KeyGen generates cache keys; required. Generators that also
	// implement KeyAppender let the cache hash the key from a pooled
	// scratch buffer without materializing a key string per lookup.
	KeyGen rep.KeyGenerator
	// Store is the default value representation. When nil, Rep must be
	// set and the cache builds a rep.AdaptiveSelector over it — the
	// measured-cost selector with the static Section 6 classifier as
	// prior — sized to the per-shard slice of MaxBytes.
	Store rep.ValueStore
	// Rep is the representation registry backing the default adaptive
	// selector when Store is nil. Ignored when Store is set.
	Rep *rep.Registry
	// Policy controls per-operation cacheability; zero value caches
	// every operation with DefaultTTL.
	Policy Policy
	// DefaultTTL applies when neither the policy nor the store dictates
	// a TTL. Zero means entries never expire.
	DefaultTTL time.Duration
	// MaxEntries bounds the number of cache entries; 0 means unbounded.
	// The budget is sliced evenly across the shards, so eviction is
	// per-shard LRU (approximate global LRU; see DESIGN.md §5d).
	MaxEntries int
	// MaxBytes bounds the estimated total payload bytes; 0 means
	// unbounded. Sliced across shards like MaxEntries.
	MaxBytes int
	// Shards is the number of independent cache shards, rounded up to a
	// power of two. 0 picks min(64, 4×GOMAXPROCS). A cache with small
	// MaxEntries uses fewer shards so every shard's slice of the entry
	// budget stays at least one entry; Shards: 1 restores the exact
	// single-table LRU semantics.
	Shards int
	// Revalidate enables the HTTP 1.1 consistency mechanism the paper
	// points to (Section 3.2): expired entries whose responses carried
	// a Last-Modified validator are kept as stale, and the next request
	// is sent conditionally (If-Modified-Since). A 304 answer refreshes
	// the entry's TTL and serves the stored representation, paying the
	// round trip but not the response processing.
	Revalidate bool
	// HonorServerTTL derives entry TTLs from the response's
	// Cache-Control max-age / Expires headers when present, overriding
	// DefaultTTL and the operation policy.
	HonorServerTTL bool
	// StaleIfError enables degraded serving: when a miss's backend
	// invocation fails with a transport-level error (anything but a
	// SOAP fault), a TTL-expired entry still within this grace window
	// past its expiry is served instead of the error, flagged via
	// client.Context.ServedStale. Expired entries are retained (from
	// lookup and the sweeper) until the window passes. Zero disables.
	StaleIfError time.Duration
	// Invalidator, when non-nil, enables dependency-aware invalidation
	// (DESIGN.md §5f): entries of operations with a declared read set
	// are stamped with their keyspaces' epochs at fill time, a
	// write-through call of an operation with a declared write set bumps
	// those epochs, and a hit whose stamps are stale is treated as a
	// miss. Operations with no declared sets are unaffected and stay on
	// the pull-based fallback ladder (TTL, then Revalidate). Share one
	// Invalidator between every cache that must observe the same writes.
	Invalidator *invalidate.Invalidator
	// Coalesce collapses concurrent misses on one key into a single
	// backend invocation (singleflight): followers wait for the
	// leader's fill and are served from the cache, so a thundering herd
	// of identical requests costs one backend call.
	Coalesce bool
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
	// Obs, when non-nil, is the registry this cache records its metrics
	// into: the Stats counters, per-operation and per-representation
	// hit/miss counts, and per-stage latency histograms (keygen, lookup,
	// copy-in/copy-out, backend invoke, coalesced waits). nil defaults
	// to a private registry (obs.Or): counters are still kept — Stats
	// reads them — but latency histograms are skipped and nothing is
	// served. Share one registry across the layers of a stack (cache,
	// client options, transport, breaker) for a single /debug/wscache
	// page; do not share one between caches whose Stats must stay
	// separate.
	Obs *obs.Registry
	// Tracer, when non-nil, receives an OnStage callback per recorded
	// stage, for log/trace integration. nil disables tracing and costs
	// nothing on the hot path.
	Tracer obs.Tracer
	// Tiers are remote cache tiers consulted, in order, between an L1
	// miss and the backend invocation (DESIGN.md §5h) — typically one
	// cluster.Remote pointing at shared wscached daemons. Tier entries
	// travel in a wire-capable representation chosen per fill, so
	// configuring tiers requires Rep (or a Store implementing
	// rep.WireSelector). Tier failures degrade to ordinary misses. All
	// processes sharing a tier must use the same KeyGen strategy: the
	// cross-process tier key is derived from the generated key bytes.
	Tiers []tier.Tier
}

// Stats are cumulative cache counters, read from the cache's metrics
// registry by Cache.Stats. Bytes and Entries describe the current
// structure; the rest are monotonic event counts.
type Stats struct {
	Hits          int64
	Misses        int64
	Stores        int64
	Expirations   int64
	Evictions     int64
	Revalidations int64 // stale entries refreshed by a 304 answer
	StaleServes   int64 // expired entries served because the backend failed
	Invalidations int64 // entries dropped because a dependency epoch advanced
	StaleRefused  int64 // degraded/revalidation serves refused as write-invalidated
	Coalesced     int64 // misses satisfied by another in-flight invocation
	Errors        int64 // store/load failures that fell back to the pivot
	Bypass        int64 // invocations of uncacheable operations
	TierHits      int64 // L1 misses served from a remote tier
	TierErrors    int64 // remote tier failures degraded to misses
	Bytes         int   // current estimated payload bytes
	Entries       int   // current entry count
}

// HitRatio returns hits / (hits + misses), or 0.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// OperationStats are per-operation counters, the view an administrator
// tuning the per-operation policy (Section 3.2) needs: which operations
// hit, which bypass, which churn.
type OperationStats struct {
	Hits   int64
	Misses int64
	Stores int64
	Bypass int64
}

// HitRatio returns hits / (hits + misses), or 0.
func (s OperationStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// keyDigest is the fixed-size form a cache key is reduced to: two
// independently seeded 64-bit maphash values. The low word routes to a
// shard; the full 128 bits are the table key, so entry lookup verifies
// both halves and never retains a multi-KB XML-message key verbatim.
// Two distinct keys alias only if they collide in all 128 bits under
// both per-cache seeds — with n live keys the probability is about
// n²/2¹²⁹, far below the error rates of the hardware the cache runs
// on; see DESIGN.md §5d for the collision-handling rationale.
type keyDigest struct {
	hi, lo uint64
}

// entry is one cache entry, a node in its shard's LRU list.
type entry struct {
	digest  keyDigest
	payload any
	size    int
	expires time.Time // zero means never
	store   rep.ValueStore
	// ttl is the lifetime the entry was stored with, reused when a 304
	// refresh arrives without fresh server lifetime headers.
	ttl time.Duration
	// lastModified is the response's Last-Modified validator; a stale
	// entry with a validator can be revalidated instead of refetched.
	lastModified time.Time
	// stamps are the entry's dependency epochs, snapshotted before the
	// backend read that produced the payload (Config.Invalidator). A
	// stamp that no longer matches its live epoch means a declared
	// write landed after the snapshot: the entry is write-invalidated
	// and must never be served — not as a hit, not stale-on-error, not
	// via 304 refresh. Empty for operations with no declared read set.
	stamps []invalidate.Stamp

	prev, next *entry
}

// expired reports whether the entry is past its TTL at now.
func (e *entry) expired(now time.Time) bool {
	return !e.expires.IsZero() && now.After(e.expires)
}

// shard is one independent slice of the cache: its own lock, table,
// LRU list, byte budget, and coalescing flights. Shards never take each
// other's locks, so operations on different shards run fully in
// parallel.
type shard struct {
	// limEntries and limBytes are this shard's slice of the global
	// budgets, fixed at construction (written before the cache is
	// published, read-only afterwards). -1 means unbounded.
	limEntries int
	limBytes   int

	// nbytes and nentries mirror the guarded structure below; they are
	// updated inside the critical sections but read lock-free by Stats
	// and Len, so snapshots never contend with the hit path.
	nbytes   atomic.Int64
	nentries atomic.Int64

	// flightMu guards flights; it is separate from mu so followers can
	// wait on a flight without holding the structural lock.
	flightMu sync.Mutex
	flights  map[keyDigest]*flight

	mu    sync.Mutex
	table map[keyDigest]*entry
	// LRU list: head is most recent, tail least recent. Sentinel-free,
	// nil-terminated both ways.
	head *entry
	tail *entry
}

// Cache is the response cache. It implements client.Handler.
type Cache struct {
	keygen         rep.KeyGenerator
	keyapp         rep.KeyAppender // non-nil when keygen supports append-style keys
	store          rep.ValueStore
	policy         Policy
	defaultTTL     time.Duration
	maxEntries     int
	maxBytes       int
	revalidate     bool
	honorServerTTL bool
	staleIfError   time.Duration
	coalesce       bool
	inval          *invalidate.Invalidator
	now            func() time.Time

	// tiers is the remote tier stack (Config.Tiers), wire the selector
	// encoding/decoding entries for it, tierm the per-tier counters
	// parallel to tiers.
	tiers []tier.Tier
	wire  rep.WireSelector
	tierm []tierCounters

	// seed1/seed2 are the per-cache maphash seeds behind keyDigest;
	// shardMask selects a shard from a digest's low word.
	seed1, seed2 maphash.Seed
	shardMask    uint64
	shards       []shard

	// reg is the metrics registry (never nil; Config.Obs or a private
	// one). m holds its counters backing Stats, resolved once. timed
	// reports whether stage latency recording is on: only when the
	// caller supplied a registry or tracer, so the default path pays no
	// clock reads.
	reg    *obs.Registry
	m      cacheCounters
	tracer obs.Tracer
	timed  bool
}

// cacheCounters are the registry counters backing Stats, one per field,
// resolved once at construction so the hot path never hashes a name.
type cacheCounters struct {
	hits          *obs.Counter
	misses        *obs.Counter
	stores        *obs.Counter
	expirations   *obs.Counter
	evictions     *obs.Counter
	revalidations *obs.Counter
	staleServes   *obs.Counter
	invalidations *obs.Counter
	staleRefused  *obs.Counter
	coalesced     *obs.Counter
	errors        *obs.Counter
	bypass        *obs.Counter
	tierHits      *obs.Counter
	tierErrors    *obs.Counter
	tierRefused   *obs.Counter
}

// newCacheCounters resolves the Stats counters in reg.
func newCacheCounters(reg *obs.Registry) cacheCounters {
	return cacheCounters{
		hits:          reg.Counter("core.hits"),
		misses:        reg.Counter("core.misses"),
		stores:        reg.Counter("core.stores"),
		expirations:   reg.Counter("core.expirations"),
		evictions:     reg.Counter("core.evictions"),
		revalidations: reg.Counter("core.revalidations"),
		staleServes:   reg.Counter("core.stale_serves"),
		invalidations: reg.Counter("core.invalidations"),
		staleRefused:  reg.Counter("core.stale_refused"),
		coalesced:     reg.Counter("core.coalesced"),
		errors:        reg.Counter("core.errors"),
		bypass:        reg.Counter("core.bypass"),
		tierHits:      reg.Counter("core.tier_hits"),
		tierErrors:    reg.Counter("core.tier_errors"),
		tierRefused:   reg.Counter("core.tier_put_refused"),
	}
}

var _ client.Handler = (*Cache)(nil)

// shardCount resolves the shard count for a config: the requested (or
// default) count rounded up to a power of two, then clamped down so a
// bounded cache never has more shards than budget — every shard's
// slice of MaxEntries must hold at least one entry, or keys routed to
// a zero-budget shard could never be cached.
func shardCount(cfg Config) int {
	n := cfg.Shards
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
		if n > 64 {
			n = 64
		}
	}
	n = ceilPow2(n)
	if cfg.MaxEntries > 0 && n > cfg.MaxEntries {
		n = floorPow2(cfg.MaxEntries)
	}
	if cfg.MaxBytes > 0 && n > cfg.MaxBytes {
		n = floorPow2(cfg.MaxBytes)
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (n ≥ 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// floorPow2 rounds n down to the previous power of two (n ≥ 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p <<= 1
	}
	return p
}

// sliceBudget splits a global budget across n shards: shard i receives
// total/n, with the remainder spread one-per-shard from the front so
// the slices sum exactly to the global bound. A zero total (unbounded)
// yields -1 (unbounded) for every shard.
func sliceBudget(total, n, i int) int {
	if total <= 0 {
		return -1
	}
	b := total / n
	if i < total%n {
		b++
	}
	return b
}

// New builds a Cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	now := clock.Or(cfg.Clock)
	reg := obs.Or(cfg.Obs)
	nsh := shardCount(cfg)
	if cfg.Store == nil {
		sel, err := rep.NewAdaptiveSelector(rep.SelectorConfig{
			Registry: cfg.Rep,
			// Score payload size against one shard's slice of the byte
			// budget: that is the capacity an entry actually competes
			// for. Unbounded caches (-1) keep the selector's default.
			ByteBudget: int64(sliceBudget(cfg.MaxBytes, nsh, 0)),
			Clock:      cfg.Clock,
			Obs:        cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		cfg.Store = sel
	}
	c := &Cache{
		keygen:         cfg.KeyGen,
		store:          cfg.Store,
		policy:         cfg.Policy,
		defaultTTL:     cfg.DefaultTTL,
		maxEntries:     cfg.MaxEntries,
		maxBytes:       cfg.MaxBytes,
		revalidate:     cfg.Revalidate,
		honorServerTTL: cfg.HonorServerTTL,
		staleIfError:   cfg.StaleIfError,
		coalesce:       cfg.Coalesce,
		inval:          cfg.Invalidator,
		now:            now,
		seed1:          maphash.MakeSeed(),
		seed2:          maphash.MakeSeed(),
		shardMask:      uint64(nsh - 1),
		shards:         make([]shard, nsh),
		reg:            reg,
		m:              newCacheCounters(reg),
		tracer:         cfg.Tracer,
		timed:          cfg.Obs != nil || cfg.Tracer != nil,
	}
	if ka, ok := cfg.KeyGen.(rep.KeyAppender); ok {
		c.keyapp = ka
	}
	if len(cfg.Tiers) > 0 {
		c.tiers = cfg.Tiers
		c.wire = resolveWire(cfg.Store, cfg.Rep)
		c.tierm = make([]tierCounters, len(cfg.Tiers))
		tiers := cfg.Tiers
		tierm := c.tierm
		reg.SetInspection("tiers", func() any {
			type tierView struct {
				Remote tier.Stats // the tier's own view (traffic, capacity)
				Local  tier.Stats // this cache's view of it (hits, misses, errors, stores)
			}
			out := make(map[string]tierView, len(tiers))
			for i, t := range tiers {
				out[t.Name()] = tierView{
					Remote: t.TierStats(),
					Local: tier.Stats{
						Hits:   int64(tierm[i].hits.Load()),
						Misses: int64(tierm[i].misses.Load()),
						Errors: int64(tierm[i].errors.Load()),
						Stores: int64(tierm[i].stores.Load()),
					},
				}
			}
			return out
		})
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.limEntries = sliceBudget(cfg.MaxEntries, nsh, i)
		sh.limBytes = sliceBudget(cfg.MaxBytes, nsh, i)
		//lint:ignore lockguard init-before-publish: the cache is not visible to any other goroutine yet
		sh.flights = make(map[keyDigest]*flight)
		//lint:ignore lockguard init-before-publish: the cache is not visible to any other goroutine yet
		sh.table = make(map[keyDigest]*entry)
	}
	return c, nil
}

// MustNew is New panicking on configuration errors; for wiring in
// examples and benchmarks where the config is static.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Shards returns the number of shards the cache was built with.
func (c *Cache) Shards() int { return len(c.shards) }

// shard routes a digest to its shard.
//
//lint:hotpath
func (c *Cache) shard(d keyDigest) *shard {
	return &c.shards[d.lo&c.shardMask]
}

// keyBufPool recycles the scratch buffers append-style key generation
// writes into, so a lookup hashes the key bytes without allocating.
var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// digestFor reduces an invocation's cache key to its digest. With an
// append-capable generator the key bytes live only in a pooled scratch
// buffer; otherwise the generator's Key string is hashed and dropped.
//
//lint:hotpath
func (c *Cache) digestFor(ictx *client.Context) (keyDigest, error) {
	if c.keyapp != nil {
		bp := keyBufPool.Get().(*[]byte)
		b, err := c.keyapp.AppendKey((*bp)[:0], ictx)
		if err != nil {
			keyBufPool.Put(bp)
			return keyDigest{}, err
		}
		d := keyDigest{hi: maphash.Bytes(c.seed1, b), lo: maphash.Bytes(c.seed2, b)}
		*bp = b[:0] // keep any growth for the next lookup
		keyBufPool.Put(bp)
		return d, nil
	}
	key, err := c.keygen.Key(ictx)
	if err != nil {
		return keyDigest{}, err
	}
	return keyDigest{hi: maphash.String(c.seed1, key), lo: maphash.String(c.seed2, key)}, nil
}

// Stats returns a snapshot of the cache counters, read from the
// metrics registry and the per-shard structure mirrors. Each value is
// individually exact; a snapshot taken while invocations are in flight
// may straddle an update. Stats takes no shard locks, so it never
// contends with the hit path.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:          c.m.hits.Load(),
		Misses:        c.m.misses.Load(),
		Stores:        c.m.stores.Load(),
		Expirations:   c.m.expirations.Load(),
		Evictions:     c.m.evictions.Load(),
		Revalidations: c.m.revalidations.Load(),
		StaleServes:   c.m.staleServes.Load(),
		Invalidations: c.m.invalidations.Load(),
		StaleRefused:  c.m.staleRefused.Load(),
		Coalesced:     c.m.coalesced.Load(),
		Errors:        c.m.errors.Load(),
		Bypass:        c.m.bypass.Load(),
		TierHits:      c.m.tierHits.Load(),
		TierErrors:    c.m.tierErrors.Load(),
	}
	for i := range c.shards {
		s.Bytes += int(c.shards[i].nbytes.Load())
		s.Entries += int(c.shards[i].nentries.Load())
	}
	return s
}

// StatsByOperation returns a snapshot of per-operation counters, read
// from the metrics registry.
func (c *Cache) StatsByOperation() map[string]OperationStats {
	snap := c.reg.Snapshot()
	out := make(map[string]OperationStats, len(snap.Operations))
	for op, s := range snap.Operations {
		out[op] = OperationStats{
			Hits:   s.Hits,
			Misses: s.Misses,
			Stores: s.Stores,
			Bypass: s.Bypass,
		}
	}
	return out
}

// Obs returns the cache's metrics registry: the one supplied via
// Config.Obs, or the private default. Serve it with obs.Handler to get
// the /debug/wscache endpoint for a cache that was not built with a
// shared registry.
func (c *Cache) Obs() *obs.Registry { return c.reg }

// observe records one timed stage into the registry histograms and the
// tracer; callers gate on c.timed so the untimed path pays nothing.
func (c *Cache) observe(op string, stage obs.Stage, rep string, d time.Duration, err error) {
	c.reg.Stage(stage, rep, d, err)
	if c.tracer != nil {
		c.tracer.OnStage(op, stage, rep, d, err)
	}
}

// Len returns the current number of entries, summed from the per-shard
// mirrors without taking any shard lock.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		n += int(c.shards[i].nentries.Load())
	}
	return n
}

// Clear discards all entries, shard by shard.
func (c *Cache) Clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.table = make(map[keyDigest]*entry)
		sh.head, sh.tail = nil, nil
		sh.nbytes.Store(0)
		sh.nentries.Store(0)
		sh.mu.Unlock()
	}
}

// HandleInvoke implements client.Handler: the cache lookup and fill
// logic described in Section 3.3 and Figure 1.
func (c *Cache) HandleInvoke(ictx *client.Context, next client.Invoker) error {
	op := c.policy.For(ictx.Operation)
	if !op.Cacheable {
		c.m.bypass.Add(1)
		c.reg.Op(ictx.Operation).Bypass.Add(1)
		// Write operations are typically uncacheable, so the bypass
		// path is where write-through calls flow: commit their declared
		// write sets so dependent entries invalidate.
		err := next(ictx)
		c.commitWrite(ictx, err)
		return err
	}

	var start time.Time
	if c.timed {
		start = c.now()
	}
	d, err := c.digestFor(ictx)
	if c.timed {
		c.observe(ictx.Operation, obs.StageKeyGen, c.keygen.Name(), c.now().Sub(start), err)
	}
	if err != nil {
		// Fail open: an ungeneratable key means this request cannot be
		// cached, not that it cannot be served.
		c.m.errors.Add(1)
		return next(ictx)
	}

	if result, ok := c.lookup(d, ictx.Operation); ok {
		ictx.Result = result
		ictx.CacheHit = true
		c.reg.Op(ictx.Operation).Hits.Add(1)
		return nil
	}
	c.reg.Op(ictx.Operation).Misses.Add(1)

	if c.coalesce {
		return c.invokeCoalesced(d, op, ictx, next)
	}
	return c.invokeMiss(d, op, ictx, next)
}

// invokeMiss drives a miss through the pivot: conditional-request
// setup, the invocation itself, stale-on-error degradation, 304
// refresh, and the fill.
func (c *Cache) invokeMiss(d keyDigest, op OperationPolicy, ictx *client.Context, next client.Invoker) error {
	// Remote tiers sit between the L1 miss and the origin: another
	// process may already have paid the backend round trip and the
	// response processing for this exact request. The tier key is
	// derived lazily — only misses need the cross-process form.
	var tk tier.Key
	haveTiers := len(c.tiers) > 0
	if haveTiers {
		k, err := c.tierKeyFor(ictx)
		if err != nil {
			haveTiers = false
		} else {
			tk = k
			if result, ok := c.tierServe(d, tk, ictx); ok {
				ictx.Result = result
				ictx.CacheHit = true
				return nil
			}
		}
	}

	// Dependency stamps are snapshotted BEFORE the backend read: a
	// declared write racing this invocation bumps its epochs after its
	// backend write completes, so whichever data the backend serves us,
	// the filled entry is stamped pre-write and a later hit re-checks it
	// against the advanced epoch. Conservative misses, never stale hits.
	// The per-tier snapshot (the daemon epochs this process has
	// mirrored) obeys the same ordering for the same reason.
	stamps := c.readStamps(ictx)
	var tstamps [][]tier.Stamp
	if haveTiers {
		tstamps = c.tierStamps(tk, ictx)
	}

	// A stale entry with a validator turns this miss into a conditional
	// request (If-Modified-Since): the server may answer 304 instead of
	// recomputing and shipping the response.
	if c.revalidate {
		if lm, ok := c.staleValidator(d); ok {
			if ictx.RequestHeader == nil {
				ictx.RequestHeader = make(http.Header, 1)
			}
			ictx.RequestHeader.Set("If-Modified-Since", lm.UTC().Format(http.TimeFormat))
		}
	}

	err := c.invokeTimed(ictx, next)
	c.commitWrite(ictx, err)
	if err != nil {
		if result, ok := c.staleOnError(d, ictx.Operation, err); ok {
			ictx.Result = result
			ictx.CacheHit = true
			ictx.ServedStale = true
			return nil
		}
		return err
	}

	if ictx.NotModified {
		if result, ok := c.refreshStale(d, op, ictx); ok {
			ictx.Result = result
			ictx.CacheHit = true
			return nil
		}
		// The stale entry backing the conditional request is gone —
		// evicted, swept, or write-invalidated between the header setup
		// and the 304 answer. The 304 has no body, so retry
		// unconditionally instead of failing the invocation.
		ictx.RequestHeader.Del("If-Modified-Since")
		ictx.NotModified = false
		stamps = c.readStamps(ictx)
		if haveTiers {
			tstamps = c.tierStamps(tk, ictx)
		}
		err = c.invokeTimed(ictx, next)
		c.commitWrite(ictx, err)
		if err != nil {
			return err
		}
		if ictx.NotModified {
			return fmt.Errorf("core: server answered 304 to an unconditional request for operation %s", ictx.Operation)
		}
	}

	c.fill(d, op, ictx, stamps)
	if haveTiers {
		c.tierFill(tk, op, ictx, tstamps)
	}
	return nil
}

// invokeTimed runs the rest of the handler chain, timing the invoke
// stage: serialize, transport (with retries), parse, deserialize.
func (c *Cache) invokeTimed(ictx *client.Context, next client.Invoker) error {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	err := next(ictx)
	if c.timed {
		c.observe(ictx.Operation, obs.StageInvoke, "", c.now().Sub(start), err)
	}
	return err
}

// staleValidator returns the Last-Modified validator of an expired
// entry for the digest, if one is retained for revalidation. A
// write-invalidated entry is refused: its representation is known to
// predate a committed write, so a 304 must not be allowed to resurrect
// it — the invocation proceeds unconditional and refetches.
func (c *Cache) staleValidator(d keyDigest) (time.Time, bool) {
	sh := c.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.table[d]
	if !ok || e.lastModified.IsZero() || !e.expired(c.now()) {
		return time.Time{}, false
	}
	if invalidate.Stale(e.stamps) {
		sh.removeLocked(e)
		c.m.invalidations.Add(1)
		return time.Time{}, false
	}
	return e.lastModified, true
}

// refreshStale extends a stale entry's TTL after a 304 answer and
// materializes its payload.
func (c *Cache) refreshStale(d keyDigest, op OperationPolicy, ictx *client.Context) (any, bool) {
	sh := c.shard(d)
	sh.mu.Lock()
	e, ok := sh.table[d]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	if invalidate.Stale(e.stamps) {
		// A declared write landed between the conditional-request setup
		// and the 304 answer; the 304 vouches for the server resource
		// the validator describes, not for our invalidated dependency
		// snapshot. Drop the entry and let the caller refetch.
		sh.removeLocked(e)
		sh.mu.Unlock()
		c.m.invalidations.Add(1)
		c.m.staleRefused.Add(1)
		return nil, false
	}
	ttl := c.entryTTL(op, ictx)
	if ttl == 0 {
		// A 304 without lifetime headers: extend by the entry's
		// original lifetime rather than pinning it forever.
		ttl = e.ttl
	}
	if ttl > 0 {
		e.expires = c.now().Add(ttl)
	} else {
		e.expires = time.Time{}
	}
	e.ttl = ttl
	sh.moveToFrontLocked(e)
	payload, store := e.payload, e.store
	sh.mu.Unlock()
	c.m.revalidations.Add(1)
	c.m.hits.Add(1)

	result, ok := c.loadPayload(ictx.Operation, store, payload)
	if !ok {
		c.m.errors.Add(1)
		return nil, false
	}
	return result, true
}

// loadPayload materializes a stored payload, timing the copy-out stage
// and counting a per-representation hit (serve) or error.
//
//lint:hotpath
func (c *Cache) loadPayload(op string, store rep.ValueStore, payload any) (any, bool) {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	result, err := store.Load(payload)
	if c.timed {
		// Per-representation counters feed only the observability
		// snapshot (Stats never reads them), so like stage timing they
		// are recorded only on instrumented caches — this keeps the
		// default hit path free of the registry lookup.
		c.observe(op, obs.StageCopyOut, store.Name(), c.now().Sub(start), err)
		if err != nil {
			c.reg.Rep(store.Name()).Errors.Add(1)
		} else {
			c.reg.Rep(store.Name()).Hits.Add(1)
		}
	}
	if err != nil {
		return nil, false
	}
	return result, true
}

// entryTTL resolves the TTL for a fill or refresh: server headers win
// when HonorServerTTL is set, then the operation policy, then the
// default.
func (c *Cache) entryTTL(op OperationPolicy, ictx *client.Context) time.Duration {
	if c.honorServerTTL && ictx.ResponseHeader != nil {
		if lifetime, ok := transport.FreshnessLifetime(ictx.ResponseHeader, c.now()); ok {
			return lifetime
		}
	}
	if op.TTL != 0 {
		return op.TTL
	}
	return c.defaultTTL
}

// lookup returns the materialized application object for the digest if
// a fresh entry exists; op names the operation for stage attribution.
//
//lint:hotpath
func (c *Cache) lookup(d keyDigest, op string) (any, bool) {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	sh := c.shard(d)
	//lint:ignore hotpath the per-shard lock is the design: LRU move-to-front mutates on every hit, and sharding bounds contention
	sh.mu.Lock()
	e, ok := sh.table[d]
	if !ok {
		sh.mu.Unlock()
		c.m.misses.Add(1)
		if c.timed {
			c.observe(op, obs.StageLookup, "", c.now().Sub(start), nil)
		}
		return nil, false
	}
	if invalidate.Stale(e.stamps) {
		// A dependency epoch advanced past the entry's stamps: a
		// declared write committed after this entry's backend read.
		// Epochs only grow, so the entry can never become fresh again —
		// drop it outright (unlike TTL expiry there is nothing to
		// revalidate or serve degraded) and report a miss.
		sh.removeLocked(e)
		sh.mu.Unlock()
		c.m.invalidations.Add(1)
		c.m.misses.Add(1)
		if c.timed {
			c.observe(op, obs.StageLookup, "", c.now().Sub(start), nil)
		}
		return nil, false
	}
	if now := c.now(); e.expired(now) {
		// An expired entry may still be useful: with revalidation on, a
		// validator-bearing entry can be refreshed by a 304; with
		// StaleIfError set, it can be served in degraded mode until the
		// grace window passes. Only a useless entry is dropped.
		if !c.retainStaleLocked(e, now) {
			sh.removeLocked(e)
		}
		sh.mu.Unlock()
		c.m.expirations.Add(1)
		c.m.misses.Add(1)
		if c.timed {
			c.observe(op, obs.StageLookup, "", c.now().Sub(start), nil)
		}
		return nil, false
	}
	sh.moveToFrontLocked(e)
	payload, store := e.payload, e.store
	sh.mu.Unlock()
	c.m.hits.Add(1)
	if c.timed {
		c.observe(op, obs.StageLookup, "", c.now().Sub(start), nil)
	}

	// Materialize outside the lock: loads can be arbitrarily expensive
	// (XML parse for the XML-message representation).
	result, ok := c.loadPayload(op, store, payload)
	if !ok {
		// A payload that no longer loads is dropped; report a miss so
		// the pivot refills the entry.
		//lint:ignore hotpath load-failure path only — runs once per corrupt entry, never on a served hit
		sh.mu.Lock()
		if cur, ok := sh.table[d]; ok && cur == e {
			sh.removeLocked(cur)
		}
		sh.mu.Unlock()
		c.m.errors.Add(1)
		c.m.hits.Add(-1)
		c.m.misses.Add(1)
		return nil, false
	}
	return result, true
}

// fill stores a completed invocation's response. stamps are the
// dependency epochs snapshotted before the backend read (nil when no
// invalidator is configured or the operation declares no read set).
func (c *Cache) fill(d keyDigest, op OperationPolicy, ictx *client.Context, stamps []invalidate.Stamp) {
	store := c.store
	if op.Store != nil {
		store = op.Store
	}
	var start time.Time
	if c.timed {
		start = c.now()
	}
	payload, size, err := store.Store(ictx)
	if c.timed {
		c.observe(ictx.Operation, obs.StageCopyIn, store.Name(), c.now().Sub(start), err)
	}
	if err != nil {
		c.m.errors.Add(1)
		if c.timed {
			c.reg.Rep(store.Name()).Errors.Add(1)
		}
		return
	}

	ttl := c.entryTTL(op, ictx)
	var expires time.Time
	if ttl > 0 {
		expires = c.now().Add(ttl)
	}
	var lastModified time.Time
	if ictx.ResponseHeader != nil {
		if lm := ictx.ResponseHeader.Get("Last-Modified"); lm != "" {
			if t, err := http.ParseTime(lm); err == nil {
				lastModified = t
			}
		}
	}

	sh := c.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.table[d]; ok {
		sh.removeLocked(old)
	}
	e := &entry{
		digest: d, payload: payload, size: size,
		expires: expires, store: store, ttl: ttl, lastModified: lastModified,
		stamps: stamps,
	}
	sh.table[d] = e
	sh.pushFrontLocked(e)
	sh.nbytes.Add(int64(size))
	sh.nentries.Add(1)
	c.m.stores.Add(1)
	c.reg.Op(ictx.Operation).Stores.Add(1)
	if c.timed {
		// A fill is the per-representation "miss": the entry was
		// populated with this representation.
		c.reg.Rep(store.Name()).Misses.Add(1)
	}
	sh.evictLocked(c.m.evictions)
}

// evictLocked removes least-recently-used entries until the shard is
// within its budget slice. Callers hold s.mu.
func (s *shard) evictLocked(evictions *obs.Counter) {
	for s.tail != nil {
		over := (s.limEntries >= 0 && int(s.nentries.Load()) > s.limEntries) ||
			(s.limBytes >= 0 && int(s.nbytes.Load()) > s.limBytes)
		if !over {
			return
		}
		victim := s.tail
		s.removeLocked(victim)
		evictions.Add(1)
	}
}

// pushFrontLocked inserts e at the head of the LRU list. Callers hold
// s.mu.
func (s *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// moveToFrontLocked marks e most recently used. Callers hold s.mu.
func (s *shard) moveToFrontLocked(e *entry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}

// removeLocked deletes e from the table and list. Callers hold s.mu.
func (s *shard) removeLocked(e *entry) {
	delete(s.table, e.digest)
	s.unlinkLocked(e)
	s.nbytes.Add(-int64(e.size))
	s.nentries.Add(-1)
	e.payload = nil
}

// unlinkLocked detaches e from the list. Callers hold s.mu.
func (s *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
