// Package core implements the paper's primary contribution: a response
// cache for Web services client middleware that selects the optimal
// data representation for cache keys and cache values (Takase &
// Tatsubori, ICDCS 2004).
//
// The cache installs into the client handler chain (package client). On
// an invocation it generates a key from the request (endpoint URL,
// operation name, and all parameter names and values — Section 4.1),
// looks it up, and on a fresh hit materializes the stored value back
// into an application object using the entry's value representation;
// the serialize/transport/parse/deserialize pipeline is skipped to the
// extent the representation allows (Section 3.3).
//
// Key representations (Table 2): the request XML message, the
// binary-serialized parameters (Go analog of Java serialization; an
// encoding/gob variant is retained for ablation), or a canonical
// string (Go analog of toString).
//
// Value representations (Table 3): the response XML message, the
// recorded SAX event sequence (naive or compact), the DOM tree, the
// binary-serialized application object, a reflection deep copy, a
// Cloner deep copy, or a shared reference for read-only/immutable
// objects. AutoStore picks per result type at run time, implementing
// the optimal configuration of Section 6.
package core

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/transport"
)

// Config configures a response cache.
type Config struct {
	// KeyGen generates cache keys; required.
	KeyGen KeyGenerator
	// Store is the default value representation; required.
	Store ValueStore
	// Policy controls per-operation cacheability; zero value caches
	// every operation with DefaultTTL.
	Policy Policy
	// DefaultTTL applies when neither the policy nor the store dictates
	// a TTL. Zero means entries never expire.
	DefaultTTL time.Duration
	// MaxEntries bounds the number of cache entries; 0 means unbounded.
	MaxEntries int
	// MaxBytes bounds the estimated total payload bytes; 0 means
	// unbounded.
	MaxBytes int
	// Revalidate enables the HTTP 1.1 consistency mechanism the paper
	// points to (Section 3.2): expired entries whose responses carried
	// a Last-Modified validator are kept as stale, and the next request
	// is sent conditionally (If-Modified-Since). A 304 answer refreshes
	// the entry's TTL and serves the stored representation, paying the
	// round trip but not the response processing.
	Revalidate bool
	// HonorServerTTL derives entry TTLs from the response's
	// Cache-Control max-age / Expires headers when present, overriding
	// DefaultTTL and the operation policy.
	HonorServerTTL bool
	// StaleIfError enables degraded serving: when a miss's backend
	// invocation fails with a transport-level error (anything but a
	// SOAP fault), a TTL-expired entry still within this grace window
	// past its expiry is served instead of the error, flagged via
	// client.Context.ServedStale. Expired entries are retained (from
	// lookup and the sweeper) until the window passes. Zero disables.
	StaleIfError time.Duration
	// Coalesce collapses concurrent misses on one key into a single
	// backend invocation (singleflight): followers wait for the
	// leader's fill and are served from the cache, so a thundering herd
	// of identical requests costs one backend call.
	Coalesce bool
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
}

// Stats are cumulative cache counters. Retrieve a consistent snapshot
// with Cache.Stats.
type Stats struct {
	Hits          int64
	Misses        int64
	Stores        int64
	Expirations   int64
	Evictions     int64
	Revalidations int64 // stale entries refreshed by a 304 answer
	StaleServes   int64 // expired entries served because the backend failed
	Coalesced     int64 // misses satisfied by another in-flight invocation
	Errors        int64 // store/load failures that fell back to the pivot
	Bypass        int64 // invocations of uncacheable operations
	Bytes         int   // current estimated payload bytes
	Entries       int   // current entry count
}

// HitRatio returns hits / (hits + misses), or 0.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// OperationStats are per-operation counters, the view an administrator
// tuning the per-operation policy (Section 3.2) needs: which operations
// hit, which bypass, which churn.
type OperationStats struct {
	Hits   int64
	Misses int64
	Stores int64
	Bypass int64
}

// HitRatio returns hits / (hits + misses), or 0.
func (s OperationStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cache entry, a node in the LRU list.
type entry struct {
	key     string
	payload any
	size    int
	expires time.Time // zero means never
	store   ValueStore
	// ttl is the lifetime the entry was stored with, reused when a 304
	// refresh arrives without fresh server lifetime headers.
	ttl time.Duration
	// lastModified is the response's Last-Modified validator; a stale
	// entry with a validator can be revalidated instead of refetched.
	lastModified time.Time

	prev, next *entry
}

// expired reports whether the entry is past its TTL at now.
func (e *entry) expired(now time.Time) bool {
	return !e.expires.IsZero() && now.After(e.expires)
}

// Cache is the response cache. It implements client.Handler.
type Cache struct {
	keygen         KeyGenerator
	store          ValueStore
	policy         Policy
	defaultTTL     time.Duration
	maxEntries     int
	maxBytes       int
	revalidate     bool
	honorServerTTL bool
	staleIfError   time.Duration
	coalesce       bool
	now            func() time.Time

	// flights tracks in-flight miss invocations for coalescing; it has
	// its own lock so followers can wait without holding c.mu.
	flightMu sync.Mutex
	flights  map[string]*flight

	mu    sync.Mutex
	table map[string]*entry
	// LRU list: head is most recent, tail least recent. Sentinel-free,
	// nil-terminated both ways.
	head, tail *entry
	bytes      int
	stats      Stats
	opStats    map[string]*OperationStats
}

var _ client.Handler = (*Cache)(nil)

// New builds a Cache from cfg.
func New(cfg Config) (*Cache, error) {
	if cfg.KeyGen == nil {
		return nil, fmt.Errorf("core: Config.KeyGen is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("core: Config.Store is required")
	}
	now := clock.Or(cfg.Clock)
	return &Cache{
		keygen:         cfg.KeyGen,
		store:          cfg.Store,
		policy:         cfg.Policy,
		defaultTTL:     cfg.DefaultTTL,
		maxEntries:     cfg.MaxEntries,
		maxBytes:       cfg.MaxBytes,
		revalidate:     cfg.Revalidate,
		honorServerTTL: cfg.HonorServerTTL,
		staleIfError:   cfg.StaleIfError,
		coalesce:       cfg.Coalesce,
		now:            now,
		flights:        make(map[string]*flight),
		table:          make(map[string]*entry),
		opStats:        make(map[string]*OperationStats),
	}, nil
}

// MustNew is New panicking on configuration errors; for wiring in
// examples and benchmarks where the config is static.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Bytes = c.bytes
	s.Entries = len(c.table)
	return s
}

// StatsByOperation returns a snapshot of per-operation counters.
func (c *Cache) StatsByOperation() map[string]OperationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]OperationStats, len(c.opStats))
	for op, s := range c.opStats {
		out[op] = *s
	}
	return out
}

// countOpLocked bumps a per-operation counter; callers hold c.mu.
func (c *Cache) countOpLocked(op string, f func(*OperationStats)) {
	s, ok := c.opStats[op]
	if !ok {
		s = &OperationStats{}
		c.opStats[op] = s
	}
	f(s)
}

// countOp bumps a per-operation counter under the lock.
func (c *Cache) countOp(op string, f func(*OperationStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.countOpLocked(op, f)
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.table)
}

// Clear discards all entries.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.table = make(map[string]*entry)
	c.head, c.tail = nil, nil
	c.bytes = 0
}

// HandleInvoke implements client.Handler: the cache lookup and fill
// logic described in Section 3.3 and Figure 1.
func (c *Cache) HandleInvoke(ictx *client.Context, next client.Invoker) error {
	op := c.policy.For(ictx.Operation)
	if !op.Cacheable {
		c.mu.Lock()
		c.stats.Bypass++
		c.countOpLocked(ictx.Operation, func(s *OperationStats) { s.Bypass++ })
		c.mu.Unlock()
		return next(ictx)
	}

	key, err := c.keygen.Key(ictx)
	if err != nil {
		// Fail open: an ungeneratable key means this request cannot be
		// cached, not that it cannot be served.
		c.count(func(s *Stats) { s.Errors++ })
		return next(ictx)
	}

	if result, ok := c.lookup(key); ok {
		ictx.Result = result
		ictx.CacheHit = true
		c.countOp(ictx.Operation, func(s *OperationStats) { s.Hits++ })
		return nil
	}
	c.countOp(ictx.Operation, func(s *OperationStats) { s.Misses++ })

	if c.coalesce {
		return c.invokeCoalesced(key, op, ictx, next)
	}
	return c.invokeMiss(key, op, ictx, next)
}

// invokeMiss drives a miss through the pivot: conditional-request
// setup, the invocation itself, stale-on-error degradation, 304
// refresh, and the fill.
func (c *Cache) invokeMiss(key string, op OperationPolicy, ictx *client.Context, next client.Invoker) error {
	// A stale entry with a validator turns this miss into a conditional
	// request (If-Modified-Since): the server may answer 304 instead of
	// recomputing and shipping the response.
	if c.revalidate {
		if lm, ok := c.staleValidator(key); ok {
			if ictx.RequestHeader == nil {
				ictx.RequestHeader = make(http.Header, 1)
			}
			ictx.RequestHeader.Set("If-Modified-Since", lm.UTC().Format(http.TimeFormat))
		}
	}

	if err := next(ictx); err != nil {
		if result, ok := c.staleOnError(key, err); ok {
			ictx.Result = result
			ictx.CacheHit = true
			ictx.ServedStale = true
			return nil
		}
		return err
	}

	if ictx.NotModified {
		if result, ok := c.refreshStale(key, op, ictx); ok {
			ictx.Result = result
			ictx.CacheHit = true
			return nil
		}
		return fmt.Errorf("core: server answered 304 but no stale entry for operation %s", ictx.Operation)
	}

	c.fill(key, op, ictx)
	return nil
}

// staleValidator returns the Last-Modified validator of an expired
// entry for key, if one is retained for revalidation.
func (c *Cache) staleValidator(key string) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.table[key]
	if !ok || e.lastModified.IsZero() || !e.expired(c.now()) {
		return time.Time{}, false
	}
	return e.lastModified, true
}

// refreshStale extends a stale entry's TTL after a 304 answer and
// materializes its payload.
func (c *Cache) refreshStale(key string, op OperationPolicy, ictx *client.Context) (any, bool) {
	c.mu.Lock()
	e, ok := c.table[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	ttl := c.entryTTL(op, ictx)
	if ttl == 0 {
		// A 304 without lifetime headers: extend by the entry's
		// original lifetime rather than pinning it forever.
		ttl = e.ttl
	}
	if ttl > 0 {
		e.expires = c.now().Add(ttl)
	} else {
		e.expires = time.Time{}
	}
	e.ttl = ttl
	c.moveToFrontLocked(e)
	payload, store := e.payload, e.store
	c.stats.Revalidations++
	c.stats.Hits++
	c.mu.Unlock()

	result, err := store.Load(payload)
	if err != nil {
		c.count(func(s *Stats) { s.Errors++ })
		return nil, false
	}
	return result, true
}

// entryTTL resolves the TTL for a fill or refresh: server headers win
// when HonorServerTTL is set, then the operation policy, then the
// default.
func (c *Cache) entryTTL(op OperationPolicy, ictx *client.Context) time.Duration {
	if c.honorServerTTL && ictx.ResponseHeader != nil {
		if lifetime, ok := transport.FreshnessLifetime(ictx.ResponseHeader, c.now()); ok {
			return lifetime
		}
	}
	if op.TTL != 0 {
		return op.TTL
	}
	return c.defaultTTL
}

// lookup returns the materialized application object for key if a fresh
// entry exists.
func (c *Cache) lookup(key string) (any, bool) {
	c.mu.Lock()
	e, ok := c.table[key]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	if now := c.now(); e.expired(now) {
		// An expired entry may still be useful: with revalidation on, a
		// validator-bearing entry can be refreshed by a 304; with
		// StaleIfError set, it can be served in degraded mode until the
		// grace window passes. Only a useless entry is dropped.
		if !c.retainStaleLocked(e, now) {
			c.removeLocked(e)
		}
		c.stats.Expirations++
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.moveToFrontLocked(e)
	payload, store := e.payload, e.store
	c.stats.Hits++
	c.mu.Unlock()

	// Materialize outside the lock: loads can be arbitrarily expensive
	// (XML parse for the XML-message representation).
	result, err := store.Load(payload)
	if err != nil {
		// A payload that no longer loads is dropped; report a miss so
		// the pivot refills the entry.
		c.mu.Lock()
		if cur, ok := c.table[key]; ok && cur == e {
			c.removeLocked(cur)
		}
		c.stats.Errors++
		c.stats.Hits--
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	return result, true
}

// fill stores a completed invocation's response.
func (c *Cache) fill(key string, op OperationPolicy, ictx *client.Context) {
	store := c.store
	if op.Store != nil {
		store = op.Store
	}
	payload, size, err := store.Store(ictx)
	if err != nil {
		c.count(func(s *Stats) { s.Errors++ })
		return
	}

	ttl := c.entryTTL(op, ictx)
	var expires time.Time
	if ttl > 0 {
		expires = c.now().Add(ttl)
	}
	var lastModified time.Time
	if ictx.ResponseHeader != nil {
		if lm := ictx.ResponseHeader.Get("Last-Modified"); lm != "" {
			if t, err := http.ParseTime(lm); err == nil {
				lastModified = t
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.table[key]; ok {
		c.removeLocked(old)
	}
	e := &entry{
		key: key, payload: payload, size: size,
		expires: expires, store: store, ttl: ttl, lastModified: lastModified,
	}
	c.table[key] = e
	c.pushFrontLocked(e)
	c.bytes += size
	c.stats.Stores++
	c.countOpLocked(ictx.Operation, func(s *OperationStats) { s.Stores++ })
	c.evictLocked()
}

// count mutates stats under the lock.
func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

// evictLocked removes least-recently-used entries until the cache is
// within its bounds.
func (c *Cache) evictLocked() {
	for c.tail != nil {
		over := (c.maxEntries > 0 && len(c.table) > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)
		if !over {
			return
		}
		victim := c.tail
		c.removeLocked(victim)
		c.stats.Evictions++
	}
}

// pushFrontLocked inserts e at the head of the LRU list.
func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// moveToFrontLocked marks e most recently used.
func (c *Cache) moveToFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

// removeLocked deletes e from the table and list.
func (c *Cache) removeLocked(e *entry) {
	delete(c.table, e.key)
	c.unlinkLocked(e)
	c.bytes -= e.size
	e.payload = nil
}

// unlinkLocked detaches e from the list.
func (c *Cache) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
