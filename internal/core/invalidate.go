package core

import (
	"errors"

	"repro/internal/client"
	"repro/internal/invalidate"
	"repro/internal/soap"
)

// This file is the cache side of dependency-aware invalidation
// (Config.Invalidator; see package invalidate and DESIGN.md §5f). The
// cache's role is small and strictly ordered: snapshot read-set epochs
// before the backend read, stamp the fill with them, commit write sets
// after the write-through call, and treat any entry whose stamps have
// been overtaken as if it did not exist.

// readStamps snapshots the invocation's read-set epochs; nil when no
// invalidator is configured or the operation declares no read set.
func (c *Cache) readStamps(ictx *client.Context) []invalidate.Stamp {
	if c.inval == nil {
		return nil
	}
	return c.inval.ReadStamps(ictx.Operation, ictx.Params)
}

// commitWrite bumps the epochs of the invocation's declared write set
// after the write-through call has finished. The outcome rules are
// conservative: a success committed the write; a transport-level error
// leaves the outcome unknown (the request may have reached the backend
// before the connection died), so it invalidates too. Only a SOAP
// fault — the backend demonstrably alive, processing the call, and
// rejecting it — proves nothing was written and skips the bump.
func (c *Cache) commitWrite(ictx *client.Context, err error) {
	if c.inval == nil || !c.inval.WritesDeclared(ictx.Operation) {
		return
	}
	if err != nil {
		var f *soap.Fault
		if errors.As(err, &f) {
			return
		}
	}
	c.inval.CommitWrite(ictx.Operation, ictx.Params)
}

// Invalidator returns the cache's configured invalidator, nil when
// dependency-aware invalidation is off.
func (c *Cache) Invalidator() *invalidate.Invalidator { return c.inval }
