package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/invalidate"
	"repro/internal/soap"
)

// Operation and keyspace names shared by the core test suite. The
// values follow the WSDL do* convention, and the per-item keyspace
// prefix lives here once, as the epochgraph analyzer demands.
const (
	opGet = "doGet"
	opPut = "doPut"

	itemPrefix = "item:"
)

const (
	ksItems = invalidate.Keyspace("items")
	ksItemX = invalidate.Keyspace(itemPrefix + "x")
)

// testGraph declares opGet reading and opPut writing the per-item
// keyspace named by the q parameter.
func testGraph() *invalidate.Graph {
	ksOf := func(params []soap.Param) []invalidate.Keyspace {
		for _, p := range params {
			if p.Name == "q" {
				if s, ok := p.Value.(string); ok {
					return []invalidate.Keyspace{invalidate.Keyspace(itemPrefix + s)}
				}
			}
		}
		return nil
	}
	g := invalidate.NewGraph()
	g.Read(opGet, ksOf)
	g.Write(opPut, ksOf)
	return g
}

// newInvalCache builds a cache with the test graph installed and opGet
// cacheable, opPut an uncacheable write-through operation.
func newInvalCache(t *testing.T, f *fixture, mutate func(*Config)) (*Cache, *invalidate.Invalidator) {
	t.Helper()
	inv := invalidate.New(testGraph(), nil)
	c := newCache(t, f, func(cfg *Config) {
		cfg.Invalidator = inv
		cfg.Policy = Policy{
			Default:         OperationPolicy{Cacheable: false},
			DefaultExplicit: true,
			Operations:      map[string]OperationPolicy{opGet: {Cacheable: true}},
		}
		if mutate != nil {
			mutate(cfg)
		}
	})
	return c, inv
}

func TestWriteInvalidatesDependentEntry(t *testing.T) {
	f := newFixture(t)
	c, _ := newInvalCache(t, f, nil)
	next, calls := countingNext(f, t, func() any { return &item{Name: "v", Score: 1} })

	q := soap.Param{Name: "q", Value: "x"}
	if err := c.HandleInvoke(f.reqCtx(opGet, q), next); err != nil {
		t.Fatal(err)
	}
	ictx := f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if !ictx.CacheHit {
		t.Fatal("second get not a hit")
	}

	// Write-through call on the same keyspace: flows through the bypass
	// path (put is uncacheable) and must bump the epoch.
	if err := c.HandleInvoke(f.reqCtx(opPut, q), next); err != nil {
		t.Fatal(err)
	}

	ictx = f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if ictx.CacheHit {
		t.Error("get after put served from cache (stale-after-write)")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend calls = %d, want 3 (fill, put, refill)", got)
	}
	s := c.Stats()
	if s.Invalidations != 1 {
		t.Errorf("Stats.Invalidations = %d, want 1", s.Invalidations)
	}
	if s.Bypass != 1 {
		t.Errorf("Stats.Bypass = %d, want 1", s.Bypass)
	}

	// The refill is stamped with the post-write epoch and hits again.
	ictx = f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if !ictx.CacheHit {
		t.Error("get after refill not a hit")
	}
}

func TestWriteToOtherKeyspaceLeavesEntry(t *testing.T) {
	f := newFixture(t)
	c, _ := newInvalCache(t, f, nil)
	next, _ := countingNext(f, t, func() any { return &item{Name: "v", Score: 1} })

	if err := c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), next); err != nil {
		t.Fatal(err)
	}
	if err := c.HandleInvoke(f.reqCtx(opPut, soap.Param{Name: "q", Value: "other"}), next); err != nil {
		t.Fatal(err)
	}
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if !ictx.CacheHit {
		t.Error("write to an unrelated keyspace invalidated the entry")
	}
}

func TestWriteFaultDoesNotInvalidate(t *testing.T) {
	f := newFixture(t)
	c, inv := newInvalCache(t, f, nil)
	next, _ := countingNext(f, t, func() any { return &item{Name: "v", Score: 1} })

	q := soap.Param{Name: "q", Value: "x"}
	if err := c.HandleInvoke(f.reqCtx(opGet, q), next); err != nil {
		t.Fatal(err)
	}

	// A SOAP fault proves the backend rejected the write: no bump.
	fault := &soap.Fault{Code: "soapenv:Server", String: "rejected"}
	if err := c.HandleInvoke(f.reqCtx(opPut, q), failingNext(fault)); err == nil {
		t.Fatal("faulting put reported success")
	}
	if got := inv.Epoch(ksItemX); got != 0 {
		t.Errorf("epoch after faulted write = %d, want 0", got)
	}
	ictx := f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if !ictx.CacheHit {
		t.Error("faulted write invalidated the entry")
	}

	// A transport-level error leaves the outcome unknown: the write may
	// have reached the backend, so it invalidates conservatively.
	if err := c.HandleInvoke(f.reqCtx(opPut, q), failingNext(errors.New("conn reset"))); err == nil {
		t.Fatal("failing put reported success")
	}
	if got := inv.Epoch(ksItemX); got != 1 {
		t.Errorf("epoch after unknown-outcome write = %d, want 1", got)
	}
	ictx = f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, next); err != nil {
		t.Fatal(err)
	}
	if ictx.CacheHit {
		t.Error("unknown-outcome write did not invalidate the entry")
	}
}

func TestStaleOnErrorRefusesInvalidatedEntry(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c, inv := newInvalCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.StaleIfError = 10 * time.Minute
		cfg.Clock = clock.Now
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "old", Score: 1} })

	q := soap.Param{Name: "q", Value: "x"}
	if err := c.HandleInvoke(f.reqCtx(opGet, q), next); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Minute) // expired, inside the grace window

	// Without a write, degraded serving works.
	boom := errors.New("backend down")
	ictx := f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, failingNext(boom)); err != nil || !ictx.ServedStale {
		t.Fatalf("pre-write degraded serve: err=%v stale=%v", err, ictx.ServedStale)
	}

	// A write invalidated via a committed put is dropped at lookup time
	// (the eager path), so the interesting case for staleOnError is the
	// racing one: the write lands while the backend call is already
	// failing. The retained stale entry passed lookup's epoch check, but
	// degraded serving must re-check and refuse it.
	ictx = f.reqCtx(opGet, q)
	err := c.HandleInvoke(ictx, func(*client.Context) error {
		inv.Bump(ksItemX) // concurrent write during the outage
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("post-write degraded serve: err=%v, want %v", err, boom)
	}
	if ictx.ServedStale {
		t.Error("write-invalidated entry served stale")
	}
	s := c.Stats()
	if s.StaleRefused != 1 {
		t.Errorf("Stats.StaleRefused = %d, want 1", s.StaleRefused)
	}

	// And the eager path: a committed write followed by a failed read
	// surfaces the error too (the entry was dropped at lookup).
	if err := c.HandleInvoke(f.reqCtx(opGet, q), next); err != nil { // refill
		t.Fatal(err)
	}
	clock.Advance(3 * time.Minute)
	if err := c.HandleInvoke(f.reqCtx(opPut, q), next); err != nil {
		t.Fatal(err)
	}
	ictx = f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, failingNext(boom)); !errors.Is(err, boom) || ictx.ServedStale {
		t.Errorf("eager-drop degraded serve: err=%v stale=%v, want %v/false", err, ictx.ServedStale, boom)
	}
}

// validatorNext fabricates a backend with HTTP validators: full
// responses carry Last-Modified, and conditional requests are answered
// 304 (optionally committing a write first, to race the revalidation).
type validatorNext struct {
	f         *fixture
	t         *testing.T
	lastMod   time.Time
	onCond    func() // runs when a conditional request arrives
	full      atomic.Int64
	notMod    atomic.Int64
	answer304 bool
}

func (v *validatorNext) invoke(ictx *client.Context) error {
	if ictx.RequestHeader.Get("If-Modified-Since") != "" && v.answer304 {
		if v.onCond != nil {
			v.onCond()
		}
		v.notMod.Add(1)
		ictx.NotModified = true
		ictx.ResponseHeader = http.Header{}
		return nil
	}
	v.full.Add(1)
	full := v.f.ictx(v.t, ictx.Operation, &item{Name: fmt.Sprintf("v%d", v.full.Load()), Score: 1}, ictx.Params...)
	ictx.NotModified = false
	ictx.Result = full.Result
	ictx.ResponseXML = full.ResponseXML
	ictx.ResponseEvents = full.ResponseEvents
	ictx.ResponseHeader = http.Header{}
	ictx.ResponseHeader.Set("Last-Modified", v.lastMod.UTC().Format(http.TimeFormat))
	return nil
}

func TestRevalidationRefusesInvalidatedEntry(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c, _ := newInvalCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.Revalidate = true
		cfg.Clock = clock.Now
	})
	backend := &validatorNext{f: f, t: t, lastMod: time.Unix(500, 0), answer304: true}
	writeNext, _ := countingNext(f, t, func() any { return &item{Name: "w", Score: 1} })

	q := soap.Param{Name: "q", Value: "x"}
	if err := c.HandleInvoke(f.reqCtx(opGet, q), backend.invoke); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute) // stale, validator retained

	// A write invalidates the stale entry. The next get must NOT send a
	// conditional request (the server would answer 304 and resurrect
	// pre-write data); it must refetch unconditionally.
	if err := c.HandleInvoke(f.reqCtx(opPut, q), writeNext); err != nil {
		t.Fatal(err)
	}
	ictx := f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, backend.invoke); err != nil {
		t.Fatal(err)
	}
	if ictx.CacheHit {
		t.Error("invalidated stale entry served via revalidation")
	}
	if got := backend.notMod.Load(); got != 0 {
		t.Errorf("conditional requests = %d, want 0 (validator refused for invalidated entry)", got)
	}
	if got := backend.full.Load(); got != 2 {
		t.Errorf("full responses = %d, want 2", got)
	}
}

func TestRevalidation304RaceFallsBackToRefetch(t *testing.T) {
	f := newFixture(t)
	clock := newClock()
	c, inv := newInvalCache(t, f, func(cfg *Config) {
		cfg.DefaultTTL = time.Minute
		cfg.Revalidate = true
		cfg.Clock = clock.Now
	})
	backend := &validatorNext{f: f, t: t, lastMod: time.Unix(500, 0), answer304: true}
	// The write lands while the conditional request is in flight: the
	// entry passed the staleValidator check, the server answers 304, and
	// refreshStale must notice the bump and force an unconditional
	// refetch instead of refreshing pre-write data.
	backend.onCond = func() {
		inv.Bump(ksItemX)
		backend.answer304 = false // the refetch gets a full response
	}

	q := soap.Param{Name: "q", Value: "x"}
	if err := c.HandleInvoke(f.reqCtx(opGet, q), backend.invoke); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)

	ictx := f.reqCtx(opGet, q)
	if err := c.HandleInvoke(ictx, backend.invoke); err != nil {
		t.Fatal(err)
	}
	if ictx.CacheHit {
		t.Error("raced 304 served the invalidated entry")
	}
	if got, ok := ictx.Result.(*item); !ok || got.Name != "v2" {
		t.Errorf("result = %#v, want the refetched v2", ictx.Result)
	}
	if got := backend.notMod.Load(); got != 1 {
		t.Errorf("conditional requests = %d, want 1", got)
	}
	if got := backend.full.Load(); got != 2 {
		t.Errorf("full responses = %d, want 2 (fill + forced refetch)", got)
	}
	if got := c.Stats().StaleRefused; got != 1 {
		t.Errorf("Stats.StaleRefused = %d, want 1", got)
	}
}

func TestSweepReclaimsInvalidatedEntries(t *testing.T) {
	f := newFixture(t)
	c, inv := newInvalCache(t, f, func(cfg *Config) {
		cfg.StaleIfError = time.Hour // even the grace window must not retain them
	})
	next, _ := countingNext(f, t, func() any { return &item{Name: "v", Score: 1} })

	for i := 0; i < 8; i++ {
		q := soap.Param{Name: "q", Value: fmt.Sprintf("k%d", i)}
		if err := c.HandleInvoke(f.reqCtx(opGet, q), next); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		inv.Bump(invalidate.Keyspace(fmt.Sprintf("item:k%d", i)))
	}
	if removed := c.SweepExpired(); removed != 4 {
		t.Errorf("SweepExpired removed %d, want 4", removed)
	}
	if got := c.Len(); got != 4 {
		t.Errorf("Len after sweep = %d, want 4", got)
	}
	if got := c.Stats().Invalidations; got != 4 {
		t.Errorf("Stats.Invalidations = %d, want 4", got)
	}
}

// TestInvalidationConcurrentStress interleaves writes (epoch bumps),
// reads, sweeps, and Clear across shards under the race detector and
// checks the stale-after-write invariant with a per-key floor oracle:
// once a write of value v to key k has returned, every later read of k
// must observe at least v.
func TestInvalidationConcurrentStress(t *testing.T) {
	f := newFixture(t)
	c, _ := newInvalCache(t, f, func(cfg *Config) {
		cfg.Shards = 8
		cfg.MaxEntries = 64
		cfg.StaleIfError = time.Hour
	})

	const keys = 8
	var backendVals [keys]atomic.Int64 // the backend's current value per key
	var committed [keys]atomic.Int64   // floor: highest value whose write has returned
	var writeMu [keys]sync.Mutex       // serializes writers per key so values stay monotone

	readNext := func(ictx *client.Context) error {
		var k int
		fmt.Sscanf(ictx.Params[0].Value.(string), "k%d", &k)
		full := f.ictx(t, ictx.Operation, &item{Score: float64(backendVals[k].Load())}, ictx.Params...)
		ictx.Result = full.Result
		ictx.ResponseXML = full.ResponseXML
		ictx.ResponseEvents = full.ResponseEvents
		return nil
	}
	writeNext := func(ictx *client.Context) error {
		var k int
		fmt.Sscanf(ictx.Params[0].Value.(string), "k%d", &k)
		backendVals[k].Add(1)
		full := f.ictx(t, ictx.Operation, &item{Name: "ok"}, ictx.Params...)
		ictx.Result = full.Result
		ictx.ResponseXML = full.ResponseXML
		ictx.ResponseEvents = full.ResponseEvents
		return nil
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64

	for w := 0; w < 4; w++ { // writers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (w + i) % keys
				writeMu[k].Lock()
				err := c.HandleInvoke(f.reqCtx(opPut, soap.Param{Name: "q", Value: fmt.Sprintf("k%d", k)}), writeNext)
				if err == nil {
					// HandleInvoke bumped the epoch before returning, so
					// advancing the floor here is safe: any read starting
					// now sees the bump.
					committed[k].Store(backendVals[k].Load())
				}
				writeMu[k].Unlock()
			}
		}(w)
	}
	for r := 0; r < 8; r++ { // readers
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (r + i) % keys
				floor := committed[k].Load()
				ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: fmt.Sprintf("k%d", k)})
				if err := c.HandleInvoke(ictx, readNext); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if got := int64(ictx.Result.(*item).Score); got < floor {
					violations.Add(1)
					t.Errorf("stale-after-write: key k%d read %d, floor %d", k, got, floor)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() { // sweeper + Clear churn
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.SweepExpired()
			if i%7 == 0 {
				c.Clear()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if violations.Load() != 0 {
		t.Fatalf("%d stale-after-write violations", violations.Load())
	}

	// A deterministic tail proves the epoch path was exercised at least
	// once regardless of how the stress goroutines interleaved: fill,
	// invalidate via a committed write, and look up again.
	q := soap.Param{Name: "q", Value: "k0"}
	if err := c.HandleInvoke(f.reqCtx(opGet, q), readNext); err != nil {
		t.Fatal(err)
	}
	if err := c.HandleInvoke(f.reqCtx(opPut, q), writeNext); err != nil {
		t.Fatal(err)
	}
	if err := c.HandleInvoke(f.reqCtx(opGet, q), readNext); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Invalidations; got == 0 {
		t.Error("run recorded no invalidations; the epoch path was not exercised")
	}
}

// TestCoalesceFollowerDeadlineBound: a follower whose context carries a
// deadline must abandon a hung leader when the deadline passes instead
// of waiting for the fill indefinitely.
func TestCoalesceFollowerDeadlineBound(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) { cfg.Coalesce = true })

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderNext := func(ictx *client.Context) error {
		close(entered)
		<-release // the filler is stuck (hung backend, lost goroutine…)
		return errors.New("eventually failed")
	}

	go func() {
		_ = c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), leaderNext)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	ictx.Ctx = ctx
	start := time.Now()
	err := c.HandleInvoke(ictx, failingNext(errors.New("follower must not invoke")))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("follower err = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("follower waited %v past its deadline", waited)
	}
	close(release)
}

// TestCoalesceLeaderPanicDoesNotStrandFollowers: a leader that panics
// mid-fill must still retire the flight so followers wake up and serve
// themselves.
func TestCoalesceLeaderPanicDoesNotStrandFollowers(t *testing.T) {
	f := newFixture(t)
	c := newCache(t, f, func(cfg *Config) { cfg.Coalesce = true })

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDied := make(chan any, 1)
	go func() {
		defer func() { leaderDied <- recover() }()
		_ = c.HandleInvoke(f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"}), func(*client.Context) error {
			close(entered)
			<-release
			panic("filler died")
		})
	}()
	<-entered

	next, _ := countingNext(f, t, func() any { return &item{Name: "self", Score: 1} })
	followerDone := make(chan error, 1)
	ictx := f.reqCtx(opGet, soap.Param{Name: "q", Value: "x"})
	go func() { followerDone <- c.HandleInvoke(ictx, next) }()

	// Let the follower reach the flight wait, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if got := <-leaderDied; got == nil {
		t.Fatal("leader did not panic; the test exercised nothing")
	}
	select {
	case err := <-followerDone:
		if err != nil {
			t.Errorf("follower err = %v, want self-served success", err)
		}
		if got, ok := ictx.Result.(*item); !ok || got.Name != "self" {
			t.Errorf("follower result = %#v, want self-filled item", ictx.Result)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower stranded by panicking leader")
	}
}
