// Compatibility aliases for the representation machinery that moved to
// internal/rep. The extraction promoted the key strategies, value
// stores, and the Table 2/3 matrices into their own package (with the
// registry and the adaptive selector built on top); everything here is
// a thin re-export kept so existing call sites compile unchanged.
// New code should import repro/internal/rep directly — see DESIGN.md
// §5e for the migration notes.
package core

import (
	"repro/internal/rep"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// Interfaces and data types.
type (
	// KeyGenerator derives cache keys.
	//
	// Deprecated: use rep.KeyGenerator.
	KeyGenerator = rep.KeyGenerator
	// KeyAppender is the zero-allocation key extension.
	//
	// Deprecated: use rep.KeyAppender.
	KeyAppender = rep.KeyAppender
	// ValueStore is a cache value representation.
	//
	// Deprecated: use rep.ValueStore.
	ValueStore = rep.ValueStore
	// RepresentationInfo is one Table 2/3 row.
	//
	// Deprecated: use rep.RepresentationInfo.
	RepresentationInfo = rep.RepresentationInfo
)

// Concrete representations.
type (
	// Deprecated: use rep.XMLMessageKey.
	XMLMessageKey = rep.XMLMessageKey
	// Deprecated: use rep.GobKey.
	GobKey = rep.GobKey
	// Deprecated: use rep.StringKey.
	StringKey = rep.StringKey
	// Deprecated: use rep.BinserKey.
	BinserKey = rep.BinserKey
	// Deprecated: use rep.XMLMessageStore.
	XMLMessageStore = rep.XMLMessageStore
	// Deprecated: use rep.SAXEventsStore.
	SAXEventsStore = rep.SAXEventsStore
	// Deprecated: use rep.CompactSAXStore.
	CompactSAXStore = rep.CompactSAXStore
	// Deprecated: use rep.DOMStore.
	DOMStore = rep.DOMStore
	// Deprecated: use rep.GobStore.
	GobStore = rep.GobStore
	// Deprecated: use rep.BinserStore.
	BinserStore = rep.BinserStore
	// Deprecated: use rep.ReflectCopyStore.
	ReflectCopyStore = rep.ReflectCopyStore
	// Deprecated: use rep.CloneCopyStore.
	CloneCopyStore = rep.CloneCopyStore
	// Deprecated: use rep.RefStore.
	RefStore = rep.RefStore
	// Deprecated: use rep.AutoStore.
	AutoStore = rep.AutoStore
)

// ErrNotApplicable reports that a value store cannot represent a given
// result.
//
// Deprecated: use rep.ErrNotApplicable.
var ErrNotApplicable = rep.ErrNotApplicable

// NewXMLMessageKey returns the XML-message key strategy.
//
// Deprecated: use rep.NewXMLMessageKey.
func NewXMLMessageKey(codec *soap.Codec) *rep.XMLMessageKey { return rep.NewXMLMessageKey(codec) }

// NewGobKey returns the gob serialization key strategy.
//
// Deprecated: use rep.NewGobKey.
func NewGobKey() rep.GobKey { return rep.NewGobKey() }

// NewStringKey returns the string-concatenation key strategy.
//
// Deprecated: use rep.NewStringKey.
func NewStringKey() rep.StringKey { return rep.NewStringKey() }

// NewBinserKey returns the binary-serialization key strategy.
//
// Deprecated: use rep.NewBinserKey.
func NewBinserKey(reg *typemap.Registry) *rep.BinserKey { return rep.NewBinserKey(reg) }

// NewXMLMessageStore returns the XML-message representation.
//
// Deprecated: use rep.NewXMLMessageStore.
func NewXMLMessageStore(codec *soap.Codec) *rep.XMLMessageStore {
	return rep.NewXMLMessageStore(codec)
}

// NewSAXEventsStore returns the SAX-events representation.
//
// Deprecated: use rep.NewSAXEventsStore.
func NewSAXEventsStore(codec *soap.Codec) *rep.SAXEventsStore { return rep.NewSAXEventsStore(codec) }

// NewCompactSAXStore returns the compact SAX-events representation.
//
// Deprecated: use rep.NewCompactSAXStore.
func NewCompactSAXStore(codec *soap.Codec) *rep.CompactSAXStore {
	return rep.NewCompactSAXStore(codec)
}

// NewDOMStore returns the DOM-tree representation.
//
// Deprecated: use rep.NewDOMStore.
func NewDOMStore(codec *soap.Codec) *rep.DOMStore { return rep.NewDOMStore(codec) }

// NewGobStore returns the gob serialization representation.
//
// Deprecated: use rep.NewGobStore.
func NewGobStore(reg *typemap.Registry) *rep.GobStore { return rep.NewGobStore(reg) }

// NewBinserStore returns the binary-serialization representation.
//
// Deprecated: use rep.NewBinserStore.
func NewBinserStore(reg *typemap.Registry) *rep.BinserStore { return rep.NewBinserStore(reg) }

// NewReflectCopyStore returns the reflection-copy representation.
//
// Deprecated: use rep.NewReflectCopyStore.
func NewReflectCopyStore(reg *typemap.Registry) *rep.ReflectCopyStore {
	return rep.NewReflectCopyStore(reg)
}

// NewCloneCopyStore returns the clone-copy representation.
//
// Deprecated: use rep.NewCloneCopyStore.
func NewCloneCopyStore() rep.CloneCopyStore { return rep.NewCloneCopyStore() }

// NewRefStore returns the pass-by-reference representation.
//
// Deprecated: use rep.NewRefStore.
func NewRefStore(reg *typemap.Registry, allowMutable bool) *rep.RefStore {
	return rep.NewRefStore(reg, allowMutable)
}

// NewAutoStore returns the static Section 6 classifying representation.
//
// Deprecated: use rep.NewAutoStore.
func NewAutoStore(reg *typemap.Registry, codec *soap.Codec) *rep.AutoStore {
	return rep.NewAutoStore(reg, codec)
}

// KeyRepresentations returns the Table 2 matrix.
//
// Deprecated: use rep.KeyRepresentations.
func KeyRepresentations() []rep.RepresentationInfo { return rep.KeyRepresentations() }

// ValueRepresentations returns the Table 3 matrix.
//
// Deprecated: use rep.ValueRepresentations.
func ValueRepresentations() []rep.RepresentationInfo { return rep.ValueRepresentations() }
