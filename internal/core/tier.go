package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/invalidate"
	"repro/internal/obs"
	"repro/internal/rep"
	"repro/internal/tier"
)

// This file is the cache's two tier roles (DESIGN.md §5h).
//
// Client side (Config.Tiers): between an L1 miss and the backend
// invocation the cache consults remote tiers. A tier hit decodes the
// wire representation, promotes the payload into L1, and serves it —
// the response-processing cost is paid once per fleet instead of once
// per process. A tier miss falls through to the origin, and the fill
// then writes through to the tiers in the wire representation the
// WireSelector picks (per-tier representation selection: L1 keeps the
// full Table 3 menu, remote tiers get the byte-oriented subset).
//
// Server side: Cache itself implements tier.Tier, so a cluster.Server
// can expose any ordinary cache as a shared daemon (cmd/wscached).
// Entries arrive already encoded; the daemon stores the bytes, stamps
// them against its own epoch table, and refuses fills whose stamps a
// committed write has overtaken — born-stale entries never enter the
// shared tier.

// tierCounters are the per-tier traffic counters, exposed through the
// "tiers" inspection alongside each tier's own TierStats. Plain
// atomics rather than obs counters: a metric name would have to carry
// the tier's runtime name, and obs registry names are compile-time
// constants by convention.
type tierCounters struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	errors atomic.Uint64
	stores atomic.Uint64
}

// tierKeyFor computes the cross-process tier key for an invocation.
// Unlike keyDigest (per-process maphash seeds), tier.KeyOf is a fixed
// function of the key bytes, so every process sharing a daemon — and
// the same KeyGen configuration — computes the same key.
func (c *Cache) tierKeyFor(ictx *client.Context) (tier.Key, error) {
	if c.keyapp != nil {
		bp := keyBufPool.Get().(*[]byte)
		b, err := c.keyapp.AppendKey((*bp)[:0], ictx)
		if err != nil {
			keyBufPool.Put(bp)
			return tier.Key{}, err
		}
		k := tier.KeyOf(b)
		*bp = b[:0]
		keyBufPool.Put(bp)
		return k, nil
	}
	key, err := c.keygen.Key(ictx)
	if err != nil {
		return tier.Key{}, err
	}
	return tier.KeyOf([]byte(key)), nil
}

// tierServe tries each remote tier in order. On a hit it decodes the
// entry, promotes it into L1, and returns the materialized result. All
// failures are soft: a broken tier behaves like a miss.
//
// The promotion stamps are snapshotted BEFORE the first tier contact —
// the same snapshot-before-read ordering every fill path obeys. A
// local write committing while the tier round trip is in flight bumps
// its epochs past this snapshot, so the promoted entry is born stale
// and the next lookup refetches; stamping after the Get instead would
// mint fresh stamps onto a value the tier served before it learned of
// that write. Conservative misses, never stale hits.
func (c *Cache) tierServe(d keyDigest, tk tier.Key, ictx *client.Context) (any, bool) {
	ctx := ictx.Ctx
	stamps := c.readStamps(ictx)
	for i := range c.tiers {
		t := c.tiers[i]
		start := c.now()
		e, ok, err := t.Get(ctx, tk)
		dur := c.now().Sub(start)
		if c.timed {
			c.observe(ictx.Operation, obs.StageTierGet, t.Name(), dur, err)
		}
		if err != nil {
			c.m.tierErrors.Add(1)
			c.tierm[i].errors.Add(1)
			continue
		}
		if !ok {
			c.tierm[i].misses.Add(1)
			continue
		}
		// Feed the measured round trip into the wire cost model: the
		// selector learns what a remote byte costs and biases future wire
		// choices toward compact representations when the network is the
		// bottleneck.
		c.wire.ObserveNet(dur, len(e.Value))
		payload, store, err := c.wire.LoadWire(e.Rep, e.Value)
		if err != nil {
			c.m.tierErrors.Add(1)
			c.tierm[i].errors.Add(1)
			continue
		}
		c.tierm[i].hits.Add(1)
		c.m.tierHits.Add(1)
		c.fillPromoted(d, payload, store, len(e.Value), e.TTL, stamps)
		result, ok := c.loadPayload(ictx.Operation, store, payload)
		if !ok {
			c.m.tierErrors.Add(1)
			continue
		}
		return result, true
	}
	return nil, false
}

// fillPromoted inserts a tier-served payload into L1, carrying the
// tier entry's remaining TTL (zero = no expiry, matching the daemon).
func (c *Cache) fillPromoted(d keyDigest, payload any, store rep.ValueStore, size int, ttl time.Duration, stamps []invalidate.Stamp) {
	var expires time.Time
	if ttl > 0 {
		expires = c.now().Add(ttl)
	}
	sh := c.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.table[d]; ok {
		sh.removeLocked(old)
	}
	e := &entry{
		digest: d, payload: payload, size: size,
		expires: expires, store: store, ttl: ttl, stamps: stamps,
	}
	sh.table[d] = e
	sh.pushFrontLocked(e)
	sh.nbytes.Add(int64(size))
	sh.nentries.Add(1)
	c.m.stores.Add(1)
	sh.evictLocked(c.m.evictions)
}

// tierStamps snapshots, per configured tier, the epochs that tier is
// believed to hold for the invocation's read set. Like readStamps it
// MUST run before the backend read: the snapshot is what makes a fill
// racing a concurrent write refusable at the daemon.
func (c *Cache) tierStamps(tk tier.Key, ictx *client.Context) [][]tier.Stamp {
	if len(c.tiers) == 0 {
		return nil
	}
	out := make([][]tier.Stamp, len(c.tiers))
	if c.inval == nil {
		return out
	}
	set := c.inval.ReadSet(ictx.Operation, ictx.Params)
	if len(set) == 0 {
		return out
	}
	names := make([]string, len(set))
	for i, ks := range set {
		names[i] = string(ks)
	}
	for i, t := range c.tiers {
		out[i] = t.PutStamps(tk, names)
	}
	return out
}

// tierFill writes a fresh origin response through to the remote tiers
// in the selected wire representation. Failures are soft and counted;
// the local fill already happened.
func (c *Cache) tierFill(tk tier.Key, op OperationPolicy, ictx *client.Context, stamps [][]tier.Stamp) {
	if len(c.tiers) == 0 {
		return
	}
	var start time.Time
	if c.timed {
		start = c.now()
	}
	repName, data, _, err := c.wire.StoreWire(ictx)
	if c.timed {
		c.observe(ictx.Operation, obs.StageTierPut, repName, c.now().Sub(start), err)
	}
	if err != nil {
		// No wire-capable representation holds this result (or encoding
		// failed); the result stays L1-only.
		c.m.tierErrors.Add(1)
		return
	}
	ttl := c.entryTTL(op, ictx)
	ctx := ictx.Ctx
	for i, t := range c.tiers {
		e := tier.Entry{Rep: repName, Value: data, TTL: ttl}
		if stamps != nil {
			e.Stamps = stamps[i]
		}
		if err := t.Put(ctx, tk, e); err != nil {
			c.m.tierErrors.Add(1)
			c.tierm[i].errors.Add(1)
			continue
		}
		c.tierm[i].stores.Add(1)
	}
}

// --- Cache as a tier.Tier (the daemon side) --------------------------

var _ tier.Tier = (*Cache)(nil)

// wirePayload is the payload form of an entry held for remote clients:
// the chosen representation's name and its encoded bytes, exactly as
// they travel.
type wirePayload struct {
	rep  string
	data []byte
}

// wirePayloadStore is the ValueStore attached to wire entries. They
// are served back over the wire, never materialized in the daemon, so
// both directions refuse.
type wirePayloadStore struct{}

func (wirePayloadStore) Name() string { return "wire" }

func (wirePayloadStore) Store(*client.Context) (any, int, error) {
	return nil, 0, errors.New("core: wire payload store holds only tier entries")
}

func (wirePayloadStore) Load(any) (any, error) {
	return nil, errors.New("core: a wire payload cannot be materialized in-process")
}

// tierDigest maps a cross-process tier key onto the shard structure.
// Tier keys and client-path digests share the table; both are uniform
// 128-bit values, so coexistence is collision-safe to the same odds
// as the digests themselves.
func tierDigest(k tier.Key) keyDigest { return keyDigest{hi: k.Hi, lo: k.Lo} }

// Name implements tier.Tier.
func (c *Cache) Name() string { return "l1" }

// Get implements tier.Tier: look up a wire entry by tier key. The
// freshness ladder matches the in-process lookup — stale stamps drop
// the entry, TTL expiry retains it only if the resilience config still
// has a use for it — and the returned TTL is the remaining lifetime,
// so a promoting client cannot outlive the daemon's own deadline.
func (c *Cache) Get(_ context.Context, k tier.Key) (tier.Entry, bool, error) {
	d := tierDigest(k)
	sh := c.shard(d)
	sh.mu.Lock()
	e, ok := sh.table[d]
	if !ok {
		sh.mu.Unlock()
		c.m.misses.Add(1)
		return tier.Entry{}, false, nil
	}
	if invalidate.Stale(e.stamps) {
		sh.removeLocked(e)
		sh.mu.Unlock()
		c.m.invalidations.Add(1)
		c.m.misses.Add(1)
		return tier.Entry{}, false, nil
	}
	now := c.now()
	if e.expired(now) {
		if !c.retainStaleLocked(e, now) {
			sh.removeLocked(e)
		}
		sh.mu.Unlock()
		c.m.expirations.Add(1)
		c.m.misses.Add(1)
		return tier.Entry{}, false, nil
	}
	wp, ok := e.payload.(*wirePayload)
	if !ok {
		// A client-path entry under a colliding digest; not servable as
		// bytes.
		sh.mu.Unlock()
		c.m.misses.Add(1)
		return tier.Entry{}, false, nil
	}
	var remaining time.Duration
	if !e.expires.IsZero() {
		remaining = e.expires.Sub(now)
	}
	sh.moveToFrontLocked(e)
	sh.mu.Unlock()
	c.m.hits.Add(1)
	return tier.Entry{Rep: wp.rep, Value: wp.data, TTL: remaining}, true, nil
}

// PutStamps implements tier.Tier: this cache's current epochs for the
// keyspaces, the snapshot a client takes (through the cluster
// protocol, via its mirror) before the backend read it intends to
// cache.
func (c *Cache) PutStamps(_ tier.Key, keyspaces []string) []tier.Stamp {
	stamps := make([]tier.Stamp, len(keyspaces))
	for i, ks := range keyspaces {
		stamps[i] = tier.Stamp{Keyspace: ks}
		if c.inval != nil {
			stamps[i].Epoch = c.inval.Epoch(invalidate.Keyspace(ks))
		}
	}
	return stamps
}

// Put implements tier.Tier: store an already-encoded entry under the
// sender's pre-read epoch snapshot. A snapshot any committed write has
// overtaken makes the entry born-stale — it is refused (silently;
// refusal is the protocol working, not an error) rather than stored
// and filtered later, so a daemon restart or slow client can never
// park a stale value where the whole fleet would find it.
func (c *Cache) Put(_ context.Context, k tier.Key, te tier.Entry) error {
	var stamps []invalidate.Stamp
	if c.inval != nil && len(te.Stamps) > 0 {
		stamps = make([]invalidate.Stamp, len(te.Stamps))
		for i, s := range te.Stamps {
			stamps[i] = c.inval.StampWith(invalidate.Keyspace(s.Keyspace), s.Epoch)
		}
		if invalidate.Stale(stamps) {
			c.m.tierRefused.Add(1)
			return nil
		}
	}
	var expires time.Time
	if te.TTL > 0 {
		expires = c.now().Add(te.TTL)
	}
	d := tierDigest(k)
	size := len(te.Value) + len(te.Rep)
	sh := c.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.table[d]; ok {
		sh.removeLocked(old)
	}
	e := &entry{
		digest:  d,
		payload: &wirePayload{rep: te.Rep, data: te.Value},
		size:    size,
		expires: expires,
		store:   wirePayloadStore{},
		ttl:     te.TTL,
		stamps:  stamps,
	}
	sh.table[d] = e
	sh.pushFrontLocked(e)
	sh.nbytes.Add(int64(size))
	sh.nentries.Add(1)
	c.m.stores.Add(1)
	sh.evictLocked(c.m.evictions)
	return nil
}

// Delete implements tier.Tier.
func (c *Cache) Delete(_ context.Context, k tier.Key) error {
	d := tierDigest(k)
	sh := c.shard(d)
	sh.mu.Lock()
	if e, ok := sh.table[d]; ok {
		sh.removeLocked(e)
	}
	sh.mu.Unlock()
	return nil
}

// BumpEpoch implements tier.Tier: apply epoch advances pushed by a
// remote process. ApplyRemote (not Bump) so the daemon's own OnBump
// hooks — if any — do not re-broadcast a bump that originated
// elsewhere.
func (c *Cache) BumpEpoch(_ context.Context, keyspaces []string) error {
	if c.inval == nil {
		return errors.New("core: cache has no invalidator; epoch bumps cannot be applied")
	}
	for _, ks := range keyspaces {
		c.inval.ApplyRemote(invalidate.Keyspace(ks))
	}
	return nil
}

// TierStats implements tier.Tier.
func (c *Cache) TierStats() tier.Stats {
	s := c.Stats()
	return tier.Stats{
		Hits:    s.Hits,
		Misses:  s.Misses,
		Stores:  s.Stores,
		Errors:  s.Errors,
		Entries: s.Entries,
		Bytes:   s.Bytes,
	}
}

// resolveWire picks the cache's WireSelector: the store itself when it
// selects wire representations (the adaptive selector), else the
// static preference walk over the registry. Validate has already
// guaranteed one of the two exists when tiers are configured.
func resolveWire(store rep.ValueStore, reg *rep.Registry) rep.WireSelector {
	if ws, ok := store.(rep.WireSelector); ok {
		return ws
	}
	if reg != nil {
		return rep.NewStaticWire(reg)
	}
	return nil
}
