// Package typemap is the registry that maps XML qualified names to Go
// types and back, and analyzes Go types for the properties the cache's
// representation selector needs (paper Section 6):
//
//   - deep immutability  → pass-by-reference is safe
//   - cloneability       → copy by the type's own deep-clone method
//   - bean-ness          → copy by reflection is possible
//   - gob encodability   → copy by serialization is possible
//
// In Apache Axis this metadata comes from the WSDL compiler's generated
// classes plus Java's runtime marker interfaces (Serializable,
// Cloneable); here the registry performs the equivalent analysis with
// the reflect package and caches the result per type.
package typemap

import (
	"fmt"
	"reflect"
	"sync"
)

// QName is an XML qualified name: a namespace URI plus a local part.
type QName struct {
	Space string
	Local string
}

// String renders the name in Clark notation ({space}local).
func (q QName) String() string {
	if q.Space == "" {
		return q.Local
	}
	return "{" + q.Space + "}" + q.Local
}

// Cloner is implemented by application types that provide their own
// deep copy. It is the analog of the paper's generated clone methods:
// "it should be easy for the WSDL compiler to add a proper deep clone
// method to generated classes" (Section 4.2.3-C).
type Cloner interface {
	// CloneDeep returns a deep copy of the receiver. The returned
	// value must share no mutable state with the receiver.
	CloneDeep() any
}

// Class partitions Go types into the shapes the SOAP codec and the
// cache classifier care about.
type Class int

// Type classes.
const (
	ClassPrimitive Class = iota + 1 // bool, integers, floats, string
	ClassBytes                      // []byte (SOAP base64Binary)
	ClassStruct                     // struct or pointer to struct
	ClassSlice                      // slice or array of non-byte element
	ClassMap                        // map
	ClassInterface                  // interface
	ClassOpaque                     // chan, func, unsafe: not codable
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassPrimitive:
		return "primitive"
	case ClassBytes:
		return "bytes"
	case ClassStruct:
		return "struct"
	case ClassSlice:
		return "slice"
	case ClassMap:
		return "map"
	case ClassInterface:
		return "interface"
	case ClassOpaque:
		return "opaque"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// FieldInfo describes one serializable field of a bean-type struct.
type FieldInfo struct {
	// GoName is the exported Go field name.
	GoName string
	// XMLName is the element name used on the wire: the value of the
	// field's `xml` tag when present, otherwise the Go name with its
	// first letter lowered (matching Axis's bean-property naming).
	XMLName string
	// Index is the field's index within the struct.
	Index int
	// Type is the field's Go type.
	Type reflect.Type
}

// TypeInfo is the cached analysis of one Go type.
type TypeInfo struct {
	Type  reflect.Type
	Class Class

	// IsBean reports that the type is a data-holder suitable for
	// reflection copy: a struct (or pointer to struct) whose fields are
	// all exported and themselves bean-compatible, or a slice/array/map
	// of bean-compatible values.
	IsBean bool

	// IsCloneable reports that the type implements Cloner.
	IsCloneable bool

	// IsImmutable reports that a value of this type reachable through
	// an interface cannot be mutated by the holder: scalars, strings,
	// and pointer-free value structs. Immutable values may be shared
	// between cache and application (paper Section 4.2.4).
	IsImmutable bool

	// IsGobSafe reports that the full object graph can round-trip
	// through encoding/gob without silently dropping state: no chans,
	// funcs or unexported struct fields anywhere in the type graph.
	IsGobSafe bool

	// Fields holds the serializable fields when Class is ClassStruct.
	Fields []FieldInfo
}

// Registry maps XML names to Go types and caches TypeInfo analyses.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[QName]reflect.Type
	byType map[reflect.Type]QName
	info   map[reflect.Type]*TypeInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[QName]reflect.Type),
		byType: make(map[reflect.Type]QName),
		info:   make(map[reflect.Type]*TypeInfo),
	}
}

// Register binds an XML qualified name to the Go type of prototype.
// Pointer prototypes are registered as their element type: the codec
// always instantiates values and takes addresses as needed.
func (r *Registry) Register(name QName, prototype any) error {
	t := reflect.TypeOf(prototype)
	if t == nil {
		return fmt.Errorf("typemap: cannot register nil prototype for %s", name)
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok && prev != t {
		return fmt.Errorf("typemap: %s already registered as %s", name, prev)
	}
	r.byName[name] = t
	if _, ok := r.byType[t]; !ok {
		r.byType[t] = name
	}
	return nil
}

// TypeFor returns the Go type registered under name.
func (r *Registry) TypeFor(name QName) (reflect.Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// NameFor returns the XML name registered for the Go type of v
// (pointers dereferenced).
func (r *Registry) NameFor(v any) (QName, bool) {
	t := reflect.TypeOf(v)
	if t == nil {
		return QName{}, false
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	q, ok := r.byType[t]
	return q, ok
}

// NameForType returns the XML name registered for t (pointers
// dereferenced).
func (r *Registry) NameForType(t reflect.Type) (QName, bool) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	q, ok := r.byType[t]
	return q, ok
}

// Names returns all registered XML names, for diagnostics.
func (r *Registry) Names() []QName {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]QName, 0, len(r.byName))
	for q := range r.byName {
		out = append(out, q)
	}
	return out
}

// InfoFor returns the (cached) analysis for the dynamic type of v.
func (r *Registry) InfoFor(v any) *TypeInfo {
	t := reflect.TypeOf(v)
	if t == nil {
		return &TypeInfo{Class: ClassInterface, IsImmutable: true}
	}
	return r.InfoForType(t)
}

// InfoForType returns the (cached) analysis for t.
func (r *Registry) InfoForType(t reflect.Type) *TypeInfo {
	r.mu.RLock()
	ti, ok := r.info[t]
	r.mu.RUnlock()
	if ok {
		return ti
	}
	ti = analyze(t)
	r.mu.Lock()
	r.info[t] = ti
	r.mu.Unlock()
	return ti
}

// clonerType is the reflect.Type of the Cloner interface.
var clonerType = reflect.TypeOf((*Cloner)(nil)).Elem()

// analyze computes a TypeInfo without consulting the cache.
func analyze(t reflect.Type) *TypeInfo {
	ti := &TypeInfo{Type: t}
	ti.Class = classify(t)
	ti.IsCloneable = t.Implements(clonerType) ||
		(t.Kind() != reflect.Pointer && reflect.PointerTo(t).Implements(clonerType))
	ti.IsImmutable = isImmutable(t, make(map[reflect.Type]bool))
	ti.IsBean = isBean(t, make(map[reflect.Type]bool))
	ti.IsGobSafe = isGobSafe(t, make(map[reflect.Type]bool))
	if st := structType(t); st != nil {
		ti.Fields = structFields(st)
	}
	return ti
}

// classify maps a Go type to its Class.
func classify(t reflect.Type) Class {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.String:
		return ClassPrimitive
	case reflect.Slice, reflect.Array:
		if t.Elem().Kind() == reflect.Uint8 {
			return ClassBytes
		}
		return ClassSlice
	case reflect.Struct:
		return ClassStruct
	case reflect.Pointer:
		return classify(t.Elem())
	case reflect.Map:
		return ClassMap
	case reflect.Interface:
		return ClassInterface
	default:
		return ClassOpaque
	}
}

// structType returns the struct type underlying t (through one level of
// pointer), or nil.
func structType(t reflect.Type) reflect.Type {
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.Kind() == reflect.Struct {
		return t
	}
	return nil
}

// structFields extracts the serializable fields of a struct type.
// Unexported fields and fields tagged `xml:"-"` are skipped.
func structFields(t reflect.Type) []FieldInfo {
	fields := make([]FieldInfo, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		xmlName := f.Tag.Get("xml")
		if xmlName == "-" {
			continue
		}
		if xmlName == "" {
			xmlName = lowerFirst(f.Name)
		}
		fields = append(fields, FieldInfo{
			GoName:  f.Name,
			XMLName: xmlName,
			Index:   i,
			Type:    f.Type,
		})
	}
	return fields
}

// lowerFirst lowers the first byte of an ASCII identifier; the wire
// names of generated bean properties are lowerCamelCase.
func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	c := s[0]
	if c < 'A' || c > 'Z' {
		return s
	}
	return string(c+('a'-'A')) + s[1:]
}

// isImmutable reports deep immutability: no mutation is possible
// through a value of this type held in an interface.
func isImmutable(t reflect.Type, seen map[reflect.Type]bool) bool {
	if seen[t] {
		// A recursive type necessarily involves a pointer, which would
		// already have returned false; being here means a value cycle,
		// which Go forbids, so this is unreachable — answer
		// conservatively anyway.
		return false
	}
	seen[t] = true
	defer delete(seen, t)
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.String:
		return true
	case reflect.Array:
		return isImmutable(t.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isImmutable(t.Field(i).Type, seen) {
				return false
			}
		}
		return true
	default:
		// Pointers, slices, maps, chans, funcs, interfaces: mutable or
		// unknowable.
		return false
	}
}

// isBean reports whether reflection copy can faithfully deep-copy a
// value of this type: all reachable struct fields must be exported.
func isBean(t reflect.Type, seen map[reflect.Type]bool) bool {
	if seen[t] {
		return true // already being checked higher in the walk
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.String:
		return true
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return isBean(t.Elem(), seen)
	case reflect.Map:
		return isBean(t.Key(), seen) && isBean(t.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return false
			}
			if !isBean(f.Type, seen) {
				return false
			}
		}
		return true
	default:
		// Interfaces hide their dynamic type; chans and funcs cannot be
		// copied meaningfully.
		return false
	}
}

// isGobSafe reports whether the object graph can round-trip through
// encoding/gob without losing state. Gob silently skips unexported
// fields, so they are disallowed here — a lossy copy is worse than a
// refused one.
func isGobSafe(t reflect.Type, seen map[reflect.Type]bool) bool {
	if seen[t] {
		return true
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uint8,
		reflect.Float32, reflect.Float64,
		reflect.String:
		return true
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return isGobSafe(t.Elem(), seen)
	case reflect.Map:
		return isGobSafe(t.Key(), seen) && isGobSafe(t.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return false
			}
			if !isGobSafe(f.Type, seen) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
