package typemap

import (
	"reflect"
	"testing"
)

type bean struct {
	Name  string
	Count int
	Tags  []string
	Child *bean
}

type notBean struct {
	Name   string
	hidden int //nolint:unused // presence is what the analysis detects
}

type cloneable struct{ V int }

func (c *cloneable) CloneDeep() any { out := *c; return &out }

type valueCloneable struct{ V int }

func (c valueCloneable) CloneDeep() any { return c }

type withFunc struct {
	F func()
}

type withChan struct {
	C chan int
}

type immutableStruct struct {
	A int
	B string
	C [4]float64
}

type taggedBean struct {
	SearchTime float64 `xml:"searchTime"`
	Skipped    string  `xml:"-"`
	URL        string
}

func TestQNameString(t *testing.T) {
	if got := (QName{Space: "urn:x", Local: "a"}).String(); got != "{urn:x}a" {
		t.Errorf("got %q", got)
	}
	if got := (QName{Local: "a"}).String(); got != "a" {
		t.Errorf("got %q", got)
	}
}

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	q := QName{Space: "urn:t", Local: "bean"}
	if err := r.Register(q, &bean{}); err != nil {
		t.Fatal(err)
	}
	typ, ok := r.TypeFor(q)
	if !ok || typ != reflect.TypeOf(bean{}) {
		t.Errorf("TypeFor = %v, %v", typ, ok)
	}
	// Lookup by value and by pointer should both resolve.
	if name, ok := r.NameFor(bean{}); !ok || name != q {
		t.Errorf("NameFor(value) = %v, %v", name, ok)
	}
	if name, ok := r.NameFor(&bean{}); !ok || name != q {
		t.Errorf("NameFor(ptr) = %v, %v", name, ok)
	}
}

func TestRegisterConflict(t *testing.T) {
	r := NewRegistry()
	q := QName{Local: "x"}
	if err := r.Register(q, bean{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(q, notBean{}); err == nil {
		t.Error("expected conflict error")
	}
	// Re-registering the same type is idempotent.
	if err := r.Register(q, bean{}); err != nil {
		t.Errorf("idempotent re-register failed: %v", err)
	}
}

func TestRegisterNil(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(QName{Local: "x"}, nil); err == nil {
		t.Error("expected error for nil prototype")
	}
}

func TestClassify(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		v    any
		want Class
	}{
		{"s", ClassPrimitive},
		{42, ClassPrimitive},
		{3.14, ClassPrimitive},
		{true, ClassPrimitive},
		{[]byte("x"), ClassBytes},
		{[]string{"a"}, ClassSlice},
		{[3]int{}, ClassSlice},
		{bean{}, ClassStruct},
		{&bean{}, ClassStruct},
		{map[string]int{}, ClassMap},
		{make(chan int), ClassOpaque},
	}
	for _, c := range cases {
		if got := r.InfoFor(c.v).Class; got != c.want {
			t.Errorf("InfoFor(%T).Class = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestImmutabilityAnalysis(t *testing.T) {
	r := NewRegistry()
	immutable := []any{"s", 42, int64(1), 3.14, true, uint8(1), immutableStruct{}}
	for _, v := range immutable {
		if !r.InfoFor(v).IsImmutable {
			t.Errorf("%T should be immutable", v)
		}
	}
	mutable := []any{&bean{}, []string{}, []byte{}, map[string]int{}, &immutableStruct{}, bean{}}
	for _, v := range mutable {
		if r.InfoFor(v).IsImmutable {
			t.Errorf("%T should be mutable", v)
		}
	}
}

func TestBeanAnalysis(t *testing.T) {
	r := NewRegistry()
	if !r.InfoFor(&bean{}).IsBean {
		t.Error("bean should be a bean (recursive self-reference allowed)")
	}
	if !r.InfoFor([]*bean{}).IsBean {
		t.Error("slice of beans should be bean-compatible")
	}
	if r.InfoFor(&notBean{}).IsBean {
		t.Error("struct with unexported field is not a bean")
	}
	if r.InfoFor(withFunc{}).IsBean {
		t.Error("struct with func field is not a bean")
	}
	if r.InfoFor(withChan{}).IsBean {
		t.Error("struct with chan field is not a bean")
	}
	if !r.InfoFor(map[string][]*bean{}).IsBean {
		t.Error("map of bean slices should be bean-compatible")
	}
}

func TestCloneableAnalysis(t *testing.T) {
	r := NewRegistry()
	if !r.InfoFor(&cloneable{}).IsCloneable {
		t.Error("*cloneable implements Cloner")
	}
	// Value whose pointer type implements Cloner also counts: the cache
	// can take an address.
	if !r.InfoForType(reflect.TypeOf(cloneable{})).IsCloneable {
		t.Error("cloneable (value) should be detected via pointer method set")
	}
	if !r.InfoFor(valueCloneable{}).IsCloneable {
		t.Error("valueCloneable implements Cloner directly")
	}
	if r.InfoFor(&bean{}).IsCloneable {
		t.Error("bean does not implement Cloner")
	}
}

func TestGobSafeAnalysis(t *testing.T) {
	r := NewRegistry()
	if !r.InfoFor(&bean{}).IsGobSafe {
		t.Error("bean should be gob-safe")
	}
	if r.InfoFor(&notBean{}).IsGobSafe {
		t.Error("unexported fields are silently dropped by gob; must not be gob-safe")
	}
	if r.InfoFor(withChan{}).IsGobSafe {
		t.Error("chan is not gob-encodable")
	}
	if !r.InfoFor("hello").IsGobSafe {
		t.Error("string is gob-safe")
	}
}

func TestStructFields(t *testing.T) {
	r := NewRegistry()
	ti := r.InfoFor(&taggedBean{})
	if len(ti.Fields) != 2 {
		t.Fatalf("fields = %+v", ti.Fields)
	}
	if ti.Fields[0].XMLName != "searchTime" {
		t.Errorf("tagged field name = %q", ti.Fields[0].XMLName)
	}
	if ti.Fields[1].XMLName != "uRL" {
		// lowerFirst of "URL" is "uRL" — matches Axis bean introspection
		// of a getURL() property only loosely, but it is deterministic.
		t.Errorf("URL field name = %q", ti.Fields[1].XMLName)
	}
}

func TestInfoForNil(t *testing.T) {
	r := NewRegistry()
	ti := r.InfoFor(nil)
	if !ti.IsImmutable {
		t.Error("nil is trivially immutable")
	}
}

func TestInfoCached(t *testing.T) {
	r := NewRegistry()
	a := r.InfoFor(&bean{})
	b := r.InfoFor(&bean{})
	if a != b {
		t.Error("expected cached TypeInfo pointer")
	}
}

func TestLowerFirst(t *testing.T) {
	cases := map[string]string{"Name": "name", "URL": "uRL", "x": "x", "": "", "already": "already"}
	for in, want := range cases {
		if got := lowerFirst(in); got != want {
			t.Errorf("lowerFirst(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.InfoFor(&bean{})
			_, _ = r.NameFor(&bean{})
		}
	}()
	for i := 0; i < 500; i++ {
		_ = r.Register(QName{Local: "bean"}, &bean{})
		r.InfoFor(&taggedBean{})
	}
	<-done
}
