package soap

import (
	"strings"
	"testing"

	"repro/internal/sax"
)

// These tests feed the decoder envelopes in the formats other SOAP
// stacks of the paper's era produced — Apache Axis 1.1 above all, since
// that is the middleware the paper prototypes on. Formatting quirks
// covered: multi-reference (id/href) encoding, unusual namespace
// prefixes, whitespace and newlines between elements, comments,
// attribute-order variation, and xsi:type values resolved through
// prefixes declared on ancestor elements.

// axisMultiRefResponse mimics Axis 1.1's default rpc/encoded output:
// the return value and nested objects are hoisted into multiRef
// elements referenced by href.
const axisMultiRefResponse = `<?xml version="1.0" encoding="UTF-8"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
 <soapenv:Body>
  <ns1:opResponse soapenv:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"
      xmlns:ns1="urn:TestSearch">
   <return href="#id0"/>
  </ns1:opResponse>
  <multiRef id="id0" soapenc:root="0"
      soapenv:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"
      xsi:type="ns2:DirectoryCategory"
      xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/"
      xmlns:ns2="urn:TestSearch">
   <fullViewableName xsi:type="xsd:string">Top/Computers</fullViewableName>
   <specialEncoding href="#id1"/>
  </multiRef>
  <multiRef id="id1" soapenc:root="0"
      soapenv:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"
      xsi:type="soapenc:string"
      xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/">utf-8</multiRef>
 </soapenv:Body>
</soapenv:Envelope>`

func TestInteropAxisMultiRef(t *testing.T) {
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(axisMultiRefResponse))
	if err != nil {
		t.Fatal(err)
	}
	dc, ok := msg.Result().(*directoryCategory)
	if !ok {
		t.Fatalf("result = %T", msg.Result())
	}
	if dc.FullViewableName != "Top/Computers" || dc.SpecialEncoding != "utf-8" {
		t.Errorf("decoded %+v", dc)
	}
}

func TestInteropMultiRefViaRecordedEvents(t *testing.T) {
	// The SAX cache representation must survive multiref envelopes too:
	// record the events, replay-decode them.
	c := newTestCodec(t)
	events, err := sax.Record([]byte(axisMultiRefResponse))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelopeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	dc := msg.Result().(*directoryCategory)
	if dc.FullViewableName != "Top/Computers" {
		t.Errorf("decoded %+v", dc)
	}
}

func TestInteropMultiRefSharedCarrier(t *testing.T) {
	// Two hrefs to the same carrier: both fields get the value, and
	// mutating one must not affect the other (deep copy at splice).
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:m="urn:TestSearch">
	 <e:Body>
	  <m:opResponse>
	   <return xsi:type="m:DirectoryCategory">
	    <fullViewableName href="#s"/>
	    <specialEncoding href="#s"/>
	   </return>
	  </m:opResponse>
	  <multiRef id="s" xsi:type="xsd:string">shared</multiRef>
	 </e:Body>
	</e:Envelope>`
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	dc := msg.Result().(*directoryCategory)
	if dc.FullViewableName != "shared" || dc.SpecialEncoding != "shared" {
		t.Errorf("decoded %+v", dc)
	}
}

func TestInteropMultiRefArray(t *testing.T) {
	// An Axis-style encoded array whose items are hrefs.
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
	    xmlns:enc="http://schemas.xmlsoap.org/soap/encoding/"
	    xmlns:m="urn:TestSearch">
	 <e:Body>
	  <m:opResponse>
	   <return xsi:type="enc:Array" enc:arrayType="m:DirectoryCategory[2]">
	    <item href="#c0"/>
	    <item href="#c1"/>
	   </return>
	  </m:opResponse>
	  <multiRef id="c0" xsi:type="m:DirectoryCategory">
	   <fullViewableName xsi:type="xsd:string">A</fullViewableName>
	   <specialEncoding xsi:type="xsd:string"></specialEncoding>
	  </multiRef>
	  <multiRef id="c1" xsi:type="m:DirectoryCategory">
	   <fullViewableName xsi:type="xsd:string">B</fullViewableName>
	   <specialEncoding xsi:type="xsd:string"></specialEncoding>
	  </multiRef>
	 </e:Body>
	</e:Envelope>`
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cats, ok := msg.Result().([]directoryCategory)
	if !ok {
		t.Fatalf("result = %T", msg.Result())
	}
	if len(cats) != 2 || cats[0].FullViewableName != "A" || cats[1].FullViewableName != "B" {
		t.Errorf("decoded %+v", cats)
	}
}

func TestInteropMultiRefUnresolved(t *testing.T) {
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/" xmlns:m="urn:m">
	 <e:Body><m:op><v href="#nope"/></m:op></e:Body></e:Envelope>`
	c := newTestCodec(t)
	if _, err := c.DecodeEnvelope([]byte(doc)); err == nil {
		t.Error("unresolved href accepted")
	}
}

func TestInteropMultiRefCycle(t *testing.T) {
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:TestSearch">
	 <e:Body>
	  <m:op><v href="#a"/></m:op>
	  <multiRef id="a" xsi:type="m:DirectoryCategory"><fullViewableName href="#b"/></multiRef>
	  <multiRef id="b" xsi:type="m:DirectoryCategory"><fullViewableName href="#a"/></multiRef>
	 </e:Body>
	</e:Envelope>`
	c := newTestCodec(t)
	if _, err := c.DecodeEnvelope([]byte(doc)); err == nil {
		t.Error("reference cycle accepted")
	}
}

func TestInteropForeignPrefixesAndWhitespace(t *testing.T) {
	// .NET-style single-letter prefixes, generous whitespace, comments,
	// and xsi:type prefixes declared on an ancestor.
	doc := "<?xml version=\"1.0\"?>\n" +
		`<S:Envelope xmlns:S="http://schemas.xmlsoap.org/soap/envelope/"
		    xmlns:i="http://www.w3.org/2001/XMLSchema-instance"
		    xmlns:d="http://www.w3.org/2001/XMLSchema"
		    xmlns:g="urn:TestSearch">
		  <!-- produced by a foreign stack -->
		  <S:Body>
		    <g:opResponse>
		      <return i:type="g:DirectoryCategory">
		        <fullViewableName i:type="d:string">  spaced value  </fullViewableName>
		        <specialEncoding i:type="d:string">x</specialEncoding>
		      </return>
		    </g:opResponse>
		  </S:Body>
		</S:Envelope>`
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	dc := msg.Result().(*directoryCategory)
	// String values preserve interior whitespace exactly.
	if dc.FullViewableName != "  spaced value  " {
		t.Errorf("value = %q", dc.FullViewableName)
	}
}

func TestInteropDefaultNamespaceBody(t *testing.T) {
	// Some stacks put the envelope in the default namespace.
	doc := `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:xsd="http://www.w3.org/2001/XMLSchema">
	  <Body>
	    <op xmlns="urn:whatever">
	      <v xsi:type="xsd:int"> 42 </v>
	    </op>
	  </Body>
	</Envelope>`
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := msg.ParamValue("v"); got != 42 {
		t.Errorf("v = %#v", got)
	}
}

func TestInteropBooleanAsDigits(t *testing.T) {
	// XML Schema allows 0/1 for booleans; some stacks emit them.
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:m="urn:m">
	 <e:Body><m:op><a xsi:type="xsd:boolean">1</a><b xsi:type="xsd:boolean">0</b></m:op></e:Body>
	</e:Envelope>`
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := msg.ParamValue("a")
	b, _ := msg.ParamValue("b")
	if a != true || b != false {
		t.Errorf("a=%v b=%v", a, b)
	}
}

func TestInteropBase64WithLineBreaks(t *testing.T) {
	// MIME-style folded base64, as Axis produced for long binaries.
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:m="urn:m">
	 <e:Body><m:op><blob xsi:type="xsd:base64Binary">aGVsbG8g
d29ybGQh</blob></m:op></e:Body></e:Envelope>`
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := msg.ParamValue("blob")
	if string(got.([]byte)) != "hello world!" {
		t.Errorf("blob = %q", got)
	}
}

func TestInteropOurEncoderNeverEmitsHref(t *testing.T) {
	// Sanity: our own encoder uses inline encoding, so the multiref
	// path never triggers on self-produced messages.
	c := newTestCodec(t)
	doc, err := c.EncodeResponse(testNS, "doGoogleSearch", sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(doc), "href=") {
		t.Error("encoder emitted href")
	}
	if hasHref(doc) {
		t.Error("hasHref misfired on inline encoding")
	}
}
