package soap

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sax"
	"repro/internal/typemap"
)

const testNS = "urn:TestSearch"

type directoryCategory struct {
	FullViewableName string
	SpecialEncoding  string
}

type resultElement struct {
	Summary                   string
	URL                       string
	Snippet                   string
	Title                     string
	CachedSize                string
	RelatedInformationPresent bool
	HostName                  string
	DirectoryCategory         directoryCategory
	DirectoryTitle            string
}

type searchResult struct {
	DocumentFiltering          bool
	SearchComments             string
	EstimatedTotalResultsCount int
	EstimateIsExact            bool
	ResultElements             []resultElement
	SearchQuery                string
	StartIndex                 int
	EndIndex                   int
	SearchTips                 string
	DirectoryCategories        []directoryCategory
	SearchTime                 float64
}

func newTestCodec(t *testing.T) *Codec {
	t.Helper()
	reg := typemap.NewRegistry()
	for _, r := range []struct {
		local string
		proto any
	}{
		{"DirectoryCategory", directoryCategory{}},
		{"ResultElement", resultElement{}},
		{"GoogleSearchResult", searchResult{}},
	} {
		if err := reg.Register(typemap.QName{Space: testNS, Local: r.local}, r.proto); err != nil {
			t.Fatal(err)
		}
	}
	return NewCodec(reg)
}

func sampleResult() *searchResult {
	return &searchResult{
		DocumentFiltering:          true,
		SearchComments:             "",
		EstimatedTotalResultsCount: 23700,
		EstimateIsExact:            false,
		ResultElements: []resultElement{
			{
				Summary:    "The Go Programming Language",
				URL:        "https://go.dev/",
				Snippet:    "Go is an open source programming language <b>supported</b> by Google",
				Title:      "The Go Programming Language",
				CachedSize: "12k",
				HostName:   "go.dev",
				DirectoryCategory: directoryCategory{
					FullViewableName: "Top/Computers/Programming/Languages/Go",
					SpecialEncoding:  "",
				},
				DirectoryTitle: "Go",
			},
			{
				Summary: "Go (programming language) - Wikipedia",
				URL:     "https://en.wikipedia.org/wiki/Go_(programming_language)",
				Title:   "Go at Wikipedia",
			},
		},
		SearchQuery: "golang",
		StartIndex:  1,
		EndIndex:    2,
		SearchTips:  "Try fewer & simpler keywords",
		DirectoryCategories: []directoryCategory{
			{FullViewableName: "Top/Computers", SpecialEncoding: "utf-8"},
		},
		SearchTime: 0.194871,
	}
}

func TestEncodeRequestShape(t *testing.T) {
	c := newTestCodec(t)
	doc, err := c.EncodeRequest(testNS, "doGoogleSearch", []Param{
		{Name: "key", Value: "00000"},
		{Name: "q", Value: "golang"},
		{Name: "start", Value: 0},
		{Name: "maxResults", Value: 10},
		{Name: "filter", Value: true},
		{Name: "safeSearch", Value: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	for _, want := range []string{
		"soapenv:Envelope",
		"soapenv:Body",
		"ns1:doGoogleSearch",
		`soapenv:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"`,
		`<key xsi:type="xsd:string">00000</key>`,
		`<start xsi:type="xsd:int">0</start>`,
		`<filter xsi:type="xsd:boolean">true</filter>`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("request missing %q:\n%s", want, s)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	c := newTestCodec(t)
	params := []Param{
		{Name: "key", Value: "k"},
		{Name: "q", Value: "hello <world> & \"friends\""},
		{Name: "start", Value: 5},
		{Name: "deep", Value: int64(1 << 40)},
		{Name: "ratio", Value: 2.5},
		{Name: "flag", Value: true},
		{Name: "blob", Value: []byte{0, 1, 2, 255}},
	}
	doc, err := c.EncodeRequest(testNS, "op", params)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Wrapper.Local != "op" || msg.Wrapper.Space != testNS {
		t.Errorf("wrapper = %+v", msg.Wrapper)
	}
	if len(msg.Params) != len(params) {
		t.Fatalf("params = %d, want %d", len(msg.Params), len(params))
	}
	for i, p := range params {
		got := msg.Params[i]
		if got.Name != p.Name {
			t.Errorf("param %d name = %q, want %q", i, got.Name, p.Name)
		}
		if b, ok := p.Value.([]byte); ok {
			if !bytes.Equal(got.Value.([]byte), b) {
				t.Errorf("param %s bytes = %v, want %v", p.Name, got.Value, b)
			}
			continue
		}
		if got.Value != p.Value {
			t.Errorf("param %s = %#v (%T), want %#v (%T)", p.Name, got.Value, got.Value, p.Value, p.Value)
		}
	}
}

func TestResponseRoundTripComplex(t *testing.T) {
	c := newTestCodec(t)
	orig := sampleResult()
	doc, err := c.EncodeResponse(testNS, "doGoogleSearch", orig)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, doc)
	}
	if msg.Wrapper.Local != "doGoogleSearchResponse" {
		t.Errorf("wrapper = %v", msg.Wrapper)
	}
	got, ok := msg.Result().(*searchResult)
	if !ok {
		t.Fatalf("result type = %T", msg.Result())
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch:\norig: %+v\ngot:  %+v", orig, got)
	}
}

func TestResponseViaRecordedEvents(t *testing.T) {
	c := newTestCodec(t)
	orig := sampleResult()
	doc, err := c.EncodeResponse(testNS, "doGoogleSearch", orig)
	if err != nil {
		t.Fatal(err)
	}
	events, err := sax.Record(doc)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelopeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.Result().(*searchResult)
	if !ok {
		t.Fatalf("result type = %T", msg.Result())
	}
	if !reflect.DeepEqual(orig, got) {
		t.Error("event replay decode differs from original")
	}
	// Two replays construct distinct objects: no aliasing.
	msg2, err := c.DecodeEnvelopeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if msg2.Result() == msg.Result() {
		t.Error("replays returned the same pointer")
	}
}

func TestEncodeNilResult(t *testing.T) {
	c := newTestCodec(t)
	doc, err := c.EncodeResponse(testNS, "op", nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Result() != nil {
		t.Errorf("result = %#v, want nil", msg.Result())
	}
}

func TestEncodeNilPointerField(t *testing.T) {
	type outer struct {
		Name  string
		Inner *directoryCategory
	}
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "DirectoryCategory"}, directoryCategory{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(typemap.QName{Space: testNS, Local: "Outer"}, outer{}); err != nil {
		t.Fatal(err)
	}
	c := NewCodec(reg)
	doc, err := c.EncodeResponse(testNS, "op", &outer{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Result().(*outer)
	if got.Name != "x" || got.Inner != nil {
		t.Errorf("got %+v", got)
	}
}

func TestPointerFieldRoundTrip(t *testing.T) {
	type outer struct {
		Inner *directoryCategory
	}
	reg := typemap.NewRegistry()
	_ = reg.Register(typemap.QName{Space: testNS, Local: "DirectoryCategory"}, directoryCategory{})
	_ = reg.Register(typemap.QName{Space: testNS, Local: "Outer"}, outer{})
	c := NewCodec(reg)
	doc, err := c.EncodeResponse(testNS, "op", &outer{Inner: &directoryCategory{FullViewableName: "deep"}})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Result().(*outer)
	if got.Inner == nil || got.Inner.FullViewableName != "deep" {
		t.Errorf("got %+v", got)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	c := newTestCodec(t)
	f := &Fault{Code: "soapenv:Server", String: "backend exploded", Actor: "urn:a", Detail: "stack trace here"}
	doc, err := c.EncodeFault(f)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Fault == nil {
		t.Fatal("no fault decoded")
	}
	if msg.Fault.Code != f.Code || msg.Fault.String != f.String || msg.Fault.Actor != f.Actor || msg.Fault.Detail != f.Detail {
		t.Errorf("fault = %+v, want %+v", msg.Fault, f)
	}
	if !strings.Contains(msg.Fault.Error(), "backend exploded") {
		t.Errorf("Error() = %q", msg.Fault.Error())
	}
}

func TestDecodeErrors(t *testing.T) {
	c := newTestCodec(t)
	cases := map[string]string{
		"not an envelope": `<notsoap/>`,
		"bad xml":         `<soapenv:Envelope`,
		"unknown type": `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"` +
			` xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:m">` +
			`<e:Body><m:op><x xsi:type="m:NoSuchType">v</x></m:op></e:Body></e:Envelope>`,
		"undeclared xsi prefix": `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"` +
			` xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:m">` +
			`<e:Body><m:op><x xsi:type="nope:string">v</x></m:op></e:Body></e:Envelope>`,
		"bad int": `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"` +
			` xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"` +
			` xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:m="urn:m">` +
			`<e:Body><m:op><x xsi:type="xsd:int">abc</x></m:op></e:Body></e:Envelope>`,
		"bad base64": `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"` +
			` xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"` +
			` xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:m="urn:m">` +
			`<e:Body><m:op><x xsi:type="xsd:base64Binary">!!!</x></m:op></e:Body></e:Envelope>`,
	}
	for name, doc := range cases {
		if _, err := c.DecodeEnvelope([]byte(doc)); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestDecodeHeaderSkipped(t *testing.T) {
	c := newTestCodec(t)
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"` +
		` xmlns:xsd="http://www.w3.org/2001/XMLSchema"` +
		` xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:m">` +
		`<e:Header><m:tx id="7"><m:nested>deep</m:nested></m:tx></e:Header>` +
		`<e:Body><m:op><v xsi:type="xsd:string">ok</v></m:op></e:Body></e:Envelope>`
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := msg.ParamValue("v"); got != "ok" {
		t.Errorf("v = %#v", got)
	}
}

func TestDecodeUntypedDefaultsToString(t *testing.T) {
	c := newTestCodec(t)
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/" xmlns:m="urn:m">` +
		`<e:Body><m:op><v>plain</v></m:op></e:Body></e:Envelope>`
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := msg.ParamValue("v"); got != "plain" {
		t.Errorf("v = %#v", got)
	}
}

func TestDecodeUnknownStructFieldTolerated(t *testing.T) {
	c := newTestCodec(t)
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"` +
		` xmlns:xsd="http://www.w3.org/2001/XMLSchema"` +
		` xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:g="` + testNS + `">` +
		`<e:Body><g:opResponse><return xsi:type="g:DirectoryCategory">` +
		`<fullViewableName xsi:type="xsd:string">Top</fullViewableName>` +
		`<futureField xsi:type="xsd:string">ignored</futureField>` +
		`</return></g:opResponse></e:Body></e:Envelope>`
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	dc := msg.Result().(*directoryCategory)
	if dc.FullViewableName != "Top" {
		t.Errorf("got %+v", dc)
	}
}

func TestEmptyArrayRoundTrip(t *testing.T) {
	c := newTestCodec(t)
	orig := &searchResult{ResultElements: []resultElement{}, DirectoryCategories: []directoryCategory{}}
	doc, err := c.EncodeResponse(testNS, "op", orig)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Result().(*searchResult)
	if got.ResultElements == nil || len(got.ResultElements) != 0 {
		t.Errorf("ResultElements = %#v", got.ResultElements)
	}
}

func TestUnregisteredStructEncodeError(t *testing.T) {
	c := newTestCodec(t)
	type unregistered struct{ X int }
	if _, err := c.EncodeResponse(testNS, "op", &unregistered{}); err == nil {
		t.Error("expected error for unregistered struct")
	}
}

func TestUnsupportedKindEncodeError(t *testing.T) {
	c := newTestCodec(t)
	if _, err := c.EncodeRequest(testNS, "op", []Param{{Name: "f", Value: func() {}}}); err == nil {
		t.Error("expected error for func param")
	}
}

func TestStringEscapingRoundTripProperty(t *testing.T) {
	c := newTestCodec(t)
	f := func(s string) bool {
		if !legalXML(s) {
			return true
		}
		doc, err := c.EncodeRequest(testNS, "op", []Param{{Name: "v", Value: s}})
		if err != nil {
			return false
		}
		msg, err := c.DecodeEnvelope(doc)
		if err != nil {
			return false
		}
		got, _ := msg.ParamValue("v")
		return got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNumericRoundTripProperty(t *testing.T) {
	c := newTestCodec(t)
	f := func(i int64, u uint64, d float64, b bool) bool {
		doc, err := c.EncodeRequest(testNS, "op", []Param{
			{Name: "i", Value: i},
			{Name: "u", Value: u},
			{Name: "d", Value: d},
			{Name: "b", Value: b},
		})
		if err != nil {
			return false
		}
		msg, err := c.DecodeEnvelope(doc)
		if err != nil {
			return false
		}
		gi, _ := msg.ParamValue("i")
		gu, _ := msg.ParamValue("u")
		gd, _ := msg.ParamValue("d")
		gb, _ := msg.ParamValue("b")
		return gi == i && gu == u && gd == d && gb == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	c := newTestCodec(t)
	f := func(data []byte) bool {
		doc, err := c.EncodeRequest(testNS, "op", []Param{{Name: "blob", Value: data}})
		if err != nil {
			return false
		}
		msg, err := c.DecodeEnvelope(doc)
		if err != nil {
			return false
		}
		got, ok := msg.ParamValue("blob")
		if !ok {
			return false
		}
		if data == nil {
			return got == nil
		}
		gb, ok := got.([]byte)
		return ok && bytes.Equal(gb, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// legalXML reports whether every rune of s is a legal XML character.
func legalXML(s string) bool {
	for _, r := range s {
		switch {
		case r == 0x9 || r == 0xA || r == 0xD:
		case r >= 0x20 && r <= 0xD7FF:
		case r >= 0xE000 && r <= 0xFFFD:
		case r >= 0x10000 && r <= 0x10FFFF:
		default:
			return false
		}
	}
	return true
}

// TestEncodeResponseTo: the streaming encoder must produce exactly the
// bytes of EncodeResponse — it exists so the server can write a
// response without an intermediate []byte copy, not to change the wire
// form.
func TestEncodeResponseTo(t *testing.T) {
	c := newTestCodec(t)
	orig := sampleResult()
	want, err := c.EncodeResponse(testNS, "doGoogleSearch", orig)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := c.EncodeResponseTo(&buf, testNS, "doGoogleSearch", orig)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("n = %d, wrote %d", n, buf.Len())
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("streamed encoding diverges:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestEncodeResponseToErrorWritesNothing: an encoding failure must
// surface before any byte reaches the writer, so the HTTP layer can
// still send a clean 500.
func TestEncodeResponseToErrorWritesNothing(t *testing.T) {
	c := newTestCodec(t)
	var buf bytes.Buffer
	type unregistered struct{ X chan int }
	n, err := c.EncodeResponseTo(&buf, testNS, "op", &unregistered{})
	if err == nil {
		t.Fatal("encoding an unregistered type succeeded")
	}
	if n != 0 || buf.Len() != 0 {
		t.Errorf("failed encode wrote %d bytes (n=%d); must build fully before writing", buf.Len(), n)
	}
}
