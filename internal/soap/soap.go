// Package soap implements SOAP 1.1 message processing in the
// rpc/encoded style used by the Google Web APIs the paper evaluates:
// envelope construction, a reflection-driven serializer from Go
// application objects to SOAP XML, and a streaming deserializer that
// consumes SAX events and constructs application objects.
//
// The deserializer consuming events (rather than a DOM) is load-bearing
// for the paper's architecture: a cache hit on a stored SAX event
// sequence replays the recorded events straight into this deserializer,
// paying deserialization cost but not tokenization cost (Section
// 4.2.2).
package soap

import (
	"fmt"

	"repro/internal/typemap"
)

// Namespace URIs for SOAP 1.1 processing.
const (
	EnvNS      = "http://schemas.xmlsoap.org/soap/envelope/"
	EncNS      = "http://schemas.xmlsoap.org/soap/encoding/"
	SchemaNS   = "http://www.w3.org/2001/XMLSchema"
	InstanceNS = "http://www.w3.org/2001/XMLSchema-instance"
)

// Standard prefixes the codec declares on every envelope.
const (
	envPrefix    = "soapenv"
	encPrefix    = "soapenc"
	xsdPrefix    = "xsd"
	xsiPrefix    = "xsi"
	targetPrefix = "ns1"
)

// Param is a named parameter of an rpc-style operation: one child
// element of the operation wrapper.
type Param struct {
	Name  string
	Value any
}

// Fault is a SOAP 1.1 fault. It implements error so transport and
// client layers can return it directly.
type Fault struct {
	Code   string // e.g. "soapenv:Server"
	String string // human-readable fault string
	Actor  string
	Detail string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Codec serializes and deserializes SOAP messages using a typemap
// registry for application-object types.
type Codec struct {
	reg *typemap.Registry
}

// NewCodec returns a Codec backed by reg.
func NewCodec(reg *typemap.Registry) *Codec {
	return &Codec{reg: reg}
}

// Registry returns the codec's type registry.
func (c *Codec) Registry() *typemap.Registry { return c.reg }

// builtinName returns the xsd QName the serializer uses for a Go
// primitive kind, by example value.
func builtinQName(local string) typemap.QName {
	return typemap.QName{Space: SchemaNS, Local: local}
}
