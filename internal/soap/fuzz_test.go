package soap

import (
	"testing"

	"repro/internal/typemap"
)

// FuzzDecodeEnvelope feeds arbitrary bytes to the full decode path
// (tokenizer → namespace resolution → streaming deserializer →
// multiref resolution): it must never panic, whatever arrives on the
// wire. Run longer with:
//
//	go test -fuzz FuzzDecodeEnvelope ./internal/soap
func FuzzDecodeEnvelope(f *testing.F) {
	reg := newFuzzRegistry()
	codec := NewCodec(reg)

	// Seed with real envelopes, fault envelopes, multiref, and junk.
	if doc, err := codec.EncodeResponse(testNS, "doGoogleSearch", sampleResult()); err == nil {
		f.Add(doc)
	}
	if doc, err := codec.EncodeRequest(testNS, "op", []Param{{Name: "q", Value: "x"}, {Name: "n", Value: 3}}); err == nil {
		f.Add(doc)
	}
	if doc, err := codec.EncodeFault(&Fault{Code: "c", String: "s"}); err == nil {
		f.Add(doc)
	}
	f.Add([]byte(axisMultiRefResponse))
	f.Add([]byte(`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body/></e:Envelope>`))
	f.Add([]byte(`<a href="#x"/>`))
	f.Add([]byte(`not xml at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.DecodeEnvelope(data)
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
	})
}

// newFuzzRegistry builds the registry used by the fuzz codec (the same
// shape as newTestCodec without requiring a *testing.T).
func newFuzzRegistry() *typemap.Registry {
	reg := typemap.NewRegistry()
	_ = reg.Register(typemap.QName{Space: testNS, Local: "DirectoryCategory"}, directoryCategory{})
	_ = reg.Register(typemap.QName{Space: testNS, Local: "ResultElement"}, resultElement{})
	_ = reg.Register(typemap.QName{Space: testNS, Local: "GoogleSearchResult"}, searchResult{})
	return reg
}
