package soap

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/typemap"
)

// These tests cover decoding without xsi:type on child elements: the
// expected Go type comes from the parent context (struct field or
// declared array item type). Literal-style encoders omit xsi:type, so
// a lenient processor must cope.

type narrowTypes struct {
	Small   int16
	Tiny    int8
	Wide    uint64
	Ratio   float32
	Flag    bool
	Label   string
	Blob    []byte
	Nested  directoryCategory
	Many    []directoryCategory
	PtrSide *directoryCategory
}

func newUntypedCodec(t *testing.T) *Codec {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "DirectoryCategory"}, directoryCategory{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(typemap.QName{Space: testNS, Local: "NarrowTypes"}, narrowTypes{}); err != nil {
		t.Fatal(err)
	}
	return NewCodec(reg)
}

func TestDecodeUntypedStructFields(t *testing.T) {
	// Only the outer element declares its type; every field relies on
	// the registry's field metadata.
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:TestSearch">
	 <e:Body>
	  <m:opResponse>
	   <return xsi:type="m:NarrowTypes">
	    <small>-12</small>
	    <tiny>7</tiny>
	    <wide>18446744073709551615</wide>
	    <ratio>2.5</ratio>
	    <flag>true</flag>
	    <label>plain</label>
	    <blob>aGk=</blob>
	    <nested><fullViewableName>Top</fullViewableName><specialEncoding>u</specialEncoding></nested>
	    <many><fullViewableName>A</fullViewableName><specialEncoding></specialEncoding></many>
	    <ptrSide><fullViewableName>P</fullViewableName><specialEncoding></specialEncoding></ptrSide>
	   </return>
	  </m:opResponse>
	 </e:Body>
	</e:Envelope>`
	c := newUntypedCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.Result().(*narrowTypes)
	if !ok {
		t.Fatalf("result = %T", msg.Result())
	}
	want := &narrowTypes{
		Small:   -12,
		Tiny:    7,
		Wide:    18446744073709551615,
		Ratio:   2.5,
		Flag:    true,
		Label:   "plain",
		Blob:    []byte("hi"),
		Nested:  directoryCategory{FullViewableName: "Top", SpecialEncoding: "u"},
		Many:    []directoryCategory{{FullViewableName: "A"}},
		PtrSide: &directoryCategory{FullViewableName: "P"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got  %+v\nwant %+v", got, want)
	}
}

func TestDecodeUntypedSliceFieldMultipleItems(t *testing.T) {
	// A slice field receives several same-named children, each decoded
	// with the element type as expectation.
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:TestSearch">
	 <e:Body><m:op><r xsi:type="m:NarrowTypes">
	    <many><fullViewableName>A</fullViewableName><specialEncoding/></many>
	    <many><fullViewableName>B</fullViewableName><specialEncoding/></many>
	 </r></m:op></e:Body></e:Envelope>`
	c := newUntypedCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Result().(*narrowTypes)
	// Repeated same-named children append: literal-style arrays.
	if len(got.Many) != 2 || got.Many[0].FullViewableName != "A" || got.Many[1].FullViewableName != "B" {
		t.Errorf("many = %+v", got.Many)
	}
}

func TestDecodeNumericWidening(t *testing.T) {
	// xsi:type says int; the field is int16: the conversion must be
	// applied (convertSafe path).
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:m="urn:TestSearch">
	 <e:Body><m:op><r xsi:type="m:NarrowTypes">
	    <small xsi:type="xsd:int">33</small>
	    <ratio xsi:type="xsd:double">0.5</ratio>
	 </r></m:op></e:Body></e:Envelope>`
	c := newUntypedCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Result().(*narrowTypes)
	if got.Small != 33 || got.Ratio != 0.5 {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeArrayWithUntypedItems(t *testing.T) {
	// soapenc array with arrayType but items without xsi:type: item
	// expectation comes from the array declaration.
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:enc="http://schemas.xmlsoap.org/soap/encoding/" xmlns:m="urn:TestSearch">
	 <e:Body><m:op>
	   <list xsi:type="enc:Array" enc:arrayType="m:DirectoryCategory[2]">
	     <item><fullViewableName>A</fullViewableName><specialEncoding/></item>
	     <item><fullViewableName>B</fullViewableName><specialEncoding/></item>
	   </list>
	 </m:op></e:Body></e:Envelope>`
	c := newUntypedCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cats, ok := msg.Result().([]directoryCategory)
	if !ok {
		t.Fatalf("result = %T", msg.Result())
	}
	if len(cats) != 2 || cats[0].FullViewableName != "A" || cats[1].FullViewableName != "B" {
		t.Errorf("cats = %+v", cats)
	}
}

func TestDecodeUntypedBytesRoundTrip(t *testing.T) {
	c := newUntypedCodec(t)
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:TestSearch">
	 <e:Body><m:op><r xsi:type="m:NarrowTypes"><blob>AAEC/w==</blob></r></m:op></e:Body></e:Envelope>`
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Result().(*narrowTypes)
	if !bytes.Equal(got.Blob, []byte{0, 1, 2, 255}) {
		t.Errorf("blob = %v", got.Blob)
	}
}

func TestDecodeUntypedUnsupportedFieldKind(t *testing.T) {
	type withMap struct {
		M map[string]string
	}
	reg := typemap.NewRegistry()
	_ = reg.Register(typemap.QName{Space: testNS, Local: "WithMap"}, withMap{})
	c := NewCodec(reg)
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:m="urn:TestSearch">
	 <e:Body><m:op><r xsi:type="m:WithMap"><m><k>v</k></m></r></m:op></e:Body></e:Envelope>`
	if _, err := c.DecodeEnvelope([]byte(doc)); err == nil {
		t.Error("map field without xsi:type accepted")
	}
}
