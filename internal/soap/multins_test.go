package soap

import (
	"strings"
	"testing"

	"repro/internal/typemap"
)

// Types registered under a second namespace exercise the encoder's
// prefix minting: namespaces beyond the envelope's pre-declared set get
// fresh nsN prefixes declared at first use.

const otherNS = "urn:OtherService"

type crossRef struct {
	Local  directoryCategory
	Remote foreignThing
}

type foreignThing struct {
	Value string
}

func newMultiNSCodec(t *testing.T) *Codec {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "DirectoryCategory"}, directoryCategory{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(typemap.QName{Space: testNS, Local: "CrossRef"}, crossRef{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(typemap.QName{Space: otherNS, Local: "ForeignThing"}, foreignThing{}); err != nil {
		t.Fatal(err)
	}
	return NewCodec(reg)
}

func TestEncodeSecondNamespaceMintsPrefix(t *testing.T) {
	c := newMultiNSCodec(t)
	doc, err := c.EncodeResponse(testNS, "op", &crossRef{
		Local:  directoryCategory{FullViewableName: "L"},
		Remote: foreignThing{Value: "R"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	if !strings.Contains(s, `xmlns:ns2="urn:OtherService"`) {
		t.Errorf("second namespace not declared:\n%s", s)
	}
	if !strings.Contains(s, `xsi:type="ns2:ForeignThing"`) {
		t.Errorf("foreign type not prefixed:\n%s", s)
	}

	// And the whole thing round-trips.
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.Result().(*crossRef)
	if got.Local.FullViewableName != "L" || got.Remote.Value != "R" {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeSecondNamespaceArray(t *testing.T) {
	// An array of foreign-namespace items mints the prefix in the
	// arrayType attribute.
	c := newMultiNSCodec(t)
	doc, err := c.EncodeResponse(testNS, "op", []foreignThing{{Value: "a"}, {Value: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), `soapenc:arrayType="ns2:ForeignThing[2]"`) {
		t.Errorf("array item type not prefixed:\n%s", doc)
	}
	msg, err := c.DecodeEnvelope(doc)
	if err != nil {
		t.Fatal(err)
	}
	items := msg.Result().([]foreignThing)
	if len(items) != 2 || items[0].Value != "a" || items[1].Value != "b" {
		t.Errorf("items = %+v", items)
	}
}

func TestMultiRefNestedIDTarget(t *testing.T) {
	// An href can target an id declared on a NESTED element of another
	// carrier, not only top-level multiRef children (Axis emitted ids
	// on shared strings inside carriers).
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"
	    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
	    xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:m="urn:TestSearch">
	 <e:Body>
	  <m:opResponse>
	   <return xsi:type="m:DirectoryCategory">
	     <fullViewableName id="shared" xsi:type="xsd:string">deep value</fullViewableName>
	     <specialEncoding href="#shared"/>
	   </return>
	  </m:opResponse>
	 </e:Body>
	</e:Envelope>`
	c := newTestCodec(t)
	msg, err := c.DecodeEnvelope([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	dc := msg.Result().(*directoryCategory)
	if dc.FullViewableName != "deep value" || dc.SpecialEncoding != "deep value" {
		t.Errorf("got %+v", dc)
	}
}
