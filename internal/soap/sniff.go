package soap

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/xmltext"
)

// SniffOperation returns the local name of the rpc wrapper element (the
// first child of the SOAP Body) without decoding the message: it
// tokenizes only as far as the envelope header reaches. Server-side
// response caching uses it to consult the per-operation policy before
// deciding whether the request is worth full processing.
//
// For a Fault-bearing or empty Body it returns "" with a nil error.
func SniffOperation(doc []byte) (string, error) {
	sc := xmltext.NewScanner(doc)
	depth := 0
	inBody := false
	for {
		tok, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return "", nil
		}
		if err != nil {
			return "", fmt.Errorf("soap: sniff: %w", err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			depth++
			_, local := xmltext.SplitQName(tok.Name)
			switch {
			case depth == 1 && local != "Envelope":
				return "", fmt.Errorf("soap: sniff: root element %q is not an envelope", tok.Name)
			case depth == 2 && local == "Body":
				inBody = true
			case depth == 3 && inBody:
				if local == "Fault" {
					return "", nil
				}
				return local, nil
			}
		case xmltext.KindEndElement:
			if depth == 2 && inBody {
				// Body closed without children.
				return "", nil
			}
			depth--
		}
	}
}
