package soap

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/sax"
)

// Apache Axis 1.x serializes rpc/encoded responses with multi-reference
// encoding by default: a value element carries href="#id0" and the
// actual content lives in a top-level <multiRef id="id0"> sibling of
// the rpc wrapper inside the Body. The streaming decoder cannot resolve
// forward references, so envelopes containing hrefs take a structural
// pre-pass: build the DOM, splice every referenced subtree into place,
// then run the ordinary streaming decode over the resolved event
// stream. The cost is paid only for messages that actually use hrefs —
// exactly the messages a 2004 Axis server would send.

// hasHref cheaply detects multi-reference encoding in a raw document.
func hasHref(doc []byte) bool {
	return bytes.Contains(doc, []byte("href=\"#")) || bytes.Contains(doc, []byte("href='#"))
}

// EventsHaveHref reports whether a recorded event stream uses
// multi-reference encoding. Cache value stores that replay events
// through the streaming decoder directly must route href-bearing
// streams through DecodeEnvelopeEvents instead.
func EventsHaveHref(events []sax.Event) bool {
	return eventsHaveHref(events)
}

// eventsHaveHref detects multi-reference encoding in a recorded stream.
func eventsHaveHref(events []sax.Event) bool {
	for i := range events {
		if events[i].Kind != sax.StartElement {
			continue
		}
		for _, a := range events[i].Attrs {
			if a.Name.Local == "href" && a.Name.Prefix == "" && strings.HasPrefix(a.Value, "#") {
				return true
			}
		}
	}
	return false
}

// resolveMultiRef rewrites a DOM envelope with all hrefs replaced by
// the referenced content and multiRef carriers removed.
func resolveMultiRef(d *dom.Document) error {
	body := d.Root.ElemNS(EnvNS, "Body")
	if body == nil {
		return fmt.Errorf("soap: multiref: envelope has no Body")
	}

	// Index the id-bearing Body children (the multiRef carriers) and
	// find the rpc wrapper (the child without an id).
	carriers := make(map[string]*dom.Node)
	var kept []*dom.Node
	for _, child := range body.Children {
		if child.Kind != dom.ElementNode {
			kept = append(kept, child)
			continue
		}
		if id, ok := child.Attr("id"); ok && id != "" {
			carriers[id] = child
			continue
		}
		kept = append(kept, child)
	}
	body.Children = kept

	// Ids can also appear on nested elements (Axis emits them for
	// shared strings); index those too.
	for _, c := range carriers {
		indexNestedIDs(c, carriers)
	}
	for _, child := range kept {
		indexNestedIDs(child, carriers)
	}

	for _, child := range body.Children {
		if child.Kind == dom.ElementNode {
			if err := spliceRefs(child, carriers, make(map[string]bool)); err != nil {
				return err
			}
		}
	}
	return nil
}

// indexNestedIDs registers descendant elements that carry id
// attributes.
func indexNestedIDs(n *dom.Node, carriers map[string]*dom.Node) {
	for _, c := range n.Children {
		if c.Kind != dom.ElementNode {
			continue
		}
		if id, ok := c.Attr("id"); ok && id != "" {
			if _, exists := carriers[id]; !exists {
				carriers[id] = c
			}
		}
		indexNestedIDs(c, carriers)
	}
}

// spliceRefs recursively replaces href references under n with the
// referenced content. active guards against reference cycles.
func spliceRefs(n *dom.Node, carriers map[string]*dom.Node, active map[string]bool) error {
	if ref, ok := n.Attr("href"); ok && strings.HasPrefix(ref, "#") {
		id := ref[1:]
		carrier, ok := carriers[id]
		if !ok {
			return fmt.Errorf("soap: multiref: unresolved reference %q", ref)
		}
		if active[id] {
			return fmt.Errorf("soap: multiref: reference cycle through %q", ref)
		}
		active[id] = true
		defer delete(active, id)

		// The node keeps its element name; it adopts the carrier's
		// typing attributes and (a deep copy of) its content. A copy is
		// required because several hrefs may target one carrier.
		attrs := make([]sax.Attribute, 0, len(n.Attrs)+len(carrier.Attrs))
		for _, a := range n.Attrs {
			if a.Name.Prefix == "" && a.Name.Local == "href" {
				continue
			}
			attrs = append(attrs, a)
		}
		for _, a := range carrier.Attrs {
			if a.Name.Prefix == "" && (a.Name.Local == "id" || a.Name.Local == "root") {
				continue
			}
			// The reference's own attributes (rare) win over the
			// carrier's.
			if _, exists := findAttr(attrs, a.Name); !exists {
				attrs = append(attrs, a)
			}
		}
		n.Attrs = attrs
		n.Children = nil
		for _, c := range carrier.Children {
			n.AppendChild(c.Clone())
		}
	}

	for _, c := range n.Children {
		if c.Kind != dom.ElementNode {
			continue
		}
		if err := spliceRefs(c, carriers, active); err != nil {
			return err
		}
	}
	return nil
}

// findAttr locates an attribute by resolved name.
func findAttr(attrs []sax.Attribute, name sax.Name) (string, bool) {
	for _, a := range attrs {
		if a.Name.Space == name.Space && a.Name.Local == name.Local {
			return a.Value, true
		}
	}
	return "", false
}

// decodeMultiRefDoc decodes an href-bearing envelope via the DOM
// resolution pre-pass.
func (c *Codec) decodeMultiRefDoc(doc []byte) (*DecodedMessage, error) {
	d, err := dom.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("soap: multiref: %w", err)
	}
	return c.decodeMultiRefDOM(d)
}

// decodeMultiRefEvents decodes an href-bearing recorded event stream.
func (c *Codec) decodeMultiRefEvents(events []sax.Event) (*DecodedMessage, error) {
	d, err := dom.FromEvents(events)
	if err != nil {
		return nil, fmt.Errorf("soap: multiref: %w", err)
	}
	return c.decodeMultiRefDOM(d)
}

// decodeMultiRefDOM resolves references and streams the resolved tree
// into the ordinary decoder.
func (c *Codec) decodeMultiRefDOM(d *dom.Document) (*DecodedMessage, error) {
	if err := resolveMultiRef(d); err != nil {
		return nil, err
	}
	dec := newEnvelopeDecoder(c.reg)
	if err := sax.Replay(d.Events(), dec); err != nil {
		return nil, fmt.Errorf("soap: multiref decode: %w", err)
	}
	return dec.message()
}
