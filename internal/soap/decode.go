package soap

import (
	"encoding/base64"
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/sax"
	"repro/internal/typemap"
)

// DecodedMessage is the result of decoding an envelope: the rpc wrapper
// element, its decoded parameters, or a fault.
type DecodedMessage struct {
	Wrapper sax.Name
	Params  []Param
	Fault   *Fault
}

// Result returns the value of the first parameter (the "return" part of
// a response), or nil.
func (m *DecodedMessage) Result() any {
	if len(m.Params) == 0 {
		return nil
	}
	return m.Params[0].Value
}

// ParamValue returns the named parameter's value.
func (m *DecodedMessage) ParamValue(name string) (any, bool) {
	for _, p := range m.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return nil, false
}

// DecodeEnvelope parses a SOAP envelope from XML text and constructs
// the application objects it carries. This is the full cache-miss path:
// tokenization plus deserialization. Envelopes using Axis-style
// multi-reference encoding (href="#id") are detected and routed
// through a structural resolution pre-pass.
func (c *Codec) DecodeEnvelope(doc []byte) (*DecodedMessage, error) {
	if hasHref(doc) {
		return c.decodeMultiRefDoc(doc)
	}
	d := newEnvelopeDecoder(c.reg)
	if err := sax.Parse(doc, d); err != nil {
		return nil, fmt.Errorf("soap: decode: %w", err)
	}
	return d.message()
}

// DecodeEnvelopeEvents constructs application objects from a recorded
// SAX event sequence. This is the cache-hit path for the "SAX events
// sequence" representation: no tokenization, only replay and
// deserialization.
func (c *Codec) DecodeEnvelopeEvents(events []sax.Event) (*DecodedMessage, error) {
	if eventsHaveHref(events) {
		return c.decodeMultiRefEvents(events)
	}
	d := newEnvelopeDecoder(c.reg)
	if err := sax.Replay(events, d); err != nil {
		return nil, fmt.Errorf("soap: decode events: %w", err)
	}
	return d.message()
}

// DecodeHandler is the streaming deserializer exposed as a sax.Handler
// so callers can tee the same parse into several consumers (e.g. the
// deserializer plus an event recorder in the client middleware).
type DecodeHandler struct {
	d *envelopeDecoder
}

// NewDecodeHandler returns a fresh streaming deserializer.
func (c *Codec) NewDecodeHandler() *DecodeHandler {
	return &DecodeHandler{d: newEnvelopeDecoder(c.reg)}
}

// Handler returns the sax.Handler to drive.
func (h *DecodeHandler) Handler() sax.Handler { return h.d }

// Message returns the decoded message after the event stream has been
// fully delivered.
func (h *DecodeHandler) Message() (*DecodedMessage, error) { return h.d.message() }

// decoder states.
type decodeState int

const (
	stateStart decodeState = iota
	stateEnvelope
	stateHeader
	stateBody
	stateParams
	stateFault
	stateAfterBody
	stateDone
)

// fkind classifies a value frame under construction.
type fkind int

const (
	fSimple fkind = iota + 1
	fBytes
	fStruct
	fArray
	fNil
)

// frame is one value element being decoded.
type frame struct {
	name     string // element local name
	kind     fkind
	goType   reflect.Type // target Go type (element type for fBytes)
	text     strings.Builder
	ptr      reflect.Value // fStruct: *T under construction
	info     *typemap.TypeInfo
	items    []reflect.Value // fArray
	itemNil  []bool          // fArray: per-item nil flags
	itemType reflect.Type    // fArray declared item type (may be nil)
	// appendItem marks a literal-style repeated element: the frame is
	// one item of a slice-typed struct field and appends on assignment.
	appendItem bool
}

// envelopeDecoder is the streaming deserializer. It maintains its own
// prefix-binding stack (fed by the xmlns declarations passed through in
// the event stream) because xsi:type attribute *values* are prefixed
// QNames that must be resolved against in-scope bindings.
type envelopeDecoder struct {
	reg   *typemap.Registry
	state decodeState

	// prefix bindings, parallel stacks as in the SAX parser.
	bindings []prefixBinding
	frames   []int

	headerDepth int
	wrapper     sax.Name
	params      []Param
	stack       []*frame

	fault      *Fault
	faultField string
	faultDepth int
	faultText  strings.Builder

	err error
}

type prefixBinding struct {
	prefix string
	uri    string
}

var _ sax.Handler = (*envelopeDecoder)(nil)

func newEnvelopeDecoder(reg *typemap.Registry) *envelopeDecoder {
	return &envelopeDecoder{reg: reg}
}

// message returns the decoded message after a successful parse.
func (d *envelopeDecoder) message() (*DecodedMessage, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.state != stateDone {
		return nil, fmt.Errorf("soap: truncated envelope (state %d)", d.state)
	}
	return &DecodedMessage{Wrapper: d.wrapper, Params: d.params, Fault: d.fault}, nil
}

// OnStartDocument implements sax.Handler.
func (d *envelopeDecoder) OnStartDocument() error { return nil }

// OnEndDocument implements sax.Handler.
func (d *envelopeDecoder) OnEndDocument() error {
	if d.state != stateDone {
		return fmt.Errorf("soap: document ended before envelope closed")
	}
	return nil
}

// OnComment implements sax.Handler.
func (d *envelopeDecoder) OnComment(string) error { return nil }

// OnProcInst implements sax.Handler.
func (d *envelopeDecoder) OnProcInst(string, string) error { return nil }

// pushBindings registers xmlns declarations carried on a start tag.
func (d *envelopeDecoder) pushBindings(attrs []sax.Attribute) {
	added := 0
	for _, a := range attrs {
		switch {
		case a.Name.Prefix == "" && a.Name.Local == "xmlns":
			d.bindings = append(d.bindings, prefixBinding{prefix: "", uri: a.Value})
			added++
		case a.Name.Prefix == "xmlns":
			d.bindings = append(d.bindings, prefixBinding{prefix: a.Name.Local, uri: a.Value})
			added++
		}
	}
	d.frames = append(d.frames, added)
}

// popBindings closes the scope of an end tag.
func (d *envelopeDecoder) popBindings() {
	if len(d.frames) == 0 {
		return
	}
	n := d.frames[len(d.frames)-1]
	d.frames = d.frames[:len(d.frames)-1]
	d.bindings = d.bindings[:len(d.bindings)-n]
}

// resolveRef resolves a prefixed reference such as "xsd:string" from an
// attribute value against the in-scope bindings.
func (d *envelopeDecoder) resolveRef(ref string) (typemap.QName, error) {
	prefix, local := "", ref
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		prefix, local = ref[:i], ref[i+1:]
	}
	for i := len(d.bindings) - 1; i >= 0; i-- {
		if d.bindings[i].prefix == prefix {
			return typemap.QName{Space: d.bindings[i].uri, Local: local}, nil
		}
	}
	if prefix == "" {
		return typemap.QName{Local: local}, nil
	}
	return typemap.QName{}, fmt.Errorf("soap: undeclared prefix %q in reference %q", prefix, ref)
}

// attrValue finds a namespace-qualified attribute.
func attrValue(attrs []sax.Attribute, space, local string) (string, bool) {
	for _, a := range attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// OnStartElement implements sax.Handler: the state machine's main
// dispatch.
func (d *envelopeDecoder) OnStartElement(name sax.Name, attrs []sax.Attribute) error {
	d.pushBindings(attrs)
	switch d.state {
	case stateStart:
		if name.Space != EnvNS || name.Local != "Envelope" {
			return fmt.Errorf("soap: root element %s is not a SOAP 1.1 envelope", name)
		}
		d.state = stateEnvelope
		return nil

	case stateEnvelope:
		switch {
		case name.Space == EnvNS && name.Local == "Header":
			d.state = stateHeader
			d.headerDepth = 1
		case name.Space == EnvNS && name.Local == "Body":
			d.state = stateBody
		default:
			return fmt.Errorf("soap: unexpected element %s in envelope", name)
		}
		return nil

	case stateHeader:
		d.headerDepth++
		return nil

	case stateBody:
		if name.Space == EnvNS && name.Local == "Fault" {
			d.state = stateFault
			d.fault = &Fault{}
			d.faultDepth = 1
			return nil
		}
		d.wrapper = name
		d.state = stateParams
		return nil

	case stateParams:
		return d.startValue(name, attrs)

	case stateFault:
		d.faultDepth++
		if d.faultDepth == 2 {
			d.faultField = name.Local
			d.faultText.Reset()
		}
		return nil

	default:
		return fmt.Errorf("soap: unexpected element %s after body", name)
	}
}

// OnEndElement implements sax.Handler.
func (d *envelopeDecoder) OnEndElement(name sax.Name) error {
	defer d.popBindings()
	switch d.state {
	case stateHeader:
		d.headerDepth--
		if d.headerDepth == 0 {
			d.state = stateEnvelope
		}
		return nil

	case stateBody:
		// </Body> with no wrapper seen (empty body) or after wrapper.
		if name.Space == EnvNS && name.Local == "Body" {
			d.state = stateAfterBody
		}
		return nil

	case stateParams:
		if len(d.stack) == 0 {
			// End of the wrapper element.
			d.state = stateBody
			return nil
		}
		return d.endValue()

	case stateFault:
		d.faultDepth--
		if d.faultDepth == 1 {
			switch d.faultField {
			case "faultcode":
				d.fault.Code = strings.TrimSpace(d.faultText.String())
			case "faultstring":
				d.fault.String = d.faultText.String()
			case "faultactor":
				d.fault.Actor = strings.TrimSpace(d.faultText.String())
			case "detail":
				d.fault.Detail = d.faultText.String()
			}
			d.faultField = ""
		}
		if d.faultDepth == 0 {
			d.state = stateBody
		}
		return nil

	case stateAfterBody:
		if name.Space == EnvNS && name.Local == "Envelope" {
			d.state = stateDone
		}
		return nil

	default:
		return fmt.Errorf("soap: unexpected end element %s", name)
	}
}

// OnCharacters implements sax.Handler.
func (d *envelopeDecoder) OnCharacters(text string) error {
	switch d.state {
	case stateParams:
		if len(d.stack) == 0 {
			return nil
		}
		top := d.stack[len(d.stack)-1]
		if top.kind == fSimple || top.kind == fBytes {
			top.text.WriteString(text)
		}
		return nil
	case stateFault:
		if d.faultField != "" {
			d.faultText.WriteString(text)
		}
		return nil
	default:
		return nil
	}
}

// startValue opens a value frame for an element inside the rpc wrapper.
func (d *envelopeDecoder) startValue(name sax.Name, attrs []sax.Attribute) error {
	f := &frame{name: name.Local}

	if v, ok := attrValue(attrs, InstanceNS, "nil"); ok && (v == "true" || v == "1") {
		f.kind = fNil
		d.stack = append(d.stack, f)
		return nil
	}

	// Determine the target type: explicit xsi:type wins; otherwise the
	// expectation from the parent context (struct field or array item).
	var q typemap.QName
	var haveQ bool
	if ref, ok := attrValue(attrs, InstanceNS, "type"); ok {
		resolved, err := d.resolveRef(ref)
		if err != nil {
			return err
		}
		q, haveQ = resolved, true
	}

	expected := d.expectedType(name.Local)
	if !haveQ {
		if expected != nil {
			if err := d.frameFromGoType(f, expected); err != nil {
				return err
			}
			d.stack = append(d.stack, f)
			return nil
		}
		// No declaration at all: decode as string.
		f.kind = fSimple
		f.goType = reflect.TypeOf("")
		d.stack = append(d.stack, f)
		return nil
	}

	if err := d.frameFromQName(f, q, attrs); err != nil {
		return err
	}
	d.stack = append(d.stack, f)
	return nil
}

// expectedType returns the Go type the parent context declares for a
// child element, or nil.
func (d *envelopeDecoder) expectedType(childName string) reflect.Type {
	if len(d.stack) == 0 {
		return nil
	}
	parent := d.stack[len(d.stack)-1]
	switch parent.kind {
	case fStruct:
		for _, fld := range parent.info.Fields {
			if fld.XMLName == childName {
				return fld.Type
			}
		}
	case fArray:
		return parent.itemType
	}
	return nil
}

// frameFromQName configures a frame from an xsi:type QName.
func (d *envelopeDecoder) frameFromQName(f *frame, q typemap.QName, attrs []sax.Attribute) error {
	// SOAP-encoded array?
	if q.Space == EncNS && q.Local == "Array" {
		f.kind = fArray
		if ref, ok := attrValue(attrs, EncNS, "arrayType"); ok {
			base := strings.TrimSpace(ref)
			if i := strings.IndexByte(base, '['); i >= 0 {
				base = base[:i]
			}
			itemQ, err := d.resolveRef(base)
			if err != nil {
				return err
			}
			it, _, err := d.goTypeFor(itemQ)
			if err != nil {
				return fmt.Errorf("soap: array %s: %w", f.name, err)
			}
			f.itemType = it
		}
		return nil
	}

	t, kind, err := d.goTypeFor(q)
	if err != nil {
		return fmt.Errorf("soap: element %s: %w", f.name, err)
	}
	f.goType = t
	f.kind = kind
	if kind == fStruct {
		f.ptr = reflect.New(t)
		f.info = d.reg.InfoForType(t)
	}
	return nil
}

// frameFromGoType configures a frame from an expected Go type when no
// xsi:type is present.
func (d *envelopeDecoder) frameFromGoType(f *frame, t reflect.Type) error {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.String, reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		f.kind = fSimple
		f.goType = t
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			f.kind = fBytes
			f.goType = t
			return nil
		}
		// A slice-typed expectation without explicit enc:Array typing
		// is a literal-style repeated element: this element is ONE item
		// of the slice, appended on assignment.
		f.appendItem = true
		return d.frameFromGoType(f, t.Elem())
	case reflect.Struct:
		f.kind = fStruct
		f.goType = t
		f.ptr = reflect.New(t)
		f.info = d.reg.InfoForType(t)
	default:
		return fmt.Errorf("soap: cannot decode into %s", t)
	}
	return nil
}

// goTypeFor maps an XML type QName to a Go type and frame kind.
func (d *envelopeDecoder) goTypeFor(q typemap.QName) (reflect.Type, fkind, error) {
	if q.Space == SchemaNS || q.Space == EncNS {
		switch q.Local {
		case "string", "anyURI", "dateTime", "QName":
			return reflect.TypeOf(""), fSimple, nil
		case "boolean":
			return reflect.TypeOf(false), fSimple, nil
		case "int", "integer":
			return reflect.TypeOf(int(0)), fSimple, nil
		case "long":
			return reflect.TypeOf(int64(0)), fSimple, nil
		case "short":
			return reflect.TypeOf(int16(0)), fSimple, nil
		case "byte":
			return reflect.TypeOf(int8(0)), fSimple, nil
		case "unsignedInt":
			return reflect.TypeOf(uint(0)), fSimple, nil
		case "unsignedLong":
			return reflect.TypeOf(uint64(0)), fSimple, nil
		case "float":
			return reflect.TypeOf(float32(0)), fSimple, nil
		case "double", "decimal":
			return reflect.TypeOf(float64(0)), fSimple, nil
		case "base64Binary":
			return reflect.TypeOf([]byte(nil)), fBytes, nil
		}
	}
	if t, ok := d.reg.TypeFor(q); ok {
		return t, fStruct, nil
	}
	return nil, 0, fmt.Errorf("unknown type %s", q)
}

// endValue finalizes the top frame and assigns it into its parent.
func (d *envelopeDecoder) endValue() error {
	f := d.stack[len(d.stack)-1]
	d.stack = d.stack[:len(d.stack)-1]

	v, isNil, err := d.finalize(f)
	if err != nil {
		return err
	}

	if len(d.stack) == 0 {
		// Direct child of the rpc wrapper: a parameter.
		var val any
		if !isNil {
			val = paramInterface(f, v)
		}
		d.params = append(d.params, Param{Name: f.name, Value: val})
		return nil
	}

	parent := d.stack[len(d.stack)-1]
	switch parent.kind {
	case fStruct:
		for _, fld := range parent.info.Fields {
			if fld.XMLName == f.name {
				dst := parent.ptr.Elem().Field(fld.Index)
				if isNil {
					return nil // leave zero
				}
				if f.appendItem && dst.Kind() == reflect.Slice {
					item := reflect.New(dst.Type().Elem()).Elem()
					if err := assign(item, v); err != nil {
						return fmt.Errorf("soap: element %s item: %w", f.name, err)
					}
					dst.Set(reflect.Append(dst, item))
					return nil
				}
				return assign(dst, v)
			}
		}
		// Unknown field: tolerated and dropped, as a lenient processor.
		return nil
	case fArray:
		parent.items = append(parent.items, v)
		parent.itemNil = append(parent.itemNil, isNil)
		return nil
	default:
		return fmt.Errorf("soap: element %s nested inside simple value %s", f.name, parent.name)
	}
}

// paramInterface converts a finalized frame value to the any exposed in
// Params: struct results are exposed as pointers (application objects
// are passed by reference in Go, by copy on the wire).
func paramInterface(f *frame, v reflect.Value) any {
	if f.kind == fStruct {
		return f.ptr.Interface()
	}
	return v.Interface()
}

// finalize converts a frame's accumulated state into a reflect.Value.
func (d *envelopeDecoder) finalize(f *frame) (reflect.Value, bool, error) {
	switch f.kind {
	case fNil:
		return reflect.Value{}, true, nil
	case fSimple:
		v, err := parseSimple(f.goType, f.text.String())
		if err != nil {
			return reflect.Value{}, false, fmt.Errorf("soap: element %s: %w", f.name, err)
		}
		return v, false, nil
	case fBytes:
		raw := strings.Map(dropSpace, f.text.String())
		data, err := base64.StdEncoding.DecodeString(raw)
		if err != nil {
			return reflect.Value{}, false, fmt.Errorf("soap: element %s: invalid base64: %w", f.name, err)
		}
		return reflect.ValueOf(data), false, nil
	case fStruct:
		return f.ptr.Elem(), false, nil
	case fArray:
		it := f.itemType
		if it == nil {
			if len(f.items) > 0 {
				it = f.items[0].Type()
			} else {
				it = reflect.TypeOf((*any)(nil)).Elem()
			}
		}
		slice := reflect.MakeSlice(reflect.SliceOf(it), len(f.items), len(f.items))
		for i, item := range f.items {
			if f.itemNil[i] {
				continue
			}
			if err := assign(slice.Index(i), item); err != nil {
				return reflect.Value{}, false, fmt.Errorf("soap: array %s[%d]: %w", f.name, i, err)
			}
		}
		return slice, false, nil
	default:
		return reflect.Value{}, false, fmt.Errorf("soap: internal: unfinalizable frame %s", f.name)
	}
}

// assign stores src into the settable dst, handling pointer targets and
// safe conversions.
func assign(dst reflect.Value, src reflect.Value) error {
	if dst.Kind() == reflect.Pointer {
		p := reflect.New(dst.Type().Elem())
		if err := assign(p.Elem(), src); err != nil {
			return err
		}
		dst.Set(p)
		return nil
	}
	if dst.Kind() == reflect.Interface {
		dst.Set(src)
		return nil
	}
	if src.Type().AssignableTo(dst.Type()) {
		dst.Set(src)
		return nil
	}
	if src.Type().ConvertibleTo(dst.Type()) && convertSafe(src.Type(), dst.Type()) {
		dst.Set(src.Convert(dst.Type()))
		return nil
	}
	return fmt.Errorf("cannot assign %s to %s", src.Type(), dst.Type())
}

// convertSafe limits reflect conversions to numeric/string widenings
// the codec intends, keeping surprising conversions (e.g. int→string)
// out.
func convertSafe(src, dst reflect.Type) bool {
	num := func(k reflect.Kind) bool {
		switch k {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
			return true
		}
		return false
	}
	if num(src.Kind()) && num(dst.Kind()) {
		return true
	}
	if src.Kind() == reflect.String && dst.Kind() == reflect.String {
		return true
	}
	if src.Kind() == reflect.Slice && dst.Kind() == reflect.Slice {
		return src.Elem().Kind() == reflect.Uint8 && dst.Elem().Kind() == reflect.Uint8
	}
	return false
}

// parseSimple converts element text to the target simple type.
func parseSimple(t reflect.Type, text string) (reflect.Value, error) {
	switch t.Kind() {
	case reflect.String:
		return reflect.ValueOf(text).Convert(t), nil
	case reflect.Bool:
		s := strings.TrimSpace(text)
		switch s {
		case "true", "1":
			return reflect.ValueOf(true).Convert(t), nil
		case "false", "0", "":
			return reflect.ValueOf(false).Convert(t), nil
		}
		return reflect.Value{}, fmt.Errorf("invalid boolean %q", s)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		s := strings.TrimSpace(text)
		if s == "" {
			s = "0"
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return reflect.Value{}, fmt.Errorf("invalid integer %q", s)
		}
		v := reflect.New(t).Elem()
		if v.OverflowInt(n) {
			return reflect.Value{}, fmt.Errorf("integer %q overflows %s", s, t)
		}
		v.SetInt(n)
		return v, nil
	case reflect.Uint, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		s := strings.TrimSpace(text)
		if s == "" {
			s = "0"
		}
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return reflect.Value{}, fmt.Errorf("invalid unsigned integer %q", s)
		}
		v := reflect.New(t).Elem()
		if v.OverflowUint(n) {
			return reflect.Value{}, fmt.Errorf("unsigned %q overflows %s", s, t)
		}
		v.SetUint(n)
		return v, nil
	case reflect.Float32, reflect.Float64:
		s := strings.TrimSpace(text)
		if s == "" {
			s = "0"
		}
		fv, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return reflect.Value{}, fmt.Errorf("invalid float %q", s)
		}
		v := reflect.New(t).Elem()
		v.SetFloat(fv)
		return v, nil
	default:
		return reflect.Value{}, fmt.Errorf("not a simple type: %s", t)
	}
}

// dropSpace removes XML whitespace from base64 text.
func dropSpace(r rune) rune {
	switch r {
	case ' ', '\t', '\r', '\n':
		return -1
	}
	return r
}
