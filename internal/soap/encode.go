package soap

import (
	"encoding/base64"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/typemap"
	"repro/internal/xmltext"
)

// encoder writes one envelope. It tracks namespace prefixes: the five
// standard namespaces plus the target (service) namespace are declared
// on the envelope; any further namespaces get fresh nsN prefixes
// declared at first use.
type encoder struct {
	b        strings.Builder
	reg      *typemap.Registry
	prefixes map[string]string // namespace URI -> prefix
	nextNS   int
}

// newEncoder seeds the prefix table with the standard declarations.
func (c *Codec) newEncoder(targetNS string) *encoder {
	e := &encoder{
		reg: c.reg,
		prefixes: map[string]string{
			EnvNS:      envPrefix,
			EncNS:      encPrefix,
			SchemaNS:   xsdPrefix,
			InstanceNS: xsiPrefix,
		},
		nextNS: 2,
	}
	if targetNS != "" {
		e.prefixes[targetNS] = targetPrefix
	}
	return e
}

// EncodeRequest serializes an rpc/encoded request envelope for the
// operation in the given target namespace.
func (c *Codec) EncodeRequest(targetNS, operation string, params []Param) ([]byte, error) {
	return c.encodeCall(targetNS, operation, params)
}

// EncodeResponse serializes an rpc/encoded response envelope. By
// convention the wrapper element is operation+"Response" and the single
// part is named "return".
func (c *Codec) EncodeResponse(targetNS, operation string, result any) ([]byte, error) {
	return c.encodeCall(targetNS, operation+"Response", []Param{{Name: "return", Value: result}})
}

// EncodeResponseTo serializes an rpc/encoded response envelope
// directly into w, skipping EncodeResponse's []byte materialization.
// The envelope is built fully before the write, so an encode error
// reaches the caller before any byte has gone out (the server can
// still send a fault).
func (c *Codec) EncodeResponseTo(w io.Writer, targetNS, operation string, result any) (int64, error) {
	e, err := c.buildCall(targetNS, operation+"Response", []Param{{Name: "return", Value: result}})
	if err != nil {
		return 0, err
	}
	n, err := io.WriteString(w, e.b.String())
	return int64(n), err
}

// EncodeFault serializes a SOAP fault envelope.
func (c *Codec) EncodeFault(f *Fault) ([]byte, error) {
	e := c.newEncoder("")
	e.openEnvelope("")
	e.b.WriteString("<" + envPrefix + ":Fault>")
	e.simpleChild("faultcode", f.Code)
	e.simpleChild("faultstring", f.String)
	if f.Actor != "" {
		e.simpleChild("faultactor", f.Actor)
	}
	if f.Detail != "" {
		e.simpleChild("detail", f.Detail)
	}
	e.b.WriteString("</" + envPrefix + ":Fault>")
	e.closeEnvelope()
	return []byte(e.b.String()), nil
}

// encodeCall writes a full envelope whose Body holds one wrapper
// element containing the given params.
func (c *Codec) encodeCall(targetNS, wrapper string, params []Param) ([]byte, error) {
	e, err := c.buildCall(targetNS, wrapper, params)
	if err != nil {
		return nil, err
	}
	return []byte(e.b.String()), nil
}

// buildCall builds a full envelope whose Body holds one wrapper
// element containing the given params, returning the encoder for the
// caller to drain (as bytes or straight into a writer).
func (c *Codec) buildCall(targetNS, wrapper string, params []Param) (*encoder, error) {
	e := c.newEncoder(targetNS)
	e.openEnvelope(targetNS)

	wrapperName := wrapper
	if targetNS != "" {
		wrapperName = targetPrefix + ":" + wrapper
	}
	e.b.WriteString("<" + wrapperName + " " + envPrefix + `:encodingStyle="` + EncNS + `">`)
	for _, p := range params {
		if err := e.value(p.Name, p.Value); err != nil {
			return nil, fmt.Errorf("soap: encode %s.%s: %w", wrapper, p.Name, err)
		}
	}
	e.b.WriteString("</" + wrapperName + ">")

	e.closeEnvelope()
	return e, nil
}

// openEnvelope writes the envelope and body start tags with the
// standard namespace declarations.
func (e *encoder) openEnvelope(targetNS string) {
	e.b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>`)
	e.b.WriteString("<" + envPrefix + ":Envelope")
	e.decl(envPrefix, EnvNS)
	e.decl(encPrefix, EncNS)
	e.decl(xsdPrefix, SchemaNS)
	e.decl(xsiPrefix, InstanceNS)
	if targetNS != "" {
		e.decl(targetPrefix, targetNS)
	}
	e.b.WriteString("><" + envPrefix + ":Body>")
}

// closeEnvelope writes the body and envelope end tags.
func (e *encoder) closeEnvelope() {
	e.b.WriteString("</" + envPrefix + ":Body></" + envPrefix + ":Envelope>")
}

// decl writes an xmlns declaration.
func (e *encoder) decl(prefix, uri string) {
	e.b.WriteString(` xmlns:` + prefix + `="`)
	xmltext.EscapeAttr(&e.b, uri)
	e.b.WriteByte('"')
}

// simpleChild writes an untyped simple element (used in faults).
func (e *encoder) simpleChild(name, text string) {
	e.b.WriteString("<" + name + ">")
	xmltext.EscapeText(&e.b, text)
	e.b.WriteString("</" + name + ">")
}

// prefixFor returns the prefix for a namespace URI, minting and
// declaring a new one on the current element when unseen. The returned
// decl string is non-empty when a declaration must be appended to the
// open tag being built.
func (e *encoder) prefixFor(uri string) (prefix, decl string) {
	if p, ok := e.prefixes[uri]; ok {
		return p, ""
	}
	p := "ns" + strconv.Itoa(e.nextNS)
	e.nextNS++
	e.prefixes[uri] = p
	return p, ` xmlns:` + p + `="` + xmltext.EscapeAttrString(uri) + `"`
}

// qref renders a QName as prefix:local, returning any xmlns declaration
// needed.
func (e *encoder) qref(q typemap.QName) (ref, decl string) {
	if q.Space == "" {
		return q.Local, ""
	}
	p, d := e.prefixFor(q.Space)
	return p + ":" + q.Local, d
}

// value encodes one named value as an element with xsi:type.
func (e *encoder) value(name string, v any) error {
	if v == nil {
		e.b.WriteString("<" + name + " " + xsiPrefix + `:nil="true"/>`)
		return nil
	}
	rv := reflect.ValueOf(v)
	return e.reflectValue(name, rv)
}

// reflectValue dispatches on the reflected kind of rv.
func (e *encoder) reflectValue(name string, rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			e.b.WriteString("<" + name + " " + xsiPrefix + `:nil="true"/>`)
			return nil
		}
		return e.reflectValue(name, rv.Elem())

	case reflect.String:
		e.typedSimple(name, "string", xmltext.EscapeTextString(rv.String()))
		return nil
	case reflect.Bool:
		e.typedSimple(name, "boolean", strconv.FormatBool(rv.Bool()))
		return nil
	case reflect.Int, reflect.Int32:
		e.typedSimple(name, "int", strconv.FormatInt(rv.Int(), 10))
		return nil
	case reflect.Int8:
		e.typedSimple(name, "byte", strconv.FormatInt(rv.Int(), 10))
		return nil
	case reflect.Int16:
		e.typedSimple(name, "short", strconv.FormatInt(rv.Int(), 10))
		return nil
	case reflect.Int64:
		e.typedSimple(name, "long", strconv.FormatInt(rv.Int(), 10))
		return nil
	case reflect.Uint, reflect.Uint16, reflect.Uint32:
		e.typedSimple(name, "unsignedInt", strconv.FormatUint(rv.Uint(), 10))
		return nil
	case reflect.Uint64:
		e.typedSimple(name, "unsignedLong", strconv.FormatUint(rv.Uint(), 10))
		return nil
	case reflect.Float32:
		e.typedSimple(name, "float", strconv.FormatFloat(rv.Float(), 'g', -1, 32))
		return nil
	case reflect.Float64:
		e.typedSimple(name, "double", strconv.FormatFloat(rv.Float(), 'g', -1, 64))
		return nil

	case reflect.Slice, reflect.Array:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			e.encodeBytes(name, rv)
			return nil
		}
		return e.encodeArray(name, rv)

	case reflect.Struct:
		return e.encodeStruct(name, rv)

	default:
		return fmt.Errorf("unsupported kind %s", rv.Kind())
	}
}

// typedSimple writes <name xsi:type="xsd:local">text</name>. The text
// must already be escaped.
func (e *encoder) typedSimple(name, xsdLocal, escaped string) {
	e.b.WriteString("<" + name + " " + xsiPrefix + `:type="` + xsdPrefix + ":" + xsdLocal + `">`)
	e.b.WriteString(escaped)
	e.b.WriteString("</" + name + ">")
}

// encodeBytes writes a base64Binary element.
func (e *encoder) encodeBytes(name string, rv reflect.Value) {
	var data []byte
	if rv.Kind() == reflect.Slice {
		data = rv.Bytes()
	} else {
		data = make([]byte, rv.Len())
		reflect.Copy(reflect.ValueOf(data), rv)
	}
	e.b.WriteString("<" + name + " " + xsiPrefix + `:type="` + xsdPrefix + `:base64Binary">`)
	e.b.WriteString(base64.StdEncoding.EncodeToString(data))
	e.b.WriteString("</" + name + ">")
}

// encodeArray writes a SOAP-encoded array with soapenc:arrayType.
func (e *encoder) encodeArray(name string, rv reflect.Value) error {
	itemType := rv.Type().Elem()
	itemRef, decl, err := e.typeRefFor(itemType)
	if err != nil {
		return fmt.Errorf("array %s: %w", name, err)
	}
	e.b.WriteString("<" + name + " " + xsiPrefix + `:type="` + encPrefix + `:Array"`)
	e.b.WriteString(decl)
	e.b.WriteString(" " + encPrefix + `:arrayType="` + itemRef + "[" + strconv.Itoa(rv.Len()) + `]">`)
	for i := 0; i < rv.Len(); i++ {
		if err := e.reflectValue("item", rv.Index(i)); err != nil {
			return fmt.Errorf("array %s[%d]: %w", name, i, err)
		}
	}
	e.b.WriteString("</" + name + ">")
	return nil
}

// encodeStruct writes a registered complex type with its bean fields as
// child elements.
func (e *encoder) encodeStruct(name string, rv reflect.Value) error {
	t := rv.Type()
	q, ok := e.reg.NameFor(rv.Interface())
	if !ok {
		return fmt.Errorf("struct type %s is not registered", t)
	}
	ref, decl := e.qref(q)
	e.b.WriteString("<" + name)
	e.b.WriteString(decl)
	e.b.WriteString(" " + xsiPrefix + `:type="` + ref + `">`)
	info := e.reg.InfoForType(t)
	for _, f := range info.Fields {
		if err := e.reflectValue(f.XMLName, rv.Field(f.Index)); err != nil {
			return fmt.Errorf("field %s.%s: %w", t, f.GoName, err)
		}
	}
	e.b.WriteString("</" + name + ">")
	return nil
}

// typeRefFor renders the xsi type reference for a Go type (used for
// array item types), returning any xmlns declaration required.
func (e *encoder) typeRefFor(t reflect.Type) (ref, decl string, err error) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.String:
		return xsdPrefix + ":string", "", nil
	case reflect.Bool:
		return xsdPrefix + ":boolean", "", nil
	case reflect.Int, reflect.Int32:
		return xsdPrefix + ":int", "", nil
	case reflect.Int8:
		return xsdPrefix + ":byte", "", nil
	case reflect.Int16:
		return xsdPrefix + ":short", "", nil
	case reflect.Int64:
		return xsdPrefix + ":long", "", nil
	case reflect.Uint, reflect.Uint16, reflect.Uint32:
		return xsdPrefix + ":unsignedInt", "", nil
	case reflect.Uint64:
		return xsdPrefix + ":unsignedLong", "", nil
	case reflect.Float32:
		return xsdPrefix + ":float", "", nil
	case reflect.Float64:
		return xsdPrefix + ":double", "", nil
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return xsdPrefix + ":base64Binary", "", nil
		}
		return encPrefix + ":Array", "", nil
	case reflect.Struct:
		q, ok := e.reg.NameForType(t)
		if !ok {
			return "", "", fmt.Errorf("struct type %s is not registered", t)
		}
		r, d := e.qref(q)
		return r, d, nil
	default:
		return "", "", fmt.Errorf("unsupported array item kind %s", t.Kind())
	}
}
