package xsd

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/typemap"
)

const schemaDoc = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
            xmlns:tns="urn:test"
            xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/"
            xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
            targetNamespace="urn:test">
  <xsd:complexType name="Result">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:element name="count" type="xsd:int" minOccurs="0"/>
      <xsd:element name="scores" type="xsd:double" maxOccurs="unbounded"/>
      <xsd:element name="child" type="tns:Child" nillable="true"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Child">
    <xsd:sequence>
      <xsd:element name="v" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="ResultArray">
    <xsd:complexContent>
      <xsd:restriction base="soapenc:Array">
        <xsd:attribute ref="soapenc:arrayType" wsdl:arrayType="tns:Result[]"/>
      </xsd:restriction>
    </xsd:complexContent>
  </xsd:complexType>
  <xsd:complexType name="Empty"/>
</xsd:schema>`

func parseTestSchema(t *testing.T) *Schema {
	t.Helper()
	d, err := dom.Parse([]byte(schemaDoc))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSchema(d.Root)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseSchemaComplexType(t *testing.T) {
	s := parseTestSchema(t)
	if s.TargetNamespace != "urn:test" {
		t.Errorf("tns = %q", s.TargetNamespace)
	}
	r, ok := s.TypeByName("Result")
	if !ok {
		t.Fatal("Result type missing")
	}
	if r.Kind != KindComplex {
		t.Errorf("kind = %v", r.Kind)
	}
	if len(r.Elements) != 4 {
		t.Fatalf("elements = %+v", r.Elements)
	}
	title := r.Elements[0]
	if title.Name != "title" || title.Type != BuiltinQName("string") {
		t.Errorf("title = %+v", title)
	}
	count := r.Elements[1]
	if count.MinOccurs != 0 {
		t.Errorf("count minOccurs = %d", count.MinOccurs)
	}
	scores := r.Elements[2]
	if scores.MaxOccurs != -1 {
		t.Errorf("scores maxOccurs = %d", scores.MaxOccurs)
	}
	child := r.Elements[3]
	if !child.Nillable {
		t.Error("child should be nillable")
	}
	if child.Type != (typemap.QName{Space: "urn:test", Local: "Child"}) {
		t.Errorf("child type = %v", child.Type)
	}
}

func TestParseSchemaArrayType(t *testing.T) {
	s := parseTestSchema(t)
	a, ok := s.TypeByName("ResultArray")
	if !ok {
		t.Fatal("ResultArray missing")
	}
	if a.Kind != KindArray {
		t.Fatalf("kind = %v", a.Kind)
	}
	if a.ArrayOf != (typemap.QName{Space: "urn:test", Local: "Result"}) {
		t.Errorf("arrayOf = %v", a.ArrayOf)
	}
}

func TestParseSchemaEmptyType(t *testing.T) {
	s := parseTestSchema(t)
	e, ok := s.TypeByName("Empty")
	if !ok {
		t.Fatal("Empty missing")
	}
	if e.Kind != KindComplex || len(e.Elements) != 0 {
		t.Errorf("empty type = %+v", e)
	}
}

func TestParseSchemaWrongRoot(t *testing.T) {
	d, err := dom.Parse([]byte(`<notschema/>`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSchema(d.Root); err == nil {
		t.Error("expected error for non-schema root")
	}
}

func TestParseSchemaAnonymousComplexType(t *testing.T) {
	doc := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t">
	  <xsd:complexType><xsd:sequence/></xsd:complexType>
	</xsd:schema>`
	d, err := dom.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSchema(d.Root); err == nil {
		t.Error("expected error for unnamed complexType")
	}
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin(BuiltinQName("string")) {
		t.Error("string is builtin")
	}
	if !IsBuiltin(BuiltinQName("base64Binary")) {
		t.Error("base64Binary is builtin")
	}
	if IsBuiltin(typemap.QName{Space: "urn:test", Local: "string"}) {
		t.Error("wrong namespace must not be builtin")
	}
	if IsBuiltin(BuiltinQName("noSuchType")) {
		t.Error("unknown local must not be builtin")
	}
}

func TestUndeclaredPrefixInTypeRef(t *testing.T) {
	doc := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t">
	  <xsd:complexType name="T">
	    <xsd:sequence><xsd:element name="e" type="nope:X"/></xsd:sequence>
	  </xsd:complexType>
	</xsd:schema>`
	d, err := dom.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSchema(d.Root); err == nil {
		t.Error("expected error for undeclared prefix")
	}
}
