// Package xsd models the subset of XML Schema used by WSDL 1.1 service
// descriptions: the built-in simple types, complex types with element
// sequences, and SOAP-encoded arrays. The WSDL compiler analog in this
// repository uses these models to register Go types for a service's
// messages (what Axis's WSDL2Java did with generated classes).
package xsd

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/typemap"
)

// Namespace URIs used by schema documents.
const (
	SchemaNS   = "http://www.w3.org/2001/XMLSchema"
	InstanceNS = "http://www.w3.org/2001/XMLSchema-instance"
	SOAPEncNS  = "http://schemas.xmlsoap.org/soap/encoding/"
	WSDLNS     = "http://schemas.xmlsoap.org/wsdl/"
	WSDLSOAPNS = "http://schemas.xmlsoap.org/wsdl/soap/"
	SOAPEnvNS  = "http://schemas.xmlsoap.org/soap/envelope/"
)

// Builtin names the XML Schema built-in simple types supported by the
// codec.
var Builtin = map[string]bool{
	"string":       true,
	"boolean":      true,
	"int":          true,
	"integer":      true,
	"long":         true,
	"short":        true,
	"byte":         true,
	"unsignedInt":  true,
	"unsignedLong": true,
	"float":        true,
	"double":       true,
	"decimal":      true,
	"base64Binary": true,
	"anyType":      true,
	"anyURI":       true,
	"dateTime":     true,
}

// Kind discriminates schema type definitions.
type Kind int

// Schema type kinds.
const (
	KindBuiltin Kind = iota + 1
	KindComplex
	KindArray
)

// Element is a single element declaration inside a complex type's
// sequence.
type Element struct {
	Name      string
	Type      typemap.QName
	MinOccurs int
	MaxOccurs int // -1 means unbounded
	Nillable  bool
}

// Type is a named schema type definition.
type Type struct {
	Name     typemap.QName
	Kind     Kind
	Elements []Element     // KindComplex
	ArrayOf  typemap.QName // KindArray: the soapenc arrayType item type
}

// Schema is a parsed <xsd:schema> element.
type Schema struct {
	TargetNamespace string
	Types           map[string]*Type // keyed by local name
}

// TypeByName returns the named type declared in this schema.
func (s *Schema) TypeByName(local string) (*Type, bool) {
	t, ok := s.Types[local]
	return t, ok
}

// ParseSchema parses an <xsd:schema> DOM element.
func ParseSchema(n *dom.Node) (*Schema, error) {
	if n.Name.Space != SchemaNS || n.Name.Local != "schema" {
		return nil, fmt.Errorf("xsd: element is %s, not an xsd schema", n.Name.Local)
	}
	tns, _ := n.Attr("targetNamespace")
	s := &Schema{
		TargetNamespace: tns,
		Types:           make(map[string]*Type),
	}
	for _, child := range n.Elems("complexType") {
		t, err := parseComplexType(s, child)
		if err != nil {
			return nil, err
		}
		s.Types[t.Name.Local] = t
	}
	return s, nil
}

// parseComplexType parses a named <xsd:complexType>.
func parseComplexType(s *Schema, n *dom.Node) (*Type, error) {
	name, ok := n.Attr("name")
	if !ok || name == "" {
		return nil, fmt.Errorf("xsd: complexType without name")
	}
	t := &Type{Name: typemap.QName{Space: s.TargetNamespace, Local: name}}

	// SOAP-encoded array: complexContent/restriction base="soapenc:Array"
	// with an attribute wsdl:arrayType="ns:Item[]".
	if cc := n.Elem("complexContent"); cc != nil {
		restr := cc.Elem("restriction")
		if restr == nil {
			return nil, fmt.Errorf("xsd: complexContent of %s without restriction", name)
		}
		itemType, err := parseArrayRestriction(restr)
		if err != nil {
			return nil, fmt.Errorf("xsd: type %s: %w", name, err)
		}
		t.Kind = KindArray
		t.ArrayOf = itemType
		return t, nil
	}

	t.Kind = KindComplex
	seq := n.Elem("sequence")
	if seq == nil {
		if n.Elem("all") != nil {
			seq = n.Elem("all")
		} else {
			// Empty complex type: no elements.
			return t, nil
		}
	}
	for _, el := range seq.Elems("element") {
		e, err := parseElement(el)
		if err != nil {
			return nil, fmt.Errorf("xsd: type %s: %w", name, err)
		}
		t.Elements = append(t.Elements, e)
	}
	return t, nil
}

// parseArrayRestriction extracts the item type from a SOAP-encoded
// array restriction.
func parseArrayRestriction(restr *dom.Node) (typemap.QName, error) {
	for _, attrNode := range restr.Elems("attribute") {
		at, ok := attrNode.AttrNS(WSDLNS, "arrayType")
		if !ok {
			at, ok = attrNode.Attr("wsdl:arrayType")
		}
		if ok {
			ref := strings.TrimSuffix(at, "[]")
			return resolveQName(attrNode, ref)
		}
	}
	return typemap.QName{}, fmt.Errorf("array restriction without wsdl:arrayType")
}

// parseElement parses an <xsd:element> declaration.
func parseElement(n *dom.Node) (Element, error) {
	name, ok := n.Attr("name")
	if !ok {
		return Element{}, fmt.Errorf("element without name")
	}
	typeRef, ok := n.Attr("type")
	if !ok {
		return Element{}, fmt.Errorf("element %s without type", name)
	}
	qn, err := resolveQName(n, typeRef)
	if err != nil {
		return Element{}, err
	}
	e := Element{Name: name, Type: qn, MinOccurs: 1, MaxOccurs: 1}
	if v, ok := n.Attr("minOccurs"); ok {
		if v == "0" {
			e.MinOccurs = 0
		}
	}
	if v, ok := n.Attr("maxOccurs"); ok {
		if v == "unbounded" {
			e.MaxOccurs = -1
		}
	}
	if v, ok := n.Attr("nillable"); ok && v == "true" {
		e.Nillable = true
	}
	return e, nil
}

// resolveQName resolves a prefixed type reference (e.g. "xsd:string")
// against the namespace declarations in scope at node n. Because the
// DOM keeps namespace declarations as attributes, the walk climbs
// parents looking for the binding.
func resolveQName(n *dom.Node, ref string) (typemap.QName, error) {
	prefix, local := "", ref
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		prefix, local = ref[:i], ref[i+1:]
	}
	for cur := n; cur != nil; cur = cur.Parent {
		for _, a := range cur.Attrs {
			if prefix == "" && a.Name.Prefix == "" && a.Name.Local == "xmlns" {
				return typemap.QName{Space: a.Value, Local: local}, nil
			}
			if prefix != "" && a.Name.Prefix == "xmlns" && a.Name.Local == prefix {
				return typemap.QName{Space: a.Value, Local: local}, nil
			}
		}
	}
	if prefix == "" {
		return typemap.QName{Local: local}, nil
	}
	return typemap.QName{}, fmt.Errorf("undeclared prefix %q in type reference %q", prefix, ref)
}

// BuiltinQName returns the QName of an XML Schema built-in type.
func BuiltinQName(local string) typemap.QName {
	return typemap.QName{Space: SchemaNS, Local: local}
}

// IsBuiltin reports whether q names an XML Schema built-in simple type.
func IsBuiltin(q typemap.QName) bool {
	return q.Space == SchemaNS && Builtin[q.Local]
}
