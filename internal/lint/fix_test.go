package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestApplyEditsSplices(t *testing.T) {
	src := []byte("aaa bbb ccc")
	out, err := applyEdits(src, []TextEdit{
		{Offset: 4, End: 7, NewText: "BBB"},
		{Offset: 0, End: 3, NewText: "A"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(out), "A BBB ccc"; got != want {
		t.Errorf("spliced %q, want %q", got, want)
	}
}

func TestApplyEditsCollapsesDuplicates(t *testing.T) {
	// The same diagnostic reached along two paths carries the same edit
	// twice; it must apply once, not twice.
	src := []byte("x = 1")
	e := TextEdit{Offset: 0, End: 1, NewText: "y"}
	out, err := applyEdits(src, []TextEdit{e, e})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(out), "y = 1"; got != want {
		t.Errorf("spliced %q, want %q", got, want)
	}
}

func TestApplyEditsRejectsOverlap(t *testing.T) {
	src := []byte("0123456789")
	_, err := applyEdits(src, []TextEdit{
		{Offset: 0, End: 5, NewText: "a"},
		{Offset: 3, End: 8, NewText: "b"},
	})
	if err == nil || !strings.Contains(err.Error(), "overlapping fixes") {
		t.Errorf("want overlapping-fixes error, got %v", err)
	}
}

func TestApplyEditsRejectsOutOfRange(t *testing.T) {
	src := []byte("short")
	_, err := applyEdits(src, []TextEdit{{Offset: 2, End: 99, NewText: ""}})
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("want out-of-bounds error, got %v", err)
	}
}

// TestApplyFixesRoundTrip drives the disk path: a diagnostic's fix is
// applied in place, the changed file is reported base-relative, and
// diagnostics without fixes are left alone.
func TestApplyFixesRoundTrip(t *testing.T) {
	base := t.TempDir()
	path := filepath.Join(base, "a.go")
	if err := os.WriteFile(path, []byte("count = count + 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Check: "demo", File: "a.go", Line: 1, Message: "no fix attached"},
		{Check: "demo", File: "a.go", Line: 1, Message: "rewrite", Fix: &SuggestedFix{
			Message: "use Add",
			Edits:   []TextEdit{{File: "a.go", Offset: 0, End: 17, NewText: "add(&count, 1)"}},
		}},
	}
	changed, err := ApplyFixes(base, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != "a.go" {
		t.Fatalf("changed = %v, want [a.go]", changed)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(out), "add(&count, 1)\n"; got != want {
		t.Errorf("file after fixes = %q, want %q", got, want)
	}
}
