package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package under analysis. Only
// non-test Go files are loaded: the invariants the analyzers enforce
// are about library and binary code, and tests legitimately use the
// raw primitives (time.Now, context.Background) the checks forbid.
type Package struct {
	// Path is the package import path.
	Path string
	// Dir is the package directory.
	Dir string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables for the files.
	Info *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load discovers the packages matching patterns (relative to dir, as
// the go tool would resolve them) and type-checks each from source.
// Dependencies — standard library and intra-repo alike — are imported
// from compiler export data produced by `go list -export`, so loading
// stays fast and needs nothing beyond the Go toolchain.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Dir:   t.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
