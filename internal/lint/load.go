package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package under analysis. Test
// files are included: for a package with in-package _test.go files the
// loader analyzes the test-augmented variant (`go list -test`'s
// "pkg [pkg.test]"), and an external test package ("pkg_test") loads
// as a package of its own. The invariants the analyzers enforce are
// mostly about library and binary code, but test code holds cache
// state and goroutines too — a data race in chaos_test.go is still a
// data race. Analyzers whose invariant genuinely stops at the test
// boundary (tests may mint contexts and read wall clocks) skip files
// for which TestFile reports true.
type Package struct {
	// Path is the package import path. For a test-augmented variant it
	// is the base package's path ("repro/internal/core", not
	// "repro/internal/core [repro/internal/core.test]"), so scoped
	// analyzers match it the same way in both modes.
	Path string
	// Dir is the package directory.
	Dir string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed sources, with comments. _test.go files are
	// included for test-augmented and external test packages.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables for the files.
	Info *types.Info
}

// TestFile reports whether f is a _test.go file of the package.
func (p *Package) TestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Error      *struct{ Err string }
}

// basePath strips go list's test-variant suffix:
// "pkg [pkg.test]" → "pkg".
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// Load discovers the packages matching patterns (relative to dir, as
// the go tool would resolve them) and type-checks each from source,
// _test.go files included (`go list -test`). Dependencies — standard
// library and intra-repo alike — are imported from compiler export
// data produced by `go list -export`, so loading stays fast and needs
// nothing beyond the Go toolchain. For a package with in-package test
// files only the test-augmented variant is returned (its file set is a
// superset of the plain package's); the synthesized ".test" main
// packages are skipped.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,ForTest,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			// The synthesized test main: nothing but a generated
			// _testmain.go, irrelevant to analysis.
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			// A test-augmented variant's export data is a superset of
			// the plain package's (same package plus test-file
			// declarations), and external test packages must resolve
			// their import of the package under test to it — prefer it
			// under the base path.
			base := basePath(p.ImportPath)
			if _, ok := exports[base]; !ok || p.ForTest != "" {
				exports[base] = p.Export
			}
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	// Where a test-augmented variant exists, drop the plain package it
	// shadows: the variant type-checks the same files plus the tests,
	// and analyzing both would do every non-test file twice.
	augmented := make(map[string]bool)
	for _, t := range targets {
		if t.ForTest != "" && basePath(t.ImportPath) == t.ForTest {
			augmented[t.ForTest] = true
		}
	}
	kept := targets[:0]
	for _, t := range targets {
		if t.ForTest == "" && augmented[t.ImportPath] {
			continue
		}
		kept = append(kept, t)
	}
	targets = kept
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	path := basePath(t.ImportPath)
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   t.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
