package checks

import "repro/internal/lint"

// All returns the repository's analyzer suite with default scopes.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		AliasCopy(),
		AtomicMix(),
		LockGuard(),
		CtxFlow(),
		ClockInject(nil),
		EpochGraph(),
		HotPath(),
		ObsKey(),
		XMLEscape(nil),
		TypeMapReg(),
	}
}
