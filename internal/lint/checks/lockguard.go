package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// LockGuard enforces the repository's mutex-grouping convention: inside
// a struct, a `mu sync.Mutex` (or sync.RWMutex) field guards the
// contiguous run of fields declared directly below it — the blank line
// ends the group. Any function that reads or writes a guarded field
// must either lock that mutex itself (x.mu.Lock / x.mu.RLock anywhere
// in its body) or be explicitly marked as called with the lock held:
// a name ending in "Locked", or a doc comment saying "callers hold" /
// "caller holds". Construction through composite literals is exempt
// (init-before-publish), as is the mutex field itself.
func LockGuard() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "lockguard",
		Doc: "fields grouped under a mu sync.Mutex/RWMutex must only be accessed by " +
			"functions that lock that mutex or are documented as called with it held",
		Run: runLockGuard,
	}
}

// lockGroup is one mutex and the set of field objects it guards.
type lockGroup struct {
	mutexField string
	fields     map[types.Object]bool
}

// heldDocRe matches the repo's "callers hold c.mu" style annotations.
var heldDocRe = regexp.MustCompile(`(?i)\bcallers?\s+(must\s+)?holds?\b`)

func runLockGuard(pass *lint.Pass) {
	groups := collectLockGroups(pass.Pkg)
	if len(groups) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") || heldDocRe.MatchString(lint.DocText(fn)) {
				continue
			}
			checkLockUse(pass, fn, groups)
		}
	}
}

// collectLockGroups scans struct declarations for mutex-guarded field
// groups, keyed by the struct's named type.
func collectLockGroups(pkg *lint.Package) map[*types.Named][]lockGroup {
	groups := make(map[*types.Named][]lockGroup)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := pkg.Info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			if gs := structLockGroups(pkg, st); len(gs) > 0 {
				groups[named] = gs
			}
			return true
		})
	}
	return groups
}

// structLockGroups finds the guarded groups of one struct literal type.
func structLockGroups(pkg *lint.Package, st *ast.StructType) []lockGroup {
	var out []lockGroup
	var cur *lockGroup
	prevEnd := -2 // sentinel: the first field never continues a group
	for _, field := range st.Fields.List {
		start := pkg.Fset.Position(fieldStart(field)).Line
		contiguous := start <= prevEnd+1
		prevEnd = pkg.Fset.Position(field.End()).Line

		if name, ok := mutexField(pkg.Info, field); ok {
			out = append(out, lockGroup{mutexField: name, fields: make(map[types.Object]bool)})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			continue
		}
		if !contiguous {
			cur = nil // blank line: the group ended
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				cur.fields[obj] = true
			}
		}
	}
	// Drop groups that guard nothing.
	kept := out[:0]
	for _, g := range out {
		if len(g.fields) > 0 {
			kept = append(kept, g)
		}
	}
	return kept
}

// fieldStart is the field's doc comment position when present, so a
// documented field still counts as contiguous with the line above its
// doc.
func fieldStart(f *ast.Field) token.Pos {
	if f.Doc != nil {
		return f.Doc.Pos()
	}
	return f.Pos()
}

// mutexField reports whether a struct field is a sync.Mutex or
// sync.RWMutex, returning its name ("Mutex"/"RWMutex" when embedded).
func mutexField(info *types.Info, f *ast.Field) (string, bool) {
	tv, ok := info.Types[f.Type]
	if !ok {
		return "", false
	}
	switch tv.Type.String() {
	case "sync.Mutex", "sync.RWMutex":
	default:
		return "", false
	}
	if len(f.Names) > 0 {
		return f.Names[0].Name, true
	}
	n := namedOrPointee(tv.Type)
	if n == nil {
		return "", false
	}
	return n.Obj().Name(), true
}

// checkLockUse reports guarded-field accesses in fn that are not
// covered by a lock acquisition on the owning mutex.
func checkLockUse(pass *lint.Pass, fn *ast.FuncDecl, groups map[*types.Named][]lockGroup) {
	info := pass.Pkg.Info

	// locked holds (root object, mutex field name) pairs the function
	// acquires anywhere in its body — the check is flow-insensitive.
	type rootMutex struct {
		root types.Object
		mu   string
	}
	locked := make(map[rootMutex]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root, ok := ast.Unparen(muSel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := objOf(info, root); obj != nil {
			locked[rootMutex{obj, muSel.Sel.Name}] = true
		}
		return true
	})

	reported := make(map[types.Object]bool) // one report per field per function
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		root, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		rootObj := objOf(info, root)
		if rootObj == nil {
			return true
		}
		named := namedOrPointee(rootObj.Type())
		if named == nil {
			return true
		}
		fieldObj := selection.Obj()
		for _, g := range groups[named] {
			if !g.fields[fieldObj] || reported[fieldObj] {
				continue
			}
			if !locked[rootMutex{rootObj, g.mutexField}] {
				reported[fieldObj] = true
				pass.Reportf(sel.Sel.Pos(),
					"%s accesses %s.%s, guarded by %s.%s, without locking it (name the function *Locked or document \"callers hold %s.%s\" if the lock is held on entry)",
					fn.Name.Name, named.Obj().Name(), fieldObj.Name(),
					root.Name, g.mutexField, root.Name, g.mutexField)
			}
		}
		return true
	})
}
