package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// HotPath audits functions annotated //lint:hotpath — the cache hit
// path, key generation, and the observability record path — for
// constructs that allocate or otherwise defeat the repository's
// 0 allocs/op budget on those routes:
//
//   - any call into fmt (reflection-driven formatting; Sprintf of a
//     lone constant carries a fix replacing the call with the string);
//   - non-constant string concatenation (each + allocates);
//   - boxing a non-pointer concrete value into an interface, whether
//     by conversion or by argument passing (the value escapes to the
//     heap);
//   - closures capturing enclosing locals (the captured variables
//     escape, and the closure header itself may allocate);
//   - defer inside a loop (deferred frames accumulate until return);
//   - acquiring a sync.Mutex or sync.RWMutex (a contended lock turns
//     the lock-free replay path into a serialization point; hot-path
//     state must be immutable, atomic, or pooled — sync.Pool is fine,
//     its fast path is per-P and lock-free).
//
// The annotation is a contract, not a hint: benchmarks guard the
// aggregate allocs/op number, and this analyzer points at the exact
// expression when the number regresses. Deliberate exceptions — an
// error path that formats only after the hot path has already been
// abandoned — carry a //lint:ignore hotpath with the reasoning.
func HotPath() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "hotpath",
		Doc: "functions annotated //lint:hotpath must not call fmt, concatenate " +
			"strings, box values into interfaces, capture locals in closures, " +
			"defer in loops, or acquire mutexes",
		Run: runHotPath,
	}
}

func runHotPath(pass *lint.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lint.HasDirective(fn, "hotpath") {
				continue
			}
			checkHotFunc(pass, file, fn)
		}
	}
}

func checkHotFunc(pass *lint.Pass, file *ast.File, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Loop body ranges, so defers can be flagged only inside them, and
	// inner nodes of string-concat chains, so a+b+c reports once at the
	// outermost +.
	type posRange struct{ lo, hi token.Pos }
	var loops []posRange
	innerConcat := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.BinaryExpr:
			if isStringConcat(info, n) {
				if x, ok := ast.Unparen(n.X).(*ast.BinaryExpr); ok && isStringConcat(info, x) {
					innerConcat[x] = true
				}
				if y, ok := ast.Unparen(n.Y).(*ast.BinaryExpr); ok && isStringConcat(info, y) {
					innerConcat[y] = true
				}
			}
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loops {
			if r.lo <= pos && pos < r.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, file, fn, n)
		case *ast.BinaryExpr:
			if isStringConcat(info, n) && !innerConcat[n] {
				pass.Reportf(n.OpPos,
					"non-constant string concatenation in hot-path function %s allocates; build into a pooled buffer instead", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := info.Types[n.Lhs[0]]; ok && tv.Type != nil && isStringType(tv.Type) {
					pass.Reportf(n.TokPos,
						"string += in hot-path function %s allocates on every append; build into a pooled buffer instead", fn.Name.Name)
				}
			}
		case *ast.DeferStmt:
			if inLoop(n.Pos()) {
				pass.Reportf(n.Pos(),
					"defer inside a loop in hot-path function %s accumulates a frame per iteration; hoist it or call directly", fn.Name.Name)
			}
		case *ast.FuncLit:
			if name, ok := capturesLocal(info, fn, n); ok {
				pass.Reportf(n.Pos(),
					"closure in hot-path function %s captures %s; the capture forces a heap allocation — pass values explicitly", fn.Name.Name, name)
			}
			return false // the closure body runs later; its own cost is charged to the capture
		}
		return true
	})
}

// checkHotCall flags fmt calls and interface-boxing arguments or
// conversions in one call expression.
func checkHotCall(pass *lint.Pass, file *ast.File, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.Info

	if obj := calleeObject(info, call); obj != nil {
		if fobj, ok := obj.(*types.Func); ok && isMutexAcquire(fobj) {
			pass.Reportf(call.Pos(),
				"%s.%s in hot-path function %s serializes the lock-free path under contention; use immutable state, atomics, or a sync.Pool", mutexRecvName(fobj), fobj.Name(), fn.Name.Name)
			return
		}
		// Only fmt's package-level formatting functions reflect; a
		// method declared on a fmt interface (Stringer.String) is the
		// dynamic type's own code.
		if fobj, ok := obj.(*types.Func); ok && fobj.Pkg() != nil && fobj.Pkg().Path() == "fmt" &&
			fobj.Type().(*types.Signature).Recv() == nil {
			var fix *lint.SuggestedFix
			if fobj.Name() == "Sprintf" && len(call.Args) == 1 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
					fix = &lint.SuggestedFix{
						Message: "the format string has no verbs; use it directly",
						Edits:   []lint.TextEdit{pass.Replace(call.Pos(), call.End(), lit.Value)},
					}
				}
			}
			pass.ReportfFix(call.Pos(), fix,
				"fmt.%s in hot-path function %s formats through reflection and allocates; restrict fmt to error paths under //lint:ignore", fobj.Name(), fn.Name.Name)
			return
		}
	}

	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x) where T is an interface boxes x.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"conversion to interface in hot-path function %s boxes a non-pointer value onto the heap", fn.Name.Name)
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a spread slice is passed as-is, nothing boxes
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(info, arg) {
			pass.Reportf(arg.Pos(),
				"argument boxes a non-pointer value into an interface parameter in hot-path function %s", fn.Name.Name)
		}
	}
}

// isMutexAcquire reports whether fobj is a lock-acquiring method of
// sync.Mutex, sync.RWMutex, or the sync.Locker interface. Unlock is
// deliberately not matched — an acquisition is always upstream of it
// and one diagnostic per lock reads better than two — and sync.Pool
// stays exempt: its Get/Put fast path is per-P and lock-free.
func isMutexAcquire(fobj *types.Func) bool {
	switch fobj.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
	default:
		return false
	}
	return mutexRecvName(fobj) != ""
}

// mutexRecvName returns the sync lock type fobj is declared on
// ("sync.Mutex", "sync.RWMutex", "sync.Locker"), or "" for any other
// receiver.
func mutexRecvName(fobj *types.Func) string {
	recv := fobj.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return "sync." + obj.Name()
	}
	return ""
}

// boxes reports whether passing arg to an interface-typed slot heap-
// allocates: a concrete non-pointer value does; pointers, interfaces,
// and nil do not.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		// One-word reference kinds store directly in the interface.
		return false
	}
	return true
}

// capturesLocal reports whether lit references a variable declared in
// fn but outside lit (a captured local, parameter, or receiver),
// returning one such name for the diagnostic.
func capturesLocal(info *types.Info, fn *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		declaredInFn := pos >= fn.Pos() && pos < fn.End()
		declaredInLit := pos >= lit.Pos() && pos < lit.End()
		if declaredInFn && !declaredInLit {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

// isStringConcat reports whether b is a + over strings whose result is
// not a compile-time constant.
func isStringConcat(info *types.Info, b *ast.BinaryExpr) bool {
	if b.Op != token.ADD {
		return false
	}
	tv, ok := info.Types[b]
	return ok && tv.Type != nil && isStringType(tv.Type) && tv.Value == nil
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
