package checks

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the expectation pattern from a // want "..." comment.
var wantRe = regexp.MustCompile(`//\s*want\s+"([^"]*)"`)

// expectation is one // want comment: a diagnostic that must be
// reported on its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
}

// runGolden loads testdata/src/<name> plus any fixture subpackages
// below it, runs the analyzer, and matches its diagnostics against the
// fixtures' // want comments, both ways: every diagnostic needs a
// matching expectation and every expectation needs a matching
// diagnostic. Subdirectories are listed explicitly because go list
// wildcards never descend into testdata trees.
func runGolden(t *testing.T, a *lint.Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src", a.Name)
	patterns := []string{"./" + root}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() || path == root {
			return err
		}
		if gofiles, _ := filepath.Glob(filepath.Join(path, "*.go")); len(gofiles) > 0 {
			patterns = append(patterns, "./"+path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %v", patterns)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			filename := pkg.Fset.Position(file.Pos()).Filename
			rel, err := filepath.Rel(".", filename)
			if err != nil {
				rel = filename
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", rel, m[1], err)
					}
					wants = append(wants, &expectation{
						file:    rel,
						line:    pkg.Fset.Position(c.Pos()).Line,
						pattern: rx,
					})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments; it cannot prove the analyzer fires", root)
	}

	diags := lint.Run(".", pkgs, []*lint.Analyzer{a})
	matched := make(map[*expectation]bool)
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if matched[w] || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				matched[w] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic %s:%d: %s: %s", d.File, d.Line, d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// fixtureScope admits every package, so fixtures outside the real
// default scopes still exercise the scoped analyzers.
func fixtureScope(string) bool { return true }

func TestAliasCopyGolden(t *testing.T)   { runGolden(t, AliasCopy()) }
func TestAtomicMixGolden(t *testing.T)   { runGolden(t, AtomicMix()) }
func TestEpochGraphGolden(t *testing.T)  { runGolden(t, EpochGraph()) }
func TestHotPathGolden(t *testing.T)     { runGolden(t, HotPath()) }
func TestObsKeyGolden(t *testing.T)      { runGolden(t, ObsKey()) }
func TestLockGuardGolden(t *testing.T)   { runGolden(t, LockGuard()) }
func TestCtxFlowGolden(t *testing.T)     { runGolden(t, CtxFlow()) }
func TestClockInjectGolden(t *testing.T) { runGolden(t, ClockInject(fixtureScope)) }
func TestXMLEscapeGolden(t *testing.T)   { runGolden(t, XMLEscape(fixtureScope)) }
func TestTypeMapRegGolden(t *testing.T)  { runGolden(t, TypeMapReg()) }

// TestRepoIsLintClean is the meta-test behind `make lint`: the full
// analyzer suite must report nothing on the repository itself. A
// finding here means either new code broke an invariant or it needs an
// explicit //lint:ignore with a reason.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading ./...: %v", err)
	}
	for _, d := range lint.Run(root, pkgs, All()) {
		t.Errorf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
	}
}

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// TestFixturesAreNotLintedByWildcard guards the layout assumption that
// testdata packages stay invisible to ./... — the repo-clean meta-test
// is only meaningful if the deliberately broken fixtures don't load.
func TestFixturesAreNotLintedByWildcard(t *testing.T) {
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading ./...: %v", err)
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("wildcard load picked up fixture package %s", pkg.Path)
		}
	}
}
