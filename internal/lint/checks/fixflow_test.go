package checks

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestAtomicMixFixEndToEnd drives the whole -fix pipeline the way
// cmd/wscachelint does: load a module, run atomicmix, apply the
// suggested fixes to disk, and verify the rewritten source is clean on
// a second pass. The fixture lives in a temp module so the golden
// fixtures stay byte-stable.
func TestAtomicMixFixEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	base := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(base, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("counter.go", `package fixture

import "sync/atomic"

var hits int64

func bump() { atomic.AddInt64(&hits, 1) }

func read() int64 {
	return hits
}
`)

	pkgs, err := lint.Load(base, "./...")
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	diags := lint.Run(base, pkgs, []*lint.Analyzer{AtomicMix()})
	var fixable []lint.Diagnostic
	for _, d := range diags {
		if d.Fix != nil {
			fixable = append(fixable, d)
		}
	}
	if len(fixable) == 0 {
		t.Fatalf("no diagnostic carried a fix; got %v", diags)
	}

	changed, err := lint.ApplyFixes(base, fixable)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(changed) != 1 || changed[0] != "counter.go" {
		t.Fatalf("changed = %v, want [counter.go]", changed)
	}
	src, err := os.ReadFile(filepath.Join(base, "counter.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "atomic.LoadInt64(&hits)") {
		t.Fatalf("fix did not rewrite the plain read:\n%s", src)
	}

	// The rewritten module must compile and lint clean.
	pkgs, err = lint.Load(base, "./...")
	if err != nil {
		t.Fatalf("reloading fixed module: %v", err)
	}
	if diags := lint.Run(base, pkgs, []*lint.Analyzer{AtomicMix()}); len(diags) != 0 {
		t.Errorf("fixed source still reports: %v", diags)
	}
}
