package checks

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// AtomicMix enforces all-or-nothing atomicity on shared words: a
// struct field or package-level variable that is accessed through
// sync/atomic anywhere in its package — either via the package
// functions (atomic.AddInt64(&x, …)) or by being declared as one of
// the typed atomics (atomic.Int64, atomic.Value, …) — must never be
// read or written plainly. A single plain access re-introduces exactly
// the data race the atomic was bought to remove, and whether -race
// ever observes the interleaving is luck; the obs counters and the
// cache core's lock-free Stats/Len paths depend on this invariant
// holding everywhere, test code included. Plain reads and writes of
// integer atomics carry a SuggestedFix rewriting them to the matching
// atomic.LoadXxx/StoreXxx/AddXxx call.
//
// Sanctioned accesses: calling a typed atomic's methods, taking the
// address of an atomic (to pass it on), and naming a field in a
// composite literal (init-before-publish). The analysis is
// per-package: an exported atomic accessed plainly from another
// package is out of scope (none of the repository's atomics are).
func AtomicMix() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "atomicmix",
		Doc: "a field or variable accessed through sync/atomic must never also be " +
			"accessed plainly; mixed access is a data race",
		Run: runAtomicMix,
	}
}

// atomicUse records how an object is accessed atomically: the type
// suffix of the sync/atomic functions applied to it ("Int64" from
// AddInt64; "" when only typed-atomic methods are involved) and one
// representative call position.
type atomicUse struct {
	family string
	pos    token.Pos
}

func runAtomicMix(pass *lint.Pass) {
	info := pass.Pkg.Info

	// Pass 1: collect the package's atomic words.
	//
	// funcAtomics: plain-typed objects passed by address to sync/atomic
	// package functions. ptrAtomics: pointer-typed variables passed
	// directly, whose pointee is the atomic word (flagging their plain
	// derefs). typedAtomics is implicit — any object whose type is (an
	// array of) a sync/atomic type, resolved on the fly in pass 2.
	funcAtomics := make(map[types.Object]atomicUse)
	ptrAtomics := make(map[types.Object]atomicUse)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := calleeObject(info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed-atomic methods are handled structurally
			}
			use := atomicUse{family: atomicFamily(fn.Name()), pos: call.Pos()}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.UnaryExpr:
				if arg.Op == token.AND {
					if obj := addressedObject(info, arg.X); obj != nil {
						if prev, ok := funcAtomics[obj]; !ok || prev.family == "" {
							funcAtomics[obj] = use
						}
					}
				}
			case *ast.Ident:
				if obj := objOf(info, arg); obj != nil {
					if _, ok := ptrAtomics[obj]; !ok {
						ptrAtomics[obj] = use
					}
				}
			}
			return true
		})
	}

	// Pass 2: walk each file marking sanctioned occurrences, then
	// report every other appearance of an atomic word.
	for _, file := range pass.Pkg.Files {
		checkAtomicFile(pass, file, funcAtomics, ptrAtomics)
	}
}

// atomicFamily extracts the type suffix of a sync/atomic function name:
// AddInt64 → "Int64", CompareAndSwapUint32 → "Uint32", LoadPointer →
// "Pointer".
func atomicFamily(name string) string {
	for _, suffix := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
		if strings.HasSuffix(name, suffix) {
			return suffix
		}
	}
	return ""
}

// addressedObject resolves &expr's operand to the object whose word is
// taken: the field for &x.f, the variable for &v, the backing
// array/slice object for &a[i].
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(info, e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return objOf(info, e.Sel)
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	}
	return nil
}

// isAtomicType reports whether t is one of sync/atomic's typed
// atomics, or an array of them.
func isAtomicType(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isAtomicType(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		// A *atomic.Int64 is deliberately not atomic here: copying the
		// pointer is safe, so plain uses of pointer variables are fine.
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// checkAtomicFile reports unsanctioned accesses to atomic words in one
// file.
func checkAtomicFile(pass *lint.Pass, file *ast.File, funcAtomics, ptrAtomics map[types.Object]atomicUse) {
	info := pass.Pkg.Info

	// allowed marks expression nodes whose appearance is sanctioned: a
	// typed atomic as a method receiver, any atomic behind &, and
	// sync/atomic call arguments. mark descends through index and paren
	// expressions so h.buckets[i].Add(1) sanctions h.buckets.
	allowed := make(map[ast.Node]bool)
	var mark func(e ast.Expr)
	mark = func(e ast.Expr) {
		allowed[e] = true
		switch e := e.(type) {
		case *ast.ParenExpr:
			mark(e.X)
		case *ast.IndexExpr:
			mark(e.X)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && isAtomicType(tv.Type) {
					mark(sel.X)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(ast.Unparen(n.X))
			}
		case *ast.RangeStmt:
			// Index-only ranging over an array of atomics reads its
			// length, never the elements; `for i := range h.buckets` is
			// the idiomatic snapshot loop. A two-variable range would
			// copy each element and is still flagged.
			if n.Value == nil {
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil && isAtomicType(tv.Type) {
					mark(ast.Unparen(n.X))
				}
			}
		}
		return true
	})

	// consumed suppresses the Ident visit for selectors and composite
	// literal keys handled (or exempted) at their parent node.
	consumed := make(map[*ast.Ident]bool)

	// Assignment statements get statement-level treatment so plain
	// writes can carry a Store/Add rewrite.
	fixedStmts := make(map[ast.Node]bool)

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						consumed[id] = true // init-before-publish
					}
				}
			}
		case *ast.AssignStmt:
			if fixedStmts[n] {
				return true
			}
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if obj, node := atomicOperand(info, n.Lhs[0], funcAtomics); obj != nil && !allowed[node] {
					use := funcAtomics[obj]
					fixedStmts[n] = true
					markIdents(n.Lhs[0], consumed)
					pass.ReportfFix(node.Pos(), atomicWriteFix(pass, file, n, use.family),
						"plain write to %s, which is accessed via sync/atomic elsewhere in this package; use atomic.Store%s/Add%s",
						atomicName(obj), use.family, use.family)
					return true
				}
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if consumed[n.Sel] {
				return true // owned by an enclosing assignment's write report
			}
			consumed[n.Sel] = true
			reportAtomicUse(pass, file, n, sel.Obj(), funcAtomics, allowed)
		case *ast.Ident:
			if consumed[n] {
				return true
			}
			obj := info.Uses[n]
			if obj == nil {
				return true
			}
			reportAtomicUse(pass, file, n, obj, funcAtomics, allowed)
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if use, ok := ptrAtomics[obj]; ok {
						pass.Reportf(n.Pos(),
							"plain dereference of %s, whose pointee is accessed via sync/atomic elsewhere in this package; use atomic.Load%s/Store%s",
							obj.Name(), use.family, use.family)
					}
				}
			}
		}
		return true
	})
}

// atomicOperand reports whether e (an assignment LHS) resolves to a
// sync/atomic-function-accessed object, returning the object and the
// checked node.
func atomicOperand(info *types.Info, e ast.Expr, funcAtomics map[types.Object]atomicUse) (types.Object, ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if _, ok := funcAtomics[sel.Obj()]; ok {
				return sel.Obj(), e
			}
		}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if _, ok := funcAtomics[obj]; ok {
				return obj, e
			}
		}
	}
	return nil, nil
}

// markIdents adds every identifier in e to consumed, so the general
// walk does not re-report an occurrence the assignment handler owns.
func markIdents(e ast.Expr, consumed map[*ast.Ident]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			consumed[id] = true
		}
		return true
	})
}

// reportAtomicUse flags one occurrence of an atomic word outside the
// sanctioned contexts. Plain reads of integer atomics carry a Load
// rewrite.
func reportAtomicUse(pass *lint.Pass, file *ast.File, node ast.Expr, obj types.Object, funcAtomics map[types.Object]atomicUse, allowed map[ast.Node]bool) {
	if allowed[node] {
		return
	}
	if use, ok := funcAtomics[obj]; ok {
		var fix *lint.SuggestedFix
		if q, ok := atomicQualifier(file); ok && integerFamily(use.family) {
			fix = &lint.SuggestedFix{
				Message: "read through atomic.Load" + use.family,
				Edits: []lint.TextEdit{pass.Replace(node.Pos(), node.End(),
					q+".Load"+use.family+"(&"+exprText(pass.Pkg.Fset, node)+")")},
			}
		}
		pass.ReportfFix(node.Pos(), fix,
			"plain access of %s, which is accessed via sync/atomic elsewhere in this package (e.g. %s); use atomic.Load%s",
			atomicName(obj), shortPos(pass, use.pos), use.family)
		return
	}
	if v, ok := obj.(*types.Var); ok && isAtomicType(v.Type()) {
		// A typed atomic reached other than through its methods or &:
		// a value copy or reassignment, both of which smuggle the word
		// out of atomic discipline.
		pass.Reportf(node.Pos(),
			"%s is a typed sync/atomic value; access it only through its methods (copying or reassigning it races)",
			atomicName(obj))
	}
}

// atomicWriteFix rewrites `x.f = e` / `x.f += e` to the matching
// atomic store or add, or returns nil when no clean rewrite exists.
func atomicWriteFix(pass *lint.Pass, file *ast.File, n *ast.AssignStmt, family string) *lint.SuggestedFix {
	q, ok := atomicQualifier(file)
	if !ok || !integerFamily(family) {
		return nil
	}
	lhs := exprText(pass.Pkg.Fset, n.Lhs[0])
	rhs := exprText(pass.Pkg.Fset, n.Rhs[0])
	var repl, what string
	switch n.Tok {
	case token.ASSIGN:
		repl = q + ".Store" + family + "(&" + lhs + ", " + rhs + ")"
		what = "Store" + family
	case token.ADD_ASSIGN:
		repl = q + ".Add" + family + "(&" + lhs + ", " + rhs + ")"
		what = "Add" + family
	case token.SUB_ASSIGN:
		repl = q + ".Add" + family + "(&" + lhs + ", -(" + rhs + "))"
		what = "Add" + family
	default:
		return nil
	}
	return &lint.SuggestedFix{
		Message: "write through atomic." + what,
		Edits:   []lint.TextEdit{pass.Replace(n.Pos(), n.End(), repl)},
	}
}

// integerFamily reports whether a sync/atomic function family has
// Load/Store/Add forms the fixes can target.
func integerFamily(family string) bool {
	switch family {
	case "Int32", "Int64", "Uint32", "Uint64", "Uintptr":
		return true
	}
	return false
}

// atomicQualifier returns the name under which file imports
// sync/atomic ("atomic" unless renamed), or false when the file does
// not import it (or dot-imports it), in which case no fix is offered.
func atomicQualifier(file *ast.File) (string, bool) {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "sync/atomic" {
			continue
		}
		if imp.Name == nil {
			return "atomic", true
		}
		if imp.Name.Name == "." || imp.Name.Name == "_" {
			return "", false
		}
		return imp.Name.Name, true
	}
	return "", false
}

// atomicName renders an object for diagnostics: "field f" or
// "variable v".
func atomicName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + obj.Name()
	}
	return "variable " + obj.Name()
}

// shortPos renders a position as file:line with the directory
// stripped — enough to locate the representative atomic access.
func shortPos(pass *lint.Pass, pos token.Pos) string {
	p := pass.Pkg.Fset.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return file + ":" + itoa(p.Line)
}

// itoa is strconv.Itoa for small positives, avoiding the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// exprText renders a node back to source text for fix construction.
func exprText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}
