package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// CtxFlow enforces context discipline in library code (everything under
// internal/):
//
//  1. context.Background() and context.TODO() are forbidden — a library
//     that mints its own root context detaches work from its caller's
//     cancellation and deadlines. Binaries (cmd/, examples/) own their
//     roots; libraries must accept one. Deprecated compatibility shims
//     are exempt: they exist precisely to pin old entry points to
//     Background while callers migrate.
//  2. An exported function that takes a context.Context must propagate
//     it (or a context derived from it) to every context-accepting call
//     it makes; dropping the caller's context on an inner call silently
//     severs cancellation.
func CtxFlow() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "ctxflow",
		Doc: "internal packages must not mint root contexts, and exported functions " +
			"taking a context must propagate it to every context-accepting callee",
		Run: runCtxFlow,
	}
}

func runCtxFlow(pass *lint.Pass) {
	if !strings.Contains("/"+pass.Pkg.Path+"/", "/internal/") {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if pass.Pkg.TestFile(file) {
			// A test is its own root: minting context.Background there
			// is the correct way to start a call tree.
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if lint.IsDeprecated(fn) {
				continue
			}

			// Rule 1: no fresh root contexts in library code.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj := calleeObject(info, call); lint.ExportedFrom(obj, "context", "Background", "TODO") {
					pass.Reportf(call.Pos(),
						"library code calls context.%s; accept a caller context instead (add a ...Context variant and deprecate the old entry point if needed)",
						obj.Name())
				}
				return true
			})

			// Rule 2: exported functions must thread their context.
			if fn.Name.IsExported() {
				checkCtxPropagation(pass, fn)
			}
		}
	}
}

// checkCtxPropagation verifies that every context-accepting call inside
// an exported context-taking function receives the function's context
// or a derivation of it.
func checkCtxPropagation(pass *lint.Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	ctxParam := contextParam(info, fn)
	if ctxParam == nil {
		return
	}
	// "Derived from ctx" is the taint relation seeded at the parameter;
	// context.WithCancel/WithTimeout results inherit it through the
	// call-argument rule.
	derived := newTaint(info, nil, ctxParam)
	derived.propagate(fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sig := calleeSignature(info, call)
		if sig == nil || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			return true
		}
		arg := call.Args[0]
		if derived.expr(arg) {
			return true
		}
		// A literal Background()/TODO() argument is already reported by
		// rule 1; don't report it twice.
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if lint.ExportedFrom(calleeObject(info, inner), "context", "Background", "TODO") {
				return true
			}
		}
		pass.Reportf(arg.Pos(),
			"%s takes a context.Context but does not pass it (or a context derived from it) to this context-accepting call",
			fn.Name.Name)
		return true
	})
}

// contextParam returns the object of fn's first context.Context
// parameter, or nil.
func contextParam(info *types.Info, fn *ast.FuncDecl) types.Object {
	for _, p := range fn.Type.Params.List {
		for _, name := range p.Names {
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t.String() == "context.Context"
}

// calleeSignature resolves the signature a call invokes, nil when the
// callee is a builtin or a type conversion.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
