package checks

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// xmlWriterScope is the default set of packages that assemble XML text
// by hand and therefore must route character data through the xmltext
// escaping helpers.
var xmlWriterScope = map[string]bool{
	"repro/internal/soap": true,
	"repro/internal/sax":  true,
}

// trustedNameRe matches the repository's markup-name convention: an
// identifier whose name says it carries an XML name, prefix, type
// reference, namespace declaration, or already-escaped text is trusted
// to be written raw. Everything else written into an XML buffer is
// character data and must be escaped.
var trustedNameRe = regexp.MustCompile(`(?i)(name|prefix|ref|decl|escaped|local)$`)

// XMLEscape enforces output hygiene in the hand-rolled XML writers: any
// string written into an XML buffer (by convention, a field `b
// strings.Builder` on a writer/encoder struct) must be one of
//
//   - a constant or string literal (markup the author wrote),
//   - the result of an xmltext escaping helper, strconv number/bool
//     formatting, or base64 encoding (cannot contain XML metacharacters),
//   - a String() rendering of a *Name/QName type, or an identifier
//     following the markup-name convention (…name, …prefix, …ref,
//     …decl, …escaped, …local) — trusted markup, not character data,
//   - a local variable assigned only from the above.
//
// Formatting directly into the buffer with fmt.Fprintf/Fprint is always
// flagged: fmt has no escaping-aware verbs. Raw writes the analyzer
// cannot prove clean (parser-provided comment/PI text, for example)
// must be validated by hand and suppressed with a reason.
func XMLEscape(scope func(pkgPath string) bool) *lint.Analyzer {
	if scope == nil {
		scope = func(p string) bool { return xmlWriterScope[p] }
	}
	return &lint.Analyzer{
		Name: "xmlescape",
		Doc: "string data written into XML output must flow through the xmltext " +
			"escaping helpers, not raw WriteString/fmt concatenation",
		Run: func(pass *lint.Pass) { runXMLEscape(pass, scope) },
	}
}

func runXMLEscape(pass *lint.Pass, scope func(string) bool) {
	if !scope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			cl := &cleanliness{info: info, assigns: collectAssigns(info, fn.Body)}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkXMLWrite(pass, cl, call)
				return true
			})
		}
	}
}

// checkXMLWrite inspects one call for a dirty write into an XML buffer.
func checkXMLWrite(pass *lint.Pass, cl *cleanliness, call *ast.CallExpr) {
	info := cl.info
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.Fprintf(&x.b, ...) / fmt.Fprint(&x.b, ...): no escaping-aware
	// verbs exist, so formatting into the buffer is never allowed.
	if obj := calleeObject(info, call); obj != nil {
		if lint.ExportedFrom(obj, "fmt", "Fprintf", "Fprint", "Fprintln") {
			if len(call.Args) > 0 && isXMLBuffer(info, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"fmt.%s into an XML buffer cannot escape; build the markup with xmltext helpers", obj.Name())
			}
			return
		}
	}
	// x.b.WriteString(arg) on a writer struct's builder field.
	if sel.Sel.Name != "WriteString" || !isXMLBuffer(info, sel.X) || len(call.Args) != 1 {
		return
	}
	if !cl.clean(call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(),
			"unescaped string written into XML output; route character data through xmltext escaping (trusted markup names are exempt by convention)")
	}
}

// isXMLBuffer reports whether e denotes (possibly via &) a field named b
// of type strings.Builder — the repo's XML-writer convention.
func isXMLBuffer(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "b" {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	return selection.Obj().Type().String() == "strings.Builder"
}

// cleanliness decides whether an expression is safe to write raw into
// XML output.
type cleanliness struct {
	info     *types.Info
	assigns  map[types.Object][]ast.Expr
	visiting map[types.Object]bool
}

func (c *cleanliness) clean(e ast.Expr) bool {
	e = ast.Unparen(e)
	// Constants — string literals and named consts — are markup the
	// author wrote.
	if tv, ok := c.info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return c.clean(e.X) && c.clean(e.Y)
	case *ast.CallExpr:
		return c.cleanCall(e)
	case *ast.Ident:
		if trustedNameRe.MatchString(e.Name) {
			return true
		}
		return c.cleanLocal(e)
	case *ast.SelectorExpr:
		return trustedNameRe.MatchString(e.Sel.Name)
	}
	return false
}

// cleanCall accepts the sanctioned formatters: xmltext helpers, strconv
// number/bool rendering, base64 encoding, and String() on name types.
func (c *cleanliness) cleanCall(call *ast.CallExpr) bool {
	obj := calleeObject(c.info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil {
		switch path := fn.Pkg().Path(); {
		case path == "xmltext" || strings.HasSuffix(path, "/xmltext"):
			return true
		case path == "strconv":
			return true
		case path == "encoding/base64":
			return true
		}
	}
	// name.String(), qname.String(): rendering an XML name type.
	if fn.Name() == "String" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := c.info.Types[sel.X]; ok {
				if n := namedOrPointee(tv.Type); n != nil && strings.Contains(n.Obj().Name(), "Name") {
					return true
				}
			}
		}
	}
	return false
}

// cleanLocal reports whether a local variable is only ever assigned
// clean values.
func (c *cleanliness) cleanLocal(id *ast.Ident) bool {
	obj := objOf(c.info, id)
	if obj == nil {
		return false
	}
	rhs, ok := c.assigns[obj]
	if !ok || len(rhs) == 0 {
		return false // parameter, field, or multi-value result: unknown origin
	}
	if c.visiting == nil {
		c.visiting = make(map[types.Object]bool)
	}
	if c.visiting[obj] {
		return false
	}
	c.visiting[obj] = true
	defer delete(c.visiting, obj)
	for _, e := range rhs {
		if !c.clean(e) {
			return false
		}
	}
	return true
}

// collectAssigns maps each local object to the expressions assigned to
// it via single-value assignments in the function body.
func collectAssigns(info *types.Info, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	out := make(map[types.Object][]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						out[obj] = append(out[obj], st.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(st.Values) != len(st.Names) {
				return true
			}
			for i, name := range st.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = append(out[obj], st.Values[i])
				}
			}
		}
		return true
	})
	return out
}
