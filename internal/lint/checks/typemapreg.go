package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// TypeMapReg cross-checks a service package's RegisterTypes function
// against the struct types the SOAP codec will actually meet. The
// rpc/encoded encoder refuses any struct that is not bound to an XML
// qualified name in the typemap registry, and the failure only shows up
// at run time, on the first response that reaches the unregistered
// type. This analyzer makes it a compile-gate instead. In every package
// that declares
//
//	func RegisterTypes(reg *typemap.Registry) error
//
// or the representation-layer equivalent
//
//	func RegisterTypes(reg *rep.Registry) error
//
// it requires registration of
//
//   - every struct type reachable through the fields of a registered
//     struct (the encoder recurses into fields, so a missing nested
//     registration fails mid-envelope), and
//   - every exported struct in the package with a CloneDeep method
//     (Cloner support marks it a generated SOAP type).
func TypeMapReg() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "typemapreg",
		Doc: "every struct a service package serializes via internal/soap must be " +
			"registered in its RegisterTypes function",
		Run: runTypeMapReg,
	}
}

func runTypeMapReg(pass *lint.Pass) {
	regFn := findRegisterTypes(pass.Pkg)
	if regFn == nil {
		return
	}
	info := pass.Pkg.Info

	// Struct type names registered inside RegisterTypes: every
	// composite literal of a struct type declared in this package that
	// appears in the body (the registration idiom passes T{} prototypes).
	registered := make(map[*types.TypeName]bool)
	ast.Inspect(regFn.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if named := localStruct(pass.Pkg.Types, info.Types[cl].Type); named != nil {
			registered[named.Obj()] = true
		}
		return true
	})

	// Required: field-reachable structs plus exported Cloner structs.
	required := make(map[*types.TypeName]bool)
	for tn := range registered {
		walkFieldStructs(pass.Pkg.Types, tn.Type(), required)
	}
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		if localStruct(pass.Pkg.Types, tn.Type()) == nil {
			continue
		}
		if hasCloneDeep(tn.Type()) {
			required[tn] = true
		}
	}

	for tn := range required {
		if !registered[tn] {
			pass.Reportf(tn.Pos(),
				"struct %s is serialized via internal/soap (reachable from registered types or Cloner-tagged) but is not registered in RegisterTypes; the encoder will fail at run time",
				tn.Name())
		}
	}
}

// findRegisterTypes locates func RegisterTypes(reg *typemap.Registry)
// error, or its rep.Registry twin (which delegates type binding to the
// same underlying registry).
func findRegisterTypes(pkg *lint.Package) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || fn.Name.Name != "RegisterTypes" || fn.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Params().Len() != 1 {
				continue
			}
			n := namedOrPointee(sig.Params().At(0).Type())
			if n == nil || n.Obj().Name() != "Registry" || n.Obj().Pkg() == nil {
				continue
			}
			path := "/" + n.Obj().Pkg().Path()
			if strings.HasSuffix(path, "/typemap") || strings.HasSuffix(path, "/rep") {
				return fn
			}
		}
	}
	return nil
}

// localStruct returns the named type behind t when it is a struct (or
// pointer to struct) declared in pkg, else nil.
func localStruct(pkg *types.Package, t types.Type) *types.Named {
	named := namedOrPointee(t)
	if named == nil || named.Obj().Pkg() != pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// walkFieldStructs adds every package-local struct reachable through
// fields, slices, arrays, maps, and pointers of t to out.
func walkFieldStructs(pkg *types.Package, t types.Type, out map[*types.TypeName]bool) {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		walkFieldStructs(pkg, u.Elem(), out)
	case *types.Slice:
		walkFieldStructs(pkg, u.Elem(), out)
	case *types.Array:
		walkFieldStructs(pkg, u.Elem(), out)
	case *types.Map:
		walkFieldStructs(pkg, u.Elem(), out)
	case *types.Struct:
		if named := localStruct(pkg, t); named != nil {
			if out[named.Obj()] {
				return
			}
			if named.Obj().Pos() != 0 { // always true; keeps the walk rooted at declared types
				out[named.Obj()] = true
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			walkFieldStructs(pkg, u.Field(i).Type(), out)
		}
	}
}

// hasCloneDeep reports whether T or *T declares a CloneDeep method.
func hasCloneDeep(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "CloneDeep" {
				return true
			}
		}
	}
	return false
}
