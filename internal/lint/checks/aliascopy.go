package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// AliasCopy enforces the paper's call-by-copy invariant (Section 3.1)
// on value representations: a ValueStore implementation's Store method
// may not hand the cache a reference reachable from the invocation
// context, and its Load method may not hand the client a reference
// reachable from the stored payload — unless the value first passed
// through a sanctioned deep-copy or decode boundary (deepcopy.*,
// CloneDeep, gobEncode/gobDecode, sax.Record/Compact,
// dom.Parse/FromEvents, Decode*, or delegation to another store's
// Store/Load). The explicit pass-by-reference representation (RefStore)
// is the one documented exception and is exempt by name.
//
// The analysis is a conservative intraprocedural alias propagation: it
// applies to every package that declares a ValueStore interface (an
// interface named "ValueStore" with Store and Load methods) and checks
// each concrete implementation declared alongside it.
func AliasCopy() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "aliascopy",
		Doc: "ValueStore implementations must preserve call-by-copy: Store/Load may not " +
			"return or retain references reachable from their argument without a deep copy",
		Run: runAliasCopy,
	}
}

// aliasLaunders are the sanctioned copy/decode boundaries, keyed by
// callee. Package functions match on (import-path suffix, name);
// methods match on name alone.
var aliasLaunderFuncs = map[string][]string{
	"deepcopy": nil, // every function of the deep-copy package
	"sax":      {"Record", "Compact"},
	"dom":      {"Parse", "FromEvents"},
}

var aliasLaunderMethods = map[string]bool{
	"CloneDeep": true, // the generated deep-clone method
	"Store":     true, // delegation: the delegate is checked at its own definition
	"Load":      true,
	"Marshal":   true, // serialization writes a fresh byte slice
	"Unmarshal": true, // deserialization builds a fresh object graph
}

func runAliasCopy(pass *lint.Pass) {
	iface := valueStoreInterface(pass.Pkg.Types)
	if iface == nil {
		return
	}
	launders := func(call *ast.CallExpr) bool { return aliasLaunders(pass.Pkg, call) }
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if fn.Name.Name != "Store" && fn.Name.Name != "Load" {
				continue
			}
			recv := recvObject(pass.Pkg.Info, fn)
			if recv == nil {
				continue
			}
			named := namedOrPointee(recv.Type())
			if named == nil || !implementsValueStore(named, iface) {
				continue
			}
			if named.Obj().Name() == "RefStore" {
				continue // the documented pass-by-reference exception
			}
			checkStoreMethod(pass, fn, recv, launders)
		}
	}
}

// checkStoreMethod runs the alias propagation over one Store or Load
// body and reports tainted returns and tainted stores into receiver
// state.
func checkStoreMethod(pass *lint.Pass, fn *ast.FuncDecl, recv types.Object, launders func(*ast.CallExpr) bool) {
	info := pass.Pkg.Info
	var seeds []types.Object
	for _, p := range fn.Type.Params.List {
		for _, name := range p.Names {
			seeds = append(seeds, info.Defs[name])
		}
	}
	tt := newTaint(info, launders, seeds...)
	tt.propagate(fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are not this method's return path
		case *ast.ReturnStmt:
			// Only the first result is the cached/returned value; the
			// size and error results cannot leak a stored reference.
			if len(n.Results) > 0 && tt.expr(n.Results[0]) {
				pass.Reportf(n.Results[0].Pos(),
					"%s.%s returns a value aliasing its argument without a deep copy (call-by-copy, paper §3.1); route it through deepcopy/CloneDeep/a decoder or register the type as pass-by-reference",
					recvTypeName(recv), fn.Name.Name)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || objOf(info, id) != recv {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else {
					rhs = n.Rhs[0]
				}
				if tt.expr(rhs) {
					pass.Reportf(n.Pos(),
						"%s.%s stores a reference reachable from its argument into receiver state without a deep copy (call-by-copy, paper §3.1)",
						recvTypeName(recv), fn.Name.Name)
				}
			}
		}
		return true
	})
}

// aliasLaunders reports whether a call is one of the sanctioned
// deep-copy or decode boundaries.
func aliasLaunders(pkg *lint.Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	name := fn.Name()
	if aliasLaunderMethods[name] || strings.HasPrefix(name, "Decode") {
		return true
	}
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	// The gob helpers live beside the stores in the same package.
	if path == pkg.Path && (name == "gobEncode" || name == "gobDecode") {
		return true
	}
	for suffix, names := range aliasLaunderFuncs {
		if path != suffix && !strings.HasSuffix(path, "/"+suffix) {
			continue
		}
		if names == nil {
			return true
		}
		for _, n := range names {
			if n == name {
				return true
			}
		}
	}
	return false
}

// valueStoreInterface finds an interface named ValueStore with Store
// and Load methods in the package scope.
func valueStoreInterface(pkg *types.Package) *types.Interface {
	obj := pkg.Scope().Lookup("ValueStore")
	if obj == nil {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var hasStore, hasLoad bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Store":
			hasStore = true
		case "Load":
			hasLoad = true
		}
	}
	if !hasStore || !hasLoad {
		return nil
	}
	return iface
}

// implementsValueStore reports whether T or *T satisfies the interface.
func implementsValueStore(named *types.Named, iface *types.Interface) bool {
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}

// recvTypeName names the receiver's type for diagnostics.
func recvTypeName(recv types.Object) string {
	if n := namedOrPointee(recv.Type()); n != nil {
		return n.Obj().Name()
	}
	return recv.Type().String()
}
