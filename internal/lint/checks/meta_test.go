package checks

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnalyzerCoverage keeps the suite honest as it grows: every
// analyzer wired into All() must ship a golden fixture that actually
// asserts something (at least one // want comment) and must be
// documented in the README's lint section. An analyzer failing this
// test exists only nominally — nothing proves it fires and nobody can
// discover it.
func TestAnalyzerCoverage(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}

	for _, a := range All() {
		dir := filepath.Join("testdata", "src", a.Name)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Errorf("analyzer %s has no golden fixture under %s", a.Name, dir)
			continue
		}
		var hasWant bool
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(src), "// want ") {
				hasWant = true
				break
			}
		}
		if !hasWant {
			t.Errorf("analyzer %s fixture has no // want comments; it cannot prove the analyzer fires", a.Name)
		}
		if !strings.Contains(string(readme), a.Name) {
			t.Errorf("analyzer %s is not mentioned in README.md", a.Name)
		}
	}
}
