package checks

import (
	"go/ast"

	"repro/internal/lint"
)

// clockScope is the default set of packages whose time handling must go
// through the injectable clock seam (internal/clock): the cache core,
// the client handler chain, the transport, and the server-side cache
// all make TTL/backoff/breaker decisions that tests must be able to
// drive deterministically. internal/clock itself is the single
// sanctioned time.Now site.
var clockScope = map[string]bool{
	"repro/internal/core":      true,
	"repro/internal/client":    true,
	"repro/internal/transport": true,
	"repro/internal/server":    true,
}

// ClockInject forbids direct wall-clock reads and sleeps (time.Now,
// time.Sleep, time.After) in the scoped packages: time must be injected
// via a Clock configuration hook defaulting to the internal/clock seam,
// so that TTL, breaker, and backoff behaviour is testable without real
// sleeps. time.NewTimer/NewTicker remain allowed — they are the
// cancellation-safe waiting primitives and are driven by injected
// durations.
func ClockInject(scope func(pkgPath string) bool) *lint.Analyzer {
	if scope == nil {
		scope = func(p string) bool { return clockScope[p] }
	}
	return &lint.Analyzer{
		Name: "clockinject",
		Doc: "time-sensitive packages must read time through the injectable clock seam " +
			"(internal/clock), not time.Now/Sleep/After",
		Run: func(pass *lint.Pass) { runClockInject(pass, scope) },
	}
}

func runClockInject(pass *lint.Pass, scope func(string) bool) {
	if !scope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if pass.Pkg.TestFile(file) {
			// Tests drive the injected clock but may legitimately read
			// the wall clock for seeds, timeouts, and benchmarks.
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if lint.ExportedFrom(obj, "time", "Now", "Sleep", "After") {
				pass.Reportf(sel.Pos(),
					"direct use of time.%s in a time-sensitive package; inject it via a Clock hook defaulting to internal/clock (clock.Or)",
					obj.Name())
			}
			return true
		})
	}
}
