// Package checks holds the repository's domain analyzers: the
// invariants behind the cache's call-by-copy correctness argument
// (aliascopy, typemapreg), the concurrency discipline of the resilience
// layer (lockguard, clockinject), context propagation (ctxflow), and
// XML output hygiene (xmlescape). All() returns the suite the
// wscachelint driver runs.
package checks

import (
	"go/ast"
	"go/types"
)

// taint is a conservative intraprocedural value-flow analysis: starting
// from seed objects (typically function parameters), it marks every
// local that may alias or be derived from a seed. Analyzers configure
// which calls launder taint (a deep copy, a decoder producing fresh
// objects) — and, for ctxflow, the same machinery answers the inverse
// question "is this value derived from the context parameter".
type taint struct {
	info *types.Info
	// launders reports that a call's results are clean regardless of
	// its arguments (nil means no call launders).
	launders func(*ast.CallExpr) bool
	tainted  map[types.Object]bool
}

// newTaint seeds the analysis.
func newTaint(info *types.Info, launders func(*ast.CallExpr) bool, seeds ...types.Object) *taint {
	t := &taint{info: info, launders: launders, tainted: make(map[types.Object]bool)}
	for _, s := range seeds {
		if s != nil {
			t.tainted[s] = true
		}
	}
	return t
}

// propagate runs assignments in body to a fixpoint.
func (t *taint) propagate(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				changed = t.assign(st.Lhs, st.Rhs) || changed
			case *ast.ValueSpec:
				if len(st.Values) > 0 {
					lhs := make([]ast.Expr, len(st.Names))
					for i, name := range st.Names {
						lhs[i] = name
					}
					changed = t.assign(lhs, st.Values) || changed
				}
			case *ast.RangeStmt:
				if t.expr(st.X) {
					changed = t.mark(st.Key) || changed
					changed = t.mark(st.Value) || changed
				}
			}
			return true
		})
	}
}

// assign propagates one (possibly multi-value) assignment, reporting
// whether any new object became tainted.
func (t *taint) assign(lhs, rhs []ast.Expr) bool {
	changed := false
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if t.expr(rhs[i]) {
				changed = t.mark(lhs[i]) || changed
			}
		}
	case len(rhs) == 1:
		// x, y := f()  or  v, ok := p.(T): comma-ok's boolean is
		// harmless to over-taint, so taint every LHS.
		if t.expr(rhs[0]) {
			for _, l := range lhs {
				changed = t.mark(l) || changed
			}
		}
	}
	return changed
}

// mark taints the object behind an assignable expression.
func (t *taint) mark(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.info.Defs[id]
	if obj == nil {
		obj = t.info.Uses[id]
	}
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// expr reports whether e may carry taint.
func (t *taint) expr(e ast.Expr) bool {
	// A value whose type cannot carry a reference (bool, numerics,
	// immutable strings, aggregates thereof) cannot alias anything, no
	// matter how it was derived.
	if tv, ok := t.info.Types[e]; ok && tv.Type != nil && refFree(tv.Type) {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.info.Uses[e]
		if obj == nil {
			obj = t.info.Defs[e]
		}
		return obj != nil && t.tainted[obj]
	case *ast.SelectorExpr:
		// A field or method of a tainted value is reachable from it.
		return t.expr(e.X)
	case *ast.ParenExpr:
		return t.expr(e.X)
	case *ast.StarExpr:
		return t.expr(e.X)
	case *ast.UnaryExpr:
		return t.expr(e.X)
	case *ast.IndexExpr:
		return t.expr(e.X)
	case *ast.SliceExpr:
		return t.expr(e.X)
	case *ast.TypeAssertExpr:
		return t.expr(e.X)
	case *ast.BinaryExpr:
		return t.expr(e.X) || t.expr(e.Y)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.expr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return t.call(e)
	default:
		return false
	}
}

// call decides whether a call expression's results carry taint.
func (t *taint) call(call *ast.CallExpr) bool {
	// Type conversions preserve aliasing.
	if tv, ok := t.info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && t.expr(call.Args[0])
	}
	if obj := calleeObject(t.info, call); obj != nil {
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "make", "new":
				return false
			}
			// append, copy, etc: fall through to argument scan.
		}
	}
	if t.launders != nil && t.launders(call) {
		return false
	}
	// A call with a tainted argument or receiver may return something
	// reachable from it.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && t.expr(sel.X) {
		return true
	}
	for _, a := range call.Args {
		if t.expr(a) {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call invokes: the *types.Func for
// direct and method calls, a *types.Builtin for builtins, nil for
// indirect calls through variables.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// recvObject returns the receiver variable object of a method
// declaration, or nil.
func recvObject(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// refFree reports whether values of type t cannot carry a mutable
// reference: basic types (strings are immutable in Go) and arrays or
// structs built only from such types.
func refFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Array:
		return refFree(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !refFree(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}

// namedOrPointee unwraps pointers and returns the named type behind t,
// or nil.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
