package checks

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint"
)

// EpochGraph audits dependency-graph declarations against the
// invalidation subsystem's conventions. The epoch-based invalidator
// (internal/invalidate) is driven entirely by Graph.Read/Graph.Write
// declarations keyed by operation name, and nothing at runtime checks
// that those names are real: a typo'd operation silently gets an empty
// read set, which means its cache entries are never invalidated —
// stale responses, no error. The analyzer enforces, per package:
//
//   - operation names passed to Read/Write are compile-time constants;
//   - inline string literals name the package-level constant instead
//     (with a SuggestedFix when a same-valued constant exists);
//   - operation values follow the WSDL-generated do* convention
//     (doGetItem, doGoogleSearch, …), so a graph entry can only name
//     an operation that codegen could have produced;
//   - no operation is declared twice in the same set, and no operation
//     appears in both the read and the write set — a read-write
//     operation's fills would be invalidated by its own writes;
//   - keyspace names are never built from inline literals; the
//     keyspace (or its prefix) must be a package-level constant, the
//     single point where grep finds every spelling.
func EpochGraph() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "epochgraph",
		Doc: "invalidation graph declarations must use named, do*-convention operation " +
			"constants and package-level keyspace constants, with no duplicate or " +
			"read-write-conflicting entries",
		Run: runEpochGraph,
	}
}

// invalidatePkgSuffix identifies the invalidation package by import
// path suffix, so fixtures under testdata can stand in for the real
// module path.
const invalidatePkgSuffix = "internal/invalidate"

// opNamePattern is the WSDL do* operation convention: codegen emits
// one do-prefixed, upper-camel method per port-type operation.
var opNamePattern = regexp.MustCompile(`^do[A-Z][A-Za-z0-9]*$`)

func runEpochGraph(pass *lint.Pass) {
	info := pass.Pkg.Info

	// String constants declared at package scope, by value, so a bare
	// literal can be pointed at the constant that already names it.
	// Collected across the whole package before any file is checked.
	constByValue := make(map[string]string)
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		v := constant.StringVal(c.Val())
		if prev, ok := constByValue[v]; !ok || name < prev {
			constByValue[v] = name
		}
	}

	// Per-graph op sets: first declaration position by operation value,
	// keyed by the receiver variable, used for duplicate and
	// read/write-conflict reporting. Tests legitimately build many
	// independent graphs declaring the same operations; only entries on
	// the same graph conflict. Files are walked in load order, which
	// Run keeps deterministic.
	reads := make(map[types.Object]map[string]token.Pos)
	writes := make(map[types.Object]map[string]token.Pos)

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method := graphMethod(info, call)
			if method == "" || len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"operation name passed to Graph.%s must be a compile-time string constant; a dynamic name cannot be audited against the WSDL operation set", method)
				return true
			}
			op := constant.StringVal(tv.Value)

			if lit, ok := arg.(*ast.BasicLit); ok {
				if name, ok := constByValue[op]; ok {
					fix := &lint.SuggestedFix{
						Message: "replace the literal with " + name,
						Edits:   []lint.TextEdit{pass.Replace(lit.Pos(), lit.End(), name)},
					}
					pass.ReportfFix(lit.Pos(), fix,
						"operation %q is already declared as constant %s; the graph entry must reference the constant so renames cannot desynchronize them", op, name)
				} else if !opNamePattern.MatchString(op) {
					pass.Reportf(lit.Pos(),
						"operation name %q does not follow the WSDL do* convention (doGetItem, doGoogleSearch, …); no generated operation can carry this name", op)
				} else {
					pass.Reportf(lit.Pos(),
						"inline operation name %q; declare it as a package-level constant and reference that in the graph entry", op)
				}
			} else if !opNamePattern.MatchString(op) {
				pass.Reportf(arg.Pos(),
					"operation constant %s = %q does not follow the WSDL do* convention (doGetItem, doGoogleSearch, …)", exprText(pass.Pkg.Fset, arg), op)
			}

			if recv := graphReceiver(info, call); recv != nil {
				if reads[recv] == nil {
					reads[recv] = make(map[string]token.Pos)
					writes[recv] = make(map[string]token.Pos)
				}
				switch method {
				case "Read":
					recordGraphOp(pass, reads[recv], writes[recv], "read", "write", op, arg.Pos())
				case "Write":
					recordGraphOp(pass, writes[recv], reads[recv], "write", "read", op, arg.Pos())
				}
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		checkKeyspaceLiterals(pass, file)
	}
}

// graphMethod returns "Read" or "Write" when call is a method call on
// invalidate.Graph, "" otherwise.
func graphMethod(info *types.Info, call *ast.CallExpr) string {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || (fn.Name() != "Read" && fn.Name() != "Write") {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedOrPointee(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Graph" {
		return ""
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !hasPathSuffix(pkg.Path(), invalidatePkgSuffix) {
		return ""
	}
	return fn.Name()
}

// graphReceiver resolves the variable a Graph method is called on, so
// declarations are grouped per graph. A receiver that is not a simple
// variable (a chained call, say) gets no duplicate tracking.
func graphReceiver(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return objOf(info, x)
	case *ast.SelectorExpr:
		return objOf(info, x.Sel)
	}
	return nil
}

// recordGraphOp registers op in own, reporting a duplicate declaration
// or a conflict with the opposite set.
func recordGraphOp(pass *lint.Pass, own, other map[string]token.Pos, ownKind, otherKind string, op string, pos token.Pos) {
	if prev, ok := own[op]; ok {
		pass.Reportf(pos,
			"duplicate %s-set declaration for operation %q (first declared at %s); the second silently replaces the first", ownKind, op, shortPos(pass, prev))
		return
	}
	if _, ok := other[op]; ok {
		pass.Reportf(pos,
			"operation %q is declared in both the read and the write set; a read-write operation's cache fills would be invalidated by its own writes", op)
	}
	own[op] = pos
}

// checkKeyspaceLiterals reports keyspace values built from inline
// string literals anywhere outside package-level const/var
// declarations.
func checkKeyspaceLiterals(pass *lint.Pass, file *ast.File) {
	info := pass.Pkg.Info
	for _, decl := range file.Decls {
		if g, ok := decl.(*ast.GenDecl); ok && (g.Tok == token.CONST || g.Tok == token.VAR) {
			// Package-level declarations are the sanctioned home for
			// keyspace names: KeyspaceAllItems = Keyspace("items") is
			// the pattern, not a violation.
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := info.Types[e]
			if !ok || tv.Type == nil || !isKeyspaceType(tv.Type) {
				return true
			}
			switch e := e.(type) {
			case *ast.BasicLit:
				pass.Reportf(e.Pos(),
					"inline keyspace literal %s; declare the keyspace as a package-level constant so every spelling has one source of truth", e.Value)
			case *ast.CallExpr:
				// A conversion Keyspace(expr): flag it when the operand
				// bottoms out in a literal (Keyspace("item:"+id) included
				// — the *prefix* should be the constant).
				if tv.IsType() || len(e.Args) != 1 {
					return true
				}
				if info.Types[e.Fun].IsType() && literalRooted(ast.Unparen(e.Args[0])) {
					pass.Reportf(e.Pos(),
						"keyspace built from an inline string literal; declare the keyspace (or its prefix) as a package-level constant")
					return false // the operand literal is this finding, not another
				}
			}
			return true
		})
	}
}

// isKeyspaceType reports whether t is invalidate.Keyspace.
func isKeyspaceType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Keyspace" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && hasPathSuffix(pkg.Path(), invalidatePkgSuffix)
}

// literalRooted reports whether e is a string literal or an expression
// whose leftmost leaf is one ("item:" + key).
func literalRooted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.BinaryExpr:
		return literalRooted(e.X)
	}
	return false
}

// hasPathSuffix reports whether path ends with suffix on a path-segment
// boundary ("repro/internal/invalidate" matches "internal/invalidate";
// "x/notinternal/invalidate" does not).
func hasPathSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}
