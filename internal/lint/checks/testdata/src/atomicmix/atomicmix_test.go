// Test files are loaded and analyzed too: a data race in a test is
// still a data race.
package atomicmix

import (
	"sync/atomic"
	"testing"
)

func TestMixedAccessInTests(t *testing.T) {
	var calls int64
	done := make(chan struct{})
	go func() {
		atomic.AddInt64(&calls, 1)
		close(done)
	}()
	<-done
	if calls != 1 { // want "plain access of variable calls"
		t.Fatal("lost update")
	}
}
