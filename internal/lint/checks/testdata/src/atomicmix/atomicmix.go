// Package atomicmix is the golden fixture for the atomicmix analyzer.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// counters mixes a sync/atomic-function field, a typed atomic, and a
// plain mutex-guarded field (which the analyzer must leave alone).
type counters struct {
	hits    int64 // accessed via atomic.AddInt64
	misses  atomic.Int64
	buckets [4]atomic.Int64

	mu    sync.Mutex
	plain int64 // guarded by mu; never touched atomically
}

func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
	c.misses.Add(1)
	c.buckets[0].Add(1)

	c.mu.Lock()
	c.plain++ // fine: never an atomic word
	c.mu.Unlock()
}

func (c *counters) snapshot() (int64, int64) {
	return atomic.LoadInt64(&c.hits), c.misses.Load()
}

func (c *counters) bucketSum() int64 {
	var total int64
	for i := range c.buckets { // fine: index-only range reads the length
		total += c.buckets[i].Load()
	}
	return total
}

func (c *counters) raceyRead() int64 {
	return c.hits // want "plain access of field hits"
}

func (c *counters) raceyWrite() {
	c.hits = 0 // want "plain write to field hits"
}

func (c *counters) raceyAdd(n int64) {
	c.hits += n // want "plain write to field hits"
}

func (c *counters) copyTyped() atomic.Int64 {
	return c.misses // want "typed sync/atomic value"
}

// addressOK passes atomics on by address, which is sanctioned.
func (c *counters) addressOK() *atomic.Int64 {
	observe(&c.hits)
	return &c.misses
}

func observe(p *int64) { atomic.AddInt64(p, 1) }

// initialization in a composite literal happens before publication.
func fresh() *counters {
	return &counters{hits: 0}
}

// pointerWords: a pointer passed directly to sync/atomic makes its
// pointee the atomic word; plain derefs race.
func pointerWords() int64 {
	w := new(int64)
	atomic.AddInt64(w, 1)
	q := w // copying the pointer itself is fine
	_ = q
	return *w // want "plain dereference of w"
}

// packageWide is a package-level atomic word.
var packageWide int64

func bumpPackageWide() { atomic.AddInt64(&packageWide, 1) }

func readPackageWide() int64 {
	return packageWide // want "plain access of variable packageWide"
}
