// Package repreg is the golden fixture for the typemapreg analyzer's
// rep.Registry arm: a service package whose RegisterTypes hook is
// written against the representation layer (rep.Registry delegates
// type binding to the same underlying typemap registry), with the same
// gaps as the typemap fixture — a nested struct and a Cloner-tagged
// struct that are never registered.
package repreg

import (
	"repro/internal/rep"
	"repro/internal/typemap"
)

const ns = "urn:fixture-rep"

// Order is the registered root type.
type Order struct {
	ID    string
	Items []Line
}

// Line is reachable from Order's fields but never registered.
type Line struct { // want "struct Line is serialized via internal/soap .* not registered"
	SKU string
	Qty int
}

// CloneDeep marks Receipt as a generated SOAP type.
func (r *Receipt) CloneDeep() *Receipt {
	cp := *r
	return &cp
}

// Receipt carries Cloner support but is never registered.
type Receipt struct { // want "struct Receipt is serialized via internal/soap .* not registered"
	Total float64
}

// Status is registered and Cloner-tagged: fully consistent.
type Status struct {
	Code int
}

// CloneDeep returns a copy of s.
func (s *Status) CloneDeep() *Status {
	cp := *s
	return &cp
}

// RegisterTypes binds the package's serialized structs through the
// representation registry.
func RegisterTypes(reg *rep.Registry) error {
	for _, b := range []struct {
		local string
		proto any
	}{
		{"Order", Order{}},
		{"Status", Status{}},
	} {
		if err := reg.RegisterType(typemap.QName{Space: ns, Local: b.local}, b.proto); err != nil {
			return err
		}
	}
	return nil
}
