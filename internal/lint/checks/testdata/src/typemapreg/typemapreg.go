// Package typemapreg is the golden fixture for the typemapreg
// analyzer: a generated-style service package whose RegisterTypes
// misses a nested struct and a Cloner-tagged struct.
package typemapreg

import "repro/internal/typemap"

const ns = "urn:fixture"

// Search is the registered root type.
type Search struct {
	Query string
	Page  Page
}

// Page is reachable from Search's fields but never registered.
type Page struct { // want "struct Page is serialized via internal/soap .* not registered"
	Number int
}

// CloneDeep marks Result as a generated SOAP type.
func (r *Result) CloneDeep() *Result {
	cp := *r
	return &cp
}

// Result carries Cloner support but is never registered.
type Result struct { // want "struct Result is serialized via internal/soap .* not registered"
	Score float64
}

// Meta is registered and Cloner-tagged: fully consistent.
type Meta struct {
	Elapsed float64
}

// CloneDeep returns a copy of m.
func (m *Meta) CloneDeep() *Meta {
	cp := *m
	return &cp
}

// unexportedHelper has no Cloner support and is unreachable from
// registered types, so it needs no registration.
type unexportedHelper struct {
	scratch []byte
}

// RegisterTypes binds the package's serialized structs to XML names.
func RegisterTypes(reg *typemap.Registry) error {
	for _, b := range []struct {
		local string
		proto any
	}{
		{"Search", Search{}},
		{"Meta", Meta{}},
	} {
		if err := reg.Register(typemap.QName{Space: ns, Local: b.local}, b.proto); err != nil {
			return err
		}
	}
	return nil
}
