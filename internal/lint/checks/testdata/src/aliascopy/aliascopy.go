// Package aliascopy is the golden fixture for the aliascopy analyzer:
// a self-contained ValueStore interface with implementations that
// violate and respect the call-by-copy invariant.
package aliascopy

// Context stands in for the invocation context a store receives.
type Context struct {
	Result any
	buf    []byte
}

// ValueStore mirrors the core interface the analyzer keys on.
type ValueStore interface {
	Name() string
	Store(ictx *Context) (any, int, error)
	Load(payload any) (any, error)
}

// Obj is a cacheable object with a generated deep-clone method.
type Obj struct {
	Items []string
}

// CloneDeep returns a deep copy of o.
func (o *Obj) CloneDeep() *Obj {
	cp := &Obj{Items: make([]string, len(o.Items))}
	copy(cp.Items, o.Items)
	return cp
}

// BadStore hands the cache the caller's live object.
type BadStore struct {
	last any
}

func (s *BadStore) Name() string { return "bad" }

func (s *BadStore) Store(ictx *Context) (any, int, error) {
	s.last = ictx.Result       // want "stores a reference reachable from its argument"
	return ictx.Result, 0, nil // want "returns a value aliasing its argument"
}

func (s *BadStore) Load(payload any) (any, error) {
	return payload, nil // want "returns a value aliasing its argument"
}

// GoodStore launders through the deep-clone boundary.
type GoodStore struct{}

func (s *GoodStore) Name() string { return "good" }

func (s *GoodStore) Store(ictx *Context) (any, int, error) {
	o, ok := ictx.Result.(*Obj)
	if !ok {
		return nil, 0, nil
	}
	return o.CloneDeep(), len(o.Items), nil
}

func (s *GoodStore) Load(payload any) (any, error) {
	o, ok := payload.(*Obj)
	if !ok {
		return nil, nil
	}
	return o.CloneDeep(), nil
}

// RefStore is the documented pass-by-reference exception.
type RefStore struct{}

func (s *RefStore) Name() string { return "ref" }

func (s *RefStore) Store(ictx *Context) (any, int, error) {
	return ictx.Result, 0, nil // exempt by name
}

func (s *RefStore) Load(payload any) (any, error) {
	return payload, nil // exempt by name
}

// SizeStore returns only reference-free data derived from the argument.
type SizeStore struct{}

func (s *SizeStore) Name() string { return "size" }

func (s *SizeStore) Store(ictx *Context) (any, int, error) {
	n := len(ictx.buf)
	return n, n, nil // an int cannot alias the argument
}

func (s *SizeStore) Load(payload any) (any, error) {
	return payload, nil // want "returns a value aliasing its argument"
}
