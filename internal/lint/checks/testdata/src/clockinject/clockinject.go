// Package clockinject is the golden fixture for the clockinject
// analyzer: direct wall-clock reads versus the injected seam.
package clockinject

import "time"

// TTLCache expires entries against an injected clock.
type TTLCache struct {
	now     func() time.Time
	expires time.Time
}

// Expired uses the injected clock; Time.After is a method, not the
// package function, and stays allowed.
func (c *TTLCache) Expired() bool {
	return c.now().After(c.expires)
}

// Stamp reads the wall clock directly.
func (c *TTLCache) Stamp() {
	c.expires = time.Now().Add(time.Minute) // want "direct use of time.Now"
}

// Wait sleeps for real.
func Wait() {
	time.Sleep(time.Millisecond) // want "direct use of time.Sleep"
}

// Tick blocks on the package-level timer channel.
func Tick() <-chan time.Time {
	return time.After(time.Millisecond) // want "direct use of time.After"
}

// WaitCancellable uses the timer primitive, which is allowed.
func WaitCancellable(d time.Duration, done <-chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// StampSuppressed documents why it reads the wall clock.
func (c *TTLCache) StampSuppressed() {
	//lint:ignore clockinject fixture demonstrating suppression
	c.expires = time.Now()
}
