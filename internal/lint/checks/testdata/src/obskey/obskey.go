// Package obskey is the golden fixture for the obskey analyzer.
package obskey

import (
	"fmt"

	"repro/internal/obs"
)

// Registration names are compile-time constants, dotted lower_snake.
const (
	hits      = "fixture.hits"
	bytesSent = "fixture.bytes_sent"
	table     = "fixture.table"
)

func clean(reg *obs.Registry) {
	reg.Counter(hits).Add(1)
	reg.Add(bytesSent, 64)
	reg.Counter("fixture.inline_but_constant").Add(1)
	reg.SetInspection(table, func() any { return nil })

	// Op and Rep take data dimensions (operation and representation
	// names arrive from the request); they are exempt by design.
	reg.Op(dynamicName()).Hits.Add(1)
	reg.Rep(dynamicName()).Hits.Add(1)
}

func dynamicName() string { return "doGetItem" }

func dynamic(reg *obs.Registry, shard int) {
	reg.Counter("fixture.shard_" + strconvItoa(shard)).Add(1) // want "must be a compile-time string constant"
	reg.Add(fmt.Sprintf("fixture.shard_%d", shard), 1)        // want "must be a compile-time string constant"
}

func strconvItoa(n int) string { return fmt.Sprint(n) }

func badNames(reg *obs.Registry) {
	reg.Counter("Fixture.Hits").Add(1)    // want "does not follow the registry convention"
	reg.Add("fixture-dashes", 1)          // want "does not follow the registry convention"
	reg.Counter("fixture.ok_name").Add(1) // fine
}

func duplicateInspections(reg *obs.Registry) {
	reg.SetInspection("fixture.dup", func() any { return 1 })
	reg.SetInspection("fixture.dup", func() any { return 2 }) // want "duplicate inspection registration"
}
