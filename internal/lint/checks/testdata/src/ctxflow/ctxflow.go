// Package ctxflow is the golden fixture for the ctxflow analyzer:
// minted root contexts and dropped caller contexts in library code.
package ctxflow

import (
	"context"
	"time"
)

// Client owns a base context captured at construction.
type Client struct {
	base context.Context
}

func fetch(ctx context.Context, key string) (string, error) {
	_ = ctx
	return key, nil
}

// Lookup mints a root context instead of accepting one.
func (c *Client) Lookup(key string) (string, error) {
	return fetch(context.Background(), key) // want "library code calls context.Background"
}

// LookupContext propagates correctly, including derived contexts.
func (c *Client) LookupContext(ctx context.Context, key string) (string, error) {
	dctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return fetch(dctx, key)
}

// LookupStale takes a context but passes its stored one instead.
func (c *Client) LookupStale(ctx context.Context, key string) (string, error) {
	return fetch(c.base, key) // want "does not pass it .or a context derived from it."
}

// LookupOld is a grandfathered compatibility shim.
//
// Deprecated: use LookupContext.
func (c *Client) LookupOld(key string) (string, error) {
	return fetch(context.Background(), key)
}
