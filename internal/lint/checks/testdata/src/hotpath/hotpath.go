// Package hotpath is the golden fixture for the hotpath analyzer.
package hotpath

import (
	"fmt"
	"strconv"
	"sync"
)

func sink(v any)   {}
func release()     {}
func use(s string) {}

// cold is unannotated: anything goes.
func cold(op string) string {
	defer release()
	return fmt.Sprintf("op=%s", op)
}

// hot carries the annotation and trips every rule.
//
//lint:hotpath
func hot(op string, n int) string {
	banner := fmt.Sprintf("ready") // want "fmt.Sprintf in hot-path function hot"
	use(banner)

	msg := "op=" + op // want "non-constant string concatenation"
	msg += "!"        // want "string \+= in hot-path"

	for i := 0; i < n; i++ {
		defer release() // want "defer inside a loop"
	}

	f := func() int { return n } // want "closure in hot-path function hot captures n"
	_ = f

	sink(n)     // want "boxes a non-pointer value into an interface parameter"
	v := any(n) // want "conversion to interface in hot-path function hot"
	_ = v

	return msg
}

type guarded struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	l   sync.Locker
	val int
}

// locked trips the mutex rule on every acquisition flavor.
//
//lint:hotpath
func locked(g *guarded) int {
	g.mu.Lock() // want "sync.Mutex.Lock in hot-path function locked"
	g.mu.Unlock()
	g.rw.RLock() // want "sync.RWMutex.RLock in hot-path function locked"
	g.rw.RUnlock()
	if g.rw.TryLock() { // want "sync.RWMutex.TryLock in hot-path function locked"
		g.rw.Unlock()
	}
	g.l.Lock() // want "sync.Locker.Lock in hot-path function locked"
	g.l.Unlock()
	return g.val
}

// pooled shows the sanctioned replacement: sync.Pool's per-P fast path
// is lock-free and stays exempt.
//
//lint:hotpath
func pooled(p *sync.Pool, data []byte) {
	buf := p.Get().(*[]byte)
	*buf = append((*buf)[:0], data...)
	p.Put(buf)
}

// allowed shows the clean spellings of the same operations.
//
//lint:hotpath
func allowed(op string, n int, buf []byte) []byte {
	const prefix = "op=" + "v1:" // constant concatenation is free
	use(prefix)

	buf = append(buf, prefix...)
	buf = append(buf, op...)
	buf = strconv.AppendInt(buf, int64(n), 10)

	sink(nil)  // nil boxes nothing
	sink(&n)   // pointers store directly in the interface word
	var a any = &n
	sink(a)    // already an interface

	defer release() // defer outside a loop is one frame, not n

	//lint:ignore hotpath error path: runs at most once per failed lookup, never on a hit
	err := fmt.Errorf("op %s failed", op)
	_ = err

	return buf
}
