// Package lockguard is the golden fixture for the lockguard analyzer:
// mutex-grouped fields accessed with and without their lock.
package lockguard

import "sync"

// Counter groups guarded state under mu; free is outside the group.
type Counter struct {
	name string

	mu    sync.Mutex
	count int
	// peak tracks the high-water mark of count.
	peak int

	free int
}

// Bump locks correctly.
func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	if c.count > c.peak {
		c.peak = c.count
	}
}

// Peek forgets the lock.
func (c *Counter) Peek() int {
	return c.count // want "accesses Counter.count, guarded by c.mu, without locking it"
}

// resetLocked is exempt by naming convention.
func (c *Counter) resetLocked() {
	c.count = 0
	c.peak = 0
}

// snapshot is exempt by documentation. Callers hold c.mu.
func (c *Counter) snapshot() (int, int) {
	return c.count, c.peak
}

// Free touches only unguarded fields.
func (c *Counter) Free() int {
	c.free++
	return c.free
}

// Name reads a field declared above the mutex, outside the group.
func (c *Counter) Name() string {
	return c.name
}
