// Package lockguard is the golden fixture for the lockguard analyzer:
// mutex-grouped fields accessed with and without their lock.
package lockguard

import "sync"

// Counter groups guarded state under mu; free is outside the group.
type Counter struct {
	name string

	mu    sync.Mutex
	count int
	// peak tracks the high-water mark of count.
	peak int

	free int
}

// Bump locks correctly.
func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	if c.count > c.peak {
		c.peak = c.count
	}
}

// Peek forgets the lock.
func (c *Counter) Peek() int {
	return c.count // want "accesses Counter.count, guarded by c.mu, without locking it"
}

// resetLocked is exempt by naming convention.
func (c *Counter) resetLocked() {
	c.count = 0
	c.peak = 0
}

// snapshot is exempt by documentation. Callers hold c.mu.
func (c *Counter) snapshot() (int, int) {
	return c.count, c.peak
}

// Free touches only unguarded fields.
func (c *Counter) Free() int {
	c.free++
	return c.free
}

// Name reads a field declared above the mutex, outside the group.
func (c *Counter) Name() string {
	return c.name
}

// shard mirrors the sharded cache-core layout: an element type whose
// mutex guards its own table and list, addressed through a pointer
// into a shard slice.
type shard struct {
	free int

	mu    sync.Mutex
	table map[string]int
	head  int
}

// sharded owns a slice of shards; the slice header itself is not
// guarded, each element's state is guarded by that element's mu.
type sharded struct {
	shards []shard
}

// get locks the addressed shard before touching its table.
func (s *sharded) get(i int, k string) int {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.table[k]
}

// sweep locks each shard in turn; accesses stay under the element's
// own lock.
func (s *sharded) sweep() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.table) + sh.head
		sh.mu.Unlock()
	}
	return n
}

// peek forgets the shard lock.
func (s *sharded) peek(i int, k string) int {
	sh := &s.shards[i]
	return sh.table[k] // want "accesses shard.table, guarded by sh.mu, without locking it"
}

// crossLock locks one shard but reads another: the lock must be taken
// on the same variable the fields are read through.
func (s *sharded) crossLock(a, b int, k string) int {
	sha := &s.shards[a]
	shb := &s.shards[b]
	sha.mu.Lock()
	defer sha.mu.Unlock()
	return shb.table[k] // want "accesses shard.table, guarded by shb.mu, without locking it"
}

// evictLocked is exempt by naming convention, as in the cache core.
func (sh *shard) evictLocked() {
	sh.head++
	delete(sh.table, "victim")
}

// Free touches only the unguarded field above the mutex group.
func (sh *shard) Free() int {
	sh.free++
	return sh.free
}
