// Package xmlescape is the golden fixture for the xmlescape analyzer:
// raw and escaped writes into a hand-rolled XML writer.
package xmlescape

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltext"
)

// Writer assembles XML text by the repository's convention: markup and
// escaped character data concatenated into the b builder.
type Writer struct {
	b strings.Builder
}

// WriteText escapes character data properly.
func (w *Writer) WriteText(text string) {
	xmltext.EscapeText(&w.b, text)
}

// WriteTextString routes through the string-returning helper.
func (w *Writer) WriteTextString(text string) {
	w.b.WriteString(xmltext.EscapeTextString(text))
}

// WriteRaw leaks unescaped data into the document.
func (w *Writer) WriteRaw(text string) {
	w.b.WriteString(text) // want "unescaped string written into XML output"
}

// WriteFmt formats straight into the buffer.
func (w *Writer) WriteFmt(tag, text string) {
	fmt.Fprintf(&w.b, "<%s>%s</%s>", tag, text, tag) // want "cannot escape"
}

// StartElement writes trusted markup names and literals.
func (w *Writer) StartElement(name, prefix string) {
	w.b.WriteString("<")
	if prefix != "" {
		w.b.WriteString(prefix)
		w.b.WriteString(":")
	}
	w.b.WriteString(name)
	w.b.WriteString(">")
}

// WriteCount renders a number, which cannot carry metacharacters.
func (w *Writer) WriteCount(n int) {
	w.b.WriteString(strconv.Itoa(n))
}

// WriteVia stages a clean value through a local before writing it.
func (w *Writer) WriteVia(text string) {
	escaped := xmltext.EscapeTextString(text)
	out := escaped
	w.b.WriteString(out)
}

// WriteDirty stages a dirty value through a local.
func (w *Writer) WriteDirty(text string) {
	out := text + "!"
	w.b.WriteString(out) // want "unescaped string written into XML output"
}
