// Package epochgraph is the golden fixture for the epochgraph
// analyzer.
package epochgraph

import (
	"repro/internal/invalidate"
	"repro/internal/soap"
)

// Declared operation and keyspace names, the sanctioned pattern.
const (
	opGetItem  = "doGetItem"
	opPutItem  = "doPutItem"
	opBadCase  = "getItem" // violates the do* convention when referenced
	itemPrefix = "item:"
)

const ksItems = invalidate.Keyspace("items") // fine: package-level declaration

// clean declares a well-formed graph.
func clean() *invalidate.Graph {
	g := invalidate.NewGraph()
	g.Read(opGetItem, func(params []soap.Param) []invalidate.Keyspace {
		return []invalidate.Keyspace{invalidate.Keyspace(itemPrefix + params[0].Value.(string)), ksItems}
	})
	g.Write(opPutItem, invalidate.Fixed(ksItems))
	return g
}

// badNames exercises the operation-name rules.
func badNames(op string) {
	g := invalidate.NewGraph()
	g.Read("doGetItem", nil)  // want "already declared as constant opGetItem"
	g.Write("GetItem", nil)   // want "does not follow the WSDL do\* convention"
	g.Write("doOrphan", nil)  // want "inline operation name"
	g.Read(opBadCase, nil)    // want "does not follow the WSDL do\* convention"
	g.Read(op, nil)           // want "must be a compile-time string constant"
	g.Read(opPutItem+"X", nil) // fine: constant expression following the convention
}

// duplicates exercises the per-graph set rules.
func duplicates() {
	g := invalidate.NewGraph()
	g.Read(opGetItem, nil)
	g.Read(opGetItem, nil)  // want "duplicate read-set declaration"
	g.Write(opGetItem, nil) // want "both the read and the write set"

	// A second, independent graph may declare the same operations.
	h := invalidate.NewGraph()
	h.Read(opGetItem, nil)
	h.Write(opPutItem, nil)
}

// inlineKeyspaces exercises the keyspace-literal rules.
func inlineKeyspaces(inv *invalidate.Invalidator, key string) {
	inv.Bump("items")                               // want "inline keyspace literal"
	inv.Bump(invalidate.Keyspace("item:" + key))    // want "keyspace built from an inline string literal"
	inv.Bump(invalidate.Keyspace(itemPrefix + key)) // fine: the prefix is a declared constant
	inv.Bump(ksItems)                               // fine: declared keyspace
	_ = []invalidate.Keyspace{"orphan"}             // want "inline keyspace literal"
	_ = invalidate.Fixed("items")                   // want "inline keyspace literal"
}
