package checks

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint"
)

// ObsKey audits observability registration names. The obs registry is
// keyed by string: Counter, Add, and SetInspection all take a name,
// and dashboards, the inspection endpoint, and the benchmark
// comparisons all join on those exact spellings. A name computed at
// runtime can drift between call sites (two counters where one was
// meant), and an off-convention name breaks the dotted
// subsystem.metric grouping the inspection output sorts by. The
// analyzer enforces, everywhere except inside the obs package itself
// (which passes caller-supplied names through by design):
//
//   - names passed to Registry.Counter/Add/SetInspection are
//     compile-time string constants;
//   - the constant value matches the registry convention —
//     lower_snake segments joined by dots ("core.hits",
//     "transport.bytes_sent");
//   - no two SetInspection calls in a package register the same name
//     (the second silently replaces the first).
//
// Registry.Op, Registry.Rep, and Stage are data dimensions, not
// registration keys: operation and representation names arrive from
// the request and are exempt.
func ObsKey() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "obskey",
		Doc: "obs registry names must be compile-time constants in dotted lower_snake " +
			"form, with no duplicate inspection registrations",
		Run: runObsKey,
	}
}

// obsPkgSuffix identifies the observability package by import path
// suffix, so fixtures under testdata can stand in for the real module
// path.
const obsPkgSuffix = "internal/obs"

// obsNamePattern is the registry naming convention: dotted
// lower_snake, e.g. "core.hits", "transport.bytes_sent",
// "invalidation".
var obsNamePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)

func runObsKey(pass *lint.Pass) {
	if hasPathSuffix(pass.Pkg.Path, obsPkgSuffix) {
		return
	}
	info := pass.Pkg.Info

	// First SetInspection position per name, package-wide, for
	// duplicate detection.
	inspections := make(map[string]token.Pos)

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			method := registryMethod(info, call)
			if method == "" {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"name passed to Registry.%s must be a compile-time string constant; a runtime-built name can drift between call sites and split one metric into several", method)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !obsNamePattern.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"obs name %q does not follow the registry convention (dotted lower_snake, e.g. %q)", name, "core.hits")
			}
			if method == "SetInspection" {
				if prev, ok := inspections[name]; ok {
					pass.Reportf(arg.Pos(),
						"duplicate inspection registration %q (first registered at %s); the second silently replaces the first", name, shortPos(pass, prev))
				} else {
					inspections[name] = arg.Pos()
				}
			}
			return true
		})
	}
}

// registryMethod returns the called obs.Registry registration method
// name ("Counter", "Add", or "SetInspection"), or "" when call is
// anything else.
func registryMethod(info *types.Info, call *ast.CallExpr) string {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return ""
	}
	switch fn.Name() {
	case "Counter", "Add", "SetInspection":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedOrPointee(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Registry" {
		return ""
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !hasPathSuffix(pkg.Path(), obsPkgSuffix) {
		return ""
	}
	return fn.Name()
}
