package lint

import (
	"encoding/json"
	"sort"
)

// SARIF renders diagnostics as a SARIF 2.1.0 log, the interchange
// format GitHub code scanning ingests: one run, one rule per analyzer
// (so findings group and link to the invariant's description), one
// result per diagnostic, and suggested fixes carried as byte-offset
// replacements. File URIs are the base-relative slash-separated paths
// Run already produced, anchored at %SRCROOT% so the consumer resolves
// them against the checkout.
func SARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	ruleIndex := make(map[string]bool)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
		ruleIndex[a.Name] = true
	}
	// The framework's own findings (malformed or unknown //lint:ignore
	// directives) report under "lint"; give them a rule too so every
	// result has one.
	for _, d := range diags {
		if !ruleIndex[d.Check] {
			rules = append(rules, sarifRule{
				ID:               d.Check,
				ShortDescription: sarifText{Text: "lint framework diagnostics (suppression hygiene)"},
			})
			ruleIndex[d.Check] = true
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
		if d.Fix != nil {
			fix := sarifFix{Description: sarifText{Text: d.Fix.Message}}
			byFile := make(map[string][]sarifReplacement)
			var order []string
			for _, e := range d.Fix.Edits {
				if _, ok := byFile[e.File]; !ok {
					order = append(order, e.File)
				}
				byFile[e.File] = append(byFile[e.File], sarifReplacement{
					DeletedRegion:   sarifByteRegion{ByteOffset: e.Offset, ByteLength: e.End - e.Offset},
					InsertedContent: &sarifContent{Text: e.NewText},
				})
			}
			for _, file := range order {
				fix.ArtifactChanges = append(fix.ArtifactChanges, sarifArtifactChange{
					ArtifactLocation: sarifArtifactLocation{URI: file, URIBaseID: "%SRCROOT%"},
					Replacements:     byFile[file],
				})
			}
			r.Fixes = []sarifFix{fix}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "wscachelint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// The subset of the SARIF 2.1.0 object model the driver emits.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifFix struct {
	Description     sarifText             `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifByteRegion `json:"deletedRegion"`
	InsertedContent *sarifContent   `json:"insertedContent,omitempty"`
}

type sarifByteRegion struct {
	ByteOffset int `json:"byteOffset"`
	ByteLength int `json:"byteLength"`
}

type sarifContent struct {
	Text string `json:"text"`
}
