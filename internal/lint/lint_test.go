package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// fixtureAnalyzer flags every use of the package function time.Now,
// standing in for clockinject so the framework test doesn't depend on
// the checks package.
func fixtureAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "clockinject",
		Doc:  "test stand-in",
		Run: func(pass *Pass) {
			for ident, obj := range pass.Pkg.Info.Uses {
				if ExportedFrom(obj, "time", "Now") {
					pass.Reportf(ident.Pos(), "direct use of time.Now")
				}
			}
		},
	}
}

// TestSuppressions loads the suppress fixture and checks that the
// well-formed //lint:ignore silences its line, the reason-less one is
// itself reported, and the unsuppressed diagnostic survives.
func TestSuppressions(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(".", pkgs, []*Analyzer{fixtureAnalyzer()})

	var gotMalformed, gotSurvivor bool
	for _, d := range diags {
		switch {
		case d.Check == "lint" && strings.Contains(d.Message, "malformed"):
			gotMalformed = true
		case d.Check == "clockinject":
			// The only clockinject finding must be the one under the
			// reason-less (void) directive; the well-formed one is
			// silenced.
			gotSurvivor = true
		}
	}
	if !gotMalformed {
		t.Errorf("missing diagnostic for reason-less //lint:ignore; got %v", diags)
	}
	if !gotSurvivor {
		t.Errorf("malformed directive must not suppress; got %v", diags)
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics (malformed directive + surviving finding), got %d: %v", len(diags), diags)
	}
}

// TestDiagnosticJSONShape pins the machine-readable output format that
// CI and editors consume.
func TestDiagnosticJSONShape(t *testing.T) {
	d := Diagnostic{Check: "ctxflow", File: "internal/a/a.go", Line: 7, Col: 3, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"check":"ctxflow","file":"internal/a/a.go","line":7,"col":3,"message":"m"}`
	if string(b) != want {
		t.Errorf("JSON shape changed:\n got %s\nwant %s", b, want)
	}
}

// TestRunSortsAndDedupes pins the deterministic ordering contract: two
// identical analyzers produce duplicate findings, Run collapses them
// and orders what remains.
func TestRunSortsAndDedupes(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(".", pkgs, []*Analyzer{fixtureAnalyzer(), fixtureAnalyzer()})
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a == b {
			t.Errorf("duplicate diagnostic survived: %v", a)
		}
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

// TestExportedFromRejectsMethods guards the package-function/method
// distinction: the Time.After method must not match a hypothetical
// package function of the same name.
func TestExportedFromRejectsMethods(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var sawFunc, sawMethod bool
	for _, obj := range pkgs[0].Info.Uses {
		switch obj.Name() {
		case "Now":
			if ExportedFrom(obj, "time", "Now") {
				sawFunc = true
			}
		case "After":
			sawMethod = true
			if ExportedFrom(obj, "time", "After") {
				t.Errorf("ExportedFrom matched the Time.After method as time.After")
			}
		}
	}
	if !sawFunc {
		t.Error("ExportedFrom failed to match the package function time.Now")
	}
	if !sawMethod {
		t.Error("fixture no longer uses Time.After; the method case is untested")
	}
}
