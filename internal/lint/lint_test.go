package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// fixtureAnalyzer flags every use of the package function time.Now,
// standing in for clockinject so the framework test doesn't depend on
// the checks package.
func fixtureAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "clockinject",
		Doc:  "test stand-in",
		Run: func(pass *Pass) {
			for ident, obj := range pass.Pkg.Info.Uses {
				if ExportedFrom(obj, "time", "Now") {
					pass.Reportf(ident.Pos(), "direct use of time.Now")
				}
			}
		},
	}
}

// TestSuppressions loads the suppress fixture and checks that the
// well-formed //lint:ignore silences its line, the reason-less one is
// itself reported, and the unsuppressed diagnostic survives.
func TestSuppressions(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(".", pkgs, []*Analyzer{fixtureAnalyzer()})

	var gotMalformed, gotSurvivor bool
	for _, d := range diags {
		switch {
		case d.Check == "lint" && strings.Contains(d.Message, "malformed"):
			gotMalformed = true
		case d.Check == "clockinject":
			// The only clockinject finding must be the one under the
			// reason-less (void) directive; the well-formed one is
			// silenced.
			gotSurvivor = true
		}
	}
	if !gotMalformed {
		t.Errorf("missing diagnostic for reason-less //lint:ignore; got %v", diags)
	}
	if !gotSurvivor {
		t.Errorf("malformed directive must not suppress; got %v", diags)
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics (malformed directive + surviving finding), got %d: %v", len(diags), diags)
	}
}

// TestUnknownCheckDirective covers the unknown fixture: a trailing
// same-line suppression silences its own line, and a directive naming
// a check outside the run's vocabulary is reported under "lint"
// without silencing the finding beneath it.
func TestUnknownCheckDirective(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/unknown")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(".", pkgs, []*Analyzer{fixtureAnalyzer()})

	var gotUnknown, gotSurvivor, gotTrailing bool
	for _, d := range diags {
		switch {
		case d.Check == "lint" && strings.Contains(d.Message, `unknown check "nosuchcheck"`):
			gotUnknown = true
		case d.Check == "clockinject" && d.Line == 18:
			// Phantom's time.Now: the nosuchcheck directive covers its
			// line but names the wrong check, so the finding survives.
			gotSurvivor = true
		case d.Check == "clockinject" && d.Line == 10:
			gotTrailing = true // Trailing's same-line directive failed
		}
	}
	if !gotUnknown {
		t.Errorf("missing unknown-check diagnostic; got %v", diags)
	}
	if !gotSurvivor {
		t.Errorf("unknown-check directive must not suppress; got %v", diags)
	}
	if gotTrailing {
		t.Errorf("trailing same-line //lint:ignore failed to suppress; got %v", diags)
	}

	// RunKnown with the extra vocabulary accepts the directive (a
	// driver running -checks=subset still knows the full suite).
	for _, d := range RunKnown(".", pkgs, []*Analyzer{fixtureAnalyzer()}, []string{"nosuchcheck"}) {
		if d.Check == "lint" {
			t.Errorf("known-vocabulary directive still reported: %v", d)
		}
	}
}

// TestLoadIncludesTestFiles pins test-aware loading: _test.go files
// are part of the package Load returns, flagged by TestFile, and
// analyzers see their contents.
func TestLoadIncludesTestFiles(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/testaware")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var sawTestFile bool
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				sawTestFile = true
				if !pkg.TestFile(f) {
					t.Errorf("TestFile(%s) = false, want true", name)
				}
			} else if pkg.TestFile(f) {
				t.Errorf("TestFile(%s) = true, want false", name)
			}
		}
	}
	if !sawTestFile {
		t.Fatal("Load returned no _test.go files; test-aware loading is broken")
	}

	var hit bool
	for _, d := range Run(".", pkgs, []*Analyzer{fixtureAnalyzer()}) {
		if strings.HasSuffix(d.File, "testaware_test.go") {
			hit = true
		}
	}
	if !hit {
		t.Error("analyzer did not report the time.Now inside the _test.go file")
	}
}

// TestRelPath pins the path normalization contract: base-relative with
// forward slashes when the file is under base, untouched (but slashed)
// otherwise.
func TestRelPath(t *testing.T) {
	cases := []struct {
		base, file, want string
	}{
		{"/a/b", "/a/b/c/d.go", "c/d.go"},
		{"/a/b", "/x/y.go", "/x/y.go"},
		{"", "pkg/f.go", "pkg/f.go"},
		{"/a/b", "/a/b/f.go", "f.go"},
	}
	for _, c := range cases {
		if got := relPath(c.base, c.file); got != c.want {
			t.Errorf("relPath(%q, %q) = %q, want %q", c.base, c.file, got, c.want)
		}
	}
}

// TestDiagnosticJSONShape pins the machine-readable output format that
// CI and editors consume.
func TestDiagnosticJSONShape(t *testing.T) {
	d := Diagnostic{Check: "ctxflow", File: "internal/a/a.go", Line: 7, Col: 3, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"check":"ctxflow","file":"internal/a/a.go","line":7,"col":3,"message":"m"}`
	if string(b) != want {
		t.Errorf("JSON shape changed:\n got %s\nwant %s", b, want)
	}
}

// TestRunSortsAndDedupes pins the deterministic ordering contract: two
// identical analyzers produce duplicate findings, Run collapses them
// and orders what remains.
func TestRunSortsAndDedupes(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(".", pkgs, []*Analyzer{fixtureAnalyzer(), fixtureAnalyzer()})
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a == b {
			t.Errorf("duplicate diagnostic survived: %v", a)
		}
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

// TestExportedFromRejectsMethods guards the package-function/method
// distinction: the Time.After method must not match a hypothetical
// package function of the same name.
func TestExportedFromRejectsMethods(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var sawFunc, sawMethod bool
	for _, obj := range pkgs[0].Info.Uses {
		switch obj.Name() {
		case "Now":
			if ExportedFrom(obj, "time", "Now") {
				sawFunc = true
			}
		case "After":
			sawMethod = true
			if ExportedFrom(obj, "time", "After") {
				t.Errorf("ExportedFrom matched the Time.After method as time.After")
			}
		}
	}
	if !sawFunc {
		t.Error("ExportedFrom failed to match the package function time.Now")
	}
	if !sawMethod {
		t.Error("fixture no longer uses Time.After; the method case is untested")
	}
}
