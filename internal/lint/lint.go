// Package lint is a small static-analysis framework for this
// repository, built only on the standard library (go/parser, go/ast,
// go/types, go/importer; package discovery via `go list -json`). It
// exists because the cache's central correctness argument — call-by-copy
// semantics for every value representation, plus the concurrency and
// context discipline of the resilience layer — cannot be expressed in
// the Go type system and `go vet` knows nothing about it. The analyzers
// in internal/lint/checks turn those conventions into machine-checked
// invariants; cmd/wscachelint is the driver that `make lint` and CI
// run over ./...
//
// Model: a Package is one type-checked package, _test.go files
// included; an Analyzer inspects one Package through a Pass and
// reports Diagnostics. Packages are analyzed in parallel by a bounded
// worker pool; Diagnostics carry file:line:col positions, optional
// machine-applicable SuggestedFixes, are sorted and deduplicated, and
// serialize to a stable JSON array for tooling. Individual findings
// are silenced in source with
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory: a suppression without one is itself reported,
// as is a suppression naming a check the run does not know.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, positioned for editors and stable for
// tooling. File is slash-separated and relative to the directory the
// run was rooted at.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Fix, when non-nil, is a machine-applicable edit that resolves
	// the finding (applied by wscachelint -fix).
	Fix *SuggestedFix `json:"fix,omitempty"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// SuggestedFix is one way to resolve a diagnostic: a short description
// and the text edits that implement it. Edits within one fix must not
// overlap.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// TextEdit replaces the half-open byte range [Offset, End) of File
// with NewText. File uses the same base-relative slash-separated form
// as Diagnostic.File.
type TextEdit struct {
	File    string `json:"file"`
	Offset  int    `json:"offset"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// Analyzer is one named check. Run inspects the Pass's package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the check in output and in //lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass couples one Analyzer run to one Package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix records a finding at pos carrying an optional suggested
// fix (nil for none).
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// Replace builds the TextEdit that substitutes newText for the source
// range [pos, end), for use in a SuggestedFix.
func (p *Pass) Replace(pos, end token.Pos, newText string) TextEdit {
	from := p.Pkg.Fset.Position(pos)
	to := p.Pkg.Fset.Position(end)
	return TextEdit{
		File:    from.Filename,
		Offset:  from.Offset,
		End:     to.Offset,
		NewText: newText,
	}
}

// Run executes the analyzers over the packages — in parallel, one
// worker per CPU — applies //lint:ignore suppressions, and returns the
// surviving diagnostics sorted by file, line, column, check, and
// message, with file paths relative to base. Output is deterministic
// regardless of scheduling. Malformed suppression comments are
// reported under the "lint" check, as are suppressions naming a check
// the run does not recognize; a caller running a subset of the suite
// passes the full vocabulary via known so valid suppressions for
// unselected checks are not flagged (nil defaults to the analyzers
// run).
func Run(base string, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunKnown(base, pkgs, analyzers, nil)
}

// RunKnown is Run with an explicit check-name vocabulary for
// unknown-suppression reporting.
func RunKnown(base string, pkgs []*Package, analyzers []*Analyzer, known []string) []Diagnostic {
	names := make(map[string]bool, len(analyzers)+1)
	names["lint"] = true
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, n := range known {
		names[n] = true
	}

	perPkg := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = runPackage(pkg, analyzers, names)
		}(i, pkg)
	}
	wg.Wait()

	var all []Diagnostic
	for _, ds := range perPkg {
		all = append(all, ds...)
	}
	for i := range all {
		all[i].File = relPath(base, all[i].File)
		if all[i].Fix != nil {
			for j := range all[i].Fix.Edits {
				all[i].Fix.Edits[j].File = relPath(base, all[i].Fix.Edits[j].File)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return dedupe(all)
}

// runPackage runs every analyzer over one package and applies its
// suppressions — the unit of parallelism.
func runPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) []Diagnostic {
	supp, directives, all := collectSuppressions(pkg)
	for _, dir := range directives {
		if !known[dir.check] {
			all = append(all, Diagnostic{
				Check: "lint", File: dir.file, Line: dir.line, Col: dir.col,
				Message: fmt.Sprintf("//lint:ignore names unknown check %q; the suppression can never match a finding", dir.check),
			})
		}
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	for _, d := range diags {
		if !supp.suppressed(d) {
			all = append(all, d)
		}
	}
	return all
}

// relPath relativizes file against base when possible, always with
// forward slashes, so output is stable across checkouts.
func relPath(base, file string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// dedupe drops duplicates from a sorted slice (one analyzer can
// legitimately reach the same finding along two paths). Two
// diagnostics are duplicates when their positional fields and message
// agree; fixes are not compared, and the first (which sorts with its
// fix, if any) wins.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i == 0 || !sameFinding(d, ds[i-1]) {
			out = append(out, d)
		}
	}
	return out
}

// sameFinding reports positional-and-message equality.
func sameFinding(a, b Diagnostic) bool {
	return a.Check == b.Check && a.File == b.File && a.Line == b.Line &&
		a.Col == b.Col && a.Message == b.Message
}

// IgnorePrefix is the magic comment prefix for suppressions.
const IgnorePrefix = "lint:ignore"

// suppressions records, per check name, the source lines on which its
// findings are silenced.
type suppressions struct {
	lines map[string]map[suppKey]bool
}

// suppKey is one silenced (file, line).
type suppKey struct {
	file string
	line int
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	return s.lines[d.Check][suppKey{d.File, d.Line}]
}

func (s *suppressions) add(check, file string, line int) {
	if s.lines[check] == nil {
		s.lines[check] = make(map[suppKey]bool)
	}
	// A suppression covers its own line (trailing comment) and the line
	// below it (comment above the offending statement).
	s.lines[check][suppKey{file, line}] = true
	s.lines[check][suppKey{file, line + 1}] = true
}

// directive is one well-formed //lint:ignore comment, kept for
// unknown-check reporting.
type directive struct {
	check string
	file  string
	line  int
	col   int
}

// collectSuppressions scans every comment in the package for
// //lint:ignore directives. Malformed directives (missing check name or
// reason) are returned as diagnostics so they cannot silently rot;
// well-formed ones are returned both indexed for matching and as a
// list for unknown-check validation.
func collectSuppressions(pkg *Package) (*suppressions, []directive, []Diagnostic) {
	supp := &suppressions{lines: make(map[string]map[suppKey]bool)}
	var directives []directive
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, IgnorePrefix))
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Check: "lint", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\" with a non-empty reason",
					})
					continue
				}
				supp.add(fields[0], pos.Filename, pos.Line)
				directives = append(directives, directive{
					check: fields[0], file: pos.Filename, line: pos.Line, col: pos.Column,
				})
			}
		}
	}
	return supp, directives, malformed
}

// ExportedFrom reports whether obj is a function declared in the
// standard-library package pkgPath with one of the given names — a
// shared helper for analyzers matching calls like time.Now or
// context.Background.
func ExportedFrom(obj types.Object, pkgPath string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	// Methods don't count: time.Now is not t.Now, and a method named
	// After on time.Time must not match the package function time.After.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// DocText returns the doc comment text of a function declaration, or "".
func DocText(fn *ast.FuncDecl) string {
	if fn.Doc == nil {
		return ""
	}
	return fn.Doc.Text()
}

// IsDeprecated reports whether a declaration's doc comment carries a
// standard "Deprecated:" marker. Deprecated compatibility shims are
// grandfathered by several analyzers: they exist to be replaced, and
// their replacements are what the invariant is about.
func IsDeprecated(fn *ast.FuncDecl) bool {
	for _, line := range strings.Split(DocText(fn), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// HasDirective reports whether a function declaration's doc comment
// contains the given //lint:<name> directive on a line of its own —
// the annotation mechanism behind the hotpath analyzer.
func HasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	want := "lint:" + name
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == want {
			return true
		}
	}
	return false
}
