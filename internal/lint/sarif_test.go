package lint

import (
	"encoding/json"
	"testing"
)

// TestSARIFShape pins the parts of the SARIF output GitHub code
// scanning keys on: schema/version, driver name, one rule per
// analyzer (sorted, with synthesized rules for checks not in the
// run's analyzer list), and results carrying %SRCROOT%-anchored
// locations and byte-offset fix replacements.
func TestSARIFShape(t *testing.T) {
	diags := []Diagnostic{
		{Check: "atomicmix", File: "internal/a/a.go", Line: 3, Col: 5, Message: "mixed access",
			Fix: &SuggestedFix{
				Message: "read atomically",
				Edits:   []TextEdit{{File: "internal/a/a.go", Offset: 10, End: 14, NewText: "atomic.LoadInt64(&x)"}},
			}},
		{Check: "lint", File: "internal/b/b.go", Line: 9, Col: 1, Message: "malformed directive"},
	}
	analyzers := []*Analyzer{
		{Name: "hotpath", Doc: "hot-path hygiene"},
		{Name: "atomicmix", Doc: "no mixed atomic access"},
	}
	raw, err := SARIF(diags, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Fixes []struct {
					ArtifactChanges []struct {
						Replacements []struct {
							DeletedRegion struct {
								ByteOffset int `json:"byteOffset"`
								ByteLength int `json:"byteLength"`
							} `json:"deletedRegion"`
							InsertedContent struct {
								Text string `json:"text"`
							} `json:"insertedContent"`
						} `json:"replacements"`
					} `json:"artifactChanges"`
				} `json:"fixes"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version/schema = %q/%q, want 2.1.0 and a schema URI", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "wscachelint" {
		t.Errorf("driver name = %q, want wscachelint", run.Tool.Driver.Name)
	}
	var ids []string
	for _, r := range run.Tool.Driver.Rules {
		ids = append(ids, r.ID)
	}
	// Sorted, and including a synthesized rule for the framework's own
	// "lint" check even though no analyzer carries that name.
	if len(ids) != 3 || ids[0] != "atomicmix" || ids[1] != "hotpath" || ids[2] != "lint" {
		t.Errorf("rule ids = %v, want [atomicmix hotpath lint]", ids)
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "atomicmix" || first.Level != "error" {
		t.Errorf("result ruleId/level = %q/%q", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/a/a.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifact location = %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 3 {
		t.Errorf("startLine = %d, want 3", loc.Region.StartLine)
	}
	if len(first.Fixes) != 1 || len(first.Fixes[0].ArtifactChanges) != 1 {
		t.Fatalf("fixes shape = %+v", first.Fixes)
	}
	repl := first.Fixes[0].ArtifactChanges[0].Replacements[0]
	if repl.DeletedRegion.ByteOffset != 10 || repl.DeletedRegion.ByteLength != 4 {
		t.Errorf("deleted region = %+v, want offset 10 length 4", repl.DeletedRegion)
	}
	if repl.InsertedContent.Text != "atomic.LoadInt64(&x)" {
		t.Errorf("inserted content = %q", repl.InsertedContent.Text)
	}
	if len(run.Results[1].Fixes) != 0 {
		t.Errorf("fixless diagnostic grew fixes: %+v", run.Results[1].Fixes)
	}
}
