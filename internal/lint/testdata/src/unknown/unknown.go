// Package unknown exercises trailing-comment suppressions and
// directives naming checks the run does not recognize.
package unknown

import "time"

// Trailing carries the directive on the offending line itself rather
// than the line above.
func Trailing() time.Time {
	return time.Now() //lint:ignore clockinject fixture exercising a trailing suppression
}

// Phantom names a check that does not exist, so the directive can
// never match a finding and must itself be reported — and it must not
// silence the real finding underneath it.
func Phantom() time.Time {
	//lint:ignore nosuchcheck the check name is stale
	return time.Now()
}
