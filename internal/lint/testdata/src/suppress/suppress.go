// Package suppress is the framework fixture for //lint:ignore
// handling: a well-formed directive and a malformed one.
package suppress

import "time"

// Stamp carries a correctly suppressed wall-clock read.
func Stamp() time.Time {
	//lint:ignore clockinject fixture exercising a well-formed suppression
	return time.Now()
}

// Bad carries a directive with no reason, which must be reported.
func Bad() time.Time {
	//lint:ignore clockinject
	return time.Now()
}

// Later compares via the Time.After method, which must never be
// mistaken for the package function time.After.
func Later(a, b time.Time) bool {
	return a.After(b)
}
