// Package testaware is the fixture proving that _test.go files are
// loaded, type-checked, and analyzed alongside the package proper.
package testaware

// Noop keeps the non-test half of the package non-empty.
func Noop() {}
