package testaware

import (
	"testing"
	"time"
)

// TestUsesClock reads the wall clock from a test file; the framework
// test asserts the stand-in analyzer still sees it.
func TestUsesClock(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("zero clock")
	}
}
