package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ApplyFixes applies every SuggestedFix carried by diags to the files
// on disk under base (edit paths are base-relative, as Run returns
// them) and reports the base-relative paths of the files rewritten,
// sorted. Edits from different diagnostics that overlap are an error:
// two fixes fighting over the same bytes need a human. Identical edits
// (the same diagnostic reached twice) collapse silently.
func ApplyFixes(base string, diags []Diagnostic) ([]string, error) {
	byFile := make(map[string][]TextEdit)
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}

	var changed []string
	for file, edits := range byFile {
		path := file
		if !filepath.IsAbs(path) {
			path = filepath.Join(base, filepath.FromSlash(file))
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: apply fixes: %v", err)
		}
		out, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("lint: apply fixes to %s: %v", file, err)
		}
		info, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("lint: apply fixes: %v", err)
		}
		if err := os.WriteFile(path, out, info.Mode().Perm()); err != nil {
			return nil, fmt.Errorf("lint: apply fixes: %v", err)
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, nil
}

// applyEdits splices edits into src, right to left so earlier offsets
// stay valid. Duplicate edits are collapsed; overlapping distinct
// edits or out-of-range offsets are errors.
func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Offset != edits[j].Offset {
			return edits[i].Offset < edits[j].Offset
		}
		return edits[i].End < edits[j].End
	})
	deduped := edits[:0]
	for i, e := range edits {
		if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
			return nil, fmt.Errorf("edit range [%d,%d) out of bounds (file is %d bytes)", e.Offset, e.End, len(src))
		}
		if i > 0 {
			prev := deduped[len(deduped)-1]
			if e == prev {
				continue
			}
			if e.Offset < prev.End {
				return nil, fmt.Errorf("overlapping fixes at bytes %d and %d; resolve one and re-run", prev.Offset, e.Offset)
			}
		}
		deduped = append(deduped, e)
	}

	var out []byte
	last := 0
	for _, e := range deduped {
		out = append(out, src[last:e.Offset]...)
		out = append(out, e.NewText...)
		last = e.End
	}
	out = append(out, src[last:]...)
	return out, nil
}
