package invalidate

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/soap"
)

// Operation and keyspace names for the item-store shape the tests
// model. Values follow the WSDL do* convention; the keyspace prefix is
// declared once, per the epochgraph analyzer's rules.
const (
	opGetItem   = "doGetItem"
	opListItems = "doListItems"
	opPutItem   = "doPutItem"

	itemPrefix = "item:"
)

const (
	ksItems     = Keyspace("items")
	ksItemX     = Keyspace(itemPrefix + "x")
	ksItemNever = Keyspace(itemPrefix + "never")
)

// itemGraph declares the canonical shape: opGetItem reads one item and
// opPutItem writes that item plus the coarse all-items family that
// opListItems reads.
func itemGraph() *Graph {
	itemOf := func(params []soap.Param) []Keyspace {
		for _, p := range params {
			if p.Name == "key" {
				return []Keyspace{Keyspace(itemPrefix + p.Value.(string)), ksItems}
			}
		}
		return []Keyspace{ksItems}
	}
	readOf := func(params []soap.Param) []Keyspace {
		for _, p := range params {
			if p.Name == "key" {
				return []Keyspace{Keyspace(itemPrefix + p.Value.(string))}
			}
		}
		return nil
	}
	g := NewGraph()
	g.Read(opGetItem, readOf)
	g.Read(opListItems, Fixed(ksItems))
	g.Write(opPutItem, itemOf)
	return g
}

func params(key string) []soap.Param {
	return []soap.Param{{Name: "key", Value: key}}
}

func TestStampsInvalidatedByDeclaredWrite(t *testing.T) {
	inv := New(itemGraph(), nil)

	a := inv.ReadStamps(opGetItem, params("a"))
	b := inv.ReadStamps(opGetItem, params("b"))
	list := inv.ReadStamps(opListItems, nil)
	if len(a) != 1 || len(b) != 1 || len(list) != 1 {
		t.Fatalf("stamp lengths = %d,%d,%d, want 1,1,1", len(a), len(b), len(list))
	}
	if Stale(a) || Stale(b) || Stale(list) {
		t.Fatal("fresh stamps report stale")
	}

	if n := inv.CommitWrite(opPutItem, params("a")); n != 2 {
		t.Fatalf("CommitWrite bumped %d keyspaces, want 2 (item:a + items)", n)
	}
	if !Stale(a) {
		t.Error("item:a stamp survived a write to a")
	}
	if Stale(b) {
		t.Error("item:b stamp invalidated by a write to a")
	}
	if !Stale(list) {
		t.Error("coarse items stamp survived a write to a")
	}

	// Re-stamping after the write is fresh again.
	if a2 := inv.ReadStamps(opGetItem, params("a")); Stale(a2) {
		t.Error("post-write re-stamp reports stale")
	}
}

func TestUndeclaredOperationsHaveNoStamps(t *testing.T) {
	inv := New(itemGraph(), nil)
	if s := inv.ReadStamps("doGoogleSearch", nil); s != nil {
		t.Fatalf("undeclared op produced stamps: %v", s)
	}
	if n := inv.CommitWrite("doGoogleSearch", nil); n != 0 {
		t.Fatalf("undeclared op bumped %d keyspaces", n)
	}
	if inv.WritesDeclared("doGoogleSearch") {
		t.Error("WritesDeclared true for undeclared op")
	}
	if !inv.WritesDeclared(opPutItem) {
		t.Error("WritesDeclared false for declared op")
	}
	if Stale(nil) {
		t.Error("nil stamps report stale")
	}
}

func TestBumpAndEpochGauges(t *testing.T) {
	reg := obs.NewRegistry()
	inv := New(itemGraph(), reg)

	inv.Bump(ksItems)
	inv.CommitWrite(opPutItem, params("x"))
	if got := inv.Epoch(ksItems); got != 2 {
		t.Errorf("Epoch(items) = %d, want 2", got)
	}
	if got := inv.Epoch(ksItemX); got != 1 {
		t.Errorf("Epoch(item:x) = %d, want 1", got)
	}
	if got := inv.Epoch(ksItemNever); got != 0 {
		t.Errorf("Epoch(item:never) = %d, want 0", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["invalidate.bumps"] != 3 {
		t.Errorf("invalidate.bumps = %d, want 3", snap.Counters["invalidate.bumps"])
	}
	if snap.Counters["invalidate.writes"] != 1 {
		t.Errorf("invalidate.writes = %d, want 1", snap.Counters["invalidate.writes"])
	}
	table, ok := snap.Inspections["invalidation"].(map[string]uint64)
	if !ok {
		t.Fatalf("invalidation inspection missing or wrong type: %T", snap.Inspections["invalidation"])
	}
	if table["items"] != 2 || table["item:x"] != 1 {
		t.Errorf("inspection table = %v, want items=2 item:x=1", table)
	}
	if ks := inv.Keyspaces(); len(ks) != 2 || ks[0] != ksItemX || ks[1] != ksItems {
		t.Errorf("Keyspaces() = %v", ks)
	}
}

// TestConcurrentStampsAndWrites hammers ReadStamps/Stale against
// CommitWrite under the race detector and checks the one-sided
// guarantee: a stamp taken entirely after a committed write must never
// be stale unless a later write landed.
func TestConcurrentStampsAndWrites(t *testing.T) {
	inv := New(itemGraph(), nil)
	const writers, writesEach = 4, 500
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < writesEach; i++ {
				inv.CommitWrite(opPutItem, params(fmt.Sprintf("k%d", w%2)))
			}
		}(w)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := inv.ReadStamps(opGetItem, params("k0"))
			// Staleness may flip from false to true under concurrent
			// writes; calling it concurrently is the point.
			Stale(s)
			Stale(inv.ReadStamps(opListItems, nil))
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if got := inv.Epoch(ksItems); got != writers*writesEach {
		t.Errorf("Epoch(items) = %d, want %d", got, writers*writesEach)
	}
	// Quiesced: a fresh stamp must be stable.
	if Stale(inv.ReadStamps(opListItems, nil)) {
		t.Error("stamp taken after all writes completed reports stale")
	}
}
