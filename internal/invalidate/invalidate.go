// Package invalidate is the dependency-aware invalidation layer the
// paper's per-operation TTL (Section 3.2) stops short of: operations
// declare which keyspaces they read and which they write, forming an
// invalidation graph, and every keyspace carries a monotonically
// increasing epoch. A write-through call bumps the epochs of the
// keyspaces it writes; cache entries carry the epoch values their read
// keyspaces had when the entry was filled, and a hit whose stamped
// epochs no longer match is stale and must be treated as a miss.
//
// The scheme follows the method-cache invalidation model of Pfeifer &
// Lockemann ("Theory and Practice of Transactional Method Caching"):
// read/write dependencies are declared per method (operation), and
// correctness is conservative — any doubt invalidates.
//
// Ordering guarantee. Entries are stamped with epochs snapshotted
// BEFORE the backend read is issued, and writers bump AFTER the backend
// write has completed. A read that races a write is therefore always
// stamped with the pre-write epoch and invalidated by the bump, even if
// the backend happened to serve it post-write data; a read that
// snapshots the post-bump epoch can only observe post-write backend
// state. The net effect is the stale-after-write invariant: once a
// write to a keyspace has committed, no later-starting read can be
// served data predating that write. Conservative misses (a fresh fill
// invalidated by a concurrent bump) are possible; stale serves are not.
//
// Operations with no declared sets are untouched: their entries carry
// no stamps and stay on the pull-based fallback ladder (TTL, then
// If-Modified-Since/304 revalidation) the cache already implements.
package invalidate

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/soap"
)

// Keyspace names one unit of dependency: a resource family whose
// version advances when any member is written. Granularity is the
// declarer's choice — "items" invalidates coarsely (any write clears
// every dependent read), "item:k" invalidates one key. An operation may
// depend on several keyspaces at different granularities.
type Keyspace string

// SetFunc resolves one invocation's parameters to the keyspaces it
// touches. Implementations must be pure and safe for concurrent use:
// they run on the request path, once per miss (reads) or write-through
// call (writes).
type SetFunc func(params []soap.Param) []Keyspace

// Fixed returns a SetFunc naming the same keyspaces regardless of
// parameters — the coarse whole-resource dependency.
func Fixed(ks ...Keyspace) SetFunc {
	return func([]soap.Param) []Keyspace { return ks }
}

// Graph holds the declared read and write sets of an operation
// vocabulary. Declare during wiring, before traffic; declarations are
// nevertheless safe to add at run time.
type Graph struct {
	mu     sync.RWMutex
	reads  map[string]SetFunc
	writes map[string]SetFunc
}

// NewGraph returns an empty invalidation graph.
func NewGraph() *Graph {
	return &Graph{
		reads:  make(map[string]SetFunc),
		writes: make(map[string]SetFunc),
	}
}

// Read declares the keyspaces operation op reads. Entries cached for op
// are stamped with these keyspaces' epochs and invalidated when any of
// them is written.
func (g *Graph) Read(op string, f SetFunc) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reads[op] = f
	return g
}

// Write declares the keyspaces operation op writes. A successful (or
// unknown-outcome) invocation of op bumps their epochs.
func (g *Graph) Write(op string, f SetFunc) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.writes[op] = f
	return g
}

// readSet resolves op's read keyspaces, nil when undeclared.
func (g *Graph) readSet(op string, params []soap.Param) []Keyspace {
	g.mu.RLock()
	f := g.reads[op]
	g.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(params)
}

// writeSet resolves op's write keyspaces, nil when undeclared.
func (g *Graph) writeSet(op string, params []soap.Param) []Keyspace {
	g.mu.RLock()
	f := g.writes[op]
	g.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(params)
}

// WritesDeclared reports whether op has a declared write set.
func (g *Graph) WritesDeclared(op string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.writes[op] != nil
}

// epoch is one keyspace's version cell. Cells are created on first
// touch and live for the Invalidator's lifetime (16 bytes per
// keyspace); deployments with unbounded per-key keyspaces should prefer
// coarser families or recycle the Invalidator with the cache.
type epoch struct {
	v atomic.Uint64
}

// Stamp records the value one epoch cell had when an entry was filled.
// The zero Stamp is invalid; stamps are only produced by ReadStamps.
type Stamp struct {
	cell *epoch
	seen uint64
}

// Stale reports whether any stamped epoch has advanced past its
// recorded value — the entry depends on a keyspace that has been
// written since the fill. A nil or empty stamp slice is never stale
// (the entry has no declared dependencies). The check is a handful of
// atomic loads, cheap enough for the hit path.
func Stale(stamps []Stamp) bool {
	for i := range stamps {
		if stamps[i].cell.v.Load() != stamps[i].seen {
			return true
		}
	}
	return false
}

// Invalidator binds a Graph to a live epoch table and the metrics that
// make invalidation observable. One Invalidator is shared by every
// cache that must see the same writes (typically one per process per
// backend).
type Invalidator struct {
	graph *Graph
	cells sync.Map // Keyspace -> *epoch

	// version counts every epoch mutation this Invalidator has applied,
	// local or remote. It is the cheap "has anything changed" cursor the
	// cluster protocol compares across processes: a daemon stamps every
	// response with its version, and a client whose mirror is behind
	// fetches the full epoch table.
	version atomic.Uint64

	// hookMu guards onBump. Hooks are registered during wiring but the
	// slice is read on every commit, so registration is also safe at
	// run time.
	hookMu sync.Mutex
	onBump []func([]Keyspace)

	// writesCommitted counts write-through commits that bumped at least
	// zero keyspaces; bumps counts individual keyspace bumps, and
	// remoteBumps the subset applied on behalf of another process via
	// ApplyRemote.
	writesCommitted *obs.Counter
	bumps           *obs.Counter
	remoteBumps     *obs.Counter
}

// New builds an Invalidator over graph, recording its counters into reg
// (which may be nil for an unobserved instance) under
// "invalidate.writes" and "invalidate.bumps", and exporting the live
// keyspace→epoch table as the "invalidation" inspection on
// /debug/wscache.
func New(graph *Graph, reg *obs.Registry) *Invalidator {
	if graph == nil {
		graph = NewGraph()
	}
	inv := &Invalidator{
		graph:           graph,
		writesCommitted: reg.Counter("invalidate.writes"),
		bumps:           reg.Counter("invalidate.bumps"),
		remoteBumps:     reg.Counter("invalidate.remote_bumps"),
	}
	reg.SetInspection("invalidation", func() any { return inv.Snapshot() })
	return inv
}

// cell returns (creating if needed) the epoch cell for a keyspace.
func (inv *Invalidator) cell(ks Keyspace) *epoch {
	if v, ok := inv.cells.Load(ks); ok {
		return v.(*epoch)
	}
	v, _ := inv.cells.LoadOrStore(ks, &epoch{})
	return v.(*epoch)
}

// ReadStamps snapshots the current epochs of op's read keyspaces, nil
// when op declares none. The caller must take the snapshot BEFORE
// issuing the backend read it will cache (see the package ordering
// guarantee) and attach the stamps to the filled entry.
func (inv *Invalidator) ReadStamps(op string, params []soap.Param) []Stamp {
	ks := inv.graph.readSet(op, params)
	if len(ks) == 0 {
		return nil
	}
	stamps := make([]Stamp, len(ks))
	for i, k := range ks {
		c := inv.cell(k)
		stamps[i] = Stamp{cell: c, seen: c.v.Load()}
	}
	return stamps
}

// WritesDeclared reports whether op has a declared write set — the
// cheap pre-check callers use to skip CommitWrite bookkeeping for
// read-only operations.
func (inv *Invalidator) WritesDeclared(op string) bool {
	return inv.graph.WritesDeclared(op)
}

// CommitWrite bumps the epochs of op's write keyspaces and returns how
// many were bumped (0 when op declares no write set). Call it after the
// write-through invocation has completed — on success, and also on
// transport-level failure where the write may have reached the backend
// (unknown outcome invalidates conservatively); skip it only when the
// backend provably rejected the write (e.g. a SOAP fault).
func (inv *Invalidator) CommitWrite(op string, params []soap.Param) int {
	ks := inv.graph.writeSet(op, params)
	if len(ks) == 0 {
		return 0
	}
	// Hooks fire BEFORE the local cells advance — see OnBump for why the
	// order is load-bearing.
	inv.fireOnBump(ks)
	for _, k := range ks {
		inv.cell(k).v.Add(1)
		inv.version.Add(1)
	}
	inv.bumps.Add(int64(len(ks)))
	inv.writesCommitted.Add(1)
	return len(ks)
}

// Bump advances a keyspace's epoch directly — the hook for out-of-band
// invalidation signals (an operator action, a server-push channel)
// that do not flow through a declared operation.
func (inv *Invalidator) Bump(ks Keyspace) {
	// Hooks first, then the local advance — same order as CommitWrite,
	// for the same reason (see OnBump).
	inv.fireOnBump([]Keyspace{ks})
	inv.cell(ks).v.Add(1)
	inv.version.Add(1)
	inv.bumps.Add(1)
}

// OnBump registers a hook fired on a LOCAL epoch advance (CommitWrite
// or Bump) with the keyspaces being bumped. The L2 remote tier
// registers one to push the bump to the shared daemon synchronously,
// before the write-through call returns, so the stale-after-write
// invariant extends across the wire.
//
// Hooks fire BEFORE the local cells advance, and the order is
// load-bearing: it makes "this process's stamps are fresh with respect
// to write W" imply "the shared daemon has already seen W's bump". A
// hit the daemon serves to a reader holding post-W stamps therefore
// cannot predate W — the daemon's own stamp check would have dropped
// it. With the opposite order there is a window (local cells advanced,
// push not yet landed) where a reader snapshots post-W stamps, finds
// nothing pending to flush, and promotes the daemon's pre-W entry into
// L1 under stamps no later write has overtaken: a stale value with a
// fresh badge. Between the hook and the local advance, concurrent
// readers may still serve the pre-W value locally — the write has not
// returned yet, so that is linearizable, not stale. Hooks run on the
// committing goroutine and must not call back into the Invalidator's
// local-bump methods.
func (inv *Invalidator) OnBump(f func(keyspaces []Keyspace)) {
	inv.hookMu.Lock()
	inv.onBump = append(inv.onBump, f)
	inv.hookMu.Unlock()
}

// fireOnBump runs the registered hooks for a local bump.
func (inv *Invalidator) fireOnBump(ks []Keyspace) {
	inv.hookMu.Lock()
	hooks := inv.onBump
	inv.hookMu.Unlock()
	for _, f := range hooks {
		f(ks)
	}
}

// ApplyRemote advances a keyspace's epoch on behalf of another
// process — the receive side of cluster epoch propagation. It
// deliberately does NOT fire OnBump hooks: the bump originated
// elsewhere and re-pushing it would echo forever between processes.
func (inv *Invalidator) ApplyRemote(ks Keyspace) {
	inv.cell(ks).v.Add(1)
	inv.version.Add(1)
	inv.bumps.Add(1)
	inv.remoteBumps.Add(1)
}

// InvalidateAll advances every existing epoch cell — the conservative
// hammer for "our view of the world may be stale in ways we cannot
// enumerate", e.g. a shared daemon restarted and any bumps pushed to
// the old incarnation are lost. Entries with no stamps (operations
// with no declared read set) are unaffected, exactly as they are
// unaffected by ordinary bumps. No hooks fire.
func (inv *Invalidator) InvalidateAll() {
	n := int64(0)
	inv.cells.Range(func(_, v any) bool {
		v.(*epoch).v.Add(1)
		inv.version.Add(1)
		n++
		return true
	})
	inv.bumps.Add(n)
}

// Version returns the count of epoch mutations applied so far; it
// only grows. Equal versions mean "no epoch has changed in between";
// the cluster protocol uses it to skip epoch-table transfers.
func (inv *Invalidator) Version() uint64 { return inv.version.Load() }

// ReadSet resolves op's declared read keyspaces for these parameters,
// nil when undeclared — the names a tier fill attaches to the entry so
// a remote tier can stamp it against its own epoch table.
func (inv *Invalidator) ReadSet(op string, params []soap.Param) []Keyspace {
	return inv.graph.readSet(op, params)
}

// StampWith returns a stamp binding ks's cell (creating it if needed)
// to a caller-supplied observed epoch, rather than the current one.
// It is how a daemon adopts a client's pre-read snapshot: the client
// reports the epoch it saw for ks before its backend read, and the
// resulting stamp is live — if the daemon's cell has advanced past
// seen (or advances later), Stale reports it.
func (inv *Invalidator) StampWith(ks Keyspace, seen uint64) Stamp {
	return Stamp{cell: inv.cell(ks), seen: seen}
}

// Epoch returns a keyspace's current epoch (0 if never touched).
func (inv *Invalidator) Epoch(ks Keyspace) uint64 {
	if v, ok := inv.cells.Load(ks); ok {
		return v.(*epoch).v.Load()
	}
	return 0
}

// Snapshot captures the live keyspace→epoch table, sorted-key iteration
// left to the consumer (JSON objects are unordered anyway).
func (inv *Invalidator) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	inv.cells.Range(func(k, v any) bool {
		out[string(k.(Keyspace))] = v.(*epoch).v.Load()
		return true
	})
	return out
}

// Keyspaces returns the sorted names of every keyspace that has an
// epoch cell, for diagnostics.
func (inv *Invalidator) Keyspaces() []Keyspace {
	var out []Keyspace
	inv.cells.Range(func(k, _ any) bool {
		out = append(out, k.(Keyspace))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
