// Package invalidate is the dependency-aware invalidation layer the
// paper's per-operation TTL (Section 3.2) stops short of: operations
// declare which keyspaces they read and which they write, forming an
// invalidation graph, and every keyspace carries a monotonically
// increasing epoch. A write-through call bumps the epochs of the
// keyspaces it writes; cache entries carry the epoch values their read
// keyspaces had when the entry was filled, and a hit whose stamped
// epochs no longer match is stale and must be treated as a miss.
//
// The scheme follows the method-cache invalidation model of Pfeifer &
// Lockemann ("Theory and Practice of Transactional Method Caching"):
// read/write dependencies are declared per method (operation), and
// correctness is conservative — any doubt invalidates.
//
// Ordering guarantee. Entries are stamped with epochs snapshotted
// BEFORE the backend read is issued, and writers bump AFTER the backend
// write has completed. A read that races a write is therefore always
// stamped with the pre-write epoch and invalidated by the bump, even if
// the backend happened to serve it post-write data; a read that
// snapshots the post-bump epoch can only observe post-write backend
// state. The net effect is the stale-after-write invariant: once a
// write to a keyspace has committed, no later-starting read can be
// served data predating that write. Conservative misses (a fresh fill
// invalidated by a concurrent bump) are possible; stale serves are not.
//
// Operations with no declared sets are untouched: their entries carry
// no stamps and stay on the pull-based fallback ladder (TTL, then
// If-Modified-Since/304 revalidation) the cache already implements.
package invalidate

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/soap"
)

// Keyspace names one unit of dependency: a resource family whose
// version advances when any member is written. Granularity is the
// declarer's choice — "items" invalidates coarsely (any write clears
// every dependent read), "item:k" invalidates one key. An operation may
// depend on several keyspaces at different granularities.
type Keyspace string

// SetFunc resolves one invocation's parameters to the keyspaces it
// touches. Implementations must be pure and safe for concurrent use:
// they run on the request path, once per miss (reads) or write-through
// call (writes).
type SetFunc func(params []soap.Param) []Keyspace

// Fixed returns a SetFunc naming the same keyspaces regardless of
// parameters — the coarse whole-resource dependency.
func Fixed(ks ...Keyspace) SetFunc {
	return func([]soap.Param) []Keyspace { return ks }
}

// Graph holds the declared read and write sets of an operation
// vocabulary. Declare during wiring, before traffic; declarations are
// nevertheless safe to add at run time.
type Graph struct {
	mu     sync.RWMutex
	reads  map[string]SetFunc
	writes map[string]SetFunc
}

// NewGraph returns an empty invalidation graph.
func NewGraph() *Graph {
	return &Graph{
		reads:  make(map[string]SetFunc),
		writes: make(map[string]SetFunc),
	}
}

// Read declares the keyspaces operation op reads. Entries cached for op
// are stamped with these keyspaces' epochs and invalidated when any of
// them is written.
func (g *Graph) Read(op string, f SetFunc) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reads[op] = f
	return g
}

// Write declares the keyspaces operation op writes. A successful (or
// unknown-outcome) invocation of op bumps their epochs.
func (g *Graph) Write(op string, f SetFunc) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.writes[op] = f
	return g
}

// readSet resolves op's read keyspaces, nil when undeclared.
func (g *Graph) readSet(op string, params []soap.Param) []Keyspace {
	g.mu.RLock()
	f := g.reads[op]
	g.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(params)
}

// writeSet resolves op's write keyspaces, nil when undeclared.
func (g *Graph) writeSet(op string, params []soap.Param) []Keyspace {
	g.mu.RLock()
	f := g.writes[op]
	g.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(params)
}

// WritesDeclared reports whether op has a declared write set.
func (g *Graph) WritesDeclared(op string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.writes[op] != nil
}

// epoch is one keyspace's version cell. Cells are created on first
// touch and live for the Invalidator's lifetime (16 bytes per
// keyspace); deployments with unbounded per-key keyspaces should prefer
// coarser families or recycle the Invalidator with the cache.
type epoch struct {
	v atomic.Uint64
}

// Stamp records the value one epoch cell had when an entry was filled.
// The zero Stamp is invalid; stamps are only produced by ReadStamps.
type Stamp struct {
	cell *epoch
	seen uint64
}

// Stale reports whether any stamped epoch has advanced past its
// recorded value — the entry depends on a keyspace that has been
// written since the fill. A nil or empty stamp slice is never stale
// (the entry has no declared dependencies). The check is a handful of
// atomic loads, cheap enough for the hit path.
func Stale(stamps []Stamp) bool {
	for i := range stamps {
		if stamps[i].cell.v.Load() != stamps[i].seen {
			return true
		}
	}
	return false
}

// Invalidator binds a Graph to a live epoch table and the metrics that
// make invalidation observable. One Invalidator is shared by every
// cache that must see the same writes (typically one per process per
// backend).
type Invalidator struct {
	graph *Graph
	cells sync.Map // Keyspace -> *epoch

	// writesCommitted counts write-through commits that bumped at least
	// zero keyspaces; bumps counts individual keyspace bumps.
	writesCommitted *obs.Counter
	bumps           *obs.Counter
}

// New builds an Invalidator over graph, recording its counters into reg
// (which may be nil for an unobserved instance) under
// "invalidate.writes" and "invalidate.bumps", and exporting the live
// keyspace→epoch table as the "invalidation" inspection on
// /debug/wscache.
func New(graph *Graph, reg *obs.Registry) *Invalidator {
	if graph == nil {
		graph = NewGraph()
	}
	inv := &Invalidator{
		graph:           graph,
		writesCommitted: reg.Counter("invalidate.writes"),
		bumps:           reg.Counter("invalidate.bumps"),
	}
	reg.SetInspection("invalidation", func() any { return inv.Snapshot() })
	return inv
}

// cell returns (creating if needed) the epoch cell for a keyspace.
func (inv *Invalidator) cell(ks Keyspace) *epoch {
	if v, ok := inv.cells.Load(ks); ok {
		return v.(*epoch)
	}
	v, _ := inv.cells.LoadOrStore(ks, &epoch{})
	return v.(*epoch)
}

// ReadStamps snapshots the current epochs of op's read keyspaces, nil
// when op declares none. The caller must take the snapshot BEFORE
// issuing the backend read it will cache (see the package ordering
// guarantee) and attach the stamps to the filled entry.
func (inv *Invalidator) ReadStamps(op string, params []soap.Param) []Stamp {
	ks := inv.graph.readSet(op, params)
	if len(ks) == 0 {
		return nil
	}
	stamps := make([]Stamp, len(ks))
	for i, k := range ks {
		c := inv.cell(k)
		stamps[i] = Stamp{cell: c, seen: c.v.Load()}
	}
	return stamps
}

// WritesDeclared reports whether op has a declared write set — the
// cheap pre-check callers use to skip CommitWrite bookkeeping for
// read-only operations.
func (inv *Invalidator) WritesDeclared(op string) bool {
	return inv.graph.WritesDeclared(op)
}

// CommitWrite bumps the epochs of op's write keyspaces and returns how
// many were bumped (0 when op declares no write set). Call it after the
// write-through invocation has completed — on success, and also on
// transport-level failure where the write may have reached the backend
// (unknown outcome invalidates conservatively); skip it only when the
// backend provably rejected the write (e.g. a SOAP fault).
func (inv *Invalidator) CommitWrite(op string, params []soap.Param) int {
	ks := inv.graph.writeSet(op, params)
	if len(ks) == 0 {
		return 0
	}
	for _, k := range ks {
		inv.cell(k).v.Add(1)
	}
	inv.bumps.Add(int64(len(ks)))
	inv.writesCommitted.Add(1)
	return len(ks)
}

// Bump advances a keyspace's epoch directly — the hook for out-of-band
// invalidation signals (an operator action, a server-push channel)
// that do not flow through a declared operation.
func (inv *Invalidator) Bump(ks Keyspace) {
	inv.cell(ks).v.Add(1)
	inv.bumps.Add(1)
}

// Epoch returns a keyspace's current epoch (0 if never touched).
func (inv *Invalidator) Epoch(ks Keyspace) uint64 {
	if v, ok := inv.cells.Load(ks); ok {
		return v.(*epoch).v.Load()
	}
	return 0
}

// Snapshot captures the live keyspace→epoch table, sorted-key iteration
// left to the consumer (JSON objects are unordered anyway).
func (inv *Invalidator) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	inv.cells.Range(func(k, v any) bool {
		out[string(k.(Keyspace))] = v.(*epoch).v.Load()
		return true
	})
	return out
}

// Keyspaces returns the sorted names of every keyspace that has an
// epoch cell, for diagnostics.
func (inv *Invalidator) Keyspaces() []Keyspace {
	var out []Keyspace
	inv.cells.Range(func(k, _ any) bool {
		out = append(out, k.(Keyspace))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
