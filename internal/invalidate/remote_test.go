package invalidate

import (
	"testing"

	"repro/internal/obs"
)

// TestOnBumpFiresForLocalBumpsOnly pins the echo-prevention contract:
// CommitWrite and Bump fire the registered hooks with the bumped
// keyspaces; ApplyRemote and InvalidateAll — bumps that ORIGINATED
// elsewhere — must not, or two processes pushing to each other would
// loop forever.
func TestOnBumpFiresForLocalBumpsOnly(t *testing.T) {
	inv := New(itemGraph(), obs.NewRegistry())
	var fired [][]Keyspace
	inv.OnBump(func(ks []Keyspace) {
		cp := append([]Keyspace(nil), ks...)
		fired = append(fired, cp)
	})

	inv.CommitWrite(opPutItem, params("x"))
	if len(fired) != 1 || len(fired[0]) != 2 {
		t.Fatalf("CommitWrite hook: got %v, want one firing with two keyspaces", fired)
	}
	inv.Bump(ksItems)
	if len(fired) != 2 || len(fired[1]) != 1 || fired[1][0] != ksItems {
		t.Fatalf("Bump hook: got %v", fired)
	}

	inv.ApplyRemote(ksItemX)
	inv.InvalidateAll()
	if len(fired) != 2 {
		t.Fatalf("remote-origin bumps fired hooks: %v", fired[2:])
	}
}

// TestApplyRemoteStalesStamps verifies the receive side: a remote bump
// invalidates local stamps exactly like a local one.
func TestApplyRemoteStalesStamps(t *testing.T) {
	inv := New(itemGraph(), obs.NewRegistry())
	stamps := inv.ReadStamps(opGetItem, params("x"))
	if Stale(stamps) {
		t.Fatal("fresh stamps stale")
	}
	inv.ApplyRemote(ksItemX)
	if !Stale(stamps) {
		t.Fatal("stamps survive a remote bump of their keyspace")
	}
}

// TestInvalidateAllStalesEveryCell verifies the daemon-restart hammer.
func TestInvalidateAllStalesEveryCell(t *testing.T) {
	inv := New(itemGraph(), obs.NewRegistry())
	a := inv.ReadStamps(opGetItem, params("x"))
	b := inv.ReadStamps(opListItems, nil)
	inv.InvalidateAll()
	if !Stale(a) || !Stale(b) {
		t.Fatal("InvalidateAll left a stamp fresh")
	}
	// New stamps taken afterwards are stable again.
	if Stale(inv.ReadStamps(opGetItem, params("x"))) {
		t.Fatal("post-InvalidateAll stamps born stale")
	}
}

// TestVersionCountsEveryMutation pins the sync cursor: any epoch
// mutation advances Version, and a quiet Invalidator holds it steady.
func TestVersionCountsEveryMutation(t *testing.T) {
	inv := New(itemGraph(), obs.NewRegistry())
	if inv.Version() != 0 {
		t.Fatalf("fresh Version = %d", inv.Version())
	}
	inv.CommitWrite(opPutItem, params("x")) // bumps item:x and items
	if inv.Version() != 2 {
		t.Fatalf("after CommitWrite Version = %d, want 2", inv.Version())
	}
	inv.ApplyRemote(ksItems)
	if inv.Version() != 3 {
		t.Fatalf("after ApplyRemote Version = %d, want 3", inv.Version())
	}
	if inv.Version() != 3 {
		t.Fatal("Version moved without a mutation")
	}
}

// TestStampWithAdoptsObservedEpoch verifies the daemon-side Put path:
// a stamp carrying the client's observed epoch is live against the
// daemon's cell — fresh while they agree, stale the moment the cell
// advances past the observation (including "already past" at stamping
// time, the born-stale refusal case).
func TestStampWithAdoptsObservedEpoch(t *testing.T) {
	inv := New(NewGraph(), obs.NewRegistry())
	s := []Stamp{inv.StampWith(ksItems, 0)}
	if Stale(s) {
		t.Fatal("matching observation reports stale")
	}
	inv.Bump(ksItems)
	if !Stale(s) {
		t.Fatal("advanced cell not stale against old observation")
	}
	// A client observation behind the daemon's current epoch is born
	// stale: the daemon must refuse the fill.
	if !Stale([]Stamp{inv.StampWith(ksItems, 0)}) {
		t.Fatal("born-stale stamp reports fresh")
	}
	if Stale([]Stamp{inv.StampWith(ksItems, inv.Epoch(ksItems))}) {
		t.Fatal("current observation reports stale")
	}
}

// TestReadSetExposesGraphResolution pins the accessor tier fills use
// to name an entry's dependencies on the wire.
func TestReadSetExposesGraphResolution(t *testing.T) {
	inv := New(itemGraph(), obs.NewRegistry())
	ks := inv.ReadSet(opGetItem, params("x"))
	if len(ks) != 1 || ks[0] != ksItemX {
		t.Fatalf("ReadSet(doGetItem) = %v", ks)
	}
	if inv.ReadSet("doUndeclared", nil) != nil {
		t.Fatal("undeclared op has a read set")
	}
}
