// Package deepcopy implements deep copying of application objects by
// reflection — the paper's "Copy by using the reflection API" method
// (Section 4.2.3-B). The cache uses it both when storing a response
// (so later mutations by the application cannot corrupt the cached
// value) and when returning a hit (so the application receives its own
// copy, preserving call-by-copy semantics, Section 3.1).
package deepcopy

import (
	"fmt"
	"reflect"
)

// UnsupportedTypeError reports a type the reflection copier cannot
// handle: channels, functions, unsafe pointers, or structs with
// unexported fields (the analog of a non-bean Java type).
type UnsupportedTypeError struct {
	Type reflect.Type
	Path string
}

// Error implements the error interface.
func (e *UnsupportedTypeError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("deepcopy: unsupported type %s", e.Type)
	}
	return fmt.Sprintf("deepcopy: unsupported type %s at %s", e.Type, e.Path)
}

// Value returns a deep copy of v. Scalars and strings are returned
// as-is (they are immutable); pointers, slices, arrays, maps and
// structs are copied recursively. Shared substructure and cycles are
// preserved: if the input graph references the same pointer twice, so
// does the copy.
func Value(v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	rv := reflect.ValueOf(v)
	out, err := copyValue(rv, "value", make(map[copyKey]reflect.Value))
	if err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

// MustValue is Value for callers that have already verified the type is
// bean-compatible (via typemap analysis); it panics on the programming
// error of passing an unsupported type.
func MustValue(v any) any {
	out, err := Value(v)
	if err != nil {
		panic(err)
	}
	return out
}

// copyKey identifies an already-copied referent: pointer identity alone
// is not enough because a pointer to a struct and a pointer to its
// first field share an address.
type copyKey struct {
	ptr uintptr
	typ reflect.Type
}

// copyValue recursively copies rv. path tracks the location for error
// messages. seen maps visited pointers to their copies so shared
// structure and cycles round-trip.
func copyValue(rv reflect.Value, path string, seen map[copyKey]reflect.Value) (reflect.Value, error) {
	switch rv.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128,
		reflect.String:
		return rv, nil

	case reflect.Pointer:
		if rv.IsNil() {
			return rv, nil
		}
		key := copyKey{ptr: rv.Pointer(), typ: rv.Type()}
		if prev, ok := seen[key]; ok {
			return prev, nil
		}
		out := reflect.New(rv.Type().Elem())
		seen[key] = out
		elem, err := copyValue(rv.Elem(), path+".*", seen)
		if err != nil {
			return reflect.Value{}, err
		}
		out.Elem().Set(elem)
		return out, nil

	case reflect.Slice:
		if rv.IsNil() {
			return rv, nil
		}
		out := reflect.MakeSlice(rv.Type(), rv.Len(), rv.Len())
		// Fast path: element type has no references, bulk copy.
		if isShallowSafe(rv.Type().Elem()) {
			reflect.Copy(out, rv)
			return out, nil
		}
		for i := 0; i < rv.Len(); i++ {
			ev, err := copyValue(rv.Index(i), fmt.Sprintf("%s[%d]", path, i), seen)
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(ev)
		}
		return out, nil

	case reflect.Array:
		out := reflect.New(rv.Type()).Elem()
		if isShallowSafe(rv.Type().Elem()) {
			reflect.Copy(out, rv)
			return out, nil
		}
		for i := 0; i < rv.Len(); i++ {
			ev, err := copyValue(rv.Index(i), fmt.Sprintf("%s[%d]", path, i), seen)
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(ev)
		}
		return out, nil

	case reflect.Map:
		if rv.IsNil() {
			return rv, nil
		}
		out := reflect.MakeMapWithSize(rv.Type(), rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			kv, err := copyValue(iter.Key(), path+".key", seen)
			if err != nil {
				return reflect.Value{}, err
			}
			vv, err := copyValue(iter.Value(), path+"["+fmt.Sprint(iter.Key().Interface())+"]", seen)
			if err != nil {
				return reflect.Value{}, err
			}
			out.SetMapIndex(kv, vv)
		}
		return out, nil

	case reflect.Struct:
		t := rv.Type()
		out := reflect.New(t).Elem()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				// An unexported field that is non-zero would be silently
				// lost; refuse, mirroring the Java bean limitation.
				if !rv.Field(i).IsZero() {
					return reflect.Value{}, &UnsupportedTypeError{Type: t, Path: path + "." + f.Name}
				}
				continue
			}
			fv, err := copyValue(rv.Field(i), path+"."+f.Name, seen)
			if err != nil {
				return reflect.Value{}, err
			}
			out.Field(i).Set(fv)
		}
		return out, nil

	case reflect.Interface:
		if rv.IsNil() {
			return rv, nil
		}
		inner, err := copyValue(rv.Elem(), path+".iface", seen)
		if err != nil {
			return reflect.Value{}, err
		}
		out := reflect.New(rv.Type()).Elem()
		out.Set(inner)
		return out, nil

	default:
		return reflect.Value{}, &UnsupportedTypeError{Type: rv.Type(), Path: path}
	}
}

// isShallowSafe reports whether values of t contain no references, so a
// bulk memory copy is already a deep copy.
func isShallowSafe(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.String:
		// Strings reference bytes, but those bytes are immutable.
		return true
	case reflect.Array:
		return isShallowSafe(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isShallowSafe(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
