package deepcopy

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

type node struct {
	Value    int
	Label    string
	Children []*node
	Attrs    map[string]string
	Next     *node
}

type result struct {
	Query   string
	Count   int
	Hits    []hit
	Blob    []byte
	Flags   [3]bool
	Nested  *result
	Anynull any
}

type hit struct {
	URL   string
	Score float64
}

func TestScalarsPassThrough(t *testing.T) {
	for _, v := range []any{42, "s", 3.14, true, int64(-1), uint8(255)} {
		got, err := Value(v)
		if err != nil {
			t.Fatalf("Value(%v): %v", v, err)
		}
		if got != v {
			t.Errorf("got %v, want %v", got, v)
		}
	}
}

func TestNil(t *testing.T) {
	got, err := Value(nil)
	if err != nil || got != nil {
		t.Errorf("Value(nil) = %v, %v", got, err)
	}
}

func TestDeepCopyIndependence(t *testing.T) {
	orig := &result{
		Query: "golang",
		Count: 2,
		Hits:  []hit{{URL: "a", Score: 1}, {URL: "b", Score: 2}},
		Blob:  []byte{1, 2, 3},
		Flags: [3]bool{true, false, true},
		Nested: &result{
			Query: "inner",
			Hits:  []hit{{URL: "c"}},
		},
	}
	cp, err := Value(orig)
	if err != nil {
		t.Fatal(err)
	}
	copied, ok := cp.(*result)
	if !ok {
		t.Fatalf("copy has type %T", cp)
	}
	if !reflect.DeepEqual(orig, copied) {
		t.Fatalf("copy differs: %+v vs %+v", orig, copied)
	}
	if orig == copied {
		t.Fatal("copy aliases original pointer")
	}

	// Mutate every mutable reach of the copy; the original must not move.
	copied.Query = "changed"
	copied.Hits[0].URL = "changed"
	copied.Blob[0] = 99
	copied.Nested.Query = "changed"
	copied.Nested.Hits[0].URL = "changed"
	if orig.Query != "golang" || orig.Hits[0].URL != "a" || orig.Blob[0] != 1 ||
		orig.Nested.Query != "inner" || orig.Nested.Hits[0].URL != "c" {
		t.Errorf("original mutated through copy: %+v", orig)
	}
}

func TestMapCopy(t *testing.T) {
	orig := map[string][]int{"a": {1, 2}, "b": {3}}
	cp, err := Value(orig)
	if err != nil {
		t.Fatal(err)
	}
	copied := cp.(map[string][]int)
	copied["a"][0] = 99
	copied["c"] = []int{4}
	if orig["a"][0] != 1 {
		t.Error("map value slice aliased")
	}
	if _, ok := orig["c"]; ok {
		t.Error("map itself aliased")
	}
}

func TestSharedSubstructurePreserved(t *testing.T) {
	shared := &node{Value: 7}
	orig := &node{Children: []*node{shared, shared}}
	cp, err := Value(orig)
	if err != nil {
		t.Fatal(err)
	}
	copied := cp.(*node)
	if copied.Children[0] != copied.Children[1] {
		t.Error("shared pointer duplicated instead of preserved")
	}
	if copied.Children[0] == shared {
		t.Error("shared pointer aliases original")
	}
}

func TestCyclePreserved(t *testing.T) {
	a := &node{Value: 1}
	b := &node{Value: 2, Next: a}
	a.Next = b
	cp, err := Value(a)
	if err != nil {
		t.Fatal(err)
	}
	copied := cp.(*node)
	if copied.Next.Next != copied {
		t.Error("cycle not preserved")
	}
	if copied.Next == b {
		t.Error("cycle aliases original")
	}
}

func TestSelfCycle(t *testing.T) {
	a := &node{Value: 1}
	a.Next = a
	cp, err := Value(a)
	if err != nil {
		t.Fatal(err)
	}
	copied := cp.(*node)
	if copied.Next != copied {
		t.Error("self-cycle not preserved")
	}
}

func TestNilFieldsPreserved(t *testing.T) {
	orig := &node{Value: 1} // Children, Attrs, Next all nil
	cp, err := Value(orig)
	if err != nil {
		t.Fatal(err)
	}
	copied := cp.(*node)
	if copied.Children != nil || copied.Attrs != nil || copied.Next != nil {
		t.Errorf("nil fields materialized: %+v", copied)
	}
}

func TestInterfaceField(t *testing.T) {
	orig := &result{Anynull: &hit{URL: "x"}}
	cp, err := Value(orig)
	if err != nil {
		t.Fatal(err)
	}
	copied := cp.(*result)
	h, ok := copied.Anynull.(*hit)
	if !ok {
		t.Fatalf("interface field has type %T", copied.Anynull)
	}
	if h == orig.Anynull.(*hit) {
		t.Error("interface payload aliased")
	}
	if h.URL != "x" {
		t.Errorf("URL = %q", h.URL)
	}
}

func TestUnsupportedFunc(t *testing.T) {
	type bad struct{ F func() }
	_, err := Value(&bad{F: func() {}})
	var ute *UnsupportedTypeError
	if !errors.As(err, &ute) {
		t.Fatalf("err = %v, want UnsupportedTypeError", err)
	}
}

func TestUnsupportedChan(t *testing.T) {
	type bad struct{ C chan int }
	if _, err := Value(&bad{C: make(chan int)}); err == nil {
		t.Error("expected error for chan field")
	}
}

func TestUnexportedNonZeroRejected(t *testing.T) {
	type sneaky struct {
		Public string
		secret int
	}
	if _, err := Value(&sneaky{Public: "x", secret: 1}); err == nil {
		t.Error("expected error: non-zero unexported field would be lost")
	}
	// Zero unexported field is tolerated: nothing is lost.
	if _, err := Value(&sneaky{Public: "x"}); err != nil {
		t.Errorf("zero unexported field should copy: %v", err)
	}
}

func TestMustValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	type bad struct{ C chan int }
	MustValue(&bad{C: make(chan int)})
}

func TestCopyEqualProperty(t *testing.T) {
	// Property: for arbitrary generated hit slices, the copy is
	// DeepEqual to the original and shares no backing arrays.
	f := func(urls []string, scores []float64) bool {
		n := len(urls)
		if len(scores) < n {
			n = len(scores)
		}
		hits := make([]hit, n)
		for i := 0; i < n; i++ {
			hits[i] = hit{URL: urls[i], Score: scores[i]}
		}
		orig := &result{Query: "q", Count: n, Hits: hits}
		cp, err := Value(orig)
		if err != nil {
			return false
		}
		copied := cp.(*result)
		if !reflect.DeepEqual(orig, copied) {
			return false
		}
		if n > 0 {
			copied.Hits[0].URL = copied.Hits[0].URL + "!"
			if orig.Hits[0].URL == copied.Hits[0].URL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLargeByteSliceFastPath(t *testing.T) {
	blob := make([]byte, 1<<16)
	for i := range blob {
		blob[i] = byte(i)
	}
	cp, err := Value(blob)
	if err != nil {
		t.Fatal(err)
	}
	copied := cp.([]byte)
	if &copied[0] == &blob[0] {
		t.Error("byte slice aliased")
	}
	copied[0] = 123
	if blob[0] == 123 {
		t.Error("mutation leaked")
	}
}
