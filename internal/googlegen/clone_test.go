package googlegen

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/googleapi"
	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
	"repro/internal/wsdl"
)

func TestGeneratedSubTypeClones(t *testing.T) {
	re := &ResultElement{Title: "x", DirectoryCategory: DirectoryCategory{FullViewableName: "Top"}}
	cp := re.CloneDeep().(*ResultElement)
	if cp == re || !reflect.DeepEqual(cp, re) {
		t.Error("ResultElement CloneDeep broken")
	}
	dc := &DirectoryCategory{FullViewableName: "A", SpecialEncoding: "B"}
	cdc := dc.CloneDeep().(*DirectoryCategory)
	if cdc == dc || *cdc != *dc {
		t.Error("DirectoryCategory CloneDeep broken")
	}
}

func TestGeneratedClientErrorPaths(t *testing.T) {
	// A server whose handler faults: every typed method must surface
	// the fault as an error with its zero result.
	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	disp := server.NewDispatcher(codec, googleapi.Namespace)
	for _, op := range googleapi.Operations {
		disp.Register(op, func([]soap.Param) (any, error) {
			return nil, errFault
		})
	}
	defs, err := wsdl.Parse([]byte(googleapi.WSDL))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewGoogleSearchClient(defs, codec, &transport.InProcess{Handler: disp}, client.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if s, err := cl.DoSpellingSuggestion(ctx, "k", "p"); err == nil || s != "" {
		t.Errorf("spelling: %q, %v", s, err)
	}
	if b, err := cl.DoGetCachedPage(ctx, "k", "u"); err == nil || b != nil {
		t.Errorf("cachedpage: %v, %v", b, err)
	}
	if r, err := cl.DoGoogleSearch(ctx, "k", "q", 0, 1, false, "", false, "", "", ""); err == nil || r != nil {
		t.Errorf("search: %v, %v", r, err)
	}
}

func TestGeneratedClientWrongResultType(t *testing.T) {
	// A server returning the wrong type for an operation: the typed
	// method reports the mismatch instead of panicking.
	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	disp := server.NewDispatcher(codec, googleapi.Namespace)
	disp.Register(googleapi.OpSpellingSuggestion, func([]soap.Param) (any, error) {
		return 42, nil // should be a string
	})
	defs, err := wsdl.Parse([]byte(googleapi.WSDL))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewGoogleSearchClient(defs, codec, &transport.InProcess{Handler: disp}, client.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.DoSpellingSuggestion(context.Background(), "k", "p")
	if err == nil || !strings.Contains(err.Error(), "unexpected result type") {
		t.Errorf("err = %v", err)
	}
}

var errFault = errString("deliberate fault")

type errString string

func (e errString) Error() string { return string(e) }
