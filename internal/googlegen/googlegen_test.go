package googlegen

import (
	"context"
	"reflect"
	"repro/internal/rep"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
	"repro/internal/wsdl"
)

// newTypedClient wires the generated typed client to the handwritten
// dummy Google dispatcher: two independently built stacks agreeing only
// on the WSDL, which is the interoperability claim of the paper.
func newTypedClient(t *testing.T, handlers ...client.Handler) *GoogleSearchClient {
	t.Helper()
	disp, _, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	// The client side uses ONLY generated artifacts: generated types in
	// a fresh registry plus the parsed WSDL.
	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	defs, err := wsdl.Parse([]byte(googleapi.WSDL))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewGoogleSearchClient(defs, codec, &transport.InProcess{Handler: disp},
		client.ServiceConfig{Options: client.Options{RecordEvents: true, Handlers: handlers}})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestTypedClientAgainstHandwrittenServer(t *testing.T) {
	cl := newTypedClient(t)
	ctx := context.Background()

	s, err := cl.DoSpellingSuggestion(ctx, "key", "helo wrld")
	if err != nil {
		t.Fatal(err)
	}
	if s != googleapi.SpellingSuggestion("helo wrld") {
		t.Errorf("suggestion = %q", s)
	}

	page, err := cl.DoGetCachedPage(ctx, "key", "http://x/")
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != googleapi.CachedPageSize {
		t.Errorf("page size = %d", len(page))
	}

	res, err := cl.DoGoogleSearch(ctx, "key", "golang", 0, 10, false, "", false, "", "latin1", "latin1")
	if err != nil {
		t.Fatal(err)
	}
	want := googleapi.Search("golang", 0, 10)
	if res.SearchQuery != want.SearchQuery ||
		res.EstimatedTotalResultsCount != want.EstimatedTotalResultsCount ||
		len(res.ResultElements) != len(want.ResultElements) {
		t.Errorf("generated-type result differs: %+v", res)
	}
	for i := range res.ResultElements {
		if res.ResultElements[i].URL != want.ResultElements[i].URL ||
			res.ResultElements[i].Title != want.ResultElements[i].Title {
			t.Errorf("element %d differs", i)
		}
	}
}

func TestGeneratedCloneDeep(t *testing.T) {
	orig := &GoogleSearchResult{
		SearchQuery: "q",
		ResultElements: []ResultElement{
			{Title: "t", DirectoryCategory: DirectoryCategory{FullViewableName: "Top"}},
		},
		DirectoryCategories: []DirectoryCategory{{FullViewableName: "Top/X"}},
	}
	cp := orig.CloneDeep().(*GoogleSearchResult)
	if !reflect.DeepEqual(orig, cp) {
		t.Fatal("clone differs")
	}
	cp.ResultElements[0].Title = "mutated"
	cp.DirectoryCategories[0].FullViewableName = "mutated"
	if orig.ResultElements[0].Title != "t" || orig.DirectoryCategories[0].FullViewableName != "Top/X" {
		t.Error("clone aliased original")
	}
}

func TestGeneratedTypesWithCache(t *testing.T) {
	// The generated types implement Cloner, so the Section 6 classifier
	// picks copy-by-clone for them automatically.
	disp, _, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	_ = disp
	reg := typemap.NewRegistry()
	if err := RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(reg, codec),
		DefaultTTL: time.Hour,
	})
	cl := newTypedClient(t, cache)
	ctx := context.Background()

	r1, err := cl.DoGoogleSearch(ctx, "k", "repeat", 0, 10, false, "", false, "", "latin1", "latin1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cl.DoGoogleSearch(ctx, "k", "repeat", 0, 10, false, "", false, "", "latin1", "latin1")
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits != 1 {
		t.Errorf("hits = %d", cache.Stats().Hits)
	}
	if r1 == r2 {
		t.Error("cache hit returned the same pointer (clone store must copy)")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("cache hit returned different content")
	}
	// The classifier must have chosen clone for this Cloner type.
	info := reg.InfoFor(r1)
	if !info.IsCloneable {
		t.Error("generated type not detected as Cloneable")
	}
}

func TestGeneratedFaultPropagation(t *testing.T) {
	cl := newTypedClient(t)
	// Missing q triggers a server fault; the typed method surfaces it.
	_, err := cl.DoSpellingSuggestion(context.Background(), "key", "")
	if err != nil {
		// Either a fault or success is acceptable for empty phrase; the
		// point is no panic and typed error flow. Force a real fault:
		t.Logf("empty phrase: %v", err)
	}
}
