package sax

import (
	"bytes"
	"strings"
	"testing"
)

// tmplFixtureEvents returns a small SOAP-shaped event sequence with
// three text nodes, built by hand so tests control the texts exactly.
func tmplFixtureEvents(texts ...string) []Event {
	env := Name{Space: "http://schemas.xmlsoap.org/soap/envelope/", Prefix: "soapenv", Local: "Envelope"}
	body := Name{Space: env.Space, Prefix: "soapenv", Local: "Body"}
	item := Name{Local: "item"}
	events := []Event{
		{Kind: StartDocument},
		{Kind: StartElement, Name: env, Attrs: []Attribute{
			{Name: Name{Prefix: "xmlns", Local: "soapenv"}, Value: env.Space},
			{Name: Name{Prefix: "xmlns", Local: "xsi"}, Value: "http://www.w3.org/2001/XMLSchema-instance"},
		}},
		{Kind: StartElement, Name: body},
	}
	for _, t := range texts {
		events = append(events,
			Event{Kind: StartElement, Name: item, Attrs: []Attribute{
				{Name: Name{Prefix: "xsi", Local: "type", Space: "http://www.w3.org/2001/XMLSchema-instance"}, Value: "xsd:string"},
			}},
			Event{Kind: Characters, Text: t},
			Event{Kind: EndElement, Name: item},
		)
	}
	events = append(events,
		Event{Kind: EndElement, Name: body},
		Event{Kind: EndElement, Name: env},
		Event{Kind: EndDocument},
	)
	return events
}

// mutateTexts returns a copy of events with its Characters texts
// replaced in order (extra texts ignored, missing texts keep the
// original).
func mutateTexts(events []Event, texts []string) []Event {
	out := make([]Event, len(events))
	copy(out, events)
	j := 0
	for i := range out {
		if out[i].Kind == Characters && j < len(texts) {
			out[i].Text = texts[j]
			j++
		}
	}
	return out
}

// spliceFor renders mutated via the template built from base,
// exercising the differential path: template from one document, values
// from another of the same shape.
func spliceFor(t testing.TB, base, mutated []Event) []byte {
	t.Helper()
	tpl, _, err := BuildTemplate(base)
	if err != nil {
		t.Fatal(err)
	}
	texts := SpliceTexts(mutated)
	if len(texts) != tpl.Slots() {
		t.Fatalf("splice texts %d != slots %d", len(texts), tpl.Slots())
	}
	values := make([]string, len(texts))
	for i, raw := range texts {
		values[i] = EscapeValue(raw)
	}
	return tpl.AppendSplice(nil, values)
}

func TestTemplateSpliceMatchesFullSerialization(t *testing.T) {
	base := tmplFixtureEvents("one", "two", "three")
	for _, texts := range [][]string{
		{"one", "two", "three"},
		{"", "", ""},
		{"changed", "values", "here"},
		{"much longer value than the original one was", "x", "y"},
	} {
		mutated := mutateTexts(base, texts)
		want, err := WriteSequence(mutated)
		if err != nil {
			t.Fatal(err)
		}
		got := spliceFor(t, base, mutated)
		if string(got) != want {
			t.Errorf("texts %q: spliced output diverges from full serialization\n got: %s\nwant: %s",
				texts, got, want)
		}
	}
}

// TestTemplateSpliceEscaping pins the escaping boundary: spliced text
// must pass through the same xmlescape-checked escaper as a full
// serialization, for every class of hostile input — markup characters,
// the CDATA terminator, control characters, and multi-byte UTF-8
// sequences whose escape expansion shifts every later splice offset.
func TestTemplateSpliceEscaping(t *testing.T) {
	base := tmplFixtureEvents("a", "b", "c")
	cases := []struct {
		name  string
		texts []string
	}{
		{"angle brackets", []string{"<script>", "a<b", ">"}},
		{"ampersand", []string{"x&y", "&amp;", "&"}},
		{"cdata terminator", []string{"]]>", "a]]>b", "]]]]>>"}},
		{"quotes", []string{`"quoted"`, "'single'", `a"b'c`}},
		{"control chars", []string{"line\nbreak", "tab\there", "cr\rhere"}},
		{"multibyte utf8", []string{"héllo wörld", "日本語テキスト", "emoji \U0001F600 mix"}},
		{"multibyte straddling escapes", []string{"é<é", "日&本", "\U0001F600>\U0001F600"}},
		{"empty and spaces", []string{"", " ", "  \t "}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := mutateTexts(base, tc.texts)
			want, err := WriteSequence(mutated)
			if err != nil {
				t.Fatal(err)
			}
			got := spliceFor(t, base, mutated)
			if string(got) != want {
				t.Errorf("spliced output diverges from full serialization\n got: %s\nwant: %s", got, want)
			}
			// The escaped document must never contain an unescaped
			// splice: raw '<' or '&' from the values would be markup
			// injection.
			for _, frag := range []string{"<script>", "]]>", "x&y"} {
				if strings.Contains(string(got), frag) {
					t.Errorf("unescaped fragment %q leaked into spliced output: %s", frag, got)
				}
			}
		})
	}
}

func TestTemplateSpliceRoundTripsThroughParser(t *testing.T) {
	base := tmplFixtureEvents("a", "b", "c")
	mutated := mutateTexts(base, []string{"<&>", "]]>", "é日\U0001F600"})
	doc := spliceFor(t, base, mutated)
	events, err := Record(doc)
	if err != nil {
		t.Fatalf("spliced document does not re-parse: %v\n%s", err, doc)
	}
	got := SpliceTexts(events)
	want := []string{"<&>", "]]>", "é日\U0001F600"}
	if len(got) != len(want) {
		t.Fatalf("re-parsed %d texts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("text %d round-tripped to %q, want %q", i, got[i], want[i])
		}
	}
}

func TestShapeHashInvariants(t *testing.T) {
	base := tmplFixtureEvents("one", "two", "three")
	lo1, hi1 := ShapeHash(base)
	lo2, hi2 := ShapeHash(mutateTexts(base, []string{"completely", "different", "texts"}))
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("shape hash must be invariant under text mutation")
	}
	// Different attribute values are different shapes (attribute values
	// are skeleton bytes).
	other := make([]Event, len(base))
	copy(other, base)
	for i := range other {
		if other[i].Kind == StartElement && len(other[i].Attrs) > 0 && other[i].Name.Local == "item" {
			attrs := make([]Attribute, len(other[i].Attrs))
			copy(attrs, other[i].Attrs)
			attrs[0].Value = "xsd:int"
			other[i].Attrs = attrs
			break
		}
	}
	lo3, hi3 := ShapeHash(other)
	if lo1 == lo3 && hi1 == hi3 {
		t.Error("shape hash must distinguish attribute values")
	}
	// More or fewer text nodes is a different shape.
	lo4, hi4 := ShapeHash(tmplFixtureEvents("one", "two"))
	if lo1 == lo4 && hi1 == hi4 {
		t.Error("shape hash must distinguish text-node counts")
	}
}

func TestTemplateSpliceTo(t *testing.T) {
	base := tmplFixtureEvents("a", "b", "c")
	tpl, texts, err := BuildTemplate(base)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]string, len(texts))
	for i, raw := range texts {
		values[i] = EscapeValue(raw)
	}
	var buf bytes.Buffer
	n, err := tpl.SpliceTo(&buf, make([]byte, 0, tpl.RenderedSize(values)), values)
	if err != nil {
		t.Fatal(err)
	}
	want, err := WriteSequence(base)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != want || n != int64(len(want)) {
		t.Errorf("SpliceTo wrote %d bytes %q, want %d bytes %q", n, buf.String(), len(want), want)
	}
	if tpl.RenderedSize(values) != len(want) {
		t.Errorf("RenderedSize = %d, want %d", tpl.RenderedSize(values), len(want))
	}
}

func TestAppendSpliceSlotMismatchPanics(t *testing.T) {
	tpl, _, err := BuildTemplate(tmplFixtureEvents("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendSplice with wrong value count must panic, not corrupt output")
		}
	}()
	tpl.AppendSplice(nil, []string{"only-one"})
}

// FuzzTemplateSplice is the byte-identity oracle: for arbitrary text
// mutations of a fixed shape, template-spliced output must equal the
// full re-serialization of the mutated sequence.
func FuzzTemplateSplice(f *testing.F) {
	f.Add("one", "two", "three")
	f.Add("", "", "")
	f.Add("<&>", "]]>", "\x00\x01\x02")
	f.Add("é", "日本語", "\U0001F600")
	f.Add("a\rb", "c\nd", "e\te")
	f.Add(strings.Repeat("x", 4096), "&"+strings.Repeat("<", 100), "]]>"+strings.Repeat("]", 50))
	base := tmplFixtureEvents("seed-a", "seed-b", "seed-c")
	tpl, _, err := BuildTemplate(base)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a, b, c string) {
		mutated := mutateTexts(base, []string{a, b, c})
		want, err := WriteSequence(mutated)
		if err != nil {
			t.Fatal(err)
		}
		values := []string{EscapeValue(a), EscapeValue(b), EscapeValue(c)}
		got := tpl.AppendSplice(nil, values)
		if string(got) != want {
			t.Errorf("spliced output diverges from full serialization for (%q, %q, %q)\n got: %s\nwant: %s",
				a, b, c, got, want)
		}
	})
}
