package sax

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable4EventSequence(t *testing.T) {
	// The paper's Table 4: the SAX events sequence for
	// <doc><para>Hello, world!</para></doc>.
	events, err := Record([]byte(`<doc><para>Hello, world!</para></doc>`))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range events {
		got = append(got, e.String())
	}
	want := []string{
		"start document",
		"start element: doc",
		"start element: para",
		"characters: Hello, world!",
		"end element: para",
		"end element: doc",
		"end document",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNamespaceResolution(t *testing.T) {
	doc := `<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/" xmlns="urn:default">` +
		`<s:Body><search xmlns="urn:google" q="x"/></s:Body></s:Envelope>`
	events, err := Record([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var starts []Event
	for _, e := range events {
		if e.Kind == StartElement {
			starts = append(starts, e)
		}
	}
	if len(starts) != 3 {
		t.Fatalf("got %d start elements", len(starts))
	}
	if starts[0].Name.Space != "http://schemas.xmlsoap.org/soap/envelope/" || starts[0].Name.Local != "Envelope" {
		t.Errorf("envelope name = %+v", starts[0].Name)
	}
	if starts[1].Name.Space != "http://schemas.xmlsoap.org/soap/envelope/" || starts[1].Name.Local != "Body" {
		t.Errorf("body name = %+v", starts[1].Name)
	}
	if starts[2].Name.Space != "urn:google" {
		t.Errorf("search space = %q, want urn:google", starts[2].Name.Space)
	}
	// Unprefixed attribute is never namespace-qualified.
	var qAttr *Attribute
	for i, a := range starts[2].Attrs {
		if a.Name.Local == "q" {
			qAttr = &starts[2].Attrs[i]
		}
	}
	if qAttr == nil {
		t.Fatal("attribute q not found")
	}
	if qAttr.Name.Space != "" {
		t.Errorf("unprefixed attribute got namespace %q", qAttr.Name.Space)
	}
}

func TestNamespaceScopeRestored(t *testing.T) {
	doc := `<a xmlns="urn:outer"><b xmlns="urn:inner"/><c/></a>`
	events, err := Record([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	spaces := map[string]string{}
	for _, e := range events {
		if e.Kind == StartElement {
			spaces[e.Name.Local] = e.Name.Space
		}
	}
	if spaces["a"] != "urn:outer" || spaces["b"] != "urn:inner" || spaces["c"] != "urn:outer" {
		t.Errorf("spaces = %v", spaces)
	}
}

func TestNamespaceUndeclare(t *testing.T) {
	doc := `<a xmlns="urn:x"><b xmlns=""/></a>`
	events, err := Record([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Kind == StartElement && e.Name.Local == "b" && e.Name.Space != "" {
			t.Errorf("b space = %q, want empty after xmlns=\"\"", e.Name.Space)
		}
	}
}

func TestUndeclaredPrefixError(t *testing.T) {
	if err := Parse([]byte(`<x:a/>`), NopHandler{}); err == nil {
		t.Error("expected error for undeclared prefix on element")
	}
	if err := Parse([]byte(`<a x:y="1"/>`), NopHandler{}); err == nil {
		t.Error("expected error for undeclared prefix on attribute")
	}
}

func TestXMLPrefixPredeclared(t *testing.T) {
	events, err := Record([]byte(`<a xml:lang="en"/>`))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Kind == StartElement {
			if e.Attrs[0].Name.Space != XMLNamespaceURI {
				t.Errorf("xml:lang space = %q", e.Attrs[0].Name.Space)
			}
		}
	}
}

func TestCoalesceText(t *testing.T) {
	doc := `<t>one<![CDATA[two]]>three</t>`
	events, err := Record([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var chars []string
	for _, e := range events {
		if e.Kind == Characters {
			chars = append(chars, e.Text)
		}
	}
	if len(chars) != 1 || chars[0] != "onetwothree" {
		t.Errorf("chars = %q, want single coalesced run", chars)
	}
}

func TestNoCoalesceOption(t *testing.T) {
	rec := NewRecorder()
	p := NewParser(ParseOptions{})
	if err := p.Parse([]byte(`<t>one<![CDATA[two]]></t>`), rec); err != nil {
		t.Fatal(err)
	}
	var chars int
	for _, e := range rec.Sequence() {
		if e.Kind == Characters {
			chars++
		}
	}
	if chars != 2 {
		t.Errorf("chars = %d, want 2 without coalescing", chars)
	}
}

func TestReplayEqualsOriginal(t *testing.T) {
	doc := `<a x="1"><b>text</b><c/><d>more &amp; stuff</d></a>`
	events, err := Record([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	rec2 := NewRecorder()
	if err := Replay(events, rec2); err != nil {
		t.Fatal(err)
	}
	replayed := rec2.Sequence()
	if len(replayed) != len(events) {
		t.Fatalf("replayed %d events, want %d", len(replayed), len(events))
	}
	for i := range events {
		if events[i].String() != replayed[i].String() {
			t.Errorf("event %d: %q != %q", i, events[i], replayed[i])
		}
	}
}

func TestWriterRoundTrip(t *testing.T) {
	doc := `<a xmlns="urn:x" k="v &quot;q&quot;"><b>text &amp; more</b><c></c></a>`
	events, err := Record([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	out, err := WriteSequence(events)
	if err != nil {
		t.Fatal(err)
	}
	// Reparse the writer output; the event streams must match.
	events2, err := Record([]byte(out))
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if len(events) != len(events2) {
		t.Fatalf("event counts differ: %d vs %d\nout=%s", len(events), len(events2), out)
	}
	for i := range events {
		if events[i].String() != events2[i].String() {
			t.Errorf("event %d: %q != %q", i, events[i], events2[i])
		}
	}
}

func TestWriterRejectsMismatchedEnd(t *testing.T) {
	w := NewWriter()
	_ = w.OnStartDocument()
	_ = w.OnStartElement(Name{Local: "a"}, nil)
	if err := w.OnEndElement(Name{Local: "b"}); err == nil {
		t.Error("expected mismatch error")
	}
	w2 := NewWriter()
	if err := w2.OnEndElement(Name{Local: "a"}); err == nil {
		t.Error("expected error for end without start")
	}
}

func TestWriterRejectsUnclosedDocument(t *testing.T) {
	w := NewWriter()
	_ = w.OnStartDocument()
	_ = w.OnStartElement(Name{Local: "a"}, nil)
	if err := w.OnEndDocument(); err == nil {
		t.Error("expected error for unclosed element at end of document")
	}
}

func TestRecorderSnapshotIndependence(t *testing.T) {
	rec := NewRecorder()
	if err := Parse([]byte(`<a x="1"/>`), rec); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	rec.Reset()
	if err := Parse([]byte(`<b/>`), rec); err != nil {
		t.Fatal(err)
	}
	if snap[1].Name.Local != "a" {
		t.Errorf("snapshot mutated: %+v", snap[1])
	}
	if snap[1].Attrs[0].Value != "1" {
		t.Errorf("snapshot attrs mutated: %+v", snap[1].Attrs)
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: StartDocument}, "start document"},
		{Event{Kind: StartElement, Name: Name{Prefix: "s", Local: "Body"}}, "start element: s:Body"},
		{Event{Kind: Characters, Text: "hi"}, "characters: hi"},
		{Event{Kind: ProcInst, Name: Name{Local: "t"}, Text: "b"}, "processing instruction: t b"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

// TestRoundTripProperty: generated element trees survive
// write → parse → record → write with identical output.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint32) bool {
		events := genTree(seed)
		out1, err := WriteSequence(events)
		if err != nil {
			return false
		}
		events2, err := Record([]byte(out1))
		if err != nil {
			return false
		}
		out2, err := WriteSequence(events2)
		if err != nil {
			return false
		}
		return out1 == out2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// genTree deterministically builds a small random well-formed event
// sequence from a seed (a hand-rolled LCG keeps it dependency-free).
func genTree(seed uint32) []Event {
	state := seed | 1
	next := func(n uint32) uint32 {
		state = state*1664525 + 1013904223
		return (state >> 16) % n
	}
	events := []Event{{Kind: StartDocument}}
	var build func(depth int)
	count := 0
	build = func(depth int) {
		count++
		name := Name{Local: fmt.Sprintf("e%d", next(20))}
		var attrs []Attribute
		for i := uint32(0); i < next(3); i++ {
			attrs = append(attrs, Attribute{
				Name:  Name{Local: fmt.Sprintf("a%d", i)},
				Value: fmt.Sprintf("v%d", next(100)),
			})
		}
		events = append(events, Event{Kind: StartElement, Name: name, Attrs: attrs})
		if depth < 4 && count < 30 {
			kids := next(4)
			for i := uint32(0); i < kids; i++ {
				if next(2) == 0 {
					events = append(events, Event{Kind: Characters, Text: fmt.Sprintf("text-%d & <raw>", next(50))})
				} else {
					build(depth + 1)
				}
			}
		}
		events = append(events, Event{Kind: EndElement, Name: name})
	}
	build(0)
	events = append(events, Event{Kind: EndDocument})
	return events
}

func TestSequenceMemSize(t *testing.T) {
	events, err := Record([]byte(`<a><b>text</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	size := SequenceMemSize(events)
	if size <= 0 {
		t.Errorf("size = %d, want positive", size)
	}
	// More events must never report a smaller footprint.
	events2, err := Record([]byte(`<a><b>text</b><c>more text here</c></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if SequenceMemSize(events2) <= size {
		t.Error("larger document reported smaller footprint")
	}
}

func TestHandlerErrorPropagation(t *testing.T) {
	boom := fmt.Errorf("boom")
	h := &failingHandler{failOn: StartElement, err: boom}
	err := Parse([]byte(`<a/>`), h)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want boom", err)
	}
}

type failingHandler struct {
	NopHandler
	failOn EventKind
	err    error
}

func (f *failingHandler) OnStartElement(Name, []Attribute) error {
	if f.failOn == StartElement {
		return f.err
	}
	return nil
}
