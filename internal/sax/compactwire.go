package sax

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary form of a CompactSequence, for cache entries that cross a
// process boundary (the cluster tier). Layout, all integers unsigned
// varint (binary.AppendUvarint):
//
//	nops, ops bytes, nrefs, refs..., nstrings, (len, bytes)...
//
// The format is self-delimiting and versioned by the cluster frame
// header, not here; DecodeCompactSequence is total — any input either
// decodes or returns an error, never panics — because daemon payloads
// are untrusted relative to process memory safety.

// AppendBinary appends the sequence's binary form to dst and returns
// the extended slice.
func (c *CompactSequence) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(c.ops)))
	dst = append(dst, c.ops...)
	dst = binary.AppendUvarint(dst, uint64(len(c.refs)))
	for _, r := range c.refs {
		dst = binary.AppendUvarint(dst, uint64(r))
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.strings)))
	for _, s := range c.strings {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeCompactSequence parses a sequence from AppendBinary's output.
// The input slice is not retained; strings are copied out of it.
func DecodeCompactSequence(data []byte) (*CompactSequence, error) {
	var c CompactSequence
	nops, data, err := wireLen(data, len(data))
	if err != nil {
		return nil, fmt.Errorf("sax: compact decode: ops: %w", err)
	}
	if len(data) < nops {
		return nil, fmt.Errorf("sax: compact decode: ops truncated: need %d bytes, have %d", nops, len(data))
	}
	c.ops = append([]byte(nil), data[:nops]...)
	data = data[nops:]

	nrefs, data, err := wireLen(data, len(data))
	if err != nil {
		return nil, fmt.Errorf("sax: compact decode: refs: %w", err)
	}
	c.refs = make([]uint32, nrefs)
	for i := range c.refs {
		v, n := binary.Uvarint(data)
		if n <= 0 || v > math.MaxUint32 {
			return nil, fmt.Errorf("sax: compact decode: ref %d malformed", i)
		}
		c.refs[i] = uint32(v)
		data = data[n:]
	}

	nstrings, data, err := wireLen(data, len(data))
	if err != nil {
		return nil, fmt.Errorf("sax: compact decode: strings: %w", err)
	}
	c.strings = make([]string, 0, nstrings)
	for i := 0; i < nstrings; i++ {
		slen, rest, err := wireLen(data, len(data))
		if err != nil {
			return nil, fmt.Errorf("sax: compact decode: string %d: %w", i, err)
		}
		if len(rest) < slen {
			return nil, fmt.Errorf("sax: compact decode: string %d truncated", i)
		}
		c.strings = append(c.strings, string(rest[:slen]))
		data = rest[slen:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("sax: compact decode: %d trailing bytes", len(data))
	}
	// Validate references now so Replay/Events never index out of
	// range on a corrupted payload.
	for i, r := range c.refs {
		if int(r) >= len(c.strings) {
			return nil, fmt.Errorf("sax: compact decode: ref %d = %d out of range (%d strings)", i, r, len(c.strings))
		}
	}
	if err := c.validateShape(); err != nil {
		return nil, err
	}
	return &c, nil
}

// wireLen reads one uvarint length and bounds it by max (a decoded
// count can never exceed the remaining input bytes, since every
// element is at least one byte).
func wireLen(data []byte, max int) (int, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("malformed length")
	}
	if v > uint64(max) {
		return 0, nil, fmt.Errorf("length %d exceeds remaining input %d", v, max)
	}
	return int(v), data[n:], nil
}

// validateShape walks the ops/refs streams once, checking that every
// event's refs are present and every op byte is a known EventKind, so
// a later Replay cannot run off the refs array.
func (c *CompactSequence) validateShape() error {
	r := &compactReader{seq: c}
	for i, op := range c.ops {
		need := 0
		switch EventKind(op) {
		case StartDocument, EndDocument:
		case StartElement:
			if r.pos+4 > len(c.refs) {
				return fmt.Errorf("sax: compact decode: event %d: refs truncated", i)
			}
			nattrs := int(c.refs[r.pos+3])
			need = 4 + 4*nattrs
		case EndElement:
			need = 3
		case Characters, Comment:
			need = 1
		case ProcInst:
			need = 2
		default:
			return fmt.Errorf("sax: compact decode: event %d: unknown kind %d", i, op)
		}
		if r.pos+need > len(c.refs) {
			return fmt.Errorf("sax: compact decode: event %d: refs truncated", i)
		}
		r.pos += need
	}
	if r.pos != len(c.refs) {
		return fmt.Errorf("sax: compact decode: %d unused refs", len(c.refs)-r.pos)
	}
	return nil
}
