package sax

// CompactSequence is a memory-optimized recording of a SAX event
// stream. The naive []Event representation holds per-event Name
// structs, attribute slices and string headers; for SOAP responses
// (many small elements, highly repetitive names and namespace URIs) it
// is the largest cache representation by far. CompactSequence flattens
// the stream into struct-of-arrays form with an interned string table:
// repeated names, URIs and prefixes are stored once.
//
// Replaying a CompactSequence drives a Handler exactly as Replay does
// for []Event, so it is a drop-in cache payload; the ablation benchmark
// BenchmarkAblationEventArena quantifies the trade (memory vs replay
// cost of rebuilding attribute slices).
type CompactSequence struct {
	// ops is one byte per event (the EventKind).
	ops []byte
	// refs holds per-event string-table references, variable length:
	//   StartElement: space, prefix, local, attrCount, then per
	//                 attribute space, prefix, local, value
	//   EndElement:   space, prefix, local
	//   Characters/Comment: text
	//   ProcInst:     target, text
	refs []uint32
	// strings is the interned table; index 0 is always "".
	strings []string
}

// compactBuilder interns strings while flattening.
type compactBuilder struct {
	seq    CompactSequence
	intern map[string]uint32
}

// Compact flattens a recorded event sequence.
func Compact(events []Event) *CompactSequence {
	b := &compactBuilder{intern: make(map[string]uint32, 64)}
	b.seq.strings = append(b.seq.strings, "")
	b.intern[""] = 0
	for i := range events {
		b.add(&events[i])
	}
	return &b.seq
}

// add flattens one event.
func (b *compactBuilder) add(e *Event) {
	b.seq.ops = append(b.seq.ops, byte(e.Kind))
	switch e.Kind {
	case StartElement:
		b.name(e.Name)
		b.seq.refs = append(b.seq.refs, uint32(len(e.Attrs)))
		for _, a := range e.Attrs {
			b.name(a.Name)
			b.seq.refs = append(b.seq.refs, b.id(a.Value))
		}
	case EndElement:
		b.name(e.Name)
	case Characters, Comment:
		b.seq.refs = append(b.seq.refs, b.id(e.Text))
	case ProcInst:
		b.seq.refs = append(b.seq.refs, b.id(e.Name.Local), b.id(e.Text))
	}
}

// name appends a Name's three string references.
func (b *compactBuilder) name(n Name) {
	b.seq.refs = append(b.seq.refs, b.id(n.Space), b.id(n.Prefix), b.id(n.Local))
}

// id interns s.
func (b *compactBuilder) id(s string) uint32 {
	if id, ok := b.intern[s]; ok {
		return id
	}
	id := uint32(len(b.seq.strings))
	b.seq.strings = append(b.seq.strings, s)
	b.intern[s] = id
	return id
}

// Events reconstructs the equivalent []Event sequence.
func (c *CompactSequence) Events() []Event {
	out := make([]Event, 0, len(c.ops))
	r := &compactReader{seq: c}
	for _, op := range c.ops {
		kind := EventKind(op)
		e := Event{Kind: kind}
		switch kind {
		case StartElement:
			e.Name = r.name()
			n := r.next()
			if n > 0 {
				e.Attrs = make([]Attribute, n)
				for i := uint32(0); i < n; i++ {
					e.Attrs[i] = Attribute{Name: r.name(), Value: r.str()}
				}
			}
		case EndElement:
			e.Name = r.name()
		case Characters, Comment:
			e.Text = r.str()
		case ProcInst:
			e.Name = Name{Local: r.str()}
			e.Text = r.str()
		}
		out = append(out, e)
	}
	return out
}

// Replay drives a Handler directly from the compact form, without
// materializing []Event. A scratch attribute buffer is reused across
// elements.
func (c *CompactSequence) Replay(h Handler) error {
	r := &compactReader{seq: c}
	var attrs []Attribute
	for _, op := range c.ops {
		var err error
		switch EventKind(op) {
		case StartDocument:
			err = h.OnStartDocument()
		case EndDocument:
			err = h.OnEndDocument()
		case StartElement:
			name := r.name()
			n := r.next()
			attrs = attrs[:0]
			for i := uint32(0); i < n; i++ {
				attrs = append(attrs, Attribute{Name: r.name(), Value: r.str()})
			}
			err = h.OnStartElement(name, attrs)
		case EndElement:
			err = h.OnEndElement(r.name())
		case Characters:
			err = h.OnCharacters(r.str())
		case Comment:
			err = h.OnComment(r.str())
		case ProcInst:
			target := r.str()
			err = h.OnProcInst(target, r.str())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of events.
func (c *CompactSequence) Len() int { return len(c.ops) }

// MemSize estimates the in-memory footprint in bytes.
func (c *CompactSequence) MemSize() int {
	size := 3*24 + len(c.ops) + 4*len(c.refs) + 16*len(c.strings)
	for _, s := range c.strings {
		size += len(s)
	}
	return size
}

// compactReader walks the refs array.
type compactReader struct {
	seq *CompactSequence
	pos int
}

func (r *compactReader) next() uint32 {
	v := r.seq.refs[r.pos]
	r.pos++
	return v
}

func (r *compactReader) str() string {
	return r.seq.strings[r.next()]
}

func (r *compactReader) name() Name {
	return Name{Space: r.str(), Prefix: r.str(), Local: r.str()}
}
