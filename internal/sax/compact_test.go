package sax

import (
	"testing"
	"testing/quick"
)

const compactSample = `<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/">` +
	`<s:Body><r xmlns="urn:x" k="v"><item>one</item><item>two</item>` +
	`<item>one</item><!-- c --><?pi body?></r></s:Body></s:Envelope>`

func recordWithEverything(t *testing.T, doc string) []Event {
	t.Helper()
	rec := NewRecorder()
	p := NewParser(ParseOptions{ReportComments: true, ReportProcInsts: true, CoalesceText: true})
	if err := p.Parse([]byte(doc), rec); err != nil {
		t.Fatal(err)
	}
	return rec.Sequence()
}

func TestCompactRoundTrip(t *testing.T) {
	events := recordWithEverything(t, compactSample)
	c := Compact(events)
	if c.Len() != len(events) {
		t.Fatalf("len = %d, want %d", c.Len(), len(events))
	}
	back := c.Events()
	if len(back) != len(events) {
		t.Fatalf("events = %d, want %d", len(back), len(events))
	}
	for i := range events {
		if events[i].String() != back[i].String() {
			t.Errorf("event %d: %q != %q", i, events[i], back[i])
		}
		if len(events[i].Attrs) != len(back[i].Attrs) {
			t.Errorf("event %d attrs differ", i)
			continue
		}
		for j := range events[i].Attrs {
			if events[i].Attrs[j] != back[i].Attrs[j] {
				t.Errorf("event %d attr %d: %+v != %+v", i, j, events[i].Attrs[j], back[i].Attrs[j])
			}
		}
	}
}

func TestCompactReplayEqualsEventReplay(t *testing.T) {
	events := recordWithEverything(t, compactSample)
	c := Compact(events)

	recA := NewRecorder()
	if err := Replay(events, recA); err != nil {
		t.Fatal(err)
	}
	recB := NewRecorder()
	if err := c.Replay(recB); err != nil {
		t.Fatal(err)
	}
	a, b := recA.Sequence(), recB.Sequence()
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("event %d: %q != %q", i, a[i], b[i])
		}
	}
}

func TestCompactSmallerThanNaive(t *testing.T) {
	// The whole point: repetitive SOAP-ish documents shrink.
	events := recordWithEverything(t, compactSample)
	naive := SequenceMemSize(events)
	compact := Compact(events).MemSize()
	if compact >= naive {
		t.Errorf("compact %d not smaller than naive %d", compact, naive)
	}
	t.Logf("naive %d bytes, compact %d bytes (%.0f%%)", naive, compact, 100*float64(compact)/float64(naive))
}

func TestCompactWriterOutputIdentical(t *testing.T) {
	events := recordWithEverything(t, compactSample)
	w1 := NewWriter()
	if err := Replay(events, w1); err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter()
	if err := Compact(events).Replay(w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Errorf("serializations differ:\n%s\n%s", w1.String(), w2.String())
	}
}

func TestCompactRoundTripProperty(t *testing.T) {
	f := func(seed uint32) bool {
		events := genTree(seed)
		c := Compact(events)
		w1 := NewWriter()
		if err := Replay(events, w1); err != nil {
			return false
		}
		w2 := NewWriter()
		if err := c.Replay(w2); err != nil {
			return false
		}
		return w1.String() == w2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCompactEmpty(t *testing.T) {
	c := Compact(nil)
	if c.Len() != 0 || len(c.Events()) != 0 {
		t.Error("empty sequence misbehaves")
	}
	if err := c.Replay(NopHandler{}); err != nil {
		t.Error(err)
	}
}
