package sax

import (
	"errors"
	"hash/maphash"
	"io"

	"repro/internal/xmltext"
)

// This file is the differential-serialization substrate (DESIGN.md
// §5i): SOAP responses for one operation share their entire markup —
// element structure, namespaces, attribute values — and differ only in
// character data. A Template captures that split once: the serialized
// document with every character-data span excised (the skeleton) plus
// the byte offsets where each span belongs (the slots). Re-serializing
// a same-shaped document is then a memcpy interleave of skeleton
// chunks and pre-escaped text values — no event dispatch, no escaping
// scan, no encoder.
//
// The byte-identity invariant: for any event sequence, splicing the
// sequence's escaped texts into the template built from it reproduces
// WriteSequence(events) exactly. The template recorder routes every
// non-text event through the same Writer that WriteSequence uses, and
// EscapeValue is the same escaper Writer.OnCharacters applies, so the
// only difference between a splice and a full serialization is where
// the bytes come from. FuzzTemplateSplice enforces this for arbitrary
// text mutations; TestTemplateSpliceEscaping pins the escaping
// boundary cases.

// Template is the reusable half of a differentially serialized
// document: the skeleton bytes and the splice offsets. Templates are
// immutable after BuildTemplate returns and safe for concurrent
// splicing; one template is typically shared by every cache entry of
// the same response shape.
type Template struct {
	skeleton string
	slots    []int // ascending byte offsets into skeleton, one per text node
}

// Slots returns the number of character-data splice points.
func (t *Template) Slots() int { return len(t.slots) }

// SkeletonSize returns the skeleton's byte length — the memory shared
// by every document spliced from this template.
func (t *Template) SkeletonSize() int { return len(t.skeleton) }

// RenderedSize returns the byte length of the document produced by
// splicing values into the template.
func (t *Template) RenderedSize(values []string) int {
	n := len(t.skeleton)
	for _, v := range values {
		n += len(v)
	}
	return n
}

// errSpliceMismatch is the AppendSplice panic value; a static error so
// the hot splice path boxes nothing.
var errSpliceMismatch = errors.New("sax: template splice value count does not match slot count")

// AppendSplice appends the document rendered from the template and the
// given values to dst and returns the extended slice. values must be
// the escaped character data (EscapeValue) of exactly Slots() text
// nodes, in document order — the caller owns that invariant; a length
// mismatch panics rather than silently corrupting output.
//
//lint:hotpath
func (t *Template) AppendSplice(dst []byte, values []string) []byte {
	if len(values) != len(t.slots) {
		panic(errSpliceMismatch)
	}
	prev := 0
	for i, off := range t.slots {
		dst = append(dst, t.skeleton[prev:off]...)
		dst = append(dst, values[i]...)
		prev = off
	}
	return append(dst, t.skeleton[prev:]...)
}

// SpliceTo writes the rendered document to w through buf (which must
// have capacity for RenderedSize bytes to avoid growing); it returns
// the bytes written. Used by the pooled-buffer replay paths.
//
//lint:hotpath
func (t *Template) SpliceTo(w io.Writer, buf []byte, values []string) (int64, error) {
	buf = t.AppendSplice(buf[:0], values)
	n, err := w.Write(buf)
	return int64(n), err
}

// EscapeValue escapes raw character data for splicing — exactly the
// escaping Writer.OnCharacters applies, so spliced output stays
// byte-identical to a full serialization.
func EscapeValue(text string) string { return xmltext.EscapeTextString(text) }

// templateRecorder builds a template by replaying events through the
// ordinary Writer, except that character data is diverted: its offset
// becomes a slot and its text a value, leaving a gap in the skeleton.
type templateRecorder struct {
	w     *Writer
	slots []int
	texts []string
}

var _ Handler = (*templateRecorder)(nil)

func (r *templateRecorder) OnStartDocument() error { return r.w.OnStartDocument() }
func (r *templateRecorder) OnEndDocument() error   { return r.w.OnEndDocument() }
func (r *templateRecorder) OnStartElement(name Name, attrs []Attribute) error {
	return r.w.OnStartElement(name, attrs)
}
func (r *templateRecorder) OnEndElement(name Name) error { return r.w.OnEndElement(name) }
func (r *templateRecorder) OnComment(text string) error  { return r.w.OnComment(text) }
func (r *templateRecorder) OnProcInst(target, body string) error {
	return r.w.OnProcInst(target, body)
}

func (r *templateRecorder) OnCharacters(text string) error {
	r.slots = append(r.slots, r.w.Len())
	r.texts = append(r.texts, text)
	return nil
}

// BuildTemplate serializes events once, recording the splice template
// and returning this document's raw (unescaped) text values alongside:
// template plus EscapeValue-d texts reproduce WriteSequence(events)
// byte for byte.
func BuildTemplate(events []Event) (*Template, []string, error) {
	rec := &templateRecorder{w: NewWriter()}
	if err := Replay(events, rec); err != nil {
		return nil, nil, err
	}
	return &Template{skeleton: rec.w.String(), slots: rec.slots}, rec.texts, nil
}

// SpliceTexts collects the raw character data of events in document
// order — the per-document values for a template built from an
// equally shaped sequence. Far cheaper than BuildTemplate: no
// serialization, no escaping scan over the markup.
func SpliceTexts(events []Event) []string {
	n := 0
	for i := range events {
		if events[i].Kind == Characters {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	texts := make([]string, 0, n)
	for i := range events {
		if events[i].Kind == Characters {
			texts = append(texts, events[i].Text)
		}
	}
	return texts
}

// Shape hashing: two event sequences have the same shape exactly when
// they differ only in character data, i.e. they would produce the same
// skeleton. The hash folds every byte that lands in the skeleton —
// kinds, names, attribute names AND values (attribute values are
// markup here: SOAP arrayType counts, xsi types), comment and PI text —
// and only marks the presence of each Characters event. Two
// independently seeded 64-bit hashes give a 128-bit key; like the
// cache core's entry digest, collisions are assumed away rather than
// verified (a slot-count check catches gross mismatches).

var (
	shapeSeedLo = maphash.MakeSeed()
	shapeSeedHi = maphash.MakeSeed()
)

// ShapeHash returns the 128-bit shape key of an event sequence as two
// independently seeded 64-bit halves.
func ShapeHash(events []Event) (lo, hi uint64) {
	return shapeHash(shapeSeedLo, events), shapeHash(shapeSeedHi, events)
}

func shapeHash(seed maphash.Seed, events []Event) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	for i := range events {
		e := &events[i]
		_ = h.WriteByte(byte(e.Kind))
		switch e.Kind {
		case Characters:
			// Volatile: presence hashed (the kind byte above), text not.
		case StartElement:
			hashName(&h, e.Name)
			for _, a := range e.Attrs {
				hashName(&h, a.Name)
				_, _ = h.WriteString(a.Value)
				_ = h.WriteByte(0)
			}
			_ = h.WriteByte(1)
		case EndElement:
			hashName(&h, e.Name)
		case Comment, ProcInst:
			hashName(&h, e.Name)
			_, _ = h.WriteString(e.Text)
			_ = h.WriteByte(0)
		}
	}
	return h.Sum64()
}

// hashName folds a qualified name with separators so concatenation
// ambiguities ("ab"+"c" vs "a"+"bc") cannot collide.
func hashName(h *maphash.Hash, n Name) {
	_, _ = h.WriteString(n.Space)
	_ = h.WriteByte(0)
	_, _ = h.WriteString(n.Prefix)
	_ = h.WriteByte(0)
	_, _ = h.WriteString(n.Local)
	_ = h.WriteByte(0)
}
