package sax

// Recorder is a Handler that captures the event stream into a flat
// Sequence. This is the paper's "SAX events sequence" cache value
// representation: storing the post-parsing representation avoids
// re-tokenizing the XML message on every cache hit, while replaying the
// sequence through the deserializer still constructs a fresh
// application object (so there are no aliasing side effects).
type Recorder struct {
	events []Event
}

var _ Handler = (*Recorder)(nil)

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Sequence returns the recorded events. The returned slice is the
// recorder's backing store; callers that outlive the recorder should
// copy it (Snapshot does).
func (r *Recorder) Sequence() []Event { return r.events }

// Snapshot returns an independent copy of the recorded events, with
// attribute slices deep-copied so later recordings cannot alias it.
func (r *Recorder) Snapshot() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	for i := range out {
		if len(out[i].Attrs) > 0 {
			attrs := make([]Attribute, len(out[i].Attrs))
			copy(attrs, out[i].Attrs)
			out[i].Attrs = attrs
		}
	}
	return out
}

// Reset discards all recorded events, retaining capacity.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// OnStartDocument implements Handler.
func (r *Recorder) OnStartDocument() error {
	r.events = append(r.events, Event{Kind: StartDocument})
	return nil
}

// OnEndDocument implements Handler.
func (r *Recorder) OnEndDocument() error {
	r.events = append(r.events, Event{Kind: EndDocument})
	return nil
}

// OnStartElement implements Handler.
func (r *Recorder) OnStartElement(name Name, attrs []Attribute) error {
	var copied []Attribute
	if len(attrs) > 0 {
		copied = make([]Attribute, len(attrs))
		copy(copied, attrs)
	}
	r.events = append(r.events, Event{Kind: StartElement, Name: name, Attrs: copied})
	return nil
}

// OnEndElement implements Handler.
func (r *Recorder) OnEndElement(name Name) error {
	r.events = append(r.events, Event{Kind: EndElement, Name: name})
	return nil
}

// OnCharacters implements Handler.
func (r *Recorder) OnCharacters(text string) error {
	r.events = append(r.events, Event{Kind: Characters, Text: text})
	return nil
}

// OnComment implements Handler.
func (r *Recorder) OnComment(text string) error {
	r.events = append(r.events, Event{Kind: Comment, Text: text})
	return nil
}

// OnProcInst implements Handler.
func (r *Recorder) OnProcInst(target, body string) error {
	r.events = append(r.events, Event{Kind: ProcInst, Name: Name{Local: target}, Text: body})
	return nil
}

// Replay delivers a recorded event sequence to h, exactly as the
// original parse would have. Replaying skips tokenization entirely —
// the cost a cache hit pays is only handler dispatch plus whatever the
// handler itself does.
func Replay(events []Event, h Handler) error {
	for i := range events {
		e := &events[i]
		var err error
		switch e.Kind {
		case StartDocument:
			err = h.OnStartDocument()
		case EndDocument:
			err = h.OnEndDocument()
		case StartElement:
			err = h.OnStartElement(e.Name, e.Attrs)
		case EndElement:
			err = h.OnEndElement(e.Name)
		case Characters:
			err = h.OnCharacters(e.Text)
		case Comment:
			err = h.OnComment(e.Text)
		case ProcInst:
			err = h.OnProcInst(e.Name.Local, e.Text)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Record parses doc and returns its recorded event sequence.
func Record(doc []byte) ([]Event, error) {
	rec := NewRecorder()
	if err := Parse(doc, rec); err != nil {
		return nil, err
	}
	return rec.Sequence(), nil
}

// SequenceMemSize estimates the in-memory footprint of a recorded
// sequence in bytes: the event structs plus the string payloads and
// attribute slices they reference. Used by the Table 8/9 measurements.
func SequenceMemSize(events []Event) int {
	const (
		eventSize = 16 + 3*16 + 24 + 16 // Kind+Name(3 strings)+Attrs hdr+Text hdr, approx
		attrSize  = 3*16 + 16
	)
	size := 24 + len(events)*eventSize
	for i := range events {
		e := &events[i]
		size += len(e.Name.Space) + len(e.Name.Prefix) + len(e.Name.Local) + len(e.Text)
		size += len(e.Attrs) * attrSize
		for _, a := range e.Attrs {
			size += len(a.Name.Space) + len(a.Name.Prefix) + len(a.Name.Local) + len(a.Value)
		}
	}
	return size
}
