package sax

import (
	"reflect"
	"testing"
)

const wireTestDoc = `<?xml version="1.0"?><env:Envelope xmlns:env="http://schemas.xmlsoap.org/soap/envelope/"><env:Body><r kind="string">hello &amp; goodbye</r><!-- c --></env:Body></env:Envelope>`

// TestCompactBinaryRoundTrip proves AppendBinary/DecodeCompactSequence
// is lossless: the decoded sequence replays to the identical event
// stream.
func TestCompactBinaryRoundTrip(t *testing.T) {
	events, err := Record([]byte(wireTestDoc))
	if err != nil {
		t.Fatal(err)
	}
	seq := Compact(events)
	wire := seq.AppendBinary(nil)
	back, err := DecodeCompactSequence(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Events(), back.Events()) {
		t.Fatal("round-tripped sequence replays differently")
	}
}

// TestCompactBinaryRejectsCorruption truncates and flips the encoding
// at every byte position; decoding must fail or succeed cleanly, never
// panic or produce an out-of-range sequence.
func TestCompactBinaryRejectsCorruption(t *testing.T) {
	events, err := Record([]byte(wireTestDoc))
	if err != nil {
		t.Fatal(err)
	}
	wire := Compact(events).AppendBinary(nil)
	for i := 0; i <= len(wire); i++ {
		if c, err := DecodeCompactSequence(wire[:i]); err == nil && i < len(wire) {
			// A strict prefix that still decodes must at least be
			// internally consistent.
			_ = c.Events()
		}
	}
	for i := range wire {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0xff
		if c, err := DecodeCompactSequence(mut); err == nil {
			// Accepted mutations must still replay safely.
			_ = c.Events()
		}
	}
}
