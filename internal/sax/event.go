// Package sax provides a SAX-style streaming XML event model: a push
// parser that drives a Handler, an event Recorder and Replayer (the
// "SAX events sequence" cache representation from the paper, Section
// 4.2.2 and Table 4), and a Writer that serializes an event stream back
// to XML text.
package sax

import "fmt"

// EventKind identifies a SAX event type.
type EventKind int

// The SAX event kinds, in the vocabulary used by the paper's Table 4.
const (
	StartDocument EventKind = iota + 1
	EndDocument
	StartElement
	EndElement
	Characters
	Comment
	ProcInst
)

// String returns the event kind formatted as in the paper's Table 4
// ("start document", "start element", ...).
func (k EventKind) String() string {
	switch k {
	case StartDocument:
		return "start document"
	case EndDocument:
		return "end document"
	case StartElement:
		return "start element"
	case EndElement:
		return "end element"
	case Characters:
		return "characters"
	case Comment:
		return "comment"
	case ProcInst:
		return "processing instruction"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Name is a namespace-resolved XML name. Space holds the namespace URI
// in effect for the name ("" when unqualified), Prefix the lexical
// prefix used in the document, and Local the local part.
type Name struct {
	Space  string
	Prefix string
	Local  string
}

// String returns the lexical (prefixed) form of the name.
func (n Name) String() string {
	if n.Prefix == "" {
		return n.Local
	}
	return n.Prefix + ":" + n.Local
}

// Attribute is a single attribute event payload. Namespace declarations
// (xmlns and xmlns:prefix) are passed through as attributes with
// IsNamespaceDecl reporting true, so that a recorded stream can be
// serialized back to an equivalent document.
type Attribute struct {
	Name  Name
	Value string
}

// IsNamespaceDecl reports whether the attribute declares a namespace.
func (a Attribute) IsNamespaceDecl() bool {
	return a.Name.Prefix == "xmlns" || (a.Name.Prefix == "" && a.Name.Local == "xmlns")
}

// Event is one element of a recorded SAX event sequence.
//
// Field usage by kind:
//   - StartElement: Name, Attrs
//   - EndElement:   Name
//   - Characters:   Text
//   - Comment:      Text
//   - ProcInst:     Name.Local (target), Text (body)
//   - StartDocument/EndDocument: no payload
type Event struct {
	Kind  EventKind
	Name  Name
	Attrs []Attribute
	Text  string
}

// String renders the event in the style of the paper's Table 4,
// e.g. "start element: doc" or "characters: Hello, world!".
func (e Event) String() string {
	switch e.Kind {
	case StartElement, EndElement:
		return fmt.Sprintf("%s: %s", e.Kind, e.Name)
	case Characters, Comment:
		return fmt.Sprintf("%s: %s", e.Kind, e.Text)
	case ProcInst:
		return fmt.Sprintf("%s: %s %s", e.Kind, e.Name.Local, e.Text)
	default:
		return e.Kind.String()
	}
}

// Handler receives SAX events. Implementations include the SOAP
// deserializer, the DOM builder, the event Recorder, and the XML
// Writer. Any method may return an error to abort the parse.
type Handler interface {
	OnStartDocument() error
	OnEndDocument() error
	OnStartElement(name Name, attrs []Attribute) error
	OnEndElement(name Name) error
	OnCharacters(text string) error
	OnComment(text string) error
	OnProcInst(target, body string) error
}

// NopHandler implements Handler with no-ops. Embed it to implement only
// the events a handler cares about.
type NopHandler struct{}

var _ Handler = NopHandler{}

// OnStartDocument implements Handler.
func (NopHandler) OnStartDocument() error { return nil }

// OnEndDocument implements Handler.
func (NopHandler) OnEndDocument() error { return nil }

// OnStartElement implements Handler.
func (NopHandler) OnStartElement(Name, []Attribute) error { return nil }

// OnEndElement implements Handler.
func (NopHandler) OnEndElement(Name) error { return nil }

// OnCharacters implements Handler.
func (NopHandler) OnCharacters(string) error { return nil }

// OnComment implements Handler.
func (NopHandler) OnComment(string) error { return nil }

// OnProcInst implements Handler.
func (NopHandler) OnProcInst(string, string) error { return nil }
