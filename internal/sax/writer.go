package sax

import (
	"fmt"
	"strings"

	"repro/internal/xmltext"
)

// Writer is a Handler that serializes the event stream it receives back
// into XML text. Feeding a parsed-then-recorded sequence through a
// Writer reproduces a document equivalent to the original (namespace
// declarations are passed through as attributes, so prefixes are
// preserved).
type Writer struct {
	b        strings.Builder
	open     []string // lexical names of open elements, for validation
	declared bool
	started  bool
}

var _ Handler = (*Writer)(nil)

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteXMLDecl emits an XML declaration. Call before the first event.
func (w *Writer) WriteXMLDecl() {
	if !w.declared && !w.started {
		w.b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>`)
		w.b.WriteByte('\n')
		w.declared = true
	}
}

// String returns the serialized document so far.
func (w *Writer) String() string { return w.b.String() }

// Len returns the number of bytes serialized so far.
func (w *Writer) Len() int { return w.b.Len() }

// Bytes returns the serialized document so far as a byte slice.
func (w *Writer) Bytes() []byte { return []byte(w.b.String()) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.b.Reset()
	w.open = w.open[:0]
	w.declared = false
	w.started = false
}

// OnStartDocument implements Handler.
func (w *Writer) OnStartDocument() error {
	w.started = true
	return nil
}

// OnEndDocument implements Handler.
func (w *Writer) OnEndDocument() error {
	if len(w.open) != 0 {
		return fmt.Errorf("sax: document ended with %d unclosed element(s); innermost <%s>", len(w.open), w.open[len(w.open)-1])
	}
	return nil
}

// OnStartElement implements Handler.
func (w *Writer) OnStartElement(name Name, attrs []Attribute) error {
	lex := name.String()
	w.b.WriteByte('<')
	w.b.WriteString(lex)
	for _, a := range attrs {
		w.b.WriteByte(' ')
		w.b.WriteString(a.Name.String())
		w.b.WriteString(`="`)
		xmltext.EscapeAttr(&w.b, a.Value)
		w.b.WriteByte('"')
	}
	w.b.WriteByte('>')
	w.open = append(w.open, lex)
	return nil
}

// OnEndElement implements Handler.
func (w *Writer) OnEndElement(name Name) error {
	lex := name.String()
	if len(w.open) == 0 {
		return fmt.Errorf("sax: end element </%s> with no open element", lex)
	}
	top := w.open[len(w.open)-1]
	if top != lex {
		return fmt.Errorf("sax: end element </%s> does not match open <%s>", lex, top)
	}
	w.open = w.open[:len(w.open)-1]
	w.b.WriteString("</")
	w.b.WriteString(lex)
	w.b.WriteByte('>')
	return nil
}

// OnCharacters implements Handler.
func (w *Writer) OnCharacters(text string) error {
	xmltext.EscapeText(&w.b, text)
	return nil
}

// OnComment implements Handler.
func (w *Writer) OnComment(text string) error {
	if strings.Contains(text, "--") {
		return fmt.Errorf("sax: comment text contains %q", "--")
	}
	w.b.WriteString("<!--")
	//lint:ignore xmlescape comment text is validated against "--" above; XML comments take no entity escaping, so raw write is the only correct form
	w.b.WriteString(text)
	w.b.WriteString("-->")
	return nil
}

// OnProcInst implements Handler. The target must be a usable PI target
// (non-empty, no whitespace or "?>" characters, not the reserved
// "xml"), and the body must not contain the "?>" terminator: either
// would let event data break out of the instruction and inject markup,
// since PI content takes no entity escaping.
func (w *Writer) OnProcInst(target, body string) error {
	if !validPITarget(target) {
		return fmt.Errorf("sax: invalid processing-instruction target %q", target)
	}
	if strings.Contains(body, "?>") {
		return fmt.Errorf("sax: processing-instruction body contains %q", "?>")
	}
	w.b.WriteString("<?")
	//lint:ignore xmlescape target is validated above (no whitespace, '?', '>'); PI targets take no entity escaping
	w.b.WriteString(target)
	if body != "" {
		w.b.WriteByte(' ')
		//lint:ignore xmlescape body is validated against "?>" above; PI content takes no entity escaping
		w.b.WriteString(body)
	}
	w.b.WriteString("?>")
	return nil
}

// validPITarget reports whether target can head a processing
// instruction: non-empty, not the reserved name "xml", and free of
// whitespace, control characters, and the '?'/'>' delimiters.
func validPITarget(target string) bool {
	if target == "" || strings.EqualFold(target, "xml") {
		return false
	}
	for _, r := range target {
		if r == '?' || r == '>' || r <= ' ' {
			return false
		}
	}
	return true
}

// WriteSequence serializes a recorded event sequence to XML text.
func WriteSequence(events []Event) (string, error) {
	w := NewWriter()
	if err := Replay(events, w); err != nil {
		return "", err
	}
	return w.String(), nil
}
