package sax

import (
	"strings"
	"testing"
)

func TestWriterXMLDeclAndReset(t *testing.T) {
	w := NewWriter()
	w.WriteXMLDecl()
	w.WriteXMLDecl() // idempotent before content
	_ = w.OnStartDocument()
	_ = w.OnStartElement(Name{Local: "a"}, nil)
	_ = w.OnEndElement(Name{Local: "a"})
	_ = w.OnEndDocument()
	out := w.String()
	if !strings.HasPrefix(out, `<?xml version="1.0" encoding="UTF-8"?>`) {
		t.Errorf("missing declaration: %q", out)
	}
	if strings.Count(out, "<?xml") != 1 {
		t.Errorf("declaration duplicated: %q", out)
	}
	if string(w.Bytes()) != out {
		t.Error("Bytes differs from String")
	}

	w.Reset()
	if w.String() != "" {
		t.Error("reset did not clear output")
	}
	_ = w.OnStartDocument()
	_ = w.OnStartElement(Name{Local: "b"}, nil)
	_ = w.OnEndElement(Name{Local: "b"})
	if w.String() != "<b></b>" {
		t.Errorf("after reset: %q", w.String())
	}
}

func TestWriterCommentAndPI(t *testing.T) {
	w := NewWriter()
	_ = w.OnStartDocument()
	_ = w.OnStartElement(Name{Local: "a"}, nil)
	if err := w.OnComment(" ok "); err != nil {
		t.Fatal(err)
	}
	if err := w.OnComment("double -- dash"); err == nil {
		t.Error("comment with -- accepted")
	}
	if err := w.OnProcInst("target", "body"); err != nil {
		t.Fatal(err)
	}
	if err := w.OnProcInst("bare", ""); err != nil {
		t.Fatal(err)
	}
	_ = w.OnEndElement(Name{Local: "a"})
	out := w.String()
	for _, want := range []string{"<!-- ok -->", "<?target body?>", "<?bare?>"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestIsNamespaceDecl(t *testing.T) {
	cases := []struct {
		attr Attribute
		want bool
	}{
		{Attribute{Name: Name{Prefix: "xmlns", Local: "x"}}, true},
		{Attribute{Name: Name{Prefix: "", Local: "xmlns"}}, true},
		{Attribute{Name: Name{Prefix: "", Local: "id"}}, false},
		{Attribute{Name: Name{Prefix: "xsi", Local: "type"}}, false},
	}
	for _, c := range cases {
		if got := c.attr.IsNamespaceDecl(); got != c.want {
			t.Errorf("%v: got %v", c.attr.Name, got)
		}
	}
}

func TestNopHandlerCompleteness(t *testing.T) {
	// Every NopHandler method returns nil so embedding is safe.
	var h Handler = NopHandler{}
	checks := []error{
		h.OnStartDocument(),
		h.OnEndDocument(),
		h.OnStartElement(Name{}, nil),
		h.OnEndElement(Name{}),
		h.OnCharacters(""),
		h.OnComment(""),
		h.OnProcInst("", ""),
	}
	for i, err := range checks {
		if err != nil {
			t.Errorf("method %d returned %v", i, err)
		}
	}
}

func TestTeeAllEvents(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	tee := Tee(a, b)
	doc := `<!-- c --><r><?pi x?><v k="1">t</v></r>`
	p := NewParser(ParseOptions{ReportComments: true, ReportProcInsts: true, CoalesceText: true})
	if err := p.Parse([]byte(doc), tee); err != nil {
		t.Fatal(err)
	}
	if len(a.Sequence()) != len(b.Sequence()) || len(a.Sequence()) == 0 {
		t.Fatalf("tee sequences differ: %d vs %d", len(a.Sequence()), len(b.Sequence()))
	}
	for i := range a.Sequence() {
		if a.Sequence()[i].String() != b.Sequence()[i].String() {
			t.Errorf("event %d differs", i)
		}
	}
}

func TestTeeErrorStopsFanout(t *testing.T) {
	failing := &failingHandler{failOn: StartElement, err: errBoom}
	rec := NewRecorder()
	err := Parse([]byte(`<a/>`), Tee(failing, rec))
	if err == nil {
		t.Fatal("expected error")
	}
	// The recorder after the failing handler must not have seen the
	// start element.
	for _, e := range rec.Sequence() {
		if e.Kind == StartElement {
			t.Error("event delivered after a tee member failed")
		}
	}
}

var errBoom = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }
