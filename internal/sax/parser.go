package sax

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/xmltext"
)

// XMLNamespaceURI is the URI bound to the reserved "xml" prefix.
const XMLNamespaceURI = "http://www.w3.org/XML/1998/namespace"

// ParseOptions configure a Parser.
type ParseOptions struct {
	// ReportComments delivers OnComment events; when false comments
	// are skipped (the default for SOAP processing).
	ReportComments bool
	// ReportProcInsts delivers OnProcInst events for processing
	// instructions other than the XML declaration.
	ReportProcInsts bool
	// CoalesceText merges adjacent character-data runs (including
	// CDATA) into a single OnCharacters event.
	CoalesceText bool
}

// Parser is a push parser: it tokenizes a document with
// xmltext.Scanner, performs namespace resolution, and drives a Handler.
type Parser struct {
	opts ParseOptions
}

// NewParser returns a Parser with the given options.
func NewParser(opts ParseOptions) *Parser {
	return &Parser{opts: opts}
}

// Parse parses the document and delivers its events to h. It returns
// the first error from the scanner or the handler.
func (p *Parser) Parse(doc []byte, h Handler) error {
	sc := xmltext.NewScanner(doc)
	ns := newNamespaceStack()

	if err := h.OnStartDocument(); err != nil {
		return err
	}

	var pendingText []string
	flushText := func() error {
		if len(pendingText) == 0 {
			return nil
		}
		var text string
		if len(pendingText) == 1 {
			text = pendingText[0]
		} else {
			text = joinStrings(pendingText)
		}
		pendingText = pendingText[:0]
		return h.OnCharacters(text)
	}

	for {
		tok, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		switch tok.Kind {
		case xmltext.KindCharData:
			if p.opts.CoalesceText {
				pendingText = append(pendingText, tok.Text)
				continue
			}
			if err := h.OnCharacters(tok.Text); err != nil {
				return err
			}
		case xmltext.KindStartElement:
			if err := flushText(); err != nil {
				return err
			}
			ns.push(tok.Attrs)
			name, attrs, err := ns.resolve(tok)
			if err != nil {
				return err
			}
			if err := h.OnStartElement(name, attrs); err != nil {
				return err
			}
		case xmltext.KindEndElement:
			if err := flushText(); err != nil {
				return err
			}
			name, err := ns.resolveName(tok.Name, true)
			if err != nil {
				return err
			}
			if err := h.OnEndElement(name); err != nil {
				return err
			}
			ns.pop()
		case xmltext.KindComment:
			if err := flushText(); err != nil {
				return err
			}
			if p.opts.ReportComments {
				if err := h.OnComment(tok.Text); err != nil {
					return err
				}
			}
		case xmltext.KindProcInst:
			if err := flushText(); err != nil {
				return err
			}
			// The XML declaration is structural, not content.
			if tok.Name == "xml" {
				continue
			}
			if p.opts.ReportProcInsts {
				if err := h.OnProcInst(tok.Name, tok.Text); err != nil {
					return err
				}
			}
		case xmltext.KindDirective:
			// DOCTYPE declarations are accepted and skipped.
		}
	}
	if err := flushText(); err != nil {
		return err
	}
	return h.OnEndDocument()
}

// Parse parses doc with default options (comments skipped, text
// coalesced) and delivers the events to h.
func Parse(doc []byte, h Handler) error {
	return NewParser(ParseOptions{CoalesceText: true}).Parse(doc, h)
}

// joinStrings concatenates parts with a single allocation.
func joinStrings(parts []string) string {
	n := 0
	for _, s := range parts {
		n += len(s)
	}
	buf := make([]byte, 0, n)
	for _, s := range parts {
		buf = append(buf, s...)
	}
	return string(buf)
}

// namespaceStack tracks in-scope prefix bindings across nested
// elements.
type namespaceStack struct {
	// bindings is a flat stack of prefix/URI pairs; frames records how
	// many bindings each open element added, so pop is O(added).
	bindings []binding
	frames   []int
}

type binding struct {
	prefix string
	uri    string
}

func newNamespaceStack() *namespaceStack {
	return &namespaceStack{
		bindings: []binding{{prefix: "xml", uri: XMLNamespaceURI}},
	}
}

// push opens a scope for a start tag, registering any xmlns
// declarations found in attrs.
func (ns *namespaceStack) push(attrs []xmltext.Attr) {
	added := 0
	for _, a := range attrs {
		prefix, local := xmltext.SplitQName(a.Name)
		switch {
		case prefix == "" && local == "xmlns":
			ns.bindings = append(ns.bindings, binding{prefix: "", uri: a.Value})
			added++
		case prefix == "xmlns":
			ns.bindings = append(ns.bindings, binding{prefix: local, uri: a.Value})
			added++
		}
	}
	ns.frames = append(ns.frames, added)
}

// pop closes the scope for an end tag.
func (ns *namespaceStack) pop() {
	if len(ns.frames) == 0 {
		return
	}
	added := ns.frames[len(ns.frames)-1]
	ns.frames = ns.frames[:len(ns.frames)-1]
	ns.bindings = ns.bindings[:len(ns.bindings)-added]
}

// lookup returns the URI bound to prefix, with ok=false when unbound.
func (ns *namespaceStack) lookup(prefix string) (string, bool) {
	for i := len(ns.bindings) - 1; i >= 0; i-- {
		if ns.bindings[i].prefix == prefix {
			return ns.bindings[i].uri, true
		}
	}
	if prefix == "" {
		// No default namespace in scope: unqualified.
		return "", true
	}
	return "", false
}

// resolveName resolves a raw (possibly prefixed) name against the
// current scope. When isElement is true an empty prefix resolves
// against the default namespace; attributes without a prefix are
// always unqualified.
func (ns *namespaceStack) resolveName(raw string, isElement bool) (Name, error) {
	prefix, local := xmltext.SplitQName(raw)
	if prefix == "" && !isElement {
		return Name{Local: local}, nil
	}
	uri, ok := ns.lookup(prefix)
	if !ok {
		return Name{}, fmt.Errorf("sax: undeclared namespace prefix %q in name %q", prefix, raw)
	}
	return Name{Space: uri, Prefix: prefix, Local: local}, nil
}

// resolve resolves a start-element token: its element name and all its
// attributes, passing namespace declarations through unresolved.
func (ns *namespaceStack) resolve(tok xmltext.Token) (Name, []Attribute, error) {
	name, err := ns.resolveName(tok.Name, true)
	if err != nil {
		return Name{}, nil, err
	}
	if len(tok.Attrs) == 0 {
		return name, nil, nil
	}
	attrs := make([]Attribute, 0, len(tok.Attrs))
	for _, a := range tok.Attrs {
		prefix, local := xmltext.SplitQName(a.Name)
		if (prefix == "" && local == "xmlns") || prefix == "xmlns" {
			attrs = append(attrs, Attribute{
				Name:  Name{Prefix: prefix, Local: local},
				Value: a.Value,
			})
			continue
		}
		rn, err := ns.resolveName(a.Name, false)
		if err != nil {
			return Name{}, nil, err
		}
		attrs = append(attrs, Attribute{Name: rn, Value: a.Value})
	}
	return name, attrs, nil
}
