package sax

// Tee returns a Handler that forwards every event to each of hs in
// order. The client middleware uses it to drive the deserializer and
// the event Recorder from a single parse, so that caching the SAX event
// sequence costs one tokenization, not two.
func Tee(hs ...Handler) Handler {
	return teeHandler(hs)
}

type teeHandler []Handler

var _ Handler = teeHandler(nil)

// OnStartDocument implements Handler.
func (t teeHandler) OnStartDocument() error {
	for _, h := range t {
		if err := h.OnStartDocument(); err != nil {
			return err
		}
	}
	return nil
}

// OnEndDocument implements Handler.
func (t teeHandler) OnEndDocument() error {
	for _, h := range t {
		if err := h.OnEndDocument(); err != nil {
			return err
		}
	}
	return nil
}

// OnStartElement implements Handler.
func (t teeHandler) OnStartElement(name Name, attrs []Attribute) error {
	for _, h := range t {
		if err := h.OnStartElement(name, attrs); err != nil {
			return err
		}
	}
	return nil
}

// OnEndElement implements Handler.
func (t teeHandler) OnEndElement(name Name) error {
	for _, h := range t {
		if err := h.OnEndElement(name); err != nil {
			return err
		}
	}
	return nil
}

// OnCharacters implements Handler.
func (t teeHandler) OnCharacters(text string) error {
	for _, h := range t {
		if err := h.OnCharacters(text); err != nil {
			return err
		}
	}
	return nil
}

// OnComment implements Handler.
func (t teeHandler) OnComment(text string) error {
	for _, h := range t {
		if err := h.OnComment(text); err != nil {
			return err
		}
	}
	return nil
}

// OnProcInst implements Handler.
func (t teeHandler) OnProcInst(target, body string) error {
	for _, h := range t {
		if err := h.OnProcInst(target, body); err != nil {
			return err
		}
	}
	return nil
}
