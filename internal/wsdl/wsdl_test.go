package wsdl

import (
	"testing"

	"repro/internal/typemap"
	"repro/internal/xsd"
)

const testWSDL = `<?xml version="1.0"?>
<wsdl:definitions name="StockQuote"
    targetNamespace="urn:quote"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:tns="urn:quote">
  <wsdl:types>
    <xsd:schema targetNamespace="urn:quote"
        xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:complexType name="Quote">
        <xsd:sequence>
          <xsd:element name="symbol" type="xsd:string"/>
          <xsd:element name="price" type="xsd:double"/>
        </xsd:sequence>
      </xsd:complexType>
    </xsd:schema>
  </wsdl:types>
  <wsdl:message name="getQuoteRequest">
    <wsdl:part name="symbol" type="xsd:string"/>
  </wsdl:message>
  <wsdl:message name="getQuoteResponse">
    <wsdl:part name="return" type="tns:Quote"/>
  </wsdl:message>
  <wsdl:portType name="QuotePort">
    <wsdl:operation name="getQuote">
      <wsdl:input message="tns:getQuoteRequest"/>
      <wsdl:output message="tns:getQuoteResponse"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="QuoteBinding" type="tns:QuotePort">
    <soap:binding style="rpc" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="getQuote">
      <soap:operation soapAction="urn:quote#getQuote"/>
      <wsdl:input>
        <soap:body use="encoded" namespace="urn:quote"/>
      </wsdl:input>
      <wsdl:output>
        <soap:body use="encoded" namespace="urn:quote"/>
      </wsdl:output>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="QuoteService">
    <wsdl:port name="QuotePort" binding="tns:QuoteBinding">
      <soap:address location="http://example.com/quote"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>`

func parseTestWSDL(t *testing.T) *Definitions {
	t.Helper()
	defs, err := Parse([]byte(testWSDL))
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

func TestParseDefinitions(t *testing.T) {
	defs := parseTestWSDL(t)
	if defs.Name != "StockQuote" {
		t.Errorf("name = %q", defs.Name)
	}
	if defs.TargetNamespace != "urn:quote" {
		t.Errorf("tns = %q", defs.TargetNamespace)
	}
	if len(defs.Schemas) != 1 {
		t.Fatalf("schemas = %d", len(defs.Schemas))
	}
}

func TestMessages(t *testing.T) {
	defs := parseTestWSDL(t)
	req, ok := defs.Messages["getQuoteRequest"]
	if !ok {
		t.Fatal("request message missing")
	}
	if len(req.Parts) != 1 || req.Parts[0].Name != "symbol" {
		t.Fatalf("parts = %+v", req.Parts)
	}
	if req.Parts[0].Type != xsd.BuiltinQName("string") {
		t.Errorf("part type = %v", req.Parts[0].Type)
	}
	resp := defs.Messages["getQuoteResponse"]
	if resp.Parts[0].Type != (typemap.QName{Space: "urn:quote", Local: "Quote"}) {
		t.Errorf("response type = %v", resp.Parts[0].Type)
	}
}

func TestPortTypeAndOperationIO(t *testing.T) {
	defs := parseTestWSDL(t)
	op, ok := defs.Operation("getQuote")
	if !ok {
		t.Fatal("operation missing")
	}
	if op.Input != "getQuoteRequest" || op.Output != "getQuoteResponse" {
		t.Errorf("op = %+v", op)
	}
	in, out, err := defs.OperationIO("getQuote")
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "getQuoteRequest" || out.Name != "getQuoteResponse" {
		t.Errorf("io = %v %v", in.Name, out.Name)
	}
	if _, _, err := defs.OperationIO("nope"); err == nil {
		t.Error("expected error for unknown operation")
	}
}

func TestBinding(t *testing.T) {
	defs := parseTestWSDL(t)
	b, ok := defs.Bindings["QuoteBinding"]
	if !ok {
		t.Fatal("binding missing")
	}
	if b.Style != "rpc" || b.PortType != "QuotePort" {
		t.Errorf("binding = %+v", b)
	}
	bo, ok := b.Operations["getQuote"]
	if !ok {
		t.Fatal("binding op missing")
	}
	if bo.SOAPAction != "urn:quote#getQuote" || bo.Use != "encoded" || bo.Namespace != "urn:quote" {
		t.Errorf("binding op = %+v", bo)
	}
}

func TestServiceAndEndpoint(t *testing.T) {
	defs := parseTestWSDL(t)
	sv, ok := defs.Services["QuoteService"]
	if !ok {
		t.Fatal("service missing")
	}
	if len(sv.Ports) != 1 || sv.Ports[0].Location != "http://example.com/quote" {
		t.Errorf("ports = %+v", sv.Ports)
	}
	loc, ok := defs.Endpoint()
	if !ok || loc != "http://example.com/quote" {
		t.Errorf("endpoint = %q, %v", loc, ok)
	}
}

func TestSchemaType(t *testing.T) {
	defs := parseTestWSDL(t)
	q, ok := defs.SchemaType(typemap.QName{Space: "urn:quote", Local: "Quote"})
	if !ok {
		t.Fatal("Quote type missing")
	}
	if len(q.Elements) != 2 {
		t.Errorf("elements = %+v", q.Elements)
	}
	if _, ok := defs.SchemaType(typemap.QName{Space: "urn:other", Local: "Quote"}); ok {
		t.Error("wrong namespace should not resolve")
	}
}

func TestParseWrongRoot(t *testing.T) {
	if _, err := Parse([]byte(`<definitions/>`)); err == nil {
		t.Error("expected error for unqualified root")
	}
	if _, err := Parse([]byte(`not xml`)); err == nil {
		t.Error("expected error for malformed document")
	}
}

func TestLocalRef(t *testing.T) {
	if localRef("tns:x") != "x" || localRef("x") != "x" {
		t.Error("localRef broken")
	}
}
