// Package wsdl models and parses WSDL 1.1 service descriptions: the
// definitions document with its schema types, abstract messages, port
// types, SOAP bindings and service ports. The paper's middleware uses
// WSDL as the published interface description (Section 1) and the WSDL
// compiler's knowledge of the data types to pick copyable
// representations (Section 4.2.3); this package supplies that
// knowledge.
package wsdl

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/typemap"
	"repro/internal/xsd"
)

// Part is one part of an abstract message: a named, typed parameter.
type Part struct {
	Name string
	Type typemap.QName
}

// Message is an abstract WSDL message.
type Message struct {
	Name  string
	Parts []Part
}

// Operation is an abstract operation: its input and output message
// names (local, within this definitions document).
type Operation struct {
	Name   string
	Input  string
	Output string
}

// PortType groups abstract operations.
type PortType struct {
	Name       string
	Operations map[string]*Operation
}

// BindingOperation carries the SOAP binding details of one operation.
type BindingOperation struct {
	Name       string
	SOAPAction string
	Use        string // "encoded" or "literal"
	Namespace  string
}

// Binding binds a port type to SOAP over a transport.
type Binding struct {
	Name       string
	PortType   string
	Style      string // "rpc" or "document"
	Transport  string
	Operations map[string]*BindingOperation
}

// Port is a concrete endpoint of a service.
type Port struct {
	Name     string
	Binding  string
	Location string
}

// Service is a named collection of ports.
type Service struct {
	Name  string
	Ports []Port
}

// Definitions is a parsed WSDL document.
type Definitions struct {
	Name            string
	TargetNamespace string
	Schemas         []*xsd.Schema
	Messages        map[string]*Message
	PortTypes       map[string]*PortType
	Bindings        map[string]*Binding
	Services        map[string]*Service
}

// Parse parses a WSDL document.
func Parse(doc []byte) (*Definitions, error) {
	d, err := dom.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	return FromDOM(d)
}

// FromDOM builds Definitions from an already-parsed document.
func FromDOM(d *dom.Document) (*Definitions, error) {
	root := d.Root
	if root.Name.Space != xsd.WSDLNS || root.Name.Local != "definitions" {
		return nil, fmt.Errorf("wsdl: root element is %s, not wsdl:definitions", root.Name)
	}
	defs := &Definitions{
		Messages:  make(map[string]*Message),
		PortTypes: make(map[string]*PortType),
		Bindings:  make(map[string]*Binding),
		Services:  make(map[string]*Service),
	}
	defs.Name, _ = root.Attr("name")
	defs.TargetNamespace, _ = root.Attr("targetNamespace")

	if types := root.ElemNS(xsd.WSDLNS, "types"); types != nil {
		for _, sn := range types.Elems("schema") {
			if sn.Name.Space != xsd.SchemaNS {
				continue
			}
			s, err := xsd.ParseSchema(sn)
			if err != nil {
				return nil, fmt.Errorf("wsdl: %w", err)
			}
			defs.Schemas = append(defs.Schemas, s)
		}
	}

	for _, mn := range root.ElemsNSLocal(xsd.WSDLNS, "message") {
		m, err := parseMessage(mn)
		if err != nil {
			return nil, err
		}
		defs.Messages[m.Name] = m
	}

	for _, ptn := range root.ElemsNSLocal(xsd.WSDLNS, "portType") {
		pt, err := parsePortType(ptn)
		if err != nil {
			return nil, err
		}
		defs.PortTypes[pt.Name] = pt
	}

	for _, bn := range root.ElemsNSLocal(xsd.WSDLNS, "binding") {
		b, err := parseBinding(bn)
		if err != nil {
			return nil, err
		}
		defs.Bindings[b.Name] = b
	}

	for _, svn := range root.ElemsNSLocal(xsd.WSDLNS, "service") {
		sv, err := parseService(svn)
		if err != nil {
			return nil, err
		}
		defs.Services[sv.Name] = sv
	}

	return defs, nil
}

// SchemaType looks up a named complex type across all schemas.
func (d *Definitions) SchemaType(q typemap.QName) (*xsd.Type, bool) {
	for _, s := range d.Schemas {
		if s.TargetNamespace != q.Space {
			continue
		}
		if t, ok := s.TypeByName(q.Local); ok {
			return t, true
		}
	}
	return nil, false
}

// Operation finds an abstract operation by name across all port types.
func (d *Definitions) Operation(name string) (*Operation, bool) {
	for _, pt := range d.PortTypes {
		if op, ok := pt.Operations[name]; ok {
			return op, true
		}
	}
	return nil, false
}

// OperationIO resolves the input and output messages of an operation.
func (d *Definitions) OperationIO(name string) (in, out *Message, err error) {
	op, ok := d.Operation(name)
	if !ok {
		return nil, nil, fmt.Errorf("wsdl: unknown operation %q", name)
	}
	in, ok = d.Messages[op.Input]
	if !ok {
		return nil, nil, fmt.Errorf("wsdl: operation %q references unknown input message %q", name, op.Input)
	}
	out, ok = d.Messages[op.Output]
	if !ok {
		return nil, nil, fmt.Errorf("wsdl: operation %q references unknown output message %q", name, op.Output)
	}
	return in, out, nil
}

// Endpoint returns the location of the first port of the first service,
// which is the common single-service single-port case.
func (d *Definitions) Endpoint() (string, bool) {
	for _, sv := range d.Services {
		for _, p := range sv.Ports {
			if p.Location != "" {
				return p.Location, true
			}
		}
	}
	return "", false
}

// parseMessage parses <wsdl:message>.
func parseMessage(n *dom.Node) (*Message, error) {
	name, ok := n.Attr("name")
	if !ok {
		return nil, fmt.Errorf("wsdl: message without name")
	}
	m := &Message{Name: name}
	for _, pn := range n.Elems("part") {
		pname, ok := pn.Attr("name")
		if !ok {
			return nil, fmt.Errorf("wsdl: message %s has part without name", name)
		}
		tref, ok := pn.Attr("type")
		if !ok {
			return nil, fmt.Errorf("wsdl: message %s part %s without type", name, pname)
		}
		qn, err := resolveRef(pn, tref)
		if err != nil {
			return nil, fmt.Errorf("wsdl: message %s: %w", name, err)
		}
		m.Parts = append(m.Parts, Part{Name: pname, Type: qn})
	}
	return m, nil
}

// parsePortType parses <wsdl:portType>.
func parsePortType(n *dom.Node) (*PortType, error) {
	name, ok := n.Attr("name")
	if !ok {
		return nil, fmt.Errorf("wsdl: portType without name")
	}
	pt := &PortType{Name: name, Operations: make(map[string]*Operation)}
	for _, on := range n.Elems("operation") {
		oname, ok := on.Attr("name")
		if !ok {
			return nil, fmt.Errorf("wsdl: portType %s has operation without name", name)
		}
		op := &Operation{Name: oname}
		if in := on.Elem("input"); in != nil {
			ref, _ := in.Attr("message")
			op.Input = localRef(ref)
		}
		if out := on.Elem("output"); out != nil {
			ref, _ := out.Attr("message")
			op.Output = localRef(ref)
		}
		pt.Operations[oname] = op
	}
	return pt, nil
}

// parseBinding parses <wsdl:binding> with its soap:binding extension.
func parseBinding(n *dom.Node) (*Binding, error) {
	name, ok := n.Attr("name")
	if !ok {
		return nil, fmt.Errorf("wsdl: binding without name")
	}
	typeRef, _ := n.Attr("type")
	b := &Binding{
		Name:       name,
		PortType:   localRef(typeRef),
		Operations: make(map[string]*BindingOperation),
	}
	if sb := n.ElemNS(xsd.WSDLSOAPNS, "binding"); sb != nil {
		b.Style, _ = sb.Attr("style")
		b.Transport, _ = sb.Attr("transport")
	}
	for _, on := range n.Elems("operation") {
		if on.Name.Space != xsd.WSDLNS {
			continue
		}
		oname, _ := on.Attr("name")
		bo := &BindingOperation{Name: oname}
		if so := on.ElemNS(xsd.WSDLSOAPNS, "operation"); so != nil {
			bo.SOAPAction, _ = so.Attr("soapAction")
		}
		if in := on.Elem("input"); in != nil {
			if body := in.ElemNS(xsd.WSDLSOAPNS, "body"); body != nil {
				bo.Use, _ = body.Attr("use")
				bo.Namespace, _ = body.Attr("namespace")
			}
		}
		b.Operations[oname] = bo
	}
	return b, nil
}

// parseService parses <wsdl:service>.
func parseService(n *dom.Node) (*Service, error) {
	name, ok := n.Attr("name")
	if !ok {
		return nil, fmt.Errorf("wsdl: service without name")
	}
	sv := &Service{Name: name}
	for _, pn := range n.Elems("port") {
		pname, _ := pn.Attr("name")
		bref, _ := pn.Attr("binding")
		p := Port{Name: pname, Binding: localRef(bref)}
		if addr := pn.ElemNS(xsd.WSDLSOAPNS, "address"); addr != nil {
			p.Location, _ = addr.Attr("location")
		}
		sv.Ports = append(sv.Ports, p)
	}
	return sv, nil
}

// localRef strips the prefix from a qualified reference like
// "tns:doGoogleSearch"; WSDL internal references resolve within the
// document's own target namespace.
func localRef(ref string) string {
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		return ref[i+1:]
	}
	return ref
}

// resolveRef resolves a prefixed reference against in-scope namespace
// declarations by climbing the DOM.
func resolveRef(n *dom.Node, ref string) (typemap.QName, error) {
	prefix, local := "", ref
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		prefix, local = ref[:i], ref[i+1:]
	}
	for cur := n; cur != nil; cur = cur.Parent {
		for _, a := range cur.Attrs {
			if prefix == "" && a.Name.Prefix == "" && a.Name.Local == "xmlns" {
				return typemap.QName{Space: a.Value, Local: local}, nil
			}
			if prefix != "" && a.Name.Prefix == "xmlns" && a.Name.Local == prefix {
				return typemap.QName{Space: a.Value, Local: local}, nil
			}
		}
	}
	if prefix == "" {
		return typemap.QName{Local: local}, nil
	}
	return typemap.QName{}, fmt.Errorf("undeclared prefix %q in reference %q", prefix, ref)
}
