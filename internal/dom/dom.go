// Package dom implements a lightweight DOM: a tree-shaped post-parsing
// representation of an XML document. The paper names DOM trees (along
// with SAX event sequences) as the post-parsing representations a cache
// can store instead of raw XML text (Section 3.3).
//
// The tree is built from a SAX event stream and can be serialized back
// to XML or replayed as SAX events, so every component that consumes
// events (e.g. the SOAP deserializer) can also consume a DOM tree.
package dom

import (
	"fmt"
	"strings"

	"repro/internal/sax"
)

// NodeKind identifies the type of a Node.
type NodeKind int

// Node kinds.
const (
	ElementNode NodeKind = iota + 1
	TextNode
	CommentNode
	ProcInstNode
)

// Node is a node in the document tree. Element nodes have a Name,
// Attrs and Children; text and comment nodes carry Text; processing
// instructions use Name.Local as the target and Text as the body.
type Node struct {
	Kind     NodeKind
	Name     sax.Name
	Attrs    []sax.Attribute
	Text     string
	Children []*Node
	Parent   *Node
}

// Document is a parsed XML document.
type Document struct {
	Root *Node
	// Prolog holds top-level comments and processing instructions that
	// appeared before the root element.
	Prolog []*Node
}

// Parse parses an XML document into a DOM tree.
func Parse(doc []byte) (*Document, error) {
	b := NewBuilder()
	if err := sax.Parse(doc, b); err != nil {
		return nil, err
	}
	return b.Document()
}

// FromEvents builds a DOM tree from a recorded SAX event sequence.
func FromEvents(events []sax.Event) (*Document, error) {
	b := NewBuilder()
	if err := sax.Replay(events, b); err != nil {
		return nil, err
	}
	return b.Document()
}

// Elem returns the first child element with the given local name (any
// namespace), or nil.
func (n *Node) Elem(local string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name.Local == local {
			return c
		}
	}
	return nil
}

// ElemNS returns the first child element matching both namespace URI
// and local name, or nil.
func (n *Node) ElemNS(space, local string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name.Space == space && c.Name.Local == local {
			return c
		}
	}
	return nil
}

// Elems returns all child elements with the given local name; with
// local "" it returns all child elements.
func (n *Node) Elems(local string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && (local == "" || c.Name.Local == local) {
			out = append(out, c)
		}
	}
	return out
}

// ElemsNSLocal returns all child elements matching both namespace URI
// and local name.
func (n *Node) ElemsNSLocal(space, local string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name.Space == space && c.Name.Local == local {
			out = append(out, c)
		}
	}
	return out
}

// Attr returns the value of the named attribute and whether it exists.
// The lookup matches the attribute's lexical name (prefix:local or
// plain local).
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name.String() == name || a.Name.Local == name && a.Name.Prefix == "" {
			return a.Value, true
		}
	}
	return "", false
}

// AttrNS returns the value of the attribute with the given namespace
// URI and local name.
func (n *Node) AttrNS(space, local string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// InnerText returns the concatenation of all descendant text nodes.
func (n *Node) InnerText() string {
	if n.Kind == TextNode {
		return n.Text
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			b.WriteString(c.Text)
		case ElementNode:
			c.appendText(b)
		}
	}
}

// AppendChild adds c as the last child of n and sets its parent.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Events converts the subtree rooted at n into a SAX event fragment
// (without document start/end markers).
func (n *Node) Events() []sax.Event {
	var out []sax.Event
	n.appendEvents(&out)
	return out
}

func (n *Node) appendEvents(out *[]sax.Event) {
	switch n.Kind {
	case ElementNode:
		*out = append(*out, sax.Event{Kind: sax.StartElement, Name: n.Name, Attrs: n.Attrs})
		for _, c := range n.Children {
			c.appendEvents(out)
		}
		*out = append(*out, sax.Event{Kind: sax.EndElement, Name: n.Name})
	case TextNode:
		*out = append(*out, sax.Event{Kind: sax.Characters, Text: n.Text})
	case CommentNode:
		*out = append(*out, sax.Event{Kind: sax.Comment, Text: n.Text})
	case ProcInstNode:
		*out = append(*out, sax.Event{Kind: sax.ProcInst, Name: n.Name, Text: n.Text})
	}
}

// Events converts the whole document into a SAX event sequence,
// bracketed by StartDocument and EndDocument.
func (d *Document) Events() []sax.Event {
	out := []sax.Event{{Kind: sax.StartDocument}}
	for _, p := range d.Prolog {
		p.appendEvents(&out)
	}
	if d.Root != nil {
		d.Root.appendEvents(&out)
	}
	out = append(out, sax.Event{Kind: sax.EndDocument})
	return out
}

// Visit streams the document to a sax.Handler by walking the tree,
// without materializing an event slice: the cheap replay path for
// DOM-tree cache payloads.
func (d *Document) Visit(h sax.Handler) error {
	if err := h.OnStartDocument(); err != nil {
		return err
	}
	for _, p := range d.Prolog {
		if err := p.Visit(h); err != nil {
			return err
		}
	}
	if d.Root != nil {
		if err := d.Root.Visit(h); err != nil {
			return err
		}
	}
	return h.OnEndDocument()
}

// Visit streams the subtree rooted at n to a sax.Handler.
func (n *Node) Visit(h sax.Handler) error {
	switch n.Kind {
	case ElementNode:
		if err := h.OnStartElement(n.Name, n.Attrs); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := c.Visit(h); err != nil {
				return err
			}
		}
		return h.OnEndElement(n.Name)
	case TextNode:
		return h.OnCharacters(n.Text)
	case CommentNode:
		return h.OnComment(n.Text)
	case ProcInstNode:
		return h.OnProcInst(n.Name.Local, n.Text)
	default:
		return fmt.Errorf("dom: unknown node kind %d", n.Kind)
	}
}

// XML serializes the document back to XML text (without an XML
// declaration).
func (d *Document) XML() (string, error) {
	w := sax.NewWriter()
	if err := d.Visit(w); err != nil {
		return "", err
	}
	return w.String(), nil
}

// XML serializes the subtree rooted at n to XML text.
func (n *Node) XML() (string, error) {
	w := sax.NewWriter()
	if err := sax.Replay(n.Events(), w); err != nil {
		return "", err
	}
	return w.String(), nil
}

// Clone returns a deep copy of the subtree rooted at n. The copy's
// Parent is nil.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]sax.Attribute, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, child := range n.Children {
		c.AppendChild(child.Clone())
	}
	return c
}

// Builder is a sax.Handler that constructs a Document.
type Builder struct {
	doc   Document
	stack []*Node
	done  bool
	err   error
}

var _ sax.Handler = (*Builder)(nil)

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Document returns the built document. It errors if the event stream
// was incomplete.
func (b *Builder) Document() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.done {
		return nil, fmt.Errorf("dom: event stream ended before EndDocument")
	}
	if b.doc.Root == nil {
		return nil, fmt.Errorf("dom: document has no root element")
	}
	return &b.doc, nil
}

// OnStartDocument implements sax.Handler.
func (b *Builder) OnStartDocument() error { return nil }

// OnEndDocument implements sax.Handler.
func (b *Builder) OnEndDocument() error {
	if len(b.stack) != 0 {
		return fmt.Errorf("dom: EndDocument with %d unclosed element(s)", len(b.stack))
	}
	b.done = true
	return nil
}

// OnStartElement implements sax.Handler.
func (b *Builder) OnStartElement(name sax.Name, attrs []sax.Attribute) error {
	n := &Node{Kind: ElementNode, Name: name}
	if len(attrs) > 0 {
		n.Attrs = make([]sax.Attribute, len(attrs))
		copy(n.Attrs, attrs)
	}
	if len(b.stack) == 0 {
		if b.doc.Root != nil {
			return fmt.Errorf("dom: multiple root elements")
		}
		b.doc.Root = n
	} else {
		b.stack[len(b.stack)-1].AppendChild(n)
	}
	b.stack = append(b.stack, n)
	return nil
}

// OnEndElement implements sax.Handler.
func (b *Builder) OnEndElement(name sax.Name) error {
	if len(b.stack) == 0 {
		return fmt.Errorf("dom: end element </%s> with no open element", name)
	}
	top := b.stack[len(b.stack)-1]
	if top.Name != name {
		return fmt.Errorf("dom: end element </%s> does not match <%s>", name, top.Name)
	}
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

// OnCharacters implements sax.Handler.
func (b *Builder) OnCharacters(text string) error {
	if len(b.stack) == 0 {
		// Whitespace outside the root is insignificant.
		return nil
	}
	b.stack[len(b.stack)-1].AppendChild(&Node{Kind: TextNode, Text: text})
	return nil
}

// OnComment implements sax.Handler.
func (b *Builder) OnComment(text string) error {
	n := &Node{Kind: CommentNode, Text: text}
	if len(b.stack) == 0 {
		b.doc.Prolog = append(b.doc.Prolog, n)
		return nil
	}
	b.stack[len(b.stack)-1].AppendChild(n)
	return nil
}

// OnProcInst implements sax.Handler.
func (b *Builder) OnProcInst(target, body string) error {
	n := &Node{Kind: ProcInstNode, Name: sax.Name{Local: target}, Text: body}
	if len(b.stack) == 0 {
		b.doc.Prolog = append(b.doc.Prolog, n)
		return nil
	}
	b.stack[len(b.stack)-1].AppendChild(n)
	return nil
}
