package dom

import (
	"testing"

	"repro/internal/sax"
)

const sample = `<catalog xmlns="urn:cat" version="2">` +
	`<book id="1"><title>Go</title><price>10.5</price></book>` +
	`<book id="2"><title>XML</title><price>7</price></book>` +
	`<!-- trailing comment -->` +
	`</catalog>`

func TestParseTree(t *testing.T) {
	doc, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root
	if root.Name.Local != "catalog" || root.Name.Space != "urn:cat" {
		t.Fatalf("root = %+v", root.Name)
	}
	if v, ok := root.Attr("version"); !ok || v != "2" {
		t.Errorf("version attr = %q, %v", v, ok)
	}
	books := root.Elems("book")
	if len(books) != 2 {
		t.Fatalf("got %d books", len(books))
	}
	if got := books[0].Elem("title").InnerText(); got != "Go" {
		t.Errorf("title = %q", got)
	}
	if got := books[1].Elem("price").InnerText(); got != "7" {
		t.Errorf("price = %q", got)
	}
	if books[0].Parent != root {
		t.Error("parent link broken")
	}
}

func TestElemNS(t *testing.T) {
	doc, err := Parse([]byte(`<a xmlns:x="urn:1" xmlns:y="urn:2"><x:v>1</x:v><y:v>2</y:v></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.ElemNS("urn:2", "v").InnerText(); got != "2" {
		t.Errorf("got %q", got)
	}
	if doc.Root.ElemNS("urn:3", "v") != nil {
		t.Error("expected nil for missing namespace")
	}
}

func TestInnerTextNested(t *testing.T) {
	doc, err := Parse([]byte(`<p>one<b>two<i>three</i></b>four</p>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.InnerText(); got != "onetwothreefour" {
		t.Errorf("got %q", got)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	doc, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse([]byte(out))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	out2, err := doc2.XML()
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Errorf("round trip not stable:\n%s\n%s", out, out2)
	}
	if len(doc2.Root.Elems("book")) != 2 {
		t.Error("structure lost in round trip")
	}
}

func TestNodeXML(t *testing.T) {
	doc, err := Parse([]byte(`<a><b k="v">x &amp; y</b><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := doc.Root.Elem("b").XML()
	if err != nil {
		t.Fatal(err)
	}
	if out != `<b k="v">x &amp; y</b>` {
		t.Errorf("subtree XML = %q", out)
	}
}

func TestProcInstInTree(t *testing.T) {
	rec := sax.NewRecorder()
	p := sax.NewParser(sax.ParseOptions{ReportProcInsts: true, CoalesceText: true})
	if err := p.Parse([]byte(`<a><?target body?></a>`), rec); err != nil {
		t.Fatal(err)
	}
	doc, err := FromEvents(rec.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	var pi *Node
	for _, c := range doc.Root.Children {
		if c.Kind == ProcInstNode {
			pi = c
		}
	}
	if pi == nil || pi.Name.Local != "target" {
		t.Fatalf("pi = %+v", pi)
	}
	out, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	if out != `<a><?target body?></a>` {
		t.Errorf("XML = %q", out)
	}
}

func TestFromEvents(t *testing.T) {
	events, err := sax.Record([]byte(`<a><b>x</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := FromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Elem("b").InnerText() != "x" {
		t.Error("tree mismatch")
	}
}

func TestNodeEventsFragment(t *testing.T) {
	doc, err := Parse([]byte(`<a><b k="v">x</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Root.Elem("b")
	events := b.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Kind != sax.StartElement || events[0].Attrs[0].Value != "v" {
		t.Errorf("events[0] = %+v", events[0])
	}
}

func TestClone(t *testing.T) {
	doc, err := Parse([]byte(`<a k="v"><b>x</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	c := doc.Root.Clone()
	if c.Parent != nil {
		t.Error("clone should have nil parent")
	}
	// Mutating the clone must not affect the original.
	c.Attrs[0].Value = "changed"
	c.Elem("b").Children[0].Text = "changed"
	if v, _ := doc.Root.Attr("k"); v != "v" {
		t.Error("original attr mutated through clone")
	}
	if doc.Root.Elem("b").InnerText() != "x" {
		t.Error("original text mutated through clone")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Document(); err == nil {
		t.Error("expected error for incomplete stream")
	}

	b2 := NewBuilder()
	_ = b2.OnStartDocument()
	if err := b2.OnEndElement(sax.Name{Local: "x"}); err == nil {
		t.Error("expected error for end without start")
	}

	b3 := NewBuilder()
	_ = b3.OnStartDocument()
	_ = b3.OnStartElement(sax.Name{Local: "a"}, nil)
	if err := b3.OnEndElement(sax.Name{Local: "b"}); err == nil {
		t.Error("expected mismatch error")
	}

	b4 := NewBuilder()
	_ = b4.OnStartDocument()
	_ = b4.OnStartElement(sax.Name{Local: "a"}, nil)
	if err := b4.OnEndDocument(); err == nil {
		t.Error("expected error for unclosed element")
	}
}

func TestPrologPreserved(t *testing.T) {
	rec := sax.NewRecorder()
	p := sax.NewParser(sax.ParseOptions{ReportComments: true, CoalesceText: true})
	if err := p.Parse([]byte(`<!-- head --><a/>`), rec); err != nil {
		t.Fatal(err)
	}
	doc, err := FromEvents(rec.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Prolog) != 1 || doc.Prolog[0].Kind != CommentNode {
		t.Errorf("prolog = %+v", doc.Prolog)
	}
}

func TestAttrLexicalLookup(t *testing.T) {
	doc, err := Parse([]byte(`<a xmlns:p="urn:p" p:k="1" k="2"/>`))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := doc.Root.Attr("p:k"); !ok || v != "1" {
		t.Errorf("p:k = %q %v", v, ok)
	}
	if v, ok := doc.Root.Attr("k"); !ok || v != "2" {
		t.Errorf("k = %q %v", v, ok)
	}
	if v, ok := doc.Root.AttrNS("urn:p", "k"); !ok || v != "1" {
		t.Errorf("AttrNS = %q %v", v, ok)
	}
	if _, ok := doc.Root.Attr("missing"); ok {
		t.Error("missing attr reported present")
	}
}
