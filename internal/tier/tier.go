// Package tier defines the cache-tier abstraction behind the L1→L2
// hierarchy: a Tier stores opaque byte-oriented entries under
// fixed-size keys, answers epoch-invalidation signals, and reports its
// counters. Two implementations exist — the in-process sharded cache
// (core.Cache, the L1) and the remote daemon client (cluster.Remote,
// the L2 speaking to cmd/wscached) — so a cache stack composes them
// without knowing which side of a socket an entry lives on. The shape
// follows the network cache daemon of Voras & Žagar ("Web-enabling
// Cache Daemon for Complex Data") with the tiered client→daemon
// layering of Pfeifer & Lockemann's transactional method caching.
//
// Keys are a 128-bit FNV-1a digest of the cache key bytes. Unlike the
// core's maphash digest — which is deliberately seeded per process so
// an adversary cannot predict shard routing — tier keys must be STABLE
// ACROSS PROCESSES: two clients of the same daemon only share entries
// if they derive identical keys from identical key bytes. Processes
// sharing a daemon must therefore also share a key-generation strategy
// (the same rep.KeyGenerator configuration).
package tier

import (
	"context"
	"math/bits"
	"time"
)

// Key is the cross-process-stable 128-bit identity of a cache entry.
type Key struct {
	Hi, Lo uint64
}

// FNV-1a 128-bit parameters (offset basis and prime), per the FNV
// reference: prime = 2^88 + 2^8 + 0x3b.
const (
	fnvOffsetHi = 0x6c62272e07bb0142
	fnvOffsetLo = 0x62b821756295c58d
	fnvPrimeHi  = 1 << 24
	fnvPrimeLo  = 0x13b
)

// KeyOf digests the cache key bytes with 128-bit FNV-1a. The function
// is pure and versioned by the wire protocol: every process speaking
// to one daemon computes identical keys for identical bytes.
func KeyOf(b []byte) Key {
	hi, lo := uint64(fnvOffsetHi), uint64(fnvOffsetLo)
	for _, c := range b {
		lo ^= uint64(c)
		// (hi,lo) *= prime, where prime = hi·2^64 + lo keeps only the
		// low 128 bits of the product.
		carry, plo := bits.Mul64(lo, fnvPrimeLo)
		hi = carry + hi*fnvPrimeLo + lo*fnvPrimeHi
		lo = plo
	}
	return Key{Hi: hi, Lo: lo}
}

// Stamp is one keyspace dependency of an entry as a tier sees it: the
// keyspace name and the epoch the WRITER OF THE ENTRY observed for it
// before issuing the backend read that produced the value. A tier that
// owns live epoch cells (the daemon) compares the stamp against the
// current epoch: a mismatch means a declared write landed after the
// snapshot, so the entry is stale — refused at Put, invalidated at Get.
type Stamp struct {
	Keyspace string
	Epoch    uint64
	// Boot, when nonzero, pins the snapshot to the tier incarnation it
	// was read from (the daemon boot ID the epoch belongs to). Epochs
	// are only comparable within one incarnation — a restarted daemon
	// counts from zero again, so an old-incarnation epoch can collide
	// with a new one (ABA). A tier client that knows its peer's boot ID
	// records it here at snapshot time and sends THIS boot with the
	// fill, so a fill spanning a restart is refused by the boot check
	// rather than mis-accepted by a colliding epoch. Tiers without
	// incarnations (the in-process cache) leave it zero.
	Boot uint64
}

// Entry is one tier-resident cache entry: the value flattened by a
// wire-capable representation (rep.WireStore), named so any process
// can decode it back.
type Entry struct {
	// Rep is the short registry name of the representation that encoded
	// Value ("binser", "xml", "compact-sax", "gob").
	Rep string
	// Value is the representation's wire encoding of the payload.
	Value []byte
	// TTL is the entry's remaining lifetime at the time the Entry
	// crossed the tier boundary; zero means no expiry.
	TTL time.Duration
	// Stamps are the entry's keyspace dependencies (see Stamp); empty
	// for operations with no declared read set.
	Stamps []Stamp
}

// Stats are one tier's cumulative counters as seen by its consumer.
type Stats struct {
	Hits    int64
	Misses  int64
	Stores  int64
	Errors  int64
	Entries int
	Bytes   int
}

// Tier is one level of the cache hierarchy. Implementations must be
// safe for concurrent use. Get/Put/Delete take a Context because a
// tier may sit behind a socket; the in-process implementation ignores
// it. Errors are fail-soft signals: the caller falls through to the
// next tier or to the origin, never fails the invocation.
type Tier interface {
	// Name labels the tier in metrics and the /debug/wscache tier
	// inspection ("l1", "l2", an address, ...).
	Name() string
	// Get returns the entry under key if the tier holds a fresh one.
	// ok is false on a miss (no error); err reports tier failure.
	Get(ctx context.Context, key Key) (e Entry, ok bool, err error)
	// PutStamps snapshots the tier's view of the given keyspaces for
	// the entry about to be filled under key. It MUST be called before
	// the backend read whose response the Put will carry — the same
	// snapshot-before-read ordering the invalidate package demands —
	// and the returned stamps attached to that Put. A tier with no
	// epoch state returns nil.
	PutStamps(key Key, keyspaces []string) []Stamp
	// Put stores an entry. A tier that owns epoch state refuses
	// (without error) an entry whose stamps are already overtaken.
	Put(ctx context.Context, key Key, e Entry) error
	// Delete drops the entry under key, if present.
	Delete(ctx context.Context, key Key) error
	// BumpEpoch advances the epochs of the given keyspaces, staling
	// every dependent entry the tier holds. The L1→L2 write path calls
	// it synchronously after a write-through commit, so fleet L1s
	// invalidate on their next contact with the shared tier.
	BumpEpoch(ctx context.Context, keyspaces []string) error
	// TierStats snapshots the tier's counters.
	TierStats() Stats
}
