package tier

import (
	"fmt"
	"testing"
)

// TestKeyOfVectors pins the digest against independently computed
// FNV-1a 128 values. The constants below follow the FNV reference
// parameters (offset basis 0x6c62272e07bb0142_62b821756295c58d, prime
// 2^88+2^8+0x3b); the empty input must return the offset basis
// unchanged. These are wire-compatibility vectors: a client and a
// daemon that disagree here cannot share entries, so changing them is
// a protocol break.
func TestKeyOfVectors(t *testing.T) {
	cases := []struct {
		in     string
		hi, lo uint64
	}{
		{"", 0x6c62272e07bb0142, 0x62b821756295c58d},
		// (basis ^ byte) * prime chains, computed with big integers.
		{"a", 0xd228cb696f1a8caf, 0x78912b704e4a8964},
		{"ab", 0x08809544bbab1be9, 0x5aa0733055b69a62},
	}
	for _, c := range cases {
		got := KeyOf([]byte(c.in))
		if got.Hi != c.hi || got.Lo != c.lo {
			t.Errorf("KeyOf(%q) = {%#x %#x}, want {%#x %#x}", c.in, got.Hi, got.Lo, c.hi, c.lo)
		}
	}
}

// TestKeyOfStability exercises the property the maphash digest cannot
// offer: the same bytes always digest to the same key, and nearby keys
// do not collide.
func TestKeyOfStability(t *testing.T) {
	seen := make(map[Key]string)
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("endpoint\x00op\x00key=%d", i)
		d := KeyOf([]byte(k))
		if d != KeyOf([]byte(k)) {
			t.Fatalf("KeyOf not deterministic for %q", k)
		}
		if prev, ok := seen[d]; ok {
			t.Fatalf("collision: %q and %q both digest to %v", prev, k, d)
		}
		seen[d] = k
	}
}

func BenchmarkKeyOf(b *testing.B) {
	key := []byte("http://127.0.0.1:8080/soap\x00doGetCachedPage\x00key=demo\x00url=http://example.com/very/long/path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkKey = KeyOf(key)
	}
}

var sinkKey Key
