// Package clock is the repository's single injectable time seam. Every
// time-sensitive package (cache core, client handler chain, transport,
// server cache) takes a Clock hook in its config and defaults it
// through Or, so that TTL expiry, breaker windows, and backoff
// schedules can be driven deterministically in tests. This package is
// the one sanctioned caller of time.Now in the hot path; the
// clockinject analyzer enforces that everywhere else.
package clock

import "time"

// Func reads the current time. It is the type of every Clock
// configuration hook; a nil hook means "use the system clock".
type Func = func() time.Time

// System reads the wall clock. It is the default every config falls
// back to via Or.
func System() time.Time { return time.Now() }

// Or returns c, or the system clock when c is nil. Configs default
// their Clock fields with it:
//
//	now := clock.Or(cfg.Clock)
func Or(c Func) Func {
	if c == nil {
		return System
	}
	return c
}
