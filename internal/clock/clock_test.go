package clock

import (
	"testing"
	"time"
)

func TestOrDefaultsToSystem(t *testing.T) {
	now := Or(nil)
	if now == nil {
		t.Fatal("Or(nil) returned nil")
	}
	got := now()
	if d := time.Since(got); d < 0 || d > time.Minute {
		t.Fatalf("Or(nil)() = %v, not close to the system clock", got)
	}
}

func TestOrKeepsInjectedClock(t *testing.T) {
	fixed := time.Date(2004, 3, 24, 0, 0, 0, 0, time.UTC) // ICDCS 2004
	now := Or(func() time.Time { return fixed })
	if got := now(); !got.Equal(fixed) {
		t.Fatalf("Or(injected)() = %v, want %v", got, fixed)
	}
}
