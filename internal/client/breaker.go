package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/soap"
)

// ErrBreakerOpen is the sentinel wrapped by every invocation rejected
// by an open circuit breaker.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// BreakerOpenError reports an invocation rejected without reaching the
// backend because the endpoint's breaker is open.
type BreakerOpenError struct {
	// Endpoint is the backend the breaker protects.
	Endpoint string
	// RetryAfter is when the breaker will next admit a probe.
	RetryAfter time.Time
}

// Error implements the error interface.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("client: circuit breaker open for %s", e.Endpoint)
}

// Unwrap ties the error to ErrBreakerOpen.
func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// Transient marks breaker rejections retryable-later for the transport
// classifier; within one invocation they are terminal (the breaker
// sits above the retrying transport).
func (e *BreakerOpenError) Transient() bool { return true }

// BreakerState is a circuit breaker's current disposition.
type BreakerState int

const (
	// BreakerClosed admits every invocation (normal operation).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every invocation without touching the
	// backend.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe invocations to
	// test whether the backend recovered.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig tunes a Breaker. The zero value is usable: a 10-call
// sliding window, open at ≥50% failures over ≥5 samples, 5s open
// interval, 1 half-open probe.
type BreakerConfig struct {
	// Window is the sliding outcome window size per endpoint; values
	// < 1 mean 10.
	Window int
	// FailureThreshold in (0,1] opens the breaker when the window's
	// failure fraction reaches it; zero means 0.5.
	FailureThreshold float64
	// MinSamples is the minimum number of recorded outcomes before the
	// threshold applies (a single early failure must not trip a cold
	// breaker); values < 1 mean 5.
	MinSamples int
	// OpenFor is how long an open breaker rejects before moving to
	// half-open; zero means 5s.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent trial invocations while
	// half-open; values < 1 mean 1.
	HalfOpenProbes int
	// IsFailure classifies an invocation error as a backend failure.
	// nil means: any non-nil error except a *soap.Fault — a fault is an
	// application-level answer from a live backend, not an outage.
	IsFailure func(error) bool
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
	// Obs, when non-nil, publishes per-endpoint breaker state gauges
	// and the breaker.rejections / breaker.trips counters into the
	// registry (the /debug/wscache "breakers" section). All recording
	// is nil-safe, so leaving it nil costs nothing.
	Obs *obs.Registry
	// Tracer, when non-nil, receives an OnStage callback per state
	// transition (op = endpoint, representation = new state name).
	Tracer obs.Tracer
}

// Breaker is a per-endpoint circuit breaker installed in the client
// handler chain. Install it innermost — between any caching handler
// and the pivot — so cache hits keep being served while the breaker is
// open, and breaker-open misses can degrade to stale serving
// (core.Config.StaleIfError).
//
// Per endpoint it keeps a sliding window of invocation outcomes; when
// the failure fraction reaches the threshold the breaker opens and
// rejects invocations immediately with a *BreakerOpenError. After
// OpenFor it admits a bounded number of half-open probes: one success
// closes the breaker, one failure re-opens it.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	endpoints map[string]*endpointBreaker
}

var _ Handler = (*Breaker)(nil)

// endpointBreaker is the per-endpoint state.
type endpointBreaker struct {
	state    BreakerState
	window   []bool // ring buffer of outcomes; true = failure
	pos      int
	filled   int
	failures int
	openedAt time.Time
	probes   int // in-flight half-open probes
}

// NewBreaker builds a Breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Window < 1 {
		cfg.Window = 10
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 0.5
	}
	if cfg.MinSamples < 1 {
		cfg.MinSamples = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 5 * time.Second
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.IsFailure == nil {
		cfg.IsFailure = defaultIsFailure
	}
	cfg.Clock = clock.Or(cfg.Clock)
	return &Breaker{cfg: cfg, endpoints: make(map[string]*endpointBreaker)}
}

// defaultIsFailure counts every error except SOAP faults: a fault
// means the backend is up and answering.
func defaultIsFailure(err error) bool {
	if err == nil {
		return false
	}
	var f *soap.Fault
	return !errors.As(err, &f)
}

// HandleInvoke implements Handler.
func (b *Breaker) HandleInvoke(ictx *Context, next Invoker) error {
	if err := b.admit(ictx.Endpoint); err != nil {
		return err
	}
	err := next(ictx)
	b.record(ictx.Endpoint, b.cfg.IsFailure(err))
	return err
}

// State reports the breaker state for an endpoint (Closed when the
// endpoint has never been seen). Open breakers past their OpenFor
// interval report half-open, matching what the next invocation will
// experience.
func (b *Breaker) State(endpoint string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep, ok := b.endpoints[endpoint]
	if !ok {
		return BreakerClosed
	}
	if ep.state == BreakerOpen && !b.cfg.Clock().Before(ep.openedAt.Add(b.cfg.OpenFor)) {
		return BreakerHalfOpen
	}
	return ep.state
}

// admit decides whether an invocation may proceed.
func (b *Breaker) admit(endpoint string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep := b.endpoint(endpoint)
	now := b.cfg.Clock()
	switch ep.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		retryAt := ep.openedAt.Add(b.cfg.OpenFor)
		if now.Before(retryAt) {
			return b.reject(endpoint, retryAt)
		}
		// Open interval elapsed: start probing.
		b.transition(endpoint, ep, BreakerHalfOpen)
		ep.probes = 0
		fallthrough
	case BreakerHalfOpen:
		if ep.probes >= b.cfg.HalfOpenProbes {
			return b.reject(endpoint, ep.openedAt.Add(b.cfg.OpenFor))
		}
		ep.probes++
		return nil
	}
	return nil
}

// reject builds the open-breaker error and counts the rejection.
func (b *Breaker) reject(endpoint string, retryAt time.Time) error {
	err := &BreakerOpenError{Endpoint: endpoint, RetryAfter: retryAt}
	b.cfg.Obs.Add("breaker.rejections", 1)
	if b.cfg.Tracer != nil {
		b.cfg.Tracer.OnStage(endpoint, obs.StageBreaker, "rejected", 0, err)
	}
	return err
}

// transition moves an endpoint's breaker to state, publishing the new
// state to the registry gauge and tracer; callers hold b.mu.
func (b *Breaker) transition(endpoint string, ep *endpointBreaker, state BreakerState) {
	ep.state = state
	b.cfg.Obs.SetBreaker(endpoint, state.String())
	if b.cfg.Tracer != nil {
		b.cfg.Tracer.OnStage(endpoint, obs.StageBreaker, state.String(), 0, nil)
	}
}

// record folds an invocation outcome into the endpoint's state.
func (b *Breaker) record(endpoint string, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep := b.endpoint(endpoint)
	switch ep.state {
	case BreakerHalfOpen:
		if ep.probes > 0 {
			ep.probes--
		}
		if failed {
			b.trip(endpoint, ep)
		} else {
			// One healthy probe closes the breaker with a clean window.
			b.transition(endpoint, ep, BreakerClosed)
			b.resetWindow(ep)
		}
	case BreakerClosed:
		b.push(ep, failed)
		if ep.filled >= b.cfg.MinSamples &&
			float64(ep.failures)/float64(ep.filled) >= b.cfg.FailureThreshold {
			b.trip(endpoint, ep)
		}
	case BreakerOpen:
		// A straggler from before the trip; the window restarts on the
		// next half-open transition, so drop it.
	}
}

// endpoint returns (creating if needed) the per-endpoint state;
// callers hold b.mu.
func (b *Breaker) endpoint(endpoint string) *endpointBreaker {
	ep, ok := b.endpoints[endpoint]
	if !ok {
		ep = &endpointBreaker{window: make([]bool, b.cfg.Window)}
		b.endpoints[endpoint] = ep
		b.cfg.Obs.SetBreaker(endpoint, BreakerClosed.String())
	}
	return ep
}

// push records one outcome in the sliding window; callers hold b.mu.
func (b *Breaker) push(ep *endpointBreaker, failed bool) {
	if ep.filled == len(ep.window) {
		if ep.window[ep.pos] {
			ep.failures--
		}
	} else {
		ep.filled++
	}
	ep.window[ep.pos] = failed
	if failed {
		ep.failures++
	}
	ep.pos = (ep.pos + 1) % len(ep.window)
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip(endpoint string, ep *endpointBreaker) {
	b.transition(endpoint, ep, BreakerOpen)
	ep.openedAt = b.cfg.Clock()
	b.cfg.Obs.Add("breaker.trips", 1)
	b.resetWindow(ep)
}

// resetWindow clears the outcome window; callers hold b.mu.
func (b *Breaker) resetWindow(ep *endpointBreaker) {
	for i := range ep.window {
		ep.window[i] = false
	}
	ep.pos, ep.filled, ep.failures = 0, 0, 0
}
