package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
)

// breakerFixture wires a Call whose transport behaviour is swappable
// mid-test, with a breaker installed as the innermost handler.
type breakerFixture struct {
	call    *Call
	breaker *Breaker
	now     *time.Time
	fail    *bool
	calls   *int
}

func newBreakerFixture(t *testing.T, cfg BreakerConfig) *breakerFixture {
	t.Helper()
	now := time.Unix(1000, 0)
	fail := false
	calls := 0
	cfg.Clock = func() time.Time { return now }
	b := NewBreaker(cfg)

	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "Quote"}, quote{}); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	tr := transport.Func(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		calls++
		if fail {
			return nil, errors.New("backend down")
		}
		body, err := codec.EncodeResponse(testNS, "getQuote", &quote{Symbol: "OK", Price: 1})
		if err != nil {
			return nil, err
		}
		return &transport.Response{Body: body, Status: 200}, nil
	})
	call := NewCall(codec, tr, "http://backend/quote", testNS, "getQuote", "", Options{Breaker: b})
	return &breakerFixture{call: call, breaker: b, now: &now, fail: &fail, calls: &calls}
}

func (f *breakerFixture) invoke() error {
	_, err := f.call.Invoke(context.Background(), soap.Param{Name: "symbol", Value: "GOOG"})
	return err
}

func TestBreakerTripsOpenAndRecovers(t *testing.T) {
	f := newBreakerFixture(t, BreakerConfig{Window: 4, MinSamples: 4, FailureThreshold: 0.5, OpenFor: time.Second})

	// Healthy traffic keeps the breaker closed.
	for i := 0; i < 4; i++ {
		if err := f.invoke(); err != nil {
			t.Fatal(err)
		}
	}
	if s := f.breaker.State("http://backend/quote"); s != BreakerClosed {
		t.Fatalf("state = %v, want closed", s)
	}

	// The backend dies; failures fill the window and trip the breaker.
	*f.fail = true
	for i := 0; i < 4; i++ {
		if err := f.invoke(); err == nil {
			t.Fatal("want backend error")
		}
	}
	if s := f.breaker.State("http://backend/quote"); s != BreakerOpen {
		t.Fatalf("state = %v, want open", s)
	}

	// While open, invocations are rejected without touching the backend.
	backendCalls := *f.calls
	err := f.invoke()
	var open *BreakerOpenError
	if !errors.As(err, &open) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want BreakerOpenError", err)
	}
	if open.Endpoint != "http://backend/quote" {
		t.Errorf("open.Endpoint = %q", open.Endpoint)
	}
	if *f.calls != backendCalls {
		t.Error("open breaker let an invocation through")
	}

	// After OpenFor, a half-open probe reaches the (still dead) backend
	// and re-opens the breaker.
	*f.now = f.now.Add(2 * time.Second)
	if s := f.breaker.State("http://backend/quote"); s != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", s)
	}
	if err := f.invoke(); err == nil {
		t.Fatal("want probe failure")
	}
	if *f.calls != backendCalls+1 {
		t.Error("half-open probe did not reach the backend")
	}
	if s := f.breaker.State("http://backend/quote"); s != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", s)
	}

	// The backend recovers; the next probe closes the breaker.
	*f.now = f.now.Add(2 * time.Second)
	*f.fail = false
	if err := f.invoke(); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if s := f.breaker.State("http://backend/quote"); s != BreakerClosed {
		t.Fatalf("state after healthy probe = %v, want closed", s)
	}
	if err := f.invoke(); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

func TestBreakerIgnoresSOAPFaults(t *testing.T) {
	// A fault is an application answer from a live backend: it must not
	// trip the breaker.
	call, _, _ := newFixture(t, Options{Breaker: NewBreaker(BreakerConfig{Window: 3, MinSamples: 3})})
	for i := 0; i < 6; i++ {
		_, err := call.Invoke(context.Background(), soap.Param{Name: "symbol", Value: "FAIL"})
		var f *soap.Fault
		if !errors.As(err, &f) {
			t.Fatalf("err = %v, want fault", err)
		}
	}
}

func TestBreakerMinSamplesGuardsColdStart(t *testing.T) {
	f := newBreakerFixture(t, BreakerConfig{Window: 10, MinSamples: 5, FailureThreshold: 0.5})
	*f.fail = true
	// Four failures: below MinSamples, the breaker must stay closed.
	for i := 0; i < 4; i++ {
		if err := f.invoke(); err == nil {
			t.Fatal("want backend error")
		}
	}
	if s := f.breaker.State("http://backend/quote"); s != BreakerClosed {
		t.Fatalf("state = %v, want closed before MinSamples", s)
	}
	if err := f.invoke(); err == nil {
		t.Fatal("want backend error")
	}
	if s := f.breaker.State("http://backend/quote"); s != BreakerOpen {
		t.Fatalf("state = %v, want open at MinSamples", s)
	}
}

func TestBreakerPerEndpointIsolation(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 2, MinSamples: 2, Clock: func() time.Time { return time.Unix(0, 0) }})
	b.record("http://dead/", true)
	b.record("http://dead/", true)
	if s := b.State("http://dead/"); s != BreakerOpen {
		t.Fatalf("dead endpoint state = %v", s)
	}
	if s := b.State("http://alive/"); s != BreakerClosed {
		t.Fatalf("untouched endpoint state = %v", s)
	}
}

func TestBreakerSlidingWindowEvictsOldOutcomes(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 4, FailureThreshold: 0.75, Clock: func() time.Time { return time.Unix(0, 0) }})
	ep := "http://x/"
	// Two old failures, then four successes push them out of the
	// window: the failure fraction stays below threshold throughout.
	b.record(ep, true)
	b.record(ep, true)
	for i := 0; i < 4; i++ {
		b.record(ep, false)
	}
	if s := b.State(ep); s != BreakerClosed {
		t.Fatalf("state = %v, want closed after failures age out", s)
	}
	// Three fresh failures on the clean window reach 3/4 = 0.75: trip.
	for i := 0; i < 3; i++ {
		b.record(ep, true)
	}
	if s := b.State(ep); s != BreakerOpen {
		t.Fatalf("state = %v, want open at threshold", s)
	}
}
