// Package client is the Web services client middleware: the analog of
// the Apache Axis client engine the paper prototypes on. An invocation
// flows through a chain of handlers ending in the pivot handler, which
// serializes the request application objects to a SOAP envelope, sends
// it over a Transport, parses the response, and deserializes the
// application objects (Figure 1 of the paper).
//
// The response cache installs as an ordinary Handler in front of the
// pivot: on a hit it populates the result and stops the chain, so
// serialization, network, parsing and deserialization are all skipped
// to the extent the chosen cache representation allows.
package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/sax"
	"repro/internal/soap"
	"repro/internal/transport"
)

// Context carries one invocation through the handler chain.
type Context struct {
	// Ctx is the caller's context, honored by the transport.
	Ctx context.Context

	// Request identification.
	Endpoint   string
	Namespace  string
	Operation  string
	SOAPAction string

	// Params are the request application objects.
	Params []soap.Param

	// RequestHeader carries extra transport headers. The cache's
	// revalidation path sets If-Modified-Since here before letting the
	// invocation proceed.
	RequestHeader http.Header

	// RequestXML is set once the request has been serialized.
	RequestXML []byte

	// ResponseXML is the raw response envelope (set by the pivot).
	ResponseXML []byte

	// ResponseHeader holds the transport response headers (set by the
	// pivot): Cache-Control and Last-Modified validators live here.
	ResponseHeader http.Header

	// NotModified reports that the server answered a conditional
	// request with 304: the response has no body and the caller's
	// cached representation is still valid.
	NotModified bool

	// ResponseEvents is the recorded SAX event sequence of the response
	// (set by the pivot when RecordEvents is enabled).
	ResponseEvents []sax.Event

	// AcceptStream declares that this invocation's consumer can handle
	// Result being a byte-stream payload (an io.WriterTo such as
	// rep.Streamed) instead of a decoded application object. Caching
	// handlers use it to gate the streaming representations ("raw",
	// "xmltmpl"), whose hits replay serialized bytes rather than
	// rebuilding objects. Copied from Options.AcceptStream by Invoke.
	AcceptStream bool

	// Result is the response application object — or, when AcceptStream
	// is set and a streaming representation served the hit, an
	// io.WriterTo over the serialized response. Use Stream to consume
	// either form uniformly.
	Result any

	// CacheHit reports that a cache handler satisfied the invocation.
	CacheHit bool

	// ServedStale reports that the result is a TTL-expired cache entry
	// served in degraded mode because the backend invocation failed
	// (core.Config.StaleIfError). Always accompanied by CacheHit.
	ServedStale bool
}

// Stream returns the response as a replayable byte stream: the Result
// itself when a streaming representation served it, otherwise a
// single-write adapter over ResponseXML. ok is false when neither is
// available (e.g. a hit from an object representation, which never
// carries envelope bytes).
func (ictx *Context) Stream() (io.WriterTo, bool) {
	if wt, ok := ictx.Result.(io.WriterTo); ok {
		return wt, true
	}
	if len(ictx.ResponseXML) > 0 {
		return bytesStream(ictx.ResponseXML), true
	}
	return nil, false
}

// bytesStream adapts a raw envelope to io.WriterTo.
type bytesStream []byte

// WriteTo implements io.WriterTo.
//
//lint:hotpath
func (b bytesStream) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(b)
	return int64(n), err
}

// Len returns the stream's byte length (mirrors rep.Streamed).
func (b bytesStream) Len() int { return len(b) }

// Handler processes an invocation. Implementations call next to
// continue the chain, or populate ictx.Result and return without
// calling next to short-circuit (as the response cache does on a hit).
type Handler interface {
	HandleInvoke(ictx *Context, next Invoker) error
}

// Invoker continues the handler chain.
type Invoker func(*Context) error

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ictx *Context, next Invoker) error

var _ Handler = (HandlerFunc)(nil)

// HandleInvoke implements Handler.
func (f HandlerFunc) HandleInvoke(ictx *Context, next Invoker) error {
	return f(ictx, next)
}

// Options configure a Call.
type Options struct {
	// RecordEvents makes the pivot record the response's SAX event
	// sequence into Context.ResponseEvents during the response parse
	// (one tokenization, teed to recorder and deserializer).
	RecordEvents bool

	// AcceptStream marks every invocation of this Call as stream-
	// capable (Context.AcceptStream): cache hits may yield an
	// io.WriterTo Result from a streaming representation instead of a
	// decoded object. Set it only when the consumer relays bytes
	// (renders, proxies, re-serves) rather than computing on the
	// decoded result.
	AcceptStream bool

	// Handlers is the chain installed in front of the pivot, outermost
	// first.
	Handlers []Handler

	// Retry, when non-nil, wraps the Call's transport in a retrying
	// transport (per-attempt timeouts, exponential backoff with full
	// jitter, transient-vs-permanent classification).
	Retry *transport.RetryPolicy

	// Breaker, when non-nil, installs a circuit breaker as the
	// innermost handler — between Handlers and the pivot — so cache
	// hits are still served while the breaker is open, and a caching
	// handler sees the breaker's rejection as an ordinary backend error
	// it can degrade from (stale-on-error).
	Breaker *Breaker

	// Obs, when non-nil, records per-handler and pivot stage latencies
	// (handler, serialize, send, parse) into the registry. Share the
	// registry with the cache's core.Config.Obs for one coherent
	// /debug/wscache snapshot. nil disables stage timing for this Call.
	Obs *obs.Registry

	// Tracer, when non-nil, receives an OnStage callback per recorded
	// stage. Stage timing is on when either Obs or Tracer is set;
	// otherwise the invocation path reads no clock.
	Tracer obs.Tracer

	// Clock overrides time.Now for stage timing, for tests.
	Clock func() time.Time
}

// Call invokes one operation of a remote service.
type Call struct {
	codec      *soap.Codec
	tr         transport.Transport
	endpoint   string
	namespace  string
	operation  string
	soapAction string
	opts       Options

	// handlerNames label per-handler stage series, resolved once from
	// the handler types. timed reports whether stage recording is on;
	// when false the invocation path never reads the clock.
	handlerNames []string
	timed        bool
	now          func() time.Time

	// chain is the handler chain composed once at construction: every
	// closure captures only per-Call invariants (handler, successor,
	// receiver), so one chain serves all invocations, including
	// concurrent ones. Building it per call cost 2 allocs on every
	// cached hit (DESIGN.md §5i's alloc hunt).
	chain Invoker
}

// NewCall builds a Call. codec must have all complex types of the
// operation registered.
func NewCall(codec *soap.Codec, tr transport.Transport, endpoint, namespace, operation, soapAction string, opts Options) *Call {
	if opts.Retry != nil {
		tr = transport.NewRetry(tr, *opts.Retry)
	}
	names := make([]string, len(opts.Handlers))
	for i, h := range opts.Handlers {
		names[i] = fmt.Sprintf("%T", h)
	}
	c := &Call{
		codec:        codec,
		tr:           tr,
		endpoint:     endpoint,
		namespace:    namespace,
		operation:    operation,
		soapAction:   soapAction,
		opts:         opts,
		handlerNames: names,
		timed:        opts.Obs != nil || opts.Tracer != nil,
		now:          clock.Or(opts.Clock),
	}
	c.chain = c.buildChain()
	return c
}

// observe records one stage into the registry and tracer; callers gate
// on c.timed.
func (c *Call) observe(op string, stage obs.Stage, rep string, d time.Duration, err error) {
	c.opts.Obs.Stage(stage, rep, d, err)
	if c.opts.Tracer != nil {
		c.opts.Tracer.OnStage(op, stage, rep, d, err)
	}
}

// Codec returns the call's codec (used by cache value stores that need
// the deserializer).
func (c *Call) Codec() *soap.Codec { return c.codec }

// Operation returns the operation name.
func (c *Call) Operation() string { return c.operation }

// Endpoint returns the target endpoint URL.
func (c *Call) Endpoint() string { return c.endpoint }

// newContext builds the per-invocation context.
func (c *Call) newContext(ctx context.Context, params []soap.Param) *Context {
	return &Context{
		Ctx:          ctx,
		Endpoint:     c.endpoint,
		Namespace:    c.namespace,
		Operation:    c.operation,
		SOAPAction:   c.soapAction,
		Params:       params,
		AcceptStream: c.opts.AcceptStream,
	}
}

// Invoke performs the call with the given parameters and returns the
// response application object.
func (c *Call) Invoke(ctx context.Context, params ...soap.Param) (any, error) {
	ictx := c.newContext(ctx, params)
	if err := c.chain(ictx); err != nil {
		return nil, err
	}
	return ictx.Result, nil
}

// InvokeContext performs the call and returns the full invocation
// context (tests and benchmarks inspect CacheHit and the raw XML).
func (c *Call) InvokeContext(ctx context.Context, params ...soap.Param) (*Context, error) {
	ictx := c.newContext(ctx, params)
	if err := c.chain(ictx); err != nil {
		return nil, err
	}
	return ictx, nil
}

// buildChain composes the handler chain and terminal pivot once, at
// construction. Every closure captures only invariants, so the chain
// is safe for concurrent invocations and a cached hit pays no
// per-call closure allocations.
func (c *Call) buildChain() Invoker {
	chain := c.pivot
	if b := c.opts.Breaker; b != nil {
		// Innermost handler: only invocations that miss every cache
		// reach (and are gated by) the breaker.
		chain = func(ic *Context) error {
			return b.HandleInvoke(ic, c.pivot)
		}
	}
	for i := len(c.opts.Handlers) - 1; i >= 0; i-- {
		h := c.opts.Handlers[i]
		next := chain
		if c.timed {
			// Per-handler timing is inclusive of everything below the
			// handler in the chain (its next calls), so the outermost
			// series approximates whole-invocation latency.
			name := c.handlerNames[i]
			chain = func(ic *Context) error {
				start := c.now()
				err := h.HandleInvoke(ic, next)
				c.observe(ic.Operation, obs.StageHandler, name, c.now().Sub(start), err)
				return err
			}
		} else {
			chain = func(ic *Context) error {
				return h.HandleInvoke(ic, next)
			}
		}
	}
	return chain
}

// pivot is the terminal handler: serialize, send, parse, deserialize.
func (c *Call) pivot(ictx *Context) error {
	var start time.Time
	if c.timed {
		start = c.now()
	}
	reqXML, err := c.codec.EncodeRequest(ictx.Namespace, ictx.Operation, ictx.Params)
	if c.timed {
		c.observe(ictx.Operation, obs.StageSerialize, "", c.now().Sub(start), err)
	}
	if err != nil {
		return fmt.Errorf("client: %s: %w", ictx.Operation, err)
	}
	ictx.RequestXML = reqXML

	if c.timed {
		start = c.now()
	}
	resp, err := c.tr.Send(ictx.Ctx, &transport.Request{
		Endpoint:   ictx.Endpoint,
		SOAPAction: ictx.SOAPAction,
		Body:       reqXML,
		Header:     ictx.RequestHeader,
	})
	if c.timed {
		// Send time includes the retrying transport's attempts and
		// backoff sleeps when Options.Retry is set.
		c.observe(ictx.Operation, obs.StageSend, "", c.now().Sub(start), err)
	}
	if err != nil {
		return fmt.Errorf("client: %s: %w", ictx.Operation, err)
	}
	ictx.ResponseHeader = resp.Header
	if resp.NotModified() {
		// Validator answered: no body to decode; the caller (cache)
		// owns the still-fresh representation.
		ictx.NotModified = true
		return nil
	}
	ictx.ResponseXML = resp.Body

	if c.timed {
		start = c.now()
	}
	msg, events, err := c.decode(resp.Body)
	if c.timed {
		// Parse time covers tokenization and deserialization (one
		// pass, teed when RecordEvents is on).
		c.observe(ictx.Operation, obs.StageParse, "", c.now().Sub(start), err)
	}
	if err != nil {
		return fmt.Errorf("client: %s: %w", ictx.Operation, err)
	}
	ictx.ResponseEvents = events
	if msg.Fault != nil {
		return msg.Fault
	}
	ictx.Result = msg.Result()
	return nil
}

// decode parses the response envelope, optionally teeing the parse into
// an event recorder.
func (c *Call) decode(body []byte) (*soap.DecodedMessage, []sax.Event, error) {
	dh := c.codec.NewDecodeHandler()
	if !c.opts.RecordEvents {
		if err := sax.Parse(body, dh.Handler()); err != nil {
			return nil, nil, err
		}
		msg, err := dh.Message()
		return msg, nil, err
	}
	rec := sax.NewRecorder()
	if err := sax.Parse(body, sax.Tee(rec, dh.Handler())); err != nil {
		return nil, nil, err
	}
	msg, err := dh.Message()
	if err != nil {
		return nil, nil, err
	}
	return msg, rec.Sequence(), nil
}
