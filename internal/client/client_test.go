package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
	"repro/internal/wsdl"
)

const testNS = "urn:Quote"

type quote struct {
	Symbol string
	Price  float64
}

// newFixture wires a client Call directly to an in-process dispatcher.
func newFixture(t *testing.T, opts Options) (*Call, *soap.Codec, *callCounter) {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "Quote"}, quote{}); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	disp := server.NewDispatcher(codec, testNS)
	counter := &callCounter{}
	disp.Register("getQuote", func(params []soap.Param) (any, error) {
		counter.n++
		sym, _ := params[0].Value.(string)
		if sym == "FAIL" {
			return nil, errors.New("no such symbol")
		}
		return &quote{Symbol: sym, Price: 101.25}, nil
	})
	tr := &transport.InProcess{Handler: disp}
	call := NewCall(codec, tr, "http://inproc/quote", testNS, "getQuote", testNS+"#getQuote", opts)
	return call, codec, counter
}

type callCounter struct{ n int }

func TestInvokeEndToEnd(t *testing.T) {
	call, _, counter := newFixture(t, Options{})
	res, err := call.Invoke(context.Background(), soap.Param{Name: "symbol", Value: "GOOG"})
	if err != nil {
		t.Fatal(err)
	}
	q, ok := res.(*quote)
	if !ok || q.Symbol != "GOOG" || q.Price != 101.25 {
		t.Errorf("result = %#v", res)
	}
	if counter.n != 1 {
		t.Errorf("server calls = %d", counter.n)
	}
}

func TestInvokeFaultBecomesError(t *testing.T) {
	call, _, _ := newFixture(t, Options{})
	_, err := call.Invoke(context.Background(), soap.Param{Name: "symbol", Value: "FAIL"})
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *soap.Fault", err)
	}
	if !strings.Contains(f.String, "no such symbol") {
		t.Errorf("fault = %+v", f)
	}
}

func TestInvokeContextExposesXML(t *testing.T) {
	call, _, _ := newFixture(t, Options{})
	ictx, err := call.InvokeContext(context.Background(), soap.Param{Name: "symbol", Value: "IBM"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ictx.RequestXML), "getQuote") {
		t.Error("RequestXML not captured")
	}
	if !strings.Contains(string(ictx.ResponseXML), "getQuoteResponse") {
		t.Error("ResponseXML not captured")
	}
	if ictx.ResponseEvents != nil {
		t.Error("events recorded without RecordEvents option")
	}
	if ictx.CacheHit {
		t.Error("CacheHit set without a cache")
	}
}

func TestRecordEvents(t *testing.T) {
	call, codec, _ := newFixture(t, Options{RecordEvents: true})
	ictx, err := call.InvokeContext(context.Background(), soap.Param{Name: "symbol", Value: "IBM"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ictx.ResponseEvents) == 0 {
		t.Fatal("no events recorded")
	}
	// The recorded events must independently decode to the same result.
	msg, err := codec.DecodeEnvelopeEvents(ictx.ResponseEvents)
	if err != nil {
		t.Fatal(err)
	}
	q := msg.Result().(*quote)
	if q.Symbol != "IBM" {
		t.Errorf("replayed result = %+v", q)
	}
}

func TestHandlerChainOrderAndShortCircuit(t *testing.T) {
	var order []string
	outer := HandlerFunc(func(ictx *Context, next Invoker) error {
		order = append(order, "outer-pre")
		err := next(ictx)
		order = append(order, "outer-post")
		return err
	})
	short := HandlerFunc(func(ictx *Context, _ Invoker) error {
		order = append(order, "short")
		ictx.Result = &quote{Symbol: "CACHED"}
		ictx.CacheHit = true
		return nil
	})
	call, _, counter := newFixture(t, Options{Handlers: []Handler{outer, short}})
	res, err := call.Invoke(context.Background(), soap.Param{Name: "symbol", Value: "GOOG"})
	if err != nil {
		t.Fatal(err)
	}
	if res.(*quote).Symbol != "CACHED" {
		t.Errorf("result = %#v", res)
	}
	if counter.n != 0 {
		t.Error("pivot reached despite short-circuit")
	}
	want := []string{"outer-pre", "short", "outer-post"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("order = %v", order)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	boom := errors.New("handler boom")
	bad := HandlerFunc(func(*Context, Invoker) error { return boom })
	call, _, _ := newFixture(t, Options{Handlers: []Handler{bad}})
	if _, err := call.Invoke(context.Background()); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestTransportErrorPropagates(t *testing.T) {
	reg := typemap.NewRegistry()
	codec := soap.NewCodec(reg)
	tr := transport.Func(func(context.Context, *transport.Request) (*transport.Response, error) {
		return nil, errors.New("network down")
	})
	call := NewCall(codec, tr, "ep", testNS, "op", "", Options{})
	if _, err := call.Invoke(context.Background()); err == nil || !strings.Contains(err.Error(), "network down") {
		t.Errorf("err = %v", err)
	}
}

const quoteWSDL = `<?xml version="1.0"?>
<wsdl:definitions name="Quote" targetNamespace="urn:Quote"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:tns="urn:Quote">
  <wsdl:message name="getQuoteIn"><wsdl:part name="symbol" type="xsd:string"/></wsdl:message>
  <wsdl:message name="getQuoteOut"><wsdl:part name="return" type="tns:Quote"/></wsdl:message>
  <wsdl:portType name="QuotePort">
    <wsdl:operation name="getQuote">
      <wsdl:input message="tns:getQuoteIn"/>
      <wsdl:output message="tns:getQuoteOut"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="QuoteBinding" type="tns:QuotePort">
    <soap:binding style="rpc" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="getQuote">
      <soap:operation soapAction="urn:Quote#getQuote"/>
      <wsdl:input><soap:body use="encoded" namespace="urn:Quote"/></wsdl:input>
      <wsdl:output><soap:body use="encoded" namespace="urn:Quote"/></wsdl:output>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="QuoteService">
    <wsdl:port name="QuotePort" binding="tns:QuoteBinding">
      <soap:address location="http://example.com/quote"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>`

func TestServiceFromWSDL(t *testing.T) {
	defs, err := wsdl.Parse([]byte(quoteWSDL))
	if err != nil {
		t.Fatal(err)
	}
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "Quote"}, quote{}); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	disp := server.NewDispatcher(codec, testNS)
	disp.Register("getQuote", func(params []soap.Param) (any, error) {
		return &quote{Symbol: params[0].Value.(string), Price: 7}, nil
	})
	svc, err := NewService(defs, codec, &transport.InProcess{Handler: disp}, ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}

	call, err := svc.Call("getQuote")
	if err != nil {
		t.Fatal(err)
	}
	if call.Endpoint() != "http://example.com/quote" {
		t.Errorf("endpoint = %q", call.Endpoint())
	}

	res, err := svc.Invoke(context.Background(), "getQuote", soap.Param{Name: "symbol", Value: "X"})
	if err != nil {
		t.Fatal(err)
	}
	if res.(*quote).Symbol != "X" {
		t.Errorf("result = %#v", res)
	}

	if _, err := svc.Call("unknownOp"); err == nil {
		t.Error("expected error for unknown operation")
	}
}

func TestServiceEndpointOverride(t *testing.T) {
	defs, err := wsdl.Parse([]byte(quoteWSDL))
	if err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(typemap.NewRegistry())
	svc, err := NewService(defs, codec, transport.Func(nil), ServiceConfig{Endpoint: "http://override/"})
	if err != nil {
		t.Fatal(err)
	}
	call, err := svc.Call("getQuote")
	if err != nil {
		t.Fatal(err)
	}
	if call.Endpoint() != "http://override/" {
		t.Errorf("endpoint = %q", call.Endpoint())
	}
}

func TestCallAccessors(t *testing.T) {
	call, codec, _ := newFixture(t, Options{})
	if call.Codec() != codec {
		t.Error("Codec accessor broken")
	}
	if call.Operation() != "getQuote" {
		t.Error("Operation accessor broken")
	}
}

func TestServiceDefinitionsAccessor(t *testing.T) {
	defs, err := wsdl.Parse([]byte(quoteWSDL))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(defs, soap.NewCodec(typemap.NewRegistry()), transport.Func(nil), ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Definitions() != defs {
		t.Error("Definitions accessor broken")
	}
}

// TestAcceptStreamPropagates: Options.AcceptStream must reach the
// invocation context, where representation Applicable gates read it.
func TestAcceptStreamPropagates(t *testing.T) {
	call, _, _ := newFixture(t, Options{AcceptStream: true})
	ictx, err := call.InvokeContext(context.Background(), soap.Param{Name: "symbol", Value: "GOOG"})
	if err != nil {
		t.Fatal(err)
	}
	if !ictx.AcceptStream {
		t.Error("AcceptStream not copied onto the invocation context")
	}
	plain, _, _ := newFixture(t, Options{})
	ictx2, err := plain.InvokeContext(context.Background(), soap.Param{Name: "symbol", Value: "GOOG"})
	if err != nil {
		t.Fatal(err)
	}
	if ictx2.AcceptStream {
		t.Error("AcceptStream set without the option")
	}
}

// TestContextStreamFallsBackToResponseXML: on a miss (or any
// invocation that reached the transport) Stream adapts the captured
// envelope, so stream consumers get bytes whether or not a streaming
// representation served them.
func TestContextStreamFallsBackToResponseXML(t *testing.T) {
	call, _, _ := newFixture(t, Options{AcceptStream: true})
	ictx, err := call.InvokeContext(context.Background(), soap.Param{Name: "symbol", Value: "GOOG"})
	if err != nil {
		t.Fatal(err)
	}
	wt, ok := ictx.Stream()
	if !ok {
		t.Fatal("no stream for an invocation that captured ResponseXML")
	}
	var buf bytes.Buffer
	n, err := wt.WriteTo(&buf)
	if err != nil || n != int64(len(ictx.ResponseXML)) {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), ictx.ResponseXML) {
		t.Error("streamed bytes diverge from the captured envelope")
	}
}

// streamedResult is a stand-in for a streaming representation's
// payload placed in Result by a cache hit.
type streamedResult struct{ data string }

func (s *streamedResult) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, s.data)
	return int64(n), err
}

// TestContextStreamPrefersStreamedResult: when a streaming
// representation put a replayable payload in Result, Stream returns it
// rather than re-adapting ResponseXML.
func TestContextStreamPrefersStreamedResult(t *testing.T) {
	ictx := &Context{Result: &streamedResult{data: "payload"}, ResponseXML: []byte("envelope")}
	wt, ok := ictx.Stream()
	if !ok {
		t.Fatal("no stream")
	}
	var buf bytes.Buffer
	if _, err := wt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "payload" {
		t.Errorf("streamed %q, want the Result payload", buf.String())
	}
}

// TestContextStreamAbsent: an object-representation hit carries
// neither a WriterTo result nor envelope bytes; Stream must say so
// instead of fabricating an empty stream.
func TestContextStreamAbsent(t *testing.T) {
	ictx := &Context{Result: &quote{Symbol: "GOOG"}}
	if _, ok := ictx.Stream(); ok {
		t.Error("Stream reported ok with no streamable source")
	}
}
