package client

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultify"
	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/typemap"
)

// quoteBackend builds the quote dispatcher pieces for tests that need
// to interpose their own transport between client and server.
func quoteBackend(t *testing.T) (*soap.Codec, *server.Dispatcher, *callCounter) {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "Quote"}, quote{}); err != nil {
		t.Fatal(err)
	}
	codec := soap.NewCodec(reg)
	disp := server.NewDispatcher(codec, testNS)
	counter := &callCounter{}
	disp.Register("getQuote", func(params []soap.Param) (any, error) {
		counter.n++
		sym, _ := params[0].Value.(string)
		return &quote{Symbol: sym, Price: 101.25}, nil
	})
	return codec, disp, counter
}

// respondWith builds a transport answering every call with a fixed
// body.
func respondWith(body []byte) transport.Transport {
	return transport.Func(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		return &transport.Response{Body: body, Status: 200}, nil
	})
}

// encodeQuoteResponse builds a well-formed getQuote response envelope.
func encodeQuoteResponse(t *testing.T, codec *soap.Codec) []byte {
	t.Helper()
	body, err := codec.EncodeResponse(testNS, "getQuote", &quote{Symbol: "OK", Price: 5})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func newQuoteCodec(t *testing.T) *soap.Codec {
	t.Helper()
	call, codec, _ := newFixture(t, Options{})
	_ = call
	return codec
}

func TestDecodeTruncatedEnvelopeFails(t *testing.T) {
	codec := newQuoteCodec(t)
	body := encodeQuoteResponse(t, codec)
	for _, cut := range []int{len(body) / 2, len(body) - 1, 1} {
		tr := respondWith(body[:cut])
		call := NewCall(codec, tr, "ep", testNS, "getQuote", "", Options{})
		if _, err := call.Invoke(context.Background()); err == nil {
			t.Errorf("truncation at %d bytes: want decode error", cut)
		}
	}
}

func TestDecodeGarbledEnvelopeFails(t *testing.T) {
	codec := newQuoteCodec(t)
	body := encodeQuoteResponse(t, codec)
	garbled := make([]byte, len(body))
	copy(garbled, body)
	for i, b := range garbled {
		if b == '<' || b == '>' {
			garbled[i] ^= 0x01
		}
	}
	call := NewCall(codec, respondWith(garbled), "ep", testNS, "getQuote", "", Options{})
	if _, err := call.Invoke(context.Background()); err == nil {
		t.Fatal("want decode error for garbled envelope")
	}
}

func TestDecodeEmptyBodyFails(t *testing.T) {
	codec := newQuoteCodec(t)
	call := NewCall(codec, respondWith(nil), "ep", testNS, "getQuote", "", Options{})
	if _, err := call.Invoke(context.Background()); err == nil {
		t.Fatal("want decode error for empty body")
	}
}

func TestDecodeFailureWithRecordEvents(t *testing.T) {
	// The teed (recorder + deserializer) parse path must fail cleanly
	// too, not just the plain path.
	codec := newQuoteCodec(t)
	body := encodeQuoteResponse(t, codec)
	call := NewCall(codec, respondWith(body[:len(body)/3]), "ep", testNS, "getQuote", "", Options{RecordEvents: true})
	if _, err := call.Invoke(context.Background()); err == nil {
		t.Fatal("want decode error on teed parse")
	}
}

func TestRetryOptionAbsorbsFlakyTransport(t *testing.T) {
	// End to end: Options.Retry wraps the transport, so a backend that
	// fails twice then recovers yields a successful invocation.
	codec, disp, counter := quoteBackend(t)
	faulty := faultify.New(&transport.InProcess{Handler: disp}, faultify.Config{Script: faultify.FailN(2)})
	call := NewCall(codec, faulty, "http://inproc/quote", testNS, "getQuote", "", Options{
		Retry: &transport.RetryPolicy{MaxAttempts: 3, Sleep: func(ctx context.Context, d time.Duration) error { return nil }},
	})
	res, err := call.Invoke(context.Background(), soap.Param{Name: "symbol", Value: "GOOG"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.(*quote).Symbol != "GOOG" {
		t.Errorf("result = %#v", res)
	}
	if counter.n != 1 {
		t.Errorf("backend served %d calls, want 1", counter.n)
	}
	if s := faulty.Stats(); s.Calls != 3 || s.Failures != 2 {
		t.Errorf("fault stats = %+v", s)
	}
}

func TestRetryOptionDoesNotRetryFaults(t *testing.T) {
	// SOAP faults are application answers: the retrying transport never
	// sees them as errors, so the backend is invoked exactly once.
	call, _, counter := newFixture(t, Options{
		Retry: &transport.RetryPolicy{MaxAttempts: 5},
	})
	_, err := call.Invoke(context.Background(), soap.Param{Name: "symbol", Value: "FAIL"})
	var f *soap.Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "no such symbol") {
		t.Fatalf("err = %v, want fault", err)
	}
	if counter.n != 1 {
		t.Errorf("backend calls = %d, want 1 (faults must not retry)", counter.n)
	}
}
