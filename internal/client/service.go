package client

import (
	"context"
	"fmt"

	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/wsdl"
)

// Service is a WSDL-described remote service: it resolves each
// operation's SOAP action, body namespace, and endpoint from the
// service description, the way an Axis Service/Call pair does.
type Service struct {
	defs     *wsdl.Definitions
	codec    *soap.Codec
	tr       transport.Transport
	endpoint string
	opts     Options
}

// ServiceConfig configures NewService.
type ServiceConfig struct {
	// Endpoint overrides the soap:address location in the WSDL (useful
	// when pointing a client at a local dummy service).
	Endpoint string
	// Options are applied to every Call created by the service.
	Options Options
}

// NewService builds a Service from a parsed WSDL definitions document.
func NewService(defs *wsdl.Definitions, codec *soap.Codec, tr transport.Transport, cfg ServiceConfig) (*Service, error) {
	endpoint := cfg.Endpoint
	if endpoint == "" {
		loc, ok := defs.Endpoint()
		if !ok {
			return nil, fmt.Errorf("client: WSDL %s has no port address and no endpoint override", defs.Name)
		}
		endpoint = loc
	}
	return &Service{defs: defs, codec: codec, tr: tr, endpoint: endpoint, opts: cfg.Options}, nil
}

// Definitions returns the service's WSDL model.
func (s *Service) Definitions() *wsdl.Definitions { return s.defs }

// Call builds a Call for the named operation.
func (s *Service) Call(operation string) (*Call, error) {
	if _, ok := s.defs.Operation(operation); !ok {
		return nil, fmt.Errorf("client: operation %q not in WSDL %s", operation, s.defs.Name)
	}
	soapAction, namespace := s.bindingDetails(operation)
	return NewCall(s.codec, s.tr, s.endpoint, namespace, operation, soapAction, s.opts), nil
}

// Invoke is a convenience: build the call and invoke it.
func (s *Service) Invoke(ctx context.Context, operation string, params ...soap.Param) (any, error) {
	call, err := s.Call(operation)
	if err != nil {
		return nil, err
	}
	return call.Invoke(ctx, params...)
}

// bindingDetails resolves soapAction and body namespace from the
// binding, defaulting to the target namespace.
func (s *Service) bindingDetails(operation string) (soapAction, namespace string) {
	namespace = s.defs.TargetNamespace
	for _, b := range s.defs.Bindings {
		if bo, ok := b.Operations[operation]; ok {
			soapAction = bo.SOAPAction
			if bo.Namespace != "" {
				namespace = bo.Namespace
			}
			return soapAction, namespace
		}
	}
	return soapAction, namespace
}
