// Package transport moves SOAP messages between client and server. It
// provides an HTTP 1.1 transport (the binding the paper's middleware
// uses), an in-process transport for benchmarks that must exclude
// network cost, and the HTTP cache-validator utilities (Cache-Control,
// Expires, If-Modified-Since / 304) the paper points to as the
// standard, orthogonal consistency mechanism (Section 3.2).
package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Request is a transport-level SOAP request.
type Request struct {
	// Endpoint is the target URL.
	Endpoint string
	// SOAPAction is the SOAP 1.1 action header value (unquoted).
	SOAPAction string
	// Body is the request envelope.
	Body []byte
	// Header carries extra request headers; the cache's revalidation
	// path sets If-Modified-Since here (paper Section 3.2).
	Header http.Header
}

// Response is a transport-level reply.
type Response struct {
	// Body is the SOAP envelope (possibly a fault envelope). Empty for
	// 304 Not Modified replies.
	Body []byte
	// Status is the HTTP status code (200 for in-process transports).
	Status int
	// Header carries response headers; cache consistency validators
	// (Cache-Control, Last-Modified, Expires) live here.
	Header http.Header
}

// NotModified reports whether the response is a 304 validator answer:
// the cached representation is still fresh and no body was sent.
func (r *Response) NotModified() bool { return r.Status == http.StatusNotModified }

// Transport sends a SOAP request and returns the response envelope.
type Transport interface {
	Send(ctx context.Context, req *Request) (*Response, error)
}

// StatusError reports a non-2xx, non-fault HTTP response.
type StatusError struct {
	Status int
	Body   string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	return fmt.Sprintf("transport: http status %d: %s", e.Status, truncate(e.Body, 200))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// DefaultMaxResponseBytes bounds response reads when MaxResponseBytes
// is zero. Generous for SOAP payloads, but finite: a misbehaving
// backend cannot exhaust client memory.
const DefaultMaxResponseBytes = 64 << 20 // 64 MiB

// DefaultTimeout bounds a whole HTTP exchange when no client and no
// per-transport timeout is configured, so a dead backend fails rather
// than hangs (the request context can still impose a tighter deadline).
const DefaultTimeout = 30 * time.Second

// ResponseTooLargeError reports a response body exceeding the
// transport's MaxResponseBytes limit.
type ResponseTooLargeError struct {
	Limit int64
}

// Error implements the error interface.
func (e *ResponseTooLargeError) Error() string {
	return fmt.Sprintf("transport: response body exceeds %d-byte limit", e.Limit)
}

// readBody reads a response body under a size limit: max 0 applies
// DefaultMaxResponseBytes, negative max disables the bound.
func readBody(r io.Reader, max int64) ([]byte, error) {
	if max < 0 {
		return io.ReadAll(r)
	}
	if max == 0 {
		max = DefaultMaxResponseBytes
	}
	body, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > max {
		return nil, &ResponseTooLargeError{Limit: max}
	}
	return body, nil
}

// defaultClient backs HTTP transports with no Client configured. Unlike
// http.DefaultClient it times out, so a dead backend cannot hang an
// invocation forever.
var defaultClient = &http.Client{Timeout: DefaultTimeout}

// HTTP is a Transport over net/http. The zero value uses a shared
// client with DefaultTimeout and bounds response bodies at
// DefaultMaxResponseBytes.
type HTTP struct {
	// Client overrides the HTTP client when non-nil.
	Client *http.Client
	// Timeout bounds the whole exchange when Client is nil; zero means
	// DefaultTimeout.
	Timeout time.Duration
	// MaxResponseBytes bounds the response body read. Zero means
	// DefaultMaxResponseBytes; negative means unlimited.
	MaxResponseBytes int64
	// Obs, when non-nil, counts transport.bytes_sent /
	// transport.bytes_received envelope bytes. Nil-safe; leaving it nil
	// costs nothing.
	Obs *obs.Registry
}

var _ Transport = (*HTTP)(nil)

// Send implements Transport. Per SOAP 1.1 over HTTP, the request is a
// POST with Content-Type text/xml and a SOAPAction header. 200 and 500
// responses carry envelopes (500 carries the fault); 304 answers a
// conditional request with no body.
func (t *HTTP) Send(ctx context.Context, treq *Request) (*Response, error) {
	client := t.Client
	if client == nil {
		if t.Timeout > 0 {
			client = &http.Client{Timeout: t.Timeout}
		} else {
			client = defaultClient
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, treq.Endpoint, bytes.NewReader(treq.Body))
	if err != nil {
		return nil, fmt.Errorf("transport: build request: %w", err)
	}
	req.Header.Set("Content-Type", `text/xml; charset=utf-8`)
	req.Header.Set("SOAPAction", `"`+treq.SOAPAction+`"`)
	copyHeader(req.Header, treq.Header)
	t.Obs.Add("transport.bytes_sent", int64(len(treq.Body)))
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := readBody(resp.Body, t.MaxResponseBytes)
	if err != nil {
		return nil, fmt.Errorf("transport: read response: %w", err)
	}
	t.Obs.Add("transport.bytes_received", int64(len(body)))
	if !acceptableStatus(resp.StatusCode) {
		return nil, &StatusError{Status: resp.StatusCode, Body: string(body)}
	}
	return &Response{Body: body, Status: resp.StatusCode, Header: resp.Header}, nil
}

// acceptableStatus reports statuses that carry SOAP-level meaning.
func acceptableStatus(status int) bool {
	switch status {
	case http.StatusOK, http.StatusInternalServerError, http.StatusNotModified:
		return true
	}
	return false
}

// copyHeader merges src into dst.
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// Func adapts a function to the Transport interface; used for
// in-process wiring in tests, benchmarks, and the portal scenario when
// the network should not be the bottleneck.
type Func func(ctx context.Context, req *Request) (*Response, error)

var _ Transport = (Func)(nil)

// Send implements Transport.
func (f Func) Send(ctx context.Context, req *Request) (*Response, error) {
	return f(ctx, req)
}

// InProcess dispatches requests directly to an http.Handler without a
// network, preserving HTTP semantics (headers, status codes).
type InProcess struct {
	Handler http.Handler
	// MaxResponseBytes bounds the response body, with the same semantics
	// as HTTP.MaxResponseBytes: zero means DefaultMaxResponseBytes,
	// negative means unlimited.
	MaxResponseBytes int64
	// Obs, when non-nil, counts transport.bytes_sent /
	// transport.bytes_received envelope bytes, as HTTP.Obs does.
	Obs *obs.Registry
}

var _ Transport = (*InProcess)(nil)

// Send implements Transport.
func (t *InProcess) Send(ctx context.Context, treq *Request) (*Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, treq.Endpoint, bytes.NewReader(treq.Body))
	if err != nil {
		return nil, fmt.Errorf("transport: build request: %w", err)
	}
	req.Header.Set("Content-Type", `text/xml; charset=utf-8`)
	req.Header.Set("SOAPAction", `"`+treq.SOAPAction+`"`)
	copyHeader(req.Header, treq.Header)
	t.Obs.Add("transport.bytes_sent", int64(len(treq.Body)))
	rw := &bufferResponseWriter{header: make(http.Header), status: http.StatusOK}
	t.Handler.ServeHTTP(rw, req)
	t.Obs.Add("transport.bytes_received", int64(rw.buf.Len()))
	if max := t.MaxResponseBytes; max >= 0 {
		if max == 0 {
			max = DefaultMaxResponseBytes
		}
		if int64(rw.buf.Len()) > max {
			return nil, fmt.Errorf("transport: read response: %w", &ResponseTooLargeError{Limit: max})
		}
	}
	if !acceptableStatus(rw.status) {
		return nil, &StatusError{Status: rw.status, Body: rw.buf.String()}
	}
	return &Response{Body: rw.buf.Bytes(), Status: rw.status, Header: rw.header}, nil
}

// bufferResponseWriter is a minimal in-memory http.ResponseWriter.
type bufferResponseWriter struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

var _ http.ResponseWriter = (*bufferResponseWriter)(nil)

func (w *bufferResponseWriter) Header() http.Header { return w.header }

func (w *bufferResponseWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *bufferResponseWriter) WriteHeader(status int) { w.status = status }

// CacheDirectives is a parsed Cache-Control header.
type CacheDirectives struct {
	NoStore   bool
	NoCache   bool
	Private   bool
	Public    bool
	MaxAge    time.Duration
	HasMaxAge bool
}

// ParseCacheControl parses a Cache-Control header value.
func ParseCacheControl(v string) CacheDirectives {
	var d CacheDirectives
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		lower := strings.ToLower(part)
		switch {
		case lower == "no-store":
			d.NoStore = true
		case lower == "no-cache":
			d.NoCache = true
		case lower == "private":
			d.Private = true
		case lower == "public":
			d.Public = true
		case strings.HasPrefix(lower, "max-age="):
			secs, err := strconv.Atoi(strings.TrimPrefix(lower, "max-age="))
			if err == nil && secs >= 0 {
				d.MaxAge = time.Duration(secs) * time.Second
				d.HasMaxAge = true
			}
		}
	}
	return d
}

// FreshnessLifetime derives how long a response may be served from
// cache, from its headers: Cache-Control max-age wins over Expires.
// A max-age lifetime is reduced by the Age header — time the response
// already spent in upstream caches (RFC 9111 §4.2.3); Expires is an
// absolute time, so Age does not apply to it. ok is false when the
// headers do not permit caching, give no lifetime, or the response's
// remaining lifetime is already spent.
func FreshnessLifetime(h http.Header, now time.Time) (time.Duration, bool) {
	if cc := h.Get("Cache-Control"); cc != "" {
		d := ParseCacheControl(cc)
		if d.NoStore || d.NoCache {
			return 0, false
		}
		if d.HasMaxAge {
			lifetime := d.MaxAge - responseAge(h)
			if lifetime <= 0 {
				return 0, false
			}
			return lifetime, true
		}
	}
	if exp := h.Get("Expires"); exp != "" {
		t, err := http.ParseTime(exp)
		if err == nil {
			if lifetime := t.Sub(now); lifetime > 0 {
				return lifetime, true
			}
			return 0, false
		}
	}
	return 0, false
}

// responseAge reads the Age response header (non-negative seconds the
// response spent in upstream caches); malformed or absent means zero.
func responseAge(h http.Header) time.Duration {
	v := strings.TrimSpace(h.Get("Age"))
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// NotModified reports whether a request bearing If-Modified-Since
// should receive 304 given the resource's last modification time.
// Granularity is one second, as in HTTP dates.
func NotModified(r *http.Request, lastModified time.Time) bool {
	ims := r.Header.Get("If-Modified-Since")
	if ims == "" {
		return false
	}
	t, err := http.ParseTime(ims)
	if err != nil {
		return false
	}
	return !lastModified.Truncate(time.Second).After(t)
}

// SetValidators stamps a response with Last-Modified and Cache-Control
// max-age headers, the server side of the HTTP consistency mechanism.
func SetValidators(h http.Header, lastModified time.Time, ttl time.Duration) {
	if !lastModified.IsZero() {
		h.Set("Last-Modified", lastModified.UTC().Format(http.TimeFormat))
	}
	if ttl > 0 {
		h.Set("Cache-Control", "max-age="+strconv.Itoa(int(ttl/time.Second)))
	}
}
