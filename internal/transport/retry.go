package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"repro/internal/obs"
)

// transienter lets error values declare themselves retryable without
// the transport layer importing their package (the fault-injection
// transport's errors implement it).
type transienter interface {
	Transient() bool
}

// IsTransient classifies an error from a Send as worth retrying.
// Transient: network errors (connection refused/reset, DNS, timeouts),
// per-attempt deadline expiry, truncated reads, and 5xx status errors —
// the backend may answer a fresh attempt. Permanent: 4xx status errors
// and context cancellation. SOAP faults never reach this classifier:
// fault envelopes arrive as well-formed 500 responses, so Send returns
// them as responses, not errors, and they are not retried.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var tr transienter
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	// A per-attempt timeout (the caller's deadline is checked
	// separately by Retry.Send).
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// RetryPolicy configures a Retry transport. The zero value is usable:
// 3 attempts, 50ms base backoff capped at 2s, IsTransient
// classification, no per-attempt timeout.
type RetryPolicy struct {
	// MaxAttempts is the total number of Send attempts (not re-tries);
	// values < 1 mean the default of 3.
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt; the caller's
	// context still bounds the whole Send. Zero means no per-attempt
	// bound.
	AttemptTimeout time.Duration
	// BaseDelay is the backoff before the second attempt; it doubles
	// per attempt. Zero means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 2s.
	MaxDelay time.Duration
	// Classify overrides IsTransient when non-nil; a false return stops
	// retrying and surfaces the error.
	Classify func(error) bool
	// Rand supplies the jitter draw in [0,1); nil means math/rand.
	// Deterministic tests inject a fixed function.
	Rand func() float64
	// Sleep overrides the backoff wait, for tests; nil sleeps honoring
	// ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Obs, when non-nil, counts transport.attempts / transport.retries
	// and records backoff sleeps in the backoff stage histogram. All
	// recording is nil-safe, so leaving it nil costs nothing.
	Obs *obs.Registry
	// Tracer, when non-nil, receives an OnStage callback per backoff
	// sleep (op = endpoint). Backoff durations are the computed delays,
	// so recording them needs no clock.
	Tracer obs.Tracer
}

// Retry wraps an inner Transport with bounded retries: exponential
// backoff with full jitter (delay drawn uniformly from [0, base·2^n],
// capped), per-attempt timeouts, and transient-vs-permanent error
// classification. The caller's context deadline is authoritative: once
// it expires no further attempts are made.
type Retry struct {
	Inner  Transport
	Policy RetryPolicy
}

var _ Transport = (*Retry)(nil)

// NewRetry builds a Retry transport over inner.
func NewRetry(inner Transport, policy RetryPolicy) *Retry {
	return &Retry{Inner: inner, Policy: policy}
}

// Send implements Transport.
func (r *Retry) Send(ctx context.Context, req *Request) (*Response, error) {
	attempts := r.Policy.MaxAttempts
	if attempts < 1 {
		attempts = 3
	}
	classify := r.Policy.Classify
	if classify == nil {
		classify = IsTransient
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := r.backoff(attempt)
			r.Policy.Obs.Add("transport.retries", 1)
			// The backoff duration is the computed delay, recorded
			// without a clock read.
			r.Policy.Obs.Stage(obs.StageBackoff, "", d, nil)
			if r.Policy.Tracer != nil {
				r.Policy.Tracer.OnStage(req.Endpoint, obs.StageBackoff, "", d, nil)
			}
			if err := r.sleep(ctx, d); err != nil {
				return nil, fmt.Errorf("transport: retry aborted after %d attempts: %w (last error: %v)", attempt, err, lastErr)
			}
		}
		r.Policy.Obs.Add("transport.attempts", 1)
		actx := ctx
		cancel := func() {}
		if r.Policy.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.Policy.AttemptTimeout)
		}
		resp, err := r.Inner.Send(actx, req)
		cancel()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller's deadline expired or the call was cancelled;
			// further attempts cannot be delivered to anyone.
			return nil, err
		}
		if !classify(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("transport: %d attempts failed: %w", attempts, lastErr)
}

// backoff computes the pre-attempt delay: full jitter over an
// exponentially growing, capped window.
func (r *Retry) backoff(attempt int) time.Duration {
	base := r.Policy.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := r.Policy.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	window := base
	for i := 1; i < attempt && window < max; i++ {
		window *= 2
	}
	if window > max {
		window = max
	}
	draw := r.Policy.Rand
	if draw == nil {
		draw = rand.Float64
	}
	return time.Duration(draw() * float64(window))
}

// sleep waits d or until ctx is done.
func (r *Retry) sleep(ctx context.Context, d time.Duration) error {
	if r.Policy.Sleep != nil {
		return r.Policy.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
