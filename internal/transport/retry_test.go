package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// flaky fails its first n Sends with err, then succeeds.
type flaky struct {
	n     int
	err   error
	calls int
}

func (f *flaky) Send(ctx context.Context, req *Request) (*Response, error) {
	f.calls++
	if f.calls <= f.n {
		return nil, f.err
	}
	return &Response{Body: []byte("<ok/>"), Status: 200}, nil
}

// noSleep makes retry backoffs instantaneous in tests.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestRetryAbsorbsTransientFailures(t *testing.T) {
	inner := &flaky{n: 2, err: &net.OpError{Op: "dial", Err: errors.New("connection refused")}}
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 3, Sleep: noSleep})
	resp, err := r.Send(context.Background(), &Request{})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if string(resp.Body) != "<ok/>" {
		t.Errorf("body = %q", resp.Body)
	}
	if inner.calls != 3 {
		t.Errorf("attempts = %d, want 3", inner.calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	inner := &flaky{n: 100, err: &StatusError{Status: 503}}
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 4, Sleep: noSleep})
	_, err := r.Send(context.Background(), &Request{})
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 503 {
		t.Errorf("err = %v, want wrapped 503 StatusError", err)
	}
	if inner.calls != 4 {
		t.Errorf("attempts = %d, want 4", inner.calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	inner := &flaky{n: 100, err: &StatusError{Status: 404}}
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 5, Sleep: noSleep})
	_, err := r.Send(context.Background(), &Request{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 404 {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
	if inner.calls != 1 {
		t.Errorf("attempts = %d, want 1 (4xx must not retry)", inner.calls)
	}
}

func TestRetryHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inner := Func(func(ctx context.Context, req *Request) (*Response, error) {
		cancel() // the caller goes away while the attempt is in flight
		return nil, &net.OpError{Op: "read", Err: errors.New("reset")}
	})
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 5, Sleep: noSleep})
	if _, err := r.Send(ctx, &Request{}); err == nil {
		t.Fatal("want error")
	}
	// Exactly one attempt: the cancelled context forbids further tries.
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	calls := 0
	inner := Func(func(ctx context.Context, req *Request) (*Response, error) {
		calls++
		if calls == 1 {
			<-ctx.Done() // hang until the per-attempt deadline fires
			return nil, ctx.Err()
		}
		return &Response{Body: []byte("<ok/>"), Status: 200}, nil
	})
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond, Sleep: noSleep})
	resp, err := r.Send(context.Background(), &Request{})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if string(resp.Body) != "<ok/>" || calls != 2 {
		t.Errorf("calls = %d, body = %q", calls, resp.Body)
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	r := NewRetry(nil, RetryPolicy{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  300 * time.Millisecond,
		Rand:      func() float64 { return 1.0 }, // upper edge of the jitter window
	})
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	for i, w := range want {
		if got := r.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

type transientErr struct{ transient bool }

func (e *transientErr) Error() string   { return "marked" }
func (e *transientErr) Transient() bool { return e.transient }

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&StatusError{Status: 503}, true},
		{&StatusError{Status: 502}, true},
		{&StatusError{Status: 404}, false},
		{&StatusError{Status: 403}, false},
		{&net.OpError{Op: "dial", Err: errors.New("refused")}, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("opaque"), false},
		{&transientErr{transient: true}, true},
		{&transientErr{transient: false}, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
