package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPMaxResponseBytes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("x", 1024)))
	}))
	defer srv.Close()

	tr := &HTTP{MaxResponseBytes: 100}
	_, err := tr.Send(context.Background(), &Request{Endpoint: srv.URL})
	var tooLarge *ResponseTooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want ResponseTooLargeError", err)
	}
	if tooLarge.Limit != 100 {
		t.Errorf("limit = %d", tooLarge.Limit)
	}

	// At or under the limit the read succeeds.
	tr.MaxResponseBytes = 1024
	resp, err := tr.Send(context.Background(), &Request{Endpoint: srv.URL})
	if err != nil {
		t.Fatalf("Send under limit: %v", err)
	}
	if len(resp.Body) != 1024 {
		t.Errorf("body = %d bytes", len(resp.Body))
	}

	// Negative disables the bound.
	tr.MaxResponseBytes = -1
	if _, err := tr.Send(context.Background(), &Request{Endpoint: srv.URL}); err != nil {
		t.Fatalf("Send unbounded: %v", err)
	}
}

func TestInProcessMaxResponseBytes(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("y", 512)))
	})
	tr := &InProcess{Handler: h, MaxResponseBytes: 256}
	_, err := tr.Send(context.Background(), &Request{Endpoint: "http://inproc/"})
	var tooLarge *ResponseTooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want ResponseTooLargeError", err)
	}

	tr.MaxResponseBytes = 512
	if _, err := tr.Send(context.Background(), &Request{Endpoint: "http://inproc/"}); err != nil {
		t.Fatalf("Send under limit: %v", err)
	}
}

func TestHTTPDefaultClientTimesOut(t *testing.T) {
	// The zero-value HTTP transport must not fall back to
	// http.DefaultClient (which never times out): a per-transport
	// Timeout must abort a hanging backend.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	defer srv.Close()

	tr := &HTTP{Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := tr.Send(context.Background(), &Request{Endpoint: srv.URL})
	if err == nil {
		t.Fatal("want timeout error from hanging backend")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timed out after %v, want ~50ms", elapsed)
	}
}

func TestFreshnessLifetimeHonorsAge(t *testing.T) {
	now := time.Now()
	h := http.Header{}
	h.Set("Cache-Control", "max-age=60")
	h.Set("Age", "45")
	lifetime, ok := FreshnessLifetime(h, now)
	if !ok || lifetime != 15*time.Second {
		t.Errorf("lifetime = %v, %v; want 15s, true", lifetime, ok)
	}

	// Age consuming the whole max-age means the response is already
	// stale on arrival.
	h.Set("Age", "60")
	if _, ok := FreshnessLifetime(h, now); ok {
		t.Error("want ok=false when Age >= max-age")
	}

	// Malformed Age is ignored.
	h.Set("Age", "bogus")
	lifetime, ok = FreshnessLifetime(h, now)
	if !ok || lifetime != 60*time.Second {
		t.Errorf("lifetime = %v, %v; want 60s, true", lifetime, ok)
	}

	// Age does not apply to Expires (an absolute time).
	h2 := http.Header{}
	h2.Set("Expires", now.Add(30*time.Second).UTC().Format(http.TimeFormat))
	h2.Set("Age", "20")
	lifetime, ok = FreshnessLifetime(h2, now)
	if !ok || lifetime < 29*time.Second || lifetime > 30*time.Second {
		t.Errorf("Expires lifetime = %v, %v", lifetime, ok)
	}
}
