package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHTTPSend(t *testing.T) {
	var gotAction, gotCT string
	var gotBody []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAction = r.Header.Get("SOAPAction")
		gotCT = r.Header.Get("Content-Type")
		buf := make([]byte, r.ContentLength)
		_, _ = r.Body.Read(buf)
		gotBody = buf
		w.Header().Set("Content-Type", "text/xml")
		_, _ = w.Write([]byte("<resp/>"))
	}))
	defer srv.Close()

	tr := &HTTP{}
	resp, err := tr.Send(context.Background(), &Request{Endpoint: srv.URL, SOAPAction: "urn:x#op", Body: []byte("<req/>")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "<resp/>" || resp.Status != 200 {
		t.Errorf("resp = %+v", resp)
	}
	if gotAction != `"urn:x#op"` {
		t.Errorf("SOAPAction = %q", gotAction)
	}
	if gotCT != "text/xml; charset=utf-8" {
		t.Errorf("Content-Type = %q", gotCT)
	}
	if string(gotBody) != "<req/>" {
		t.Errorf("body = %q", gotBody)
	}
}

func TestHTTPSend500CarriesFaultBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte("<fault/>"))
	}))
	defer srv.Close()
	tr := &HTTP{}
	resp, err := tr.Send(context.Background(), &Request{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 || string(resp.Body) != "<fault/>" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestHTTPSendUnexpectedStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()
	tr := &HTTP{}
	_, err := tr.Send(context.Background(), &Request{Endpoint: srv.URL})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 404 {
		t.Errorf("err = %v", err)
	}
}

func TestHTTPSendContextCancel(t *testing.T) {
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	}))
	defer srv.Close()
	defer close(blocked)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	tr := &HTTP{}
	if _, err := tr.Send(ctx, &Request{Endpoint: srv.URL}); err == nil {
		t.Error("expected context deadline error")
	}
}

func TestInProcess(t *testing.T) {
	tr := &InProcess{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("SOAPAction") == "" {
			t.Error("SOAPAction not propagated")
		}
		w.Header().Set("Cache-Control", "max-age=60")
		_, _ = w.Write([]byte("ok"))
	})}
	resp, err := tr.Send(context.Background(), &Request{Endpoint: "http://local/", SOAPAction: "a", Body: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "ok" || resp.Header.Get("Cache-Control") != "max-age=60" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestInProcessStatusError(t *testing.T) {
	tr := &InProcess{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})}
	_, err := tr.Send(context.Background(), &Request{Endpoint: "http://local/"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadGateway {
		t.Errorf("err = %v", err)
	}
}

func TestFuncTransport(t *testing.T) {
	tr := Func(func(_ context.Context, req *Request) (*Response, error) {
		return &Response{Body: []byte(req.Endpoint), Status: 200}, nil
	})
	resp, err := tr.Send(context.Background(), &Request{Endpoint: "ep"})
	if err != nil || string(resp.Body) != "ep" {
		t.Errorf("resp = %+v, err = %v", resp, err)
	}
}

func TestParseCacheControl(t *testing.T) {
	d := ParseCacheControl("public, max-age=3600")
	if !d.Public || !d.HasMaxAge || d.MaxAge != time.Hour {
		t.Errorf("d = %+v", d)
	}
	d = ParseCacheControl("no-store")
	if !d.NoStore {
		t.Errorf("d = %+v", d)
	}
	d = ParseCacheControl("private, no-cache, max-age=bogus")
	if !d.Private || !d.NoCache || d.HasMaxAge {
		t.Errorf("d = %+v", d)
	}
}

func TestFreshnessLifetime(t *testing.T) {
	now := time.Now()

	h := http.Header{}
	h.Set("Cache-Control", "max-age=120")
	if life, ok := FreshnessLifetime(h, now); !ok || life != 2*time.Minute {
		t.Errorf("max-age: %v %v", life, ok)
	}

	h = http.Header{}
	h.Set("Cache-Control", "no-store")
	if _, ok := FreshnessLifetime(h, now); ok {
		t.Error("no-store should forbid caching")
	}

	h = http.Header{}
	h.Set("Expires", now.Add(time.Hour).UTC().Format(http.TimeFormat))
	life, ok := FreshnessLifetime(h, now)
	if !ok || life < 59*time.Minute || life > time.Hour {
		t.Errorf("expires: %v %v", life, ok)
	}

	h = http.Header{}
	h.Set("Expires", now.Add(-time.Hour).UTC().Format(http.TimeFormat))
	if _, ok := FreshnessLifetime(h, now); ok {
		t.Error("past Expires should forbid caching")
	}

	if _, ok := FreshnessLifetime(http.Header{}, now); ok {
		t.Error("no headers give no lifetime")
	}
}

func TestNotModified(t *testing.T) {
	lastMod := time.Date(2004, 3, 1, 12, 0, 0, 0, time.UTC)

	r := httptest.NewRequest(http.MethodPost, "/", nil)
	r.Header.Set("If-Modified-Since", lastMod.Format(http.TimeFormat))
	if !NotModified(r, lastMod) {
		t.Error("same timestamp should be not-modified")
	}

	r.Header.Set("If-Modified-Since", lastMod.Add(-time.Hour).Format(http.TimeFormat))
	if NotModified(r, lastMod) {
		t.Error("older validator should be modified")
	}

	r.Header.Del("If-Modified-Since")
	if NotModified(r, lastMod) {
		t.Error("no header should be modified")
	}

	r.Header.Set("If-Modified-Since", "garbage")
	if NotModified(r, lastMod) {
		t.Error("bad header should be modified")
	}
}

func TestSetValidators(t *testing.T) {
	h := http.Header{}
	lm := time.Date(2004, 3, 1, 12, 0, 0, 0, time.UTC)
	SetValidators(h, lm, 90*time.Second)
	if h.Get("Last-Modified") != lm.Format(http.TimeFormat) {
		t.Errorf("Last-Modified = %q", h.Get("Last-Modified"))
	}
	if h.Get("Cache-Control") != "max-age=90" {
		t.Errorf("Cache-Control = %q", h.Get("Cache-Control"))
	}
}

func TestStatusErrorTruncation(t *testing.T) {
	long := make([]byte, 500)
	for i := range long {
		long[i] = 'x'
	}
	e := &StatusError{Status: 400, Body: string(long)}
	if len(e.Error()) > 300 {
		t.Errorf("error message too long: %d", len(e.Error()))
	}
}
