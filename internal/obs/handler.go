package obs

import (
	"encoding/json"
	"net/http"
)

// DebugPath is the conventional mount point for Handler.
const DebugPath = "/debug/wscache"

// Handler serves the registry's snapshot as indented JSON — the
// /debug/wscache endpoint. GET (and HEAD) only. A nil registry serves
// an empty snapshot, so wiring can be unconditional.
//
//	mux.Handle(obs.DebugPath, obs.Handler(reg))
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		body, err := json.MarshalIndent(r.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(append(body, '\n'))
	})
}
