package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of histogram buckets. Bucket i counts
// observations with d ≤ 1µs·2^i; the last bucket is the overflow
// (everything above ~2.1s). 23 fixed buckets span the whole range of
// interest — sub-microsecond copy-outs to multi-second backend
// invocations — with no allocation and no locking.
const histBuckets = 23

// BucketBound returns the inclusive upper bound of bucket i, or a
// negative duration for the overflow bucket.
func BucketBound(i int) time.Duration {
	if i < 0 || i >= histBuckets-1 {
		return -1
	}
	return time.Microsecond << i
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 1µs·2^i, clamped to the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// Ceiling microseconds, then ceil(log2): Len64(x-1) is the smallest
	// i with x ≤ 2^i for x ≥ 1.
	us := (uint64(d) + 999) / 1000
	i := bits.Len64(us - 1)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// use: one atomic add per observation, power-of-two microsecond bucket
// bounds, running count and sum for the mean. The zero value is ready;
// all methods are nil-receiver safe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
//
//lint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram for reporting. Concurrent Observes
// may straddle the capture; totals are exact once writers quiesce.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	if s.Count > 0 {
		s.MeanNS = s.SumNS / s.Count
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{LeNS: int64(BucketBound(i)), Count: n})
	}
	s.P50NS = s.quantile(0.50)
	s.P90NS = s.quantile(0.90)
	s.P99NS = s.quantile(0.99)
	return s
}

// HistogramSnapshot is the JSON form of a Histogram: cumulative count
// and sum, approximate quantiles, and the non-empty buckets.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MeanNS  int64    `json:"mean_ns"`
	P50NS   int64    `json:"p50_ns"`
	P90NS   int64    `json:"p90_ns"`
	P99NS   int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket. LeNS is the inclusive
// upper bound in nanoseconds; -1 marks the overflow bucket.
type Bucket struct {
	LeNS  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// quantile returns the q-quantile as the upper bound of the bucket
// where the cumulative count crosses q·total — an over-estimate by at
// most one bucket width (a factor of two), which is the precision the
// fixed power-of-two layout buys. The overflow bucket reports -1
// (unbounded).
func (s HistogramSnapshot) quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.LeNS
		}
	}
	return -1
}
