package obs

import (
	"sort"
	"sync"
	"time"
)

// Registry aggregates the process's cache observability: per-operation
// and per-representation hit/miss counters, per-(stage, representation)
// latency histograms, named event counters, and circuit breaker state
// gauges. One registry is typically shared by every instrumented
// subsystem of a stack (cache core, client options, transport, breaker,
// portal) so /debug/wscache serves a single coherent snapshot.
//
// Scoping: a cache given a registry via its config records its Stats
// counters there, so sharing one registry between two *caches* merges
// their Stats; share a registry across the layers of one stack, not
// across independent caches whose Stats must stay separate.
//
// The hot path takes no locks: lookups go through sync.Map (lock-free
// once keys are warm) and updates are sharded or single atomic adds.
// Recording methods are nil-receiver safe no-ops, so optional
// instrumentation needs no call-site guards.
type Registry struct {
	ops         sync.Map // string -> *OpCounters
	reps        sync.Map // string -> *RepCounters
	stages      sync.Map // stageKey -> *stageRec
	counters    sync.Map // string -> *Counter
	breakers    sync.Map // string -> *breakerGauge
	inspections sync.Map // string -> func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Or returns r, or a fresh private registry when r is nil — the
// obs analog of clock.Or, so every config defaults its Obs field the
// same way:
//
//	reg := obs.Or(cfg.Obs)
//
// Metrics recorded into a private registry are still counted (core's
// Stats are read from it) but are not served anywhere.
func Or(r *Registry) *Registry {
	if r == nil {
		return NewRegistry()
	}
	return r
}

// OpCounters are one operation's counters, the registry-backed
// equivalent of core.OperationStats plus errors.
type OpCounters struct {
	Hits   Counter
	Misses Counter
	Stores Counter
	Bypass Counter
	Errors Counter
}

// RepCounters are one value representation's counters. A hit is a
// payload of this representation served (copy-out); a miss is a fill
// performed with it (the miss that populated the entry).
type RepCounters struct {
	Hits   Counter
	Misses Counter
	Errors Counter
}

// stageKey identifies one latency series.
type stageKey struct {
	stage Stage
	rep   string
}

// stageRec is one stage's latency histogram and error count.
type stageRec struct {
	hist Histogram
	errs Counter
}

// breakerGauge holds one endpoint's current breaker state name.
type breakerGauge struct {
	mu    sync.Mutex
	state string
}

// Op returns (creating if needed) the counters for an operation.
// Returns nil when r is nil; callers that may hold a nil registry
// should normalize with Or first.
func (r *Registry) Op(name string) *OpCounters {
	if r == nil {
		return nil
	}
	if v, ok := r.ops.Load(name); ok {
		return v.(*OpCounters)
	}
	v, _ := r.ops.LoadOrStore(name, &OpCounters{})
	return v.(*OpCounters)
}

// Rep returns (creating if needed) the counters for a value
// representation. Returns nil when r is nil.
func (r *Registry) Rep(name string) *RepCounters {
	if r == nil {
		return nil
	}
	if v, ok := r.reps.Load(name); ok {
		return v.(*RepCounters)
	}
	v, _ := r.reps.LoadOrStore(name, &RepCounters{})
	return v.(*RepCounters)
}

// Counter returns (creating if needed) a named event counter. Returns
// nil when r is nil — and a nil *Counter's Add is itself a no-op, so
// r.Counter("x").Add(1) is safe throughout.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Add increments a named event counter; a no-op on a nil registry.
func (r *Registry) Add(name string, n int64) {
	r.Counter(name).Add(n)
}

// Stage records one stage observation: d into the (stage,
// representation) histogram, plus an error count when err is non-nil.
// A no-op on a nil registry.
func (r *Registry) Stage(stage Stage, representation string, d time.Duration, err error) {
	if r == nil {
		return
	}
	key := stageKey{stage: stage, rep: representation}
	var rec *stageRec
	if v, ok := r.stages.Load(key); ok {
		rec = v.(*stageRec)
	} else {
		v, _ := r.stages.LoadOrStore(key, &stageRec{})
		rec = v.(*stageRec)
	}
	rec.hist.Observe(d)
	if err != nil {
		rec.errs.Add(1)
	}
}

// StageHistogram returns the histogram for a (stage, representation)
// series, or nil when the registry is nil or the series has never been
// recorded.
func (r *Registry) StageHistogram(stage Stage, representation string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.stages.Load(stageKey{stage: stage, rep: representation}); ok {
		return &v.(*stageRec).hist
	}
	return nil
}

// SetBreaker records an endpoint's current breaker state; a no-op on a
// nil registry. Transitions are rare (they mark outages), so a small
// mutex per gauge is fine.
func (r *Registry) SetBreaker(endpoint, state string) {
	if r == nil {
		return
	}
	var g *breakerGauge
	if v, ok := r.breakers.Load(endpoint); ok {
		g = v.(*breakerGauge)
	} else {
		v, _ := r.breakers.LoadOrStore(endpoint, &breakerGauge{})
		g = v.(*breakerGauge)
	}
	g.mu.Lock()
	g.state = state
	g.mu.Unlock()
}

// SetInspection registers a named live-state callback evaluated at
// snapshot time — how stateful subsystems (e.g. the adaptive
// representation selector's decision table) expose their current view
// through /debug/wscache without the registry knowing their types. The
// callback must be safe for concurrent use and must return a
// JSON-serializable value; registering the same name again replaces the
// previous callback. A no-op on a nil registry.
func (r *Registry) SetInspection(name string, f func() any) {
	if r == nil || f == nil {
		return
	}
	r.inspections.Store(name, f)
}

// Snapshot captures the registry as a JSON-serializable value.
// Concurrent recording may straddle the capture; each individual
// counter and histogram is internally consistent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Operations:      map[string]OpSnapshot{},
		Representations: map[string]RepSnapshot{},
		Counters:        map[string]int64{},
		Breakers:        map[string]string{},
	}
	if r == nil {
		return s
	}
	r.ops.Range(func(k, v any) bool {
		c := v.(*OpCounters)
		s.Operations[k.(string)] = OpSnapshot{
			Hits:     c.Hits.Load(),
			Misses:   c.Misses.Load(),
			Stores:   c.Stores.Load(),
			Bypass:   c.Bypass.Load(),
			Errors:   c.Errors.Load(),
			HitRatio: hitRatio(c.Hits.Load(), c.Misses.Load()),
		}
		return true
	})
	r.reps.Range(func(k, v any) bool {
		c := v.(*RepCounters)
		s.Representations[k.(string)] = RepSnapshot{
			Hits:     c.Hits.Load(),
			Misses:   c.Misses.Load(),
			Errors:   c.Errors.Load(),
			HitRatio: hitRatio(c.Hits.Load(), c.Misses.Load()),
		}
		return true
	})
	r.stages.Range(func(k, v any) bool {
		key := k.(stageKey)
		rec := v.(*stageRec)
		s.Stages = append(s.Stages, StageSnapshot{
			Stage:          key.stage,
			Representation: key.rep,
			Errors:         rec.errs.Load(),
			Latency:        rec.hist.Snapshot(),
		})
		return true
	})
	sort.Slice(s.Stages, func(i, j int) bool {
		if s.Stages[i].Stage != s.Stages[j].Stage {
			return s.Stages[i].Stage < s.Stages[j].Stage
		}
		return s.Stages[i].Representation < s.Stages[j].Representation
	})
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.breakers.Range(func(k, v any) bool {
		g := v.(*breakerGauge)
		g.mu.Lock()
		s.Breakers[k.(string)] = g.state
		g.mu.Unlock()
		return true
	})
	r.inspections.Range(func(k, v any) bool {
		if s.Inspections == nil {
			s.Inspections = map[string]any{}
		}
		s.Inspections[k.(string)] = v.(func() any)()
		return true
	})
	return s
}

// hitRatio returns hits/(hits+misses), or 0.
func hitRatio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Snapshot is the JSON shape served at /debug/wscache.
type Snapshot struct {
	Operations      map[string]OpSnapshot  `json:"operations"`
	Representations map[string]RepSnapshot `json:"representations"`
	Stages          []StageSnapshot        `json:"stages,omitempty"`
	Counters        map[string]int64       `json:"counters"`
	Breakers        map[string]string      `json:"breakers"`
	// Inspections holds the live state of registered subsystems
	// (SetInspection), keyed by inspection name.
	Inspections map[string]any `json:"inspections,omitempty"`
}

// OpSnapshot is one operation's captured counters.
type OpSnapshot struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Stores   int64   `json:"stores"`
	Bypass   int64   `json:"bypass"`
	Errors   int64   `json:"errors"`
	HitRatio float64 `json:"hit_ratio"`
}

// RepSnapshot is one value representation's captured counters.
type RepSnapshot struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Errors   int64   `json:"errors"`
	HitRatio float64 `json:"hit_ratio"`
}

// StageSnapshot is one (stage, representation) latency series.
type StageSnapshot struct {
	Stage          Stage             `json:"stage"`
	Representation string            `json:"representation,omitempty"`
	Errors         int64             `json:"errors"`
	Latency        HistogramSnapshot `json:"latency"`
}
