package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 2000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Errorf("Load = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Add(1) // must not panic
	if c.Load() != 0 {
		t.Error("nil counter Load != 0")
	}
}

// TestRegistryConcurrent hammers every recording path from concurrent
// goroutines (run under -race in CI) and checks the totals.
func TestRegistryConcurrent(t *testing.T) {
	const goroutines, perG = 8, 500
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Op("op").Hits.Add(1)
				r.Rep("rep").Misses.Add(1)
				r.Add("events", 1)
				r.Stage(StageLookup, "", time.Microsecond, nil)
				r.SetBreaker("ep", "closed")
				if i%16 == 0 {
					// Concurrent snapshots must not race with writers.
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	snap := r.Snapshot()
	if got := snap.Operations["op"].Hits; got != total {
		t.Errorf("op hits = %d, want %d", got, total)
	}
	if got := snap.Representations["rep"].Misses; got != total {
		t.Errorf("rep misses = %d, want %d", got, total)
	}
	if got := snap.Counters["events"]; got != total {
		t.Errorf("events = %d, want %d", got, total)
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Latency.Count != total {
		t.Errorf("stages = %+v, want one series with count %d", snap.Stages, total)
	}
	if got := snap.Breakers["ep"]; got != "closed" {
		t.Errorf("breaker state = %q, want closed", got)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	// Every recording method must be a no-op, not a panic.
	r.Add("x", 1)
	r.Stage(StageLookup, "", time.Second, nil)
	r.SetBreaker("ep", "open")
	r.Counter("x").Add(1)
	if r.Op("op") != nil || r.Rep("rep") != nil {
		t.Error("nil registry Op/Rep should return nil")
	}
	if r.StageHistogram(StageLookup, "") != nil {
		t.Error("nil registry StageHistogram should return nil")
	}
	snap := r.Snapshot()
	if len(snap.Operations) != 0 || len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestOr(t *testing.T) {
	if Or(nil) == nil {
		t.Fatal("Or(nil) must return a usable registry")
	}
	r := NewRegistry()
	if Or(r) != r {
		t.Error("Or must return its non-nil argument")
	}
}

func TestStageErrors(t *testing.T) {
	r := NewRegistry()
	r.Stage(StageInvoke, "", time.Millisecond, nil)
	r.Stage(StageInvoke, "", time.Millisecond, errFixture)
	snap := r.Snapshot()
	if len(snap.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(snap.Stages))
	}
	if snap.Stages[0].Errors != 1 {
		t.Errorf("stage errors = %d, want 1", snap.Stages[0].Errors)
	}
	if snap.Stages[0].Latency.Count != 2 {
		t.Errorf("stage count = %d, want 2", snap.Stages[0].Latency.Count)
	}
}

// errFixture is a distinct error value for error-count tests.
var errFixture = &fixtureError{}

type fixtureError struct{}

func (*fixtureError) Error() string { return "fixture" }

func TestSnapshotStageOrder(t *testing.T) {
	r := NewRegistry()
	r.Stage(StageSend, "", time.Microsecond, nil)
	r.Stage(StageCopyOut, "b", time.Microsecond, nil)
	r.Stage(StageCopyOut, "a", time.Microsecond, nil)
	snap := r.Snapshot()
	if len(snap.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(snap.Stages))
	}
	if snap.Stages[0].Stage != StageCopyOut || snap.Stages[0].Representation != "a" ||
		snap.Stages[1].Representation != "b" || snap.Stages[2].Stage != StageSend {
		t.Errorf("stage order = %+v, want (copyout,a) (copyout,b) (send)", snap.Stages)
	}
}

func TestHitRatio(t *testing.T) {
	r := NewRegistry()
	op := r.Op("op")
	op.Hits.Add(3)
	op.Misses.Add(1)
	snap := r.Snapshot()
	if got := snap.Operations["op"].HitRatio; got != 0.75 {
		t.Errorf("hit ratio = %v, want 0.75", got)
	}
	if got := r.Snapshot().Operations["op"].HitRatio; got != 0.75 {
		t.Errorf("second snapshot ratio = %v, want 0.75", got)
	}
}

func TestTracerFunc(t *testing.T) {
	var calls int
	tr := TracerFunc(func(op string, stage Stage, rep string, d time.Duration, err error) {
		calls++
		if op != "op" || stage != StageInvoke || rep != "r" || d != time.Second || err != nil {
			t.Errorf("unexpected OnStage(%q, %q, %q, %v, %v)", op, stage, rep, d, err)
		}
	})
	tr.OnStage("op", StageInvoke, "r", time.Second, nil)
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestSetInspection(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.SetInspection("widget", func() any { n++; return n })

	if got := r.Snapshot().Inspections["widget"]; got != 1 {
		t.Errorf("first snapshot inspection = %v, want 1", got)
	}
	if got := r.Snapshot().Inspections["widget"]; got != 2 {
		t.Errorf("inspection must be re-evaluated per snapshot, got %v", got)
	}

	// Re-registering replaces; nil callbacks and nil registries are
	// no-ops.
	r.SetInspection("widget", func() any { return "replaced" })
	r.SetInspection("ignored", nil)
	if got := r.Snapshot().Inspections["widget"]; got != "replaced" {
		t.Errorf("inspection = %v, want replaced", got)
	}
	if _, ok := r.Snapshot().Inspections["ignored"]; ok {
		t.Error("nil inspection registered")
	}
	var nilReg *Registry
	nilReg.SetInspection("x", func() any { return nil })
	if snap := nilReg.Snapshot(); snap.Inspections != nil {
		t.Errorf("nil registry snapshot inspections = %v", snap.Inspections)
	}
}

func TestSnapshotWithoutInspectionsOmitsMap(t *testing.T) {
	r := NewRegistry()
	if r.Snapshot().Inspections != nil {
		t.Error("empty registry must not allocate an inspections map")
	}
}
