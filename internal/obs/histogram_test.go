package obs

import (
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                           // exactly the bucket-0 bound
		{time.Microsecond + time.Nanosecond, 1},         // just over bound 0
		{2 * time.Microsecond, 1},                       // exactly bound 1
		{2*time.Microsecond + time.Nanosecond, 2},       // just over bound 1
		{3 * time.Microsecond, 2},                       // inside bucket 2
		{4 * time.Microsecond, 2},                       // exactly bound 2
		{1024 * time.Microsecond, 10},                   // exactly bound 10 (~1ms)
		{1025 * time.Microsecond, 11},                   // just over bound 10
		{time.Second, 20},                               // 1s ≤ 1µs·2^20 ≈ 1.05s
		{2 * time.Second, 21},                           // ≤ 1µs·2^21 ≈ 2.1s
		{3 * time.Second, histBuckets - 1},              // overflow
		{time.Hour, histBuckets - 1},                    // deep overflow
		{-time.Microsecond, 0},                          // negative clamps to 0
		{BucketBound(5), 5},                             // every bound maps to its own bucket
		{BucketBound(5) + time.Nanosecond, 6},           // and one past it to the next
		{BucketBound(histBuckets - 2), histBuckets - 2}, // last bounded bucket
		{BucketBound(histBuckets-2) + 1, histBuckets - 1},
	}
	for _, tc := range tests {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != time.Microsecond {
		t.Errorf("BucketBound(0) = %v, want 1µs", got)
	}
	if got := BucketBound(10); got != 1024*time.Microsecond {
		t.Errorf("BucketBound(10) = %v, want 1.024ms", got)
	}
	for _, i := range []int{-1, histBuckets - 1, histBuckets} {
		if got := BucketBound(i); got >= 0 {
			t.Errorf("BucketBound(%d) = %v, want negative (overflow)", i, got)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond) // bucket 0
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond) // bucket 10
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	wantSum := int64(90*time.Microsecond + 10*time.Millisecond)
	if s.SumNS != wantSum {
		t.Errorf("SumNS = %d, want %d", s.SumNS, wantSum)
	}
	if s.MeanNS != wantSum/100 {
		t.Errorf("MeanNS = %d, want %d", s.MeanNS, wantSum/100)
	}
	// p50 and p90 land in bucket 0 (90% of samples), p99 in bucket 10;
	// quantiles report the crossing bucket's upper bound.
	if want := int64(time.Microsecond); s.P50NS != want || s.P90NS != want {
		t.Errorf("P50/P90 = %d/%d, want both %d", s.P50NS, s.P90NS, want)
	}
	if want := int64(1024 * time.Microsecond); s.P99NS != want {
		t.Errorf("P99NS = %d, want %d", s.P99NS, want)
	}
	if len(s.Buckets) != 2 {
		t.Errorf("non-empty buckets = %d, want 2", len(s.Buckets))
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	var h Histogram
	h.Observe(time.Hour)
	s := h.Snapshot()
	if s.P50NS != -1 {
		t.Errorf("overflow P50NS = %d, want -1 (unbounded)", s.P50NS)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 {
		t.Error("nil histogram Count != 0")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Error("nil histogram snapshot not empty")
	}
}
