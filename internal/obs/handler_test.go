package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerServesSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	op := r.Op("doGoogleSearch")
	op.Hits.Add(3)
	op.Misses.Add(1)
	r.Rep("DOM tree").Hits.Add(2)
	r.Stage(StageLookup, "", 5*time.Microsecond, nil)
	r.Add("transport.bytes_sent", 1234)
	r.SetBreaker("http://backend.example/", "open")

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + DebugPath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}

	var snap struct {
		Operations map[string]struct {
			Hits     int64   `json:"hits"`
			Misses   int64   `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"operations"`
		Representations map[string]struct {
			Hits int64 `json:"hits"`
		} `json:"representations"`
		Stages []struct {
			Stage   string `json:"stage"`
			Latency struct {
				Count int64 `json:"count"`
				P50NS int64 `json:"p50_ns"`
			} `json:"latency"`
		} `json:"stages"`
		Counters map[string]int64  `json:"counters"`
		Breakers map[string]string `json:"breakers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	got := snap.Operations["doGoogleSearch"]
	if got.Hits != 3 || got.Misses != 1 || got.HitRatio != 0.75 {
		t.Errorf("operation snapshot = %+v", got)
	}
	if snap.Representations["DOM tree"].Hits != 2 {
		t.Errorf("representation snapshot = %+v", snap.Representations)
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Stage != string(StageLookup) ||
		snap.Stages[0].Latency.Count != 1 || snap.Stages[0].Latency.P50NS <= 0 {
		t.Errorf("stages = %+v", snap.Stages)
	}
	if snap.Counters["transport.bytes_sent"] != 1234 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if snap.Breakers["http://backend.example/"] != "open" {
		t.Errorf("breakers = %+v", snap.Breakers)
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Post(srv.URL+DebugPath, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Errorf("Allow = %q", allow)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200 (empty snapshot)", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
}
