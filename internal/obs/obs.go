// Package obs is the runtime observability layer: stage-level metrics
// and trace hooks for the caching client middleware. The paper's whole
// argument is quantitative — Tables 8/9 and Figure 7 compare
// per-representation hit costs — and this package is what makes those
// costs visible in a live process instead of only under go test -bench:
// where a hit or miss spends its time (key generation, store encode,
// copy-out, SAX replay, network invoke), per operation and per
// representation.
//
// The package is dependency-free and clock-free by design: it never
// reads the wall clock. Durations are measured by the instrumented
// packages with their injected clocks (internal/clock), so the
// clockinject analyzer's discipline is preserved, and recorded here as
// plain values.
//
// Three layers:
//
//   - Counter and Histogram are the lock-free primitives: a Counter is
//     sharded across cache lines so concurrent writers do not serialize;
//     a Histogram is a fixed set of power-of-two latency buckets updated
//     with single atomic adds.
//   - Registry aggregates them: per-operation counters, per-
//     representation counters, per-(stage, representation) latency
//     histograms, named event counters, and breaker state gauges. Every
//     recording method is safe on a nil *Registry (a no-op), and Or
//     mirrors clock.Or so configs default uniformly.
//   - Tracer is the push-side hook: an optional callback invoked per
//     recorded stage, for log/trace integration. A nil Tracer costs
//     nothing — instrumented packages skip even the clock reads when
//     neither a caller-supplied Registry nor a Tracer is present.
package obs

import "time"

// Stage names one step of the invocation pipeline. The taxonomy covers
// the client cache (keygen through copy-out), the handler chain and
// pivot, the transport, and the server-side response cache; DESIGN.md
// §5c tabulates where each stage is recorded.
type Stage string

const (
	// StageKeyGen is cache key generation (representation = key
	// strategy name).
	StageKeyGen Stage = "keygen"
	// StageLookup is the cache table lookup including, on a hit, the
	// copy-out.
	StageLookup Stage = "lookup"
	// StageCopyOut is ValueStore.Load: materializing a stored payload
	// into an application object (representation = store name).
	StageCopyOut Stage = "copyout"
	// StageCopyIn is ValueStore.Store: encoding a response into its
	// cache representation on the fill path (representation = store
	// name).
	StageCopyIn Stage = "copyin"
	// StageInvoke is the backend invocation a cache miss pays (the rest
	// of the handler chain plus the pivot).
	StageInvoke Stage = "invoke"
	// StageCoalesceWait is the time a coalesced miss follower spends
	// waiting on the flight leader.
	StageCoalesceWait Stage = "coalesce-wait"
	// StageHandler is one handler of the client chain, inclusive of
	// everything below it (representation = handler name; the outermost
	// handler's duration approximates the whole invocation).
	StageHandler Stage = "handler"
	// StageSerialize is request encoding in the pivot.
	StageSerialize Stage = "serialize"
	// StageSend is the transport exchange as timed by the pivot or the
	// transport itself.
	StageSend Stage = "send"
	// StageParse is response parsing plus deserialization in the pivot.
	StageParse Stage = "parse"
	// StageBackoff is a retry backoff sleep (duration = the scheduled
	// delay).
	StageBackoff Stage = "backoff"
	// StageBreaker is a circuit breaker state transition
	// (representation = the new state, duration zero).
	StageBreaker Stage = "breaker"
	// StageBackend is one portal back-end section render.
	StageBackend Stage = "backend"
	// StageServerLookup is the server-side response cache lookup.
	StageServerLookup Stage = "server-lookup"
	// StageServerStore is the server-side response cache fill.
	StageServerStore Stage = "server-store"
	// StageServerStream is a server-side response cache hit replayed
	// straight into the response writer via the body store's streaming
	// fast path (no intermediate []byte materialization).
	StageServerStream Stage = "server-stream"
	// StageTemplateBuild is a differential-serialization fill that had
	// to serialize in full and record a new splice template (first fill
	// of a response shape).
	StageTemplateBuild Stage = "template-build"
	// StageTemplateSplice is a differential-serialization fill that
	// reused an interned template and paid only text-value escaping —
	// the splice wins Figure 7 targets.
	StageTemplateSplice Stage = "template-splice"
	// StageRepProbe is one adaptive-selector probe of a candidate value
	// representation: a Store plus one Load, timed off the fill path
	// (representation = store name).
	StageRepProbe Stage = "rep-probe"
	// StageTierGet is one remote-tier lookup on the miss path, round
	// trip included (representation = tier name).
	StageTierGet Stage = "tier-get"
	// StageTierPut is one remote-tier fill: the wire encoding plus the
	// store round trip (representation = chosen wire representation).
	StageTierPut Stage = "tier-put"
)

// Tracer receives one callback per recorded stage: op is the operation
// (or endpoint, for transport and breaker stages), representation the
// stage's representation/strategy name when one applies (empty
// otherwise), d the measured duration (zero for pure events such as
// breaker transitions), and err the stage's outcome.
//
// Implementations must be safe for concurrent use and should return
// quickly — they run inline on the invocation path. A nil Tracer is
// always legal in configs and costs nothing.
type Tracer interface {
	OnStage(op string, stage Stage, representation string, d time.Duration, err error)
}

// TracerFunc adapts a function to Tracer.
type TracerFunc func(op string, stage Stage, representation string, d time.Duration, err error)

var _ Tracer = (TracerFunc)(nil)

// OnStage implements Tracer.
func (f TracerFunc) OnStage(op string, stage Stage, representation string, d time.Duration, err error) {
	f(op, stage, representation, d, err)
}
