package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of independent cells a Counter spreads
// its value over. A power of two so the shard pick is a mask.
const counterShards = 16

// counterShard is one cell, padded to a cache line so neighbouring
// shards never false-share.
type counterShard struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a cumulative counter safe for concurrent use. Adds go to
// one of several cache-line-padded atomic cells, picked by a hint that
// is stable within a goroutine but varies across goroutines, so
// heavily contended counters (the hit counter under 25 concurrent
// users) do not serialize writers on one cache line; Load sums the
// cells.
//
// The zero value is ready to use. All methods are nil-receiver safe so
// call sites need no guards.
type Counter struct {
	shards [counterShards]counterShard
}

// shardHint derives the shard index from the address of a caller stack
// slot. Within one goroutine the address is stable, so repeated Adds
// reuse a warm cache line (a random draw per Add would touch a cold
// line almost every time); across goroutines the stacks — and so the
// hints — differ. Bits below 13 are offsets inside the goroutine's
// stack and would coincide across goroutines at equal call depth, so
// the pick uses the bits at and above the minimum 8 KiB stack size.
// A collision only costs the contended-add throughput of a plain
// atomic; correctness never depends on the distribution.
//
//lint:hotpath
func shardHint() uintptr {
	var probe byte
	return (uintptr(unsafe.Pointer(&probe)) >> 13) & (counterShards - 1)
}

// Add increments the counter by n.
//
//lint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardHint()].n.Add(n)
}

// Load returns the current value. Concurrent Adds may or may not be
// included — the sum is a consistent-enough snapshot for monitoring,
// and exact once writers quiesce.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}
