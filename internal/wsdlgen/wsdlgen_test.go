package wsdlgen

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/googleapi"
	"repro/internal/wsdl"
)

func googleDefs(t *testing.T) *wsdl.Definitions {
	t.Helper()
	defs, err := wsdl.Parse([]byte(googleapi.WSDL))
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

func generate(t *testing.T, opts Options) string {
	t.Helper()
	src, err := Generate(googleDefs(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func TestGenerateParses(t *testing.T) {
	src := generate(t, Options{Package: "testgen"})
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "gen.go", src, parser.AllErrors)
	if err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	if file.Name.Name != "testgen" {
		t.Errorf("package = %s", file.Name.Name)
	}

	// Every schema complex type becomes a struct with a CloneDeep.
	wantTypes := []string{"GoogleSearchResult", "ResultElement", "DirectoryCategory"}
	found := map[string]bool{}
	cloned := map[string]bool{}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					found[ts.Name.Name] = true
				}
			}
		case *ast.FuncDecl:
			if d.Name.Name == "CloneDeep" && d.Recv != nil {
				if se, ok := d.Recv.List[0].Type.(*ast.StarExpr); ok {
					if id, ok := se.X.(*ast.Ident); ok {
						cloned[id.Name] = true
					}
				}
			}
		}
	}
	for _, name := range wantTypes {
		if !found[name] {
			t.Errorf("type %s not generated", name)
		}
		if !cloned[name] {
			t.Errorf("CloneDeep for %s not generated", name)
		}
	}
	if !found["GoogleSearchClient"] {
		t.Error("typed client not generated")
	}
}

func TestGenerateFieldDetails(t *testing.T) {
	src := generate(t, Options{Package: "testgen"})
	for _, want := range []string{
		"ResultElements             []ResultElement",
		"DirectoryCategories        []DirectoryCategory",
		"SearchTime                 float64",
		"URL                       string `xml:\"URL\"`",
		"func RegisterTypes(reg *typemap.Registry) error",
		`const TargetNamespace = "urn:GoogleSearch"`,
		"func (c *GoogleSearchClient) DoGoogleSearch(ctx context.Context, key string, q string, start int",
		") (*GoogleSearchResult, error)",
		"func (c *GoogleSearchClient) DoGetCachedPage(ctx context.Context, key string, url string) ([]byte, error)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestGenerateTypesOnly(t *testing.T) {
	src := generate(t, Options{Package: "testgen", SkipClient: true})
	if strings.Contains(src, "GoogleSearchClient") {
		t.Error("types-only output contains the client")
	}
	if strings.Contains(src, `"context"`) {
		t.Error("types-only output imports context")
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, parser.AllErrors); err != nil {
		t.Fatalf("types-only source does not parse: %v", err)
	}
}

func TestGenerateRequiresPackage(t *testing.T) {
	if _, err := Generate(googleDefs(t), Options{}); err == nil {
		t.Error("missing package name accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, Options{Package: "p"})
	b := generate(t, Options{Package: "p"})
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestGeneratedMatchesCheckedIn(t *testing.T) {
	// internal/googlegen/googlegen.go is generated output checked into
	// the tree; regeneration must reproduce it byte for byte, proving
	// the committed artifact is in sync with the generator.
	src := generate(t, Options{Package: "googlegen"})
	checked, err := readCheckedIn()
	if err != nil {
		t.Fatal(err)
	}
	if src != checked {
		t.Error("internal/googlegen/googlegen.go is stale; regenerate with: go run ./cmd/wsdlgen -pkg googlegen -o internal/googlegen/googlegen.go")
	}
}

func TestUpperLowerFirst(t *testing.T) {
	if upperFirst("resultElements") != "ResultElements" || upperFirst("URL") != "URL" || upperFirst("") != "" {
		t.Error("upperFirst broken")
	}
	if lowerFirst("ResultElements") != "resultElements" || lowerFirst("") != "" {
		t.Error("lowerFirst broken")
	}
}

func TestSafeIdent(t *testing.T) {
	if safeIdent("type") != "type_" || safeIdent("query") != "query" {
		t.Error("safeIdent broken")
	}
}
