// Package wsdlgen generates Go source from a WSDL service description:
// struct types for the schema's complex types, deep CloneDeep methods,
// a RegisterTypes function for the typemap registry, and a typed
// service client with one method per operation.
//
// It is this repository's WSDL compiler — the analog of Axis's
// WSDL2Java, including the improvement the paper proposes in Section
// 4.2.3-C: "it should be easy for the WSDL compiler to add a proper
// deep clone method to generated classes." Generated types therefore
// qualify for the fastest copying cache representation (copy by clone)
// automatically.
package wsdlgen

import (
	"fmt"
	"go/format"
	"sort"
	"strings"

	"repro/internal/typemap"
	"repro/internal/wsdl"
	"repro/internal/xsd"
)

// Options configure generation.
type Options struct {
	// Package is the generated package name; required.
	Package string
	// SkipClient omits the typed service client (types only).
	SkipClient bool
}

// Generate produces gofmt-formatted Go source for the definitions.
func Generate(defs *wsdl.Definitions, opts Options) ([]byte, error) {
	if opts.Package == "" {
		return nil, fmt.Errorf("wsdlgen: Options.Package is required")
	}
	g := &generator{defs: defs, opts: opts}
	if err := g.collectTypes(); err != nil {
		return nil, err
	}
	src, err := g.emit()
	if err != nil {
		return nil, err
	}
	formatted, err := format.Source(src)
	if err != nil {
		return nil, fmt.Errorf("wsdlgen: generated source does not format: %w\n%s", err, src)
	}
	return formatted, nil
}

// genType is one struct to generate.
type genType struct {
	XMLName typemap.QName
	GoName  string
	Fields  []genField
}

// genField is one struct field.
type genField struct {
	GoName  string
	XMLName string
	GoType  string // rendered Go type
	// refKind drives clone generation.
	refKind refKind
	// elemGoName is the element struct's Go name for slice/struct refs.
	elemGoName string
}

// refKind classifies a field for clone generation.
type refKind int

const (
	refNone        refKind = iota // value copied by struct assignment
	refBytes                      // []byte
	refSliceSimple                // slice of reference-free values
	refSliceDeep                  // slice of structs that need deep clone
	refPtrStruct                  // *Struct
	refStructDeep                 // embedded struct value that needs deep clone
)

// generator carries the generation state.
type generator struct {
	defs  *wsdl.Definitions
	opts  Options
	types []genType
	// byLocal maps schema local names to generated type indices.
	byLocal map[string]int
	// arrayOf maps array-type local names to their item type QName.
	arrayOf map[string]typemap.QName
}

// collectTypes walks the schemas and plans the generated structs.
func (g *generator) collectTypes() error {
	g.byLocal = make(map[string]int)
	g.arrayOf = make(map[string]typemap.QName)

	// First pass: split complex types from array wrappers.
	var order []string
	for _, s := range g.defs.Schemas {
		var locals []string
		for local := range s.Types {
			locals = append(locals, local)
		}
		sort.Strings(locals)
		for _, local := range locals {
			t := s.Types[local]
			if t.Kind == xsd.KindArray {
				g.arrayOf[local] = t.ArrayOf
				continue
			}
			order = append(order, local)
		}
	}

	// Second pass: build struct plans.
	for _, local := range order {
		t, _ := g.schemaType(local)
		gt := genType{
			XMLName: t.Name,
			GoName:  upperFirst(local),
		}
		for _, el := range t.Elements {
			f, err := g.planField(el)
			if err != nil {
				return fmt.Errorf("wsdlgen: type %s: %w", local, err)
			}
			gt.Fields = append(gt.Fields, f)
		}
		g.byLocal[local] = len(g.types)
		g.types = append(g.types, gt)
	}

	// Third pass: resolve deep-clone needs now that all types exist.
	for i := range g.types {
		for j := range g.types[i].Fields {
			g.resolveRefKind(&g.types[i].Fields[j])
		}
	}
	return nil
}

// schemaType finds a named type across schemas.
func (g *generator) schemaType(local string) (*xsd.Type, bool) {
	for _, s := range g.defs.Schemas {
		if t, ok := s.TypeByName(local); ok {
			return t, true
		}
	}
	return nil, false
}

// planField maps a schema element declaration to a Go field.
func (g *generator) planField(el xsd.Element) (genField, error) {
	f := genField{
		GoName:  upperFirst(el.Name),
		XMLName: el.Name,
	}
	goType, elem, kind, err := g.goTypeFor(el.Type)
	if err != nil {
		return genField{}, fmt.Errorf("element %s: %w", el.Name, err)
	}
	f.GoType, f.elemGoName, f.refKind = goType, elem, kind

	if el.MaxOccurs == -1 && !strings.HasPrefix(f.GoType, "[]") {
		f.GoType = "[]" + f.GoType
		f.elemGoName = strings.TrimPrefix(goType, "*")
		f.refKind = refSliceSimple // refined in resolveRefKind
	}
	if el.Nillable && !strings.HasPrefix(f.GoType, "[]") && !strings.HasPrefix(f.GoType, "*") {
		if _, isStruct := g.lookupLocal(f.elemGoName); isStruct {
			f.GoType = "*" + f.GoType
			f.refKind = refPtrStruct
		}
	}
	return f, nil
}

// lookupLocal reports whether a Go type name corresponds to a generated
// struct.
func (g *generator) lookupLocal(goName string) (int, bool) {
	for i := range g.types {
		if g.types[i].GoName == goName {
			return i, true
		}
	}
	// During planField the types slice may be incomplete; fall back to
	// the schema map.
	for local, idx := range g.byLocal {
		if upperFirst(local) == goName {
			return idx, true
		}
	}
	return 0, false
}

// goTypeFor renders the Go type for a schema type reference.
func (g *generator) goTypeFor(q typemap.QName) (goType, elemGoName string, kind refKind, err error) {
	if xsd.IsBuiltin(q) {
		switch q.Local {
		case "string", "anyURI", "dateTime":
			return "string", "", refNone, nil
		case "boolean":
			return "bool", "", refNone, nil
		case "int", "integer":
			return "int", "", refNone, nil
		case "long":
			return "int64", "", refNone, nil
		case "short":
			return "int16", "", refNone, nil
		case "byte":
			return "int8", "", refNone, nil
		case "unsignedInt":
			return "uint", "", refNone, nil
		case "unsignedLong":
			return "uint64", "", refNone, nil
		case "float":
			return "float32", "", refNone, nil
		case "double", "decimal":
			return "float64", "", refNone, nil
		case "base64Binary":
			return "[]byte", "", refBytes, nil
		case "anyType":
			return "any", "", refNone, nil
		}
		return "", "", refNone, fmt.Errorf("unsupported builtin %s", q)
	}

	// Array wrapper type → slice of item type.
	if item, ok := g.arrayOf[q.Local]; ok {
		itemGo, _, _, err := g.goTypeFor(item)
		if err != nil {
			return "", "", refNone, err
		}
		return "[]" + itemGo, strings.TrimPrefix(itemGo, "*"), refSliceSimple, nil
	}

	// Another complex type → embedded struct value.
	if _, ok := g.schemaType(q.Local); ok {
		name := upperFirst(q.Local)
		return name, name, refStructDeep, nil
	}
	return "", "", refNone, fmt.Errorf("unresolved type reference %s", q)
}

// resolveRefKind refines slice/struct ref kinds once all types are
// known: a struct with no reference fields clones by value.
func (g *generator) resolveRefKind(f *genField) {
	switch f.refKind {
	case refSliceSimple, refSliceDeep:
		if idx, ok := g.lookupLocal(f.elemGoName); ok {
			if g.typeNeedsDeepClone(idx, make(map[int]bool)) {
				f.refKind = refSliceDeep
			} else {
				f.refKind = refSliceSimple
			}
		}
	case refStructDeep:
		if idx, ok := g.lookupLocal(f.elemGoName); ok {
			if !g.typeNeedsDeepClone(idx, make(map[int]bool)) {
				f.refKind = refNone
			}
		}
	}
}

// typeNeedsDeepClone reports whether the generated struct holds
// references (slices, byte arrays, pointers) anywhere.
func (g *generator) typeNeedsDeepClone(idx int, seen map[int]bool) bool {
	if seen[idx] {
		return false
	}
	seen[idx] = true
	for _, f := range g.types[idx].Fields {
		switch f.refKind {
		case refBytes, refSliceSimple, refSliceDeep, refPtrStruct:
			return true
		case refStructDeep:
			if inner, ok := g.lookupLocal(f.elemGoName); ok && g.typeNeedsDeepClone(inner, seen) {
				return true
			}
		}
	}
	return false
}

// upperFirst exports an identifier.
func upperFirst(s string) string {
	if s == "" {
		return s
	}
	c := s[0]
	if c >= 'a' && c <= 'z' {
		return string(c-('a'-'A')) + s[1:]
	}
	return s
}

// lowerFirst mirrors the typemap wire-name rule.
func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	c := s[0]
	if c < 'A' || c > 'Z' {
		return s
	}
	return string(c+('a'-'A')) + s[1:]
}
