package wsdlgen

import (
	"os"
	"path/filepath"
	"runtime"
)

// readCheckedIn loads the committed generated file for the staleness
// check.
func readCheckedIn() (string, error) {
	_, thisFile, _, _ := runtime.Caller(0)
	path := filepath.Join(filepath.Dir(thisFile), "..", "googlegen", "googlegen.go")
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
