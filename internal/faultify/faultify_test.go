package faultify

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

// okTransport answers every call with a fixed envelope.
func okTransport(body string) transport.Transport {
	return transport.Func(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		return &transport.Response{Body: []byte(body), Status: 200}, nil
	})
}

func send(t *testing.T, tr transport.Transport) (*transport.Response, error) {
	t.Helper()
	return tr.Send(context.Background(), &transport.Request{Endpoint: "http://x/"})
}

func TestScriptFailThenRecover(t *testing.T) {
	tr := New(okTransport("<ok/>"), Config{Script: FailN(2)})

	for i := 0; i < 2; i++ {
		_, err := send(t, tr)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i+1, err)
		}
	}
	resp, err := send(t, tr)
	if err != nil || string(resp.Body) != "<ok/>" {
		t.Fatalf("recovered call: %v, %v", resp, err)
	}
	s := tr.Stats()
	if s.Calls != 3 || s.Failures != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInjectedErrorIsTransient(t *testing.T) {
	tr := New(okTransport("<ok/>"), Config{Script: []Outcome{Fail}})
	_, err := send(t, tr)
	if !transport.IsTransient(err) {
		t.Errorf("injected error %v must classify transient", err)
	}
}

func TestErrorRateDeterministicReplay(t *testing.T) {
	run := func() []bool {
		tr := New(okTransport("<ok/>"), Config{ErrorRate: 0.5, Seed: 42})
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, err := send(t, tr)
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs between identically seeded runs", i+1)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Errorf("failures = %d/%d, want a mix at rate 0.5", failures, len(a))
	}
}

func TestTruncateAndGarble(t *testing.T) {
	body := "<env>hello world</env>"
	tr := New(okTransport(body), Config{Script: []Outcome{Truncate, Garble, Pass}})

	resp, err := send(t, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) >= len(body) {
		t.Errorf("truncated body = %q", resp.Body)
	}

	resp, err = send(t, tr)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) == body || len(resp.Body) != len(body) {
		t.Errorf("garbled body = %q", resp.Body)
	}

	resp, err = send(t, tr)
	if err != nil || string(resp.Body) != body {
		t.Errorf("pass body = %q, %v", resp.Body, err)
	}

	s := tr.Stats()
	if s.Truncations != 1 || s.Garbles != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHangRespectsContext(t *testing.T) {
	tr := New(okTransport("<ok/>"), Config{Script: []Outcome{Hang}})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.Send(ctx, &transport.Request{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("hang did not release on context expiry")
	}
}

func TestLatencyInjection(t *testing.T) {
	tr := New(okTransport("<ok/>"), Config{Latency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := send(t, tr); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 30ms", elapsed)
	}
}

func TestResetReplaysSchedule(t *testing.T) {
	tr := New(okTransport("<ok/>"), Config{Script: FailN(1)})
	if _, err := send(t, tr); err == nil {
		t.Fatal("want scripted failure")
	}
	if _, err := send(t, tr); err != nil {
		t.Fatal("script exhausted, want pass")
	}
	tr.Reset()
	if _, err := send(t, tr); err == nil {
		t.Fatal("after Reset the script must replay")
	}
	if s := tr.Stats(); s.Calls != 1 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestSetScriptMidRun(t *testing.T) {
	tr := New(okTransport("<ok/>"), Config{})
	if _, err := send(t, tr); err != nil {
		t.Fatal(err)
	}
	tr.SetScript(FailN(1))
	if _, err := send(t, tr); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected failure after SetScript", err)
	}
	if _, err := send(t, tr); err != nil {
		t.Fatalf("err = %v, want recovery", err)
	}
}
