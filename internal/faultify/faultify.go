// Package faultify wraps a transport.Transport with deterministic
// fault injection: configurable error rates, injected latency,
// truncated or garbled response envelopes, and scripted
// N-failures-then-recover sequences. It exists so every robustness
// behaviour of the middleware — retry/backoff absorption, circuit
// breaking, stale-on-error degraded serving, decode-failure recovery —
// can be exercised and benchmarked without a real failing backend.
//
// All randomness flows from a single seeded source, so a given
// (Config, request sequence) pair replays the same fault schedule on
// every run; tests and benchmarks stay reproducible.
package faultify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/transport"
)

// ErrInjected is the sentinel all injected transport failures wrap;
// errors.Is(err, faultify.ErrInjected) identifies them.
var ErrInjected = errors.New("faultify: injected backend failure")

// injectedError is the concrete injected failure. It reports itself
// transient (via the Transient method transport.IsTransient honors), as
// a real flaky backend's network errors would be.
type injectedError struct {
	call int64
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("faultify: injected backend failure (call %d)", e.call)
}

// Transient marks the injected failure retryable.
func (e *injectedError) Transient() bool { return true }

// Unwrap ties the error to ErrInjected.
func (e *injectedError) Unwrap() error { return ErrInjected }

// Outcome is one scripted per-call behaviour.
type Outcome int

const (
	// Pass forwards the call untouched.
	Pass Outcome = iota
	// Fail returns an injected transient error without calling the
	// inner transport.
	Fail
	// Hang blocks until the call's context is done, then returns its
	// error — a dead backend that accepts connections but never answers.
	Hang
	// Truncate forwards the call but cuts the response body short,
	// simulating a connection dropped mid-response.
	Truncate
	// Garble forwards the call but corrupts the response body,
	// simulating on-the-wire damage or a confused proxy.
	Garble
)

// FailN builds a script of n failures followed by recovery (subsequent
// calls pass): the canonical breaker-trip-then-half-open-probe
// scenario.
func FailN(n int) []Outcome {
	script := make([]Outcome, n)
	for i := range script {
		script[i] = Fail
	}
	return script
}

// Config tunes the injected faults. The zero value injects nothing.
type Config struct {
	// Script is consumed first, one Outcome per Send, before the
	// probabilistic rates apply; an exhausted script falls through to
	// the rates (all-zero rates mean recovery).
	Script []Outcome
	// ErrorRate in [0,1] is the probability a call fails with an
	// injected transient error.
	ErrorRate float64
	// TruncateRate in [0,1] is the probability a successful response
	// body is truncated.
	TruncateRate float64
	// GarbleRate in [0,1] is the probability a successful response body
	// is corrupted in place.
	GarbleRate float64
	// Latency is added to every forwarded call.
	Latency time.Duration
	// LatencyJitter adds a uniform draw from [0, LatencyJitter).
	LatencyJitter time.Duration
	// Seed makes the fault schedule deterministic; zero means seed 1.
	Seed int64
}

// Stats counts what the transport injected.
type Stats struct {
	Calls       int64 // total Sends
	Failures    int64 // injected errors
	Hangs       int64 // calls held until context expiry
	Truncations int64 // truncated response bodies
	Garbles     int64 // corrupted response bodies
}

// Transport is the fault-injecting wrapper.
type Transport struct {
	inner transport.Transport
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	pos   int // script position
	stats Stats
}

var _ transport.Transport = (*Transport)(nil)

// New wraps inner with fault injection per cfg.
func New(inner transport.Transport, cfg Config) *Transport {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Stats returns a snapshot of the injection counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Reset rewinds the script, reseeds the randomness, and zeroes the
// counters, replaying the schedule from the start.
func (t *Transport) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	seed := t.cfg.Seed
	if seed == 0 {
		seed = 1
	}
	t.rng = rand.New(rand.NewSource(seed))
	t.pos = 0
	t.stats = Stats{}
}

// SetScript replaces the script and rewinds to its start; the
// probabilistic rates are untouched. Used by scenario drivers that
// change backend behaviour mid-run (fail, then recover).
func (t *Transport) SetScript(script []Outcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Script = script
	t.pos = 0
}

// Send implements transport.Transport.
func (t *Transport) Send(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	outcome, delay, call := t.plan()

	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("faultify: latency wait: %w", ctx.Err())
		}
	}

	switch outcome {
	case Fail:
		t.count(func(s *Stats) { s.Failures++ })
		return nil, &injectedError{call: call}
	case Hang:
		t.count(func(s *Stats) { s.Hangs++ })
		<-ctx.Done()
		return nil, fmt.Errorf("faultify: backend hung: %w", ctx.Err())
	}

	resp, err := t.inner.Send(ctx, req)
	if err != nil || resp == nil {
		return resp, err
	}
	switch outcome {
	case Truncate:
		t.count(func(s *Stats) { s.Truncations++ })
		resp = &transport.Response{Body: truncateBody(resp.Body), Status: resp.Status, Header: resp.Header}
	case Garble:
		t.count(func(s *Stats) { s.Garbles++ })
		resp = &transport.Response{Body: garbleBody(resp.Body), Status: resp.Status, Header: resp.Header}
	}
	return resp, nil
}

// plan decides this call's outcome and injected latency under the lock.
func (t *Transport) plan() (Outcome, time.Duration, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Calls++
	call := t.stats.Calls

	delay := t.cfg.Latency
	if t.cfg.LatencyJitter > 0 {
		delay += time.Duration(t.rng.Int63n(int64(t.cfg.LatencyJitter)))
	}

	if t.pos < len(t.cfg.Script) {
		o := t.cfg.Script[t.pos]
		t.pos++
		return o, delay, call
	}
	switch {
	case t.cfg.ErrorRate > 0 && t.rng.Float64() < t.cfg.ErrorRate:
		return Fail, delay, call
	case t.cfg.TruncateRate > 0 && t.rng.Float64() < t.cfg.TruncateRate:
		return Truncate, delay, call
	case t.cfg.GarbleRate > 0 && t.rng.Float64() < t.cfg.GarbleRate:
		return Garble, delay, call
	}
	return Pass, delay, call
}

// count mutates stats under the lock.
func (t *Transport) count(f func(*Stats)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f(&t.stats)
}

// truncateBody cuts a body to half its length (always removing at least
// one byte of a non-empty body), producing an unterminated envelope.
func truncateBody(body []byte) []byte {
	if len(body) == 0 {
		return body
	}
	return body[:len(body)/2]
}

// garbleBody corrupts a copy of the body: every markup delimiter is
// flipped, producing ill-formed XML that still reaches the parser.
func garbleBody(body []byte) []byte {
	out := make([]byte, len(body))
	copy(out, body)
	for i, b := range out {
		if b == '<' || b == '>' {
			out[i] ^= 0x01
		}
	}
	return out
}
