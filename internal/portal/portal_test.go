package portal

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"repro/internal/rep"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/googleapi"
	"repro/internal/soap"
	"repro/internal/transport"
)

// newPortal wires a portal over the dummy Google dispatcher with a
// caching client, returning the site and the cache for inspection.
func newPortal(t *testing.T) (*Site, *core.Cache) {
	t.Helper()
	disp, codec, err := googleapi.NewDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	cache := core.MustNew(core.Config{
		KeyGen:     rep.NewStringKey(),
		Store:      rep.NewAutoStore(codec.Registry(), codec),
		DefaultTTL: time.Hour,
	})
	tr := &transport.InProcess{Handler: disp}
	opts := client.Options{RecordEvents: true, Handlers: []client.Handler{cache}}

	searchCall := client.NewCall(codec, tr, googleapi.Endpoint, googleapi.Namespace,
		googleapi.OpGoogleSearch, "urn:GoogleSearchAction", opts)
	spellCall := client.NewCall(codec, tr, googleapi.Endpoint, googleapi.Namespace,
		googleapi.OpSpellingSuggestion, "urn:GoogleSearchAction", opts)

	site := New(
		Backend{
			Name: "Web Search",
			Call: searchCall,
			Params: func(q string) []soap.Param {
				return googleapi.SearchParams("key", q, 0, 10, false, "", false, "")
			},
		},
		Backend{
			Name: "Did you mean",
			Call: spellCall,
			Params: func(q string) []soap.Param {
				return googleapi.SpellingParams("key", q)
			},
		},
	)
	return site, cache
}

func TestRenderContainsBackendResults(t *testing.T) {
	site, _ := newPortal(t)
	page, err := site.RenderContext(context.Background(), "golang caching")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Web Search", "Did you mean", "<ol>", "golang caching"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestRenderUsesCache(t *testing.T) {
	site, cache := newPortal(t)
	if _, err := site.RenderContext(context.Background(), "repeat me"); err != nil {
		t.Fatal(err)
	}
	s1 := cache.Stats()
	if s1.Stores == 0 {
		t.Fatal("first render stored nothing")
	}
	if _, err := site.RenderContext(context.Background(), "repeat me"); err != nil {
		t.Fatal(err)
	}
	s2 := cache.Stats()
	if s2.Hits != s1.Hits+2 {
		t.Errorf("second render hits = %d, want %d", s2.Hits, s1.Hits+2)
	}
}

func TestRenderDeterministicAcrossCacheHit(t *testing.T) {
	site, _ := newPortal(t)
	p1, err := site.RenderContext(context.Background(), "stable")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := site.RenderContext(context.Background(), "stable")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cached render differs from uncached")
	}
}

func TestServeHTTP(t *testing.T) {
	site, _ := newPortal(t)
	srv := httptest.NewServer(site)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?q=hello")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "hello") {
		t.Error("page missing query")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
}

func TestServeHTTPDefaultQuery(t *testing.T) {
	site, _ := newPortal(t)
	srv := httptest.NewServer(site)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestRenderBackendFailure(t *testing.T) {
	// A portal whose backend transport fails must surface the error.
	codec := soap.NewCodec(nil)
	_ = codec
	failing := client.NewCall(
		soap.NewCodec(nil),
		transportFailer{},
		"ep", "urn:x", "op", "", client.Options{},
	)
	site := New(Backend{
		Name:   "broken",
		Call:   failing,
		Params: func(string) []soap.Param { return nil },
	})
	if _, err := site.RenderContext(context.Background(), "q"); err == nil {
		t.Error("expected backend error")
	}
	srv := httptest.NewServer(site)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

type transportFailer struct{}

func (transportFailer) Send(_ context.Context, _ *transport.Request) (*transport.Response, error) {
	return nil, io.ErrUnexpectedEOF
}
