// Package portal implements the paper's motivating scenario (Sections
// 1 and 5.2): a portal site that renders an HTML page by calling
// back-end Web services — search, spelling, cached pages — through the
// caching client middleware. The load simulator stresses this handler
// to produce Figures 3 and 4.
package portal

import (
	"context"
	"fmt"
	"html"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/googleapi"
	"repro/internal/obs"
	"repro/internal/soap"
)

// Backend is one back-end Web service invocation the portal performs
// per page view.
type Backend struct {
	// Name labels the page section.
	Name string
	// Call is the (possibly caching) client call to invoke.
	Call *client.Call
	// Params maps the page query to the operation's parameters.
	Params func(query string) []soap.Param
}

// Site is the portal: an http.Handler rendering one page per request.
type Site struct {
	backends []Backend
	failSoft bool
	degraded atomic.Int64

	// reg/tracer record per-backend invocation latencies (the backend
	// stage, labelled by section name) and the portal.degraded counter;
	// set via Instrument, nil until then. timed gates clock reads.
	reg    *obs.Registry
	tracer obs.Tracer
	timed  bool
	now    func() time.Time
}

// New builds a Site over its back ends.
func New(backends ...Backend) *Site {
	return &Site{backends: backends, now: clock.Or(nil)}
}

// Instrument wires the site's observability: per-backend invocation
// latencies land in reg's backend stage (representation = section
// name), degraded renders in the portal.degraded counter, and tracer
// (when non-nil) receives an OnStage callback per backend call. Share
// reg with the backends' client and cache configs for one coherent
// /debug/wscache snapshot. Call before serving; not safe to call
// concurrently with Render.
func (s *Site) Instrument(reg *obs.Registry, tracer obs.Tracer) {
	s.reg = reg
	s.tracer = tracer
	s.timed = reg != nil || tracer != nil
}

// SetFailSoft switches the portal to degraded rendering: a failing
// back end yields an "unavailable" section instead of failing the whole
// page — one dead service must not take down the portal. Combined with
// the cache's StaleIfError, a section degrades to stale data first and
// to an apology only when nothing is cached.
func (s *Site) SetFailSoft(on bool) { s.failSoft = on }

// DegradedSections returns how many sections have rendered in degraded
// (unavailable) form since the site was built.
func (s *Site) DegradedSections() int64 { return s.degraded.Load() }

// Render produces the portal page for a query by invoking every back
// end through the client middleware.
//
// Deprecated: Render severs the page from its caller's cancellation by
// minting a root context per back-end call. Use RenderContext; HTTP
// handlers should pass r.Context() so an abandoned request stops
// invoking back ends.
func (s *Site) Render(query string) (string, error) {
	return s.RenderContext(context.Background(), query)
}

// RenderContext produces the portal page for a query by invoking every
// back end through the client middleware, under the caller's context:
// cancelling ctx aborts the remaining back-end invocations.
func (s *Site) RenderContext(ctx context.Context, query string) (string, error) {
	var b strings.Builder
	b.Grow(4096)
	b.WriteString("<!DOCTYPE html><html><head><title>Portal: ")
	b.WriteString(html.EscapeString(query))
	b.WriteString("</title></head><body><h1>Results for ")
	b.WriteString(html.EscapeString(query))
	b.WriteString("</h1>")
	for _, be := range s.backends {
		var start time.Time
		if s.timed {
			start = s.now()
		}
		result, err := be.Call.Invoke(ctx, be.Params(query)...)
		if s.timed {
			d := s.now().Sub(start)
			s.reg.Stage(obs.StageBackend, be.Name, d, err)
			if s.tracer != nil {
				s.tracer.OnStage(be.Call.Operation(), obs.StageBackend, be.Name, d, err)
			}
		}
		if err != nil {
			if !s.failSoft {
				return "", fmt.Errorf("portal: backend %s: %w", be.Name, err)
			}
			s.degraded.Add(1)
			s.reg.Add("portal.degraded", 1)
			b.WriteString(`<section class="degraded"><h2>`)
			b.WriteString(html.EscapeString(be.Name))
			b.WriteString("</h2><p>temporarily unavailable</p></section>")
			continue
		}
		b.WriteString("<section><h2>")
		b.WriteString(html.EscapeString(be.Name))
		b.WriteString("</h2>")
		renderResult(&b, result)
		b.WriteString("</section>")
	}
	b.WriteString("</body></html>")
	return b.String(), nil
}

// renderResult renders one back-end result into the page.
func renderResult(b *strings.Builder, result any) {
	switch r := result.(type) {
	case *googleapi.GoogleSearchResult:
		fmt.Fprintf(b, "<p>about %d results (%.3fs)</p><ol>", r.EstimatedTotalResultsCount, r.SearchTime)
		for i := range r.ResultElements {
			e := &r.ResultElements[i]
			fmt.Fprintf(b, `<li><a href="%s">%s</a><br/>%s</li>`,
				html.EscapeString(e.URL), html.EscapeString(e.Title), html.EscapeString(e.Snippet))
		}
		b.WriteString("</ol>")
	case string:
		b.WriteString("<p>")
		b.WriteString(html.EscapeString(r))
		b.WriteString("</p>")
	case []byte:
		fmt.Fprintf(b, "<p>cached page, %d bytes</p>", len(r))
	case nil:
		b.WriteString("<p>no result</p>")
	default:
		fmt.Fprintf(b, "<pre>%s</pre>", html.EscapeString(fmt.Sprintf("%+v", r)))
	}
}

// ServeHTTP implements http.Handler: GET /?q=term.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query().Get("q")
	if query == "" {
		query = "web services"
	}
	page, err := s.RenderContext(r.Context(), query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(page))
}
