package portal

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/soap"
)

// newMixedPortal wires one healthy backend (through the dummy Google
// dispatcher) and one whose transport always fails.
func newMixedPortal(t *testing.T) *Site {
	t.Helper()
	healthy, _ := newPortal(t)
	broken := client.NewCall(
		soap.NewCodec(nil),
		transportFailer{},
		"ep", "urn:x", "op", "", client.Options{},
	)
	backends := append([]Backend{}, healthy.backends...)
	backends = append(backends, Backend{
		Name:   "Broken Service",
		Call:   broken,
		Params: func(string) []soap.Param { return nil },
	})
	return New(backends...)
}

func TestFailSoftRendersDegradedSection(t *testing.T) {
	site := newMixedPortal(t)
	site.SetFailSoft(true)

	page, err := site.RenderContext(context.Background(), "resilient query")
	if err != nil {
		t.Fatalf("fail-soft render: %v", err)
	}
	// Healthy sections still render; the broken one degrades in place.
	for _, want := range []string{"Web Search", "Did you mean", "Broken Service", "temporarily unavailable"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	if site.DegradedSections() != 1 {
		t.Errorf("degraded sections = %d, want 1", site.DegradedSections())
	}
}

func TestFailSoftServesHTTP200(t *testing.T) {
	site := newMixedPortal(t)
	site.SetFailSoft(true)
	srv := httptest.NewServer(site)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?q=x")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200 under fail-soft", resp.StatusCode)
	}
}

func TestFailHardRemainsDefault(t *testing.T) {
	site := newMixedPortal(t)
	if _, err := site.RenderContext(context.Background(), "q"); err == nil {
		t.Error("default (fail-hard) portal must surface backend errors")
	}
}
