package amazonapi

import (
	"testing"
	"time"
)

func TestTable1Counts(t *testing.T) {
	// Table 1 lists 20 search operations and 6 cart operations.
	if len(SearchOperations) != 20 {
		t.Errorf("search operations = %d, want 20", len(SearchOperations))
	}
	if len(CartOperations) != 6 {
		t.Errorf("cart operations = %d, want 6", len(CartOperations))
	}
	seen := map[string]bool{}
	for _, op := range append(append([]string{}, SearchOperations...), CartOperations...) {
		if seen[op] {
			t.Errorf("duplicate operation %q", op)
		}
		seen[op] = true
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy(time.Hour)
	for _, op := range SearchOperations {
		got := p.For(op)
		if !got.Cacheable || got.TTL != time.Hour {
			t.Errorf("%s: %+v, want cacheable 1h", op, got)
		}
	}
	for _, op := range CartOperations {
		if p.For(op).Cacheable {
			t.Errorf("%s: cacheable, want uncacheable", op)
		}
	}
	if p.For("SomeFutureOperation").Cacheable {
		t.Error("unknown operations must default to uncacheable")
	}
	if got := len(p.CacheableOps()); got != 20 {
		t.Errorf("cacheable ops = %d", got)
	}
	if got := len(p.UncacheableOps()); got != 6 {
		t.Errorf("uncacheable ops = %d", got)
	}
}
