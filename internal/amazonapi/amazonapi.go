// Package amazonapi catalogs the Amazon Web services operations the
// paper lists in Table 1 and provides the cache-policy configuration
// the paper proposes for them: the twenty search operations are
// cacheable retrievals, the six shopping-cart operations are
// uncacheable updates (Section 3.2).
package amazonapi

import (
	"time"

	"repro/internal/core"
)

// Namespace is a representative target namespace for the service.
const Namespace = "urn:PI/DevCentral/SoapService"

// SearchOperations are the twenty cacheable retrieval operations
// (Table 1, upper part).
var SearchOperations = []string{
	"KeywordSearch",
	"TextStreamSearch",
	"PowerSearch",
	"BrowseNodeSearch",
	"AsinSearch",
	"BlendedSearch",
	"UpcSearch",
	"SkuSearch",
	"AuthorSearch",
	"ArtistSearch",
	"ActorSearch",
	"ManufacturerSearch",
	"DirectorSearch",
	"ListManiaSearch",
	"WishlistSearch",
	"ExchangeSearch",
	"MarketplaceSearch",
	"SellerProfileSearch",
	"SellerSearch",
	"SimilaritySearch",
}

// CartOperations are the six uncacheable shopping-cart and transaction
// operations (Table 1, lower part).
var CartOperations = []string{
	"GetShoppingCart",
	"ClearShoppingCart",
	"AddShoppingCartItems",
	"RemoveShoppingCartItems",
	"ModifyShoppingCartItems",
	"GetTransactionDetails",
}

// DefaultPolicy returns the paper's suggested cache policy for Amazon
// Web services: search operations cacheable with the given TTL,
// shopping-cart operations explicitly uncacheable, anything unknown
// uncacheable (fail safe).
func DefaultPolicy(ttl time.Duration) core.Policy {
	ops := make(map[string]core.OperationPolicy, len(SearchOperations)+len(CartOperations))
	for _, name := range SearchOperations {
		ops[name] = core.OperationPolicy{Cacheable: true, TTL: ttl}
	}
	for _, name := range CartOperations {
		ops[name] = core.OperationPolicy{Cacheable: false}
	}
	return core.Policy{
		Default:         core.OperationPolicy{Cacheable: false},
		DefaultExplicit: true,
		Operations:      ops,
	}
}
