package memsize

import "testing"

type small struct {
	A int
	B string
}

type linked struct {
	V    int
	Next *linked
}

func TestScalars(t *testing.T) {
	if got := Of(int64(1)); got != 8 {
		t.Errorf("int64 = %d", got)
	}
	if got := Of(true); got != 1 {
		t.Errorf("bool = %d", got)
	}
	if got := Of(nil); got != 0 {
		t.Errorf("nil = %d", got)
	}
}

func TestString(t *testing.T) {
	// String header (2 words) + bytes.
	want := 2*WordSize + 5
	if got := Of("hello"); got != want {
		t.Errorf("string = %d, want %d", got, want)
	}
}

func TestByteSlice(t *testing.T) {
	// Slice header (3 words) + backing bytes.
	want := 3*WordSize + 100
	if got := Of(make([]byte, 100)); got != want {
		t.Errorf("[]byte = %d, want %d", got, want)
	}
}

func TestStructWithString(t *testing.T) {
	v := small{A: 1, B: "abcd"}
	// struct size already includes the string header; add the bytes.
	base := Of(small{A: 1})
	if got := Of(v); got != base+4 {
		t.Errorf("struct = %d, want %d", got, base+4)
	}
}

func TestPointerCountedOnce(t *testing.T) {
	shared := &small{B: "xxxx"}
	type two struct{ P, Q *small }
	v := two{P: shared, Q: shared}
	single := Of(two{P: shared})
	if got := Of(v); got != single {
		t.Errorf("shared pointer double counted: %d vs %d", got, single)
	}
}

func TestCycleTerminates(t *testing.T) {
	a := &linked{V: 1}
	b := &linked{V: 2, Next: a}
	a.Next = b
	if got := Of(a); got <= 0 {
		t.Errorf("cycle size = %d", got)
	}
}

func TestSliceOfStructs(t *testing.T) {
	v := []small{{B: "aa"}, {B: "bbb"}}
	got := Of(v)
	// Header + 2 elements + 5 string bytes.
	want := 3*WordSize + 2*int(sizeofSmall()) + 5
	if got != want {
		t.Errorf("slice = %d, want %d", got, want)
	}
}

func sizeofSmall() uintptr {
	var s small
	return sizeof(s)
}

func sizeof(v any) uintptr {
	switch v.(type) {
	case small:
		return uintptr(8 + 2*WordSize)
	default:
		return 0
	}
}

func TestMap(t *testing.T) {
	m := map[string]int{"a": 1, "bb": 2}
	got := Of(m)
	if got <= 0 {
		t.Errorf("map = %d", got)
	}
	// Larger map reports larger size.
	m2 := map[string]int{"a": 1, "bb": 2, "ccc": 3}
	if Of(m2) <= got {
		t.Error("bigger map not bigger")
	}
}

func TestNilSliceVsEmpty(t *testing.T) {
	var nilSlice []byte
	if Of(nilSlice) != 3*WordSize {
		t.Errorf("nil slice = %d", Of(nilSlice))
	}
}

func TestInterfaceField(t *testing.T) {
	type holder struct{ V any }
	h := holder{V: "abcdefgh"}
	if got, want := Of(h), Of(holder{})+2*WordSize+8; got < want {
		t.Errorf("interface holder = %d, want >= %d", got, want)
	}
}

func TestMonotonicInStructure(t *testing.T) {
	small1 := &small{B: "x"}
	big := &small{B: "xxxxxxxxxxxxxxxxxxxxxxxx"}
	if Of(big) <= Of(small1) {
		t.Error("bigger payload not bigger")
	}
}
