// Package memsize estimates the deep in-memory footprint of Go values.
// The paper's Tables 8 and 9 compare the memory consumed by each cache
// key and cache value representation; this package provides the
// measuring stick. Shared referents are counted once, as they are in
// the heap.
package memsize

import (
	"reflect"
	"unsafe"
)

// Of returns the estimated deep size of v in bytes: the value itself
// plus everything it references. Strings' backing bytes are counted;
// pointers shared within the graph are counted once.
func Of(v any) int {
	if v == nil {
		return 0
	}
	seen := make(map[seenKey]bool)
	return sizeOf(reflect.ValueOf(v), seen, true)
}

// seenKey identifies a visited referent by address and type (a struct
// and its first field share an address but are distinct referents).
type seenKey struct {
	ptr uintptr
	typ reflect.Type
}

// sizeOf computes the size of rv. top marks the outermost call, where
// the value's own storage must be counted; for struct fields and array
// elements the containing object's size already includes them.
func sizeOf(rv reflect.Value, seen map[seenKey]bool, top bool) int {
	size := 0
	if top {
		size += int(rv.Type().Size())
	}
	switch rv.Kind() {
	case reflect.String:
		size += rv.Len()

	case reflect.Pointer:
		if rv.IsNil() {
			return size
		}
		key := seenKey{ptr: rv.Pointer(), typ: rv.Type()}
		if seen[key] {
			return size
		}
		seen[key] = true
		size += sizeOf(rv.Elem(), seen, true)

	case reflect.Slice:
		if rv.IsNil() {
			return size
		}
		key := seenKey{ptr: rv.Pointer(), typ: rv.Type()}
		if seen[key] {
			return size
		}
		seen[key] = true
		elem := rv.Type().Elem()
		// Backing array storage for the full capacity is owned by the
		// slice; count len for simplicity and stability.
		size += rv.Len() * int(elem.Size())
		if hasPointers(elem) {
			for i := 0; i < rv.Len(); i++ {
				size += sizeOf(rv.Index(i), seen, false)
			}
		}

	case reflect.Array:
		if hasPointers(rv.Type().Elem()) {
			for i := 0; i < rv.Len(); i++ {
				size += sizeOf(rv.Index(i), seen, false)
			}
		}

	case reflect.Map:
		if rv.IsNil() {
			return size
		}
		key := seenKey{ptr: rv.Pointer(), typ: rv.Type()}
		if seen[key] {
			return size
		}
		seen[key] = true
		kt, vt := rv.Type().Key(), rv.Type().Elem()
		size += rv.Len() * int(kt.Size()+vt.Size())
		iter := rv.MapRange()
		for iter.Next() {
			if hasPointers(kt) {
				size += sizeOf(iter.Key(), seen, false)
			}
			if hasPointers(vt) {
				size += sizeOf(iter.Value(), seen, false)
			}
		}

	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			f := rv.Field(i)
			if hasPointers(f.Type()) {
				size += sizeOf(f, seen, false)
			}
		}

	case reflect.Interface:
		if rv.IsNil() {
			return size
		}
		size += sizeOf(rv.Elem(), seen, true)
	}
	return size
}

// hasPointers reports whether values of t can reference further heap
// storage, so leaf-only subtrees are skipped wholesale.
func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// WordSize is the machine word size in bytes, exported for tests that
// reason about expected sizes.
const WordSize = int(unsafe.Sizeof(uintptr(0)))
