// Package binser is a compact reflection-driven binary serializer for
// application-object graphs: the repository's working analog of Java
// serialization (paper Sections 4.1.2-A and 4.2.3-A).
//
// Why not encoding/gob: gob's per-message overhead (encoder setup,
// message framing, interface type names) dominates at the kilobyte
// message sizes of this workload, making it slower than XML processing
// and inverting the paper's ordering. Java serialization has no such
// floor, and neither does this encoder; gob remains in the tree for the
// ablation benchmarks that document the difference.
//
// The format is self-describing: every value carries a kind tag, and
// struct values carry the qualified XML name under which their Go type
// is registered in the typemap registry — the analog of a Java class
// implementing Serializable with a well-known name. Unregistered struct
// types and structs with unexported fields are rejected, mirroring the
// NotSerializableException limitation of the Java mechanism.
package binser

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"

	"repro/internal/typemap"
)

// Kind tags of the wire format.
const (
	tagNil byte = iota + 1
	tagTrue
	tagFalse
	tagInt    // zigzag varint
	tagUint   // varint
	tagFloat  // 8-byte IEEE 754 big endian
	tagString // varint length + bytes
	tagBytes  // varint length + raw bytes
	tagSlice  // element count + elements
	tagStruct // type name + field count + (name index omitted: field order)
	tagMap    // pair count + key/value pairs
)

// kindNames for error messages.
var kindNames = map[byte]string{
	tagNil: "nil", tagTrue: "true", tagFalse: "false", tagInt: "int",
	tagUint: "uint", tagFloat: "float", tagString: "string",
	tagBytes: "bytes", tagSlice: "slice", tagStruct: "struct", tagMap: "map",
}

// maxDepth bounds recursion: the serializer supports trees and DAGs by
// duplication but not cycles.
const maxDepth = 1000

// Codec serializes values against a type registry.
type Codec struct {
	reg *typemap.Registry
}

// NewCodec returns a Codec using reg for struct-type names.
func NewCodec(reg *typemap.Registry) *Codec {
	return &Codec{reg: reg}
}

// Marshal serializes v.
func (c *Codec) Marshal(v any) ([]byte, error) {
	return c.Append(make([]byte, 0, 256), v)
}

// Append serializes v onto buf and returns the extended buffer; key
// generation uses it to serialize several parameters into one buffer.
func (c *Codec) Append(buf []byte, v any) ([]byte, error) {
	if v == nil {
		return append(buf, tagNil), nil
	}
	return c.encode(buf, reflect.ValueOf(v), 0)
}

// Unmarshal deserializes one value from data.
func (c *Codec) Unmarshal(data []byte) (any, error) {
	v, rest, err := c.decode(data, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("binser: %d trailing bytes", len(rest))
	}
	return v, nil
}

// encode appends rv's serialized form to buf.
func (c *Codec) encode(buf []byte, rv reflect.Value, depth int) ([]byte, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("binser: object graph deeper than %d (cycle?)", maxDepth)
	}
	switch rv.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(buf, tagTrue), nil
		}
		return append(buf, tagFalse), nil

	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		buf = append(buf, tagInt)
		return binary.AppendVarint(buf, rv.Int()), nil

	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		buf = append(buf, tagUint)
		return binary.AppendUvarint(buf, rv.Uint()), nil

	case reflect.Float32, reflect.Float64:
		buf = append(buf, tagFloat)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(rv.Float())), nil

	case reflect.String:
		buf = append(buf, tagString)
		s := rv.String()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...), nil

	case reflect.Slice, reflect.Array:
		if rv.Kind() == reflect.Slice && rv.IsNil() {
			// Nil-ness survives the round trip (nil ≠ empty).
			return append(buf, tagNil), nil
		}
		if rv.Kind() == reflect.Slice && rv.Type().Elem().Kind() == reflect.Uint8 {
			buf = append(buf, tagBytes)
			b := rv.Bytes()
			buf = binary.AppendUvarint(buf, uint64(len(b)))
			return append(buf, b...), nil
		}
		buf = append(buf, tagSlice)
		buf = binary.AppendUvarint(buf, uint64(rv.Len()))
		var err error
		for i := 0; i < rv.Len(); i++ {
			buf, err = c.encode(buf, rv.Index(i), depth+1)
			if err != nil {
				return nil, err
			}
		}
		return buf, nil

	case reflect.Map:
		if rv.IsNil() {
			return append(buf, tagNil), nil
		}
		buf = append(buf, tagMap)
		buf = binary.AppendUvarint(buf, uint64(rv.Len()))
		// Keys are sorted so the encoding is deterministic — a cache
		// key derived from a map parameter must be stable across calls.
		keys := rv.MapKeys()
		sort.Slice(keys, func(i, j int) bool {
			return fmt.Sprint(keys[i].Interface()) < fmt.Sprint(keys[j].Interface())
		})
		var err error
		for _, k := range keys {
			buf, err = c.encode(buf, k, depth+1)
			if err != nil {
				return nil, err
			}
			buf, err = c.encode(buf, rv.MapIndex(k), depth+1)
			if err != nil {
				return nil, err
			}
		}
		return buf, nil

	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return append(buf, tagNil), nil
		}
		return c.encode(buf, rv.Elem(), depth+1)

	case reflect.Struct:
		t := rv.Type()
		q, ok := c.reg.NameForType(t)
		if !ok {
			return nil, &NotSerializableError{Type: t, Reason: "type not registered"}
		}
		info := c.reg.InfoForType(t)
		if len(info.Fields) != t.NumField() {
			return nil, &NotSerializableError{Type: t, Reason: "has unexported or skipped fields"}
		}
		buf = append(buf, tagStruct)
		name := q.String()
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, uint64(len(info.Fields)))
		var err error
		for _, f := range info.Fields {
			buf, err = c.encode(buf, rv.Field(f.Index), depth+1)
			if err != nil {
				return nil, err
			}
		}
		return buf, nil

	default:
		return nil, &NotSerializableError{Type: rv.Type(), Reason: "unsupported kind " + rv.Kind().String()}
	}
}

// decode reads one value, returning it and the remaining bytes.
// Structs decode to pointers of their registered Go type; slices of
// structs to []T; simple values to their natural Go types.
func (c *Codec) decode(data []byte, depth int) (any, []byte, error) {
	if depth > maxDepth {
		return nil, nil, fmt.Errorf("binser: nesting deeper than %d", maxDepth)
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("binser: truncated input")
	}
	tag := data[0]
	data = data[1:]
	switch tag {
	case tagNil:
		return nil, data, nil
	case tagTrue:
		return true, data, nil
	case tagFalse:
		return false, data, nil
	case tagInt:
		n, sz := binary.Varint(data)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("binser: bad varint")
		}
		return int(n), data[sz:], nil
	case tagUint:
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("binser: bad uvarint")
		}
		return uint64(n), data[sz:], nil
	case tagFloat:
		if len(data) < 8 {
			return nil, nil, fmt.Errorf("binser: truncated float")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(data)), data[8:], nil
	case tagString:
		s, rest, err := readLenBytes(data)
		if err != nil {
			return nil, nil, err
		}
		return string(s), rest, nil
	case tagBytes:
		b, rest, err := readLenBytes(data)
		if err != nil {
			return nil, nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, rest, nil
	case tagSlice:
		return c.decodeSlice(data, depth)
	case tagMap:
		return c.decodeMap(data, depth)
	case tagStruct:
		return c.decodeStruct(data, depth)
	default:
		return nil, nil, fmt.Errorf("binser: unknown tag %d", tag)
	}
}

// decodeSlice reads a tagSlice body. Homogeneous struct slices decode
// to []T; everything else to []any.
func (c *Codec) decodeSlice(data []byte, depth int) (any, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("binser: bad slice length")
	}
	data = data[sz:]
	items := make([]any, 0, n)
	for i := uint64(0); i < n; i++ {
		v, rest, err := c.decode(data, depth+1)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, v)
		data = rest
	}
	return c.normalizeSlice(items), data, nil
}

// normalizeSlice converts []any of homogeneous values into a typed
// slice so round-trips preserve []T shapes.
func (c *Codec) normalizeSlice(items []any) any {
	if len(items) == 0 {
		return []any{}
	}
	first := reflect.TypeOf(items[0])
	if first == nil {
		return items
	}
	elem := first
	// Struct items decode as *T; a slice of them normalizes to []T.
	deref := elem.Kind() == reflect.Pointer && elem.Elem().Kind() == reflect.Struct
	if deref {
		elem = elem.Elem()
	}
	for _, it := range items[1:] {
		if reflect.TypeOf(it) != first {
			return items
		}
	}
	out := reflect.MakeSlice(reflect.SliceOf(elem), len(items), len(items))
	for i, it := range items {
		v := reflect.ValueOf(it)
		if deref {
			v = v.Elem()
		}
		out.Index(i).Set(v)
	}
	return out.Interface()
}

// decodeMap reads a tagMap body into a map[string]any (string keys) or
// map[any]any equivalent; heterogeneous keys decode to []any pairs.
func (c *Codec) decodeMap(data []byte, depth int) (any, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("binser: bad map length")
	}
	data = data[sz:]
	out := make(map[string]any, n)
	for i := uint64(0); i < n; i++ {
		k, rest, err := c.decode(data, depth+1)
		if err != nil {
			return nil, nil, err
		}
		v, rest2, err := c.decode(rest, depth+1)
		if err != nil {
			return nil, nil, err
		}
		ks, ok := k.(string)
		if !ok {
			return nil, nil, fmt.Errorf("binser: only string map keys decode (got %T)", k)
		}
		out[ks] = v
		data = rest2
	}
	return out, data, nil
}

// decodeStruct reads a tagStruct body and reconstructs *T for the
// registered type.
func (c *Codec) decodeStruct(data []byte, depth int) (any, []byte, error) {
	nameBytes, rest, err := readLenBytes(data)
	if err != nil {
		return nil, nil, err
	}
	data = rest
	q, err := parseQName(string(nameBytes))
	if err != nil {
		return nil, nil, err
	}
	t, ok := c.reg.TypeFor(q)
	if !ok {
		return nil, nil, fmt.Errorf("binser: unknown struct type %s", q)
	}
	nf, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("binser: bad field count")
	}
	data = data[sz:]
	info := c.reg.InfoForType(t)
	if int(nf) != len(info.Fields) {
		return nil, nil, fmt.Errorf("binser: %s field count %d, expected %d", q, nf, len(info.Fields))
	}
	ptr := reflect.New(t)
	sv := ptr.Elem()
	for _, f := range info.Fields {
		v, rest, err := c.decode(data, depth+1)
		if err != nil {
			return nil, nil, err
		}
		data = rest
		if err := setField(sv.Field(f.Index), v); err != nil {
			return nil, nil, fmt.Errorf("binser: %s.%s: %w", q, f.GoName, err)
		}
	}
	return ptr.Interface(), data, nil
}

// setField assigns a decoded value into a struct field, adapting
// pointers and numeric widths.
func setField(dst reflect.Value, v any) error {
	if v == nil {
		return nil // leave zero
	}
	sv := reflect.ValueOf(v)
	if dst.Kind() == reflect.Pointer {
		p := reflect.New(dst.Type().Elem())
		if err := setField(p.Elem(), v); err != nil {
			return err
		}
		dst.Set(p)
		return nil
	}
	// Struct fields decode as *T but may be declared as T.
	if sv.Kind() == reflect.Pointer && dst.Kind() == reflect.Struct {
		sv = sv.Elem()
	}
	if sv.Type().AssignableTo(dst.Type()) {
		dst.Set(sv)
		return nil
	}
	if sv.Type().ConvertibleTo(dst.Type()) {
		switch dst.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.String:
			dst.Set(sv.Convert(dst.Type()))
			return nil
		case reflect.Slice:
			if sv.Kind() == reflect.Slice {
				dst.Set(sv.Convert(dst.Type()))
				return nil
			}
		}
	}
	// map[string]any → typed map.
	if sv.Kind() == reflect.Map && dst.Kind() == reflect.Map {
		out := reflect.MakeMapWithSize(dst.Type(), sv.Len())
		iter := sv.MapRange()
		for iter.Next() {
			kv := reflect.New(dst.Type().Key()).Elem()
			vv := reflect.New(dst.Type().Elem()).Elem()
			k, v := iter.Key(), iter.Value()
			if k.Kind() == reflect.Interface {
				k = k.Elem()
			}
			if v.Kind() == reflect.Interface {
				v = v.Elem()
			}
			if err := setField(kv, k.Interface()); err != nil {
				return err
			}
			if err := setField(vv, v.Interface()); err != nil {
				return err
			}
			out.SetMapIndex(kv, vv)
		}
		dst.Set(out)
		return nil
	}
	// []any → typed slice attempt (empty slices and mixed content).
	if sv.Kind() == reflect.Slice && dst.Kind() == reflect.Slice {
		out := reflect.MakeSlice(dst.Type(), sv.Len(), sv.Len())
		for i := 0; i < sv.Len(); i++ {
			ev := sv.Index(i)
			if ev.Kind() == reflect.Interface {
				ev = ev.Elem()
			}
			if err := setField(out.Index(i), ev.Interface()); err != nil {
				return err
			}
		}
		dst.Set(out)
		return nil
	}
	return fmt.Errorf("cannot assign %T to %s", v, dst.Type())
}

// readLenBytes reads a uvarint length prefix and that many bytes.
func readLenBytes(data []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("binser: bad length prefix")
	}
	data = data[sz:]
	if uint64(len(data)) < n {
		return nil, nil, fmt.Errorf("binser: truncated value (want %d bytes, have %d)", n, len(data))
	}
	return data[:n], data[n:], nil
}

// parseQName parses Clark notation ({space}local) produced by
// typemap.QName.String.
func parseQName(s string) (typemap.QName, error) {
	if len(s) == 0 {
		return typemap.QName{}, fmt.Errorf("binser: empty type name")
	}
	if s[0] != '{' {
		return typemap.QName{Local: s}, nil
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '}' {
			return typemap.QName{Space: s[1:i], Local: s[i+1:]}, nil
		}
	}
	return typemap.QName{}, fmt.Errorf("binser: malformed type name %q", s)
}

// NotSerializableError reports a value the binary serializer cannot
// encode — the analog of java.io.NotSerializableException.
type NotSerializableError struct {
	Type   reflect.Type
	Reason string
}

// Error implements the error interface.
func (e *NotSerializableError) Error() string {
	return fmt.Sprintf("binser: %s is not serializable: %s", e.Type, e.Reason)
}

// KindName returns the format tag name for diagnostics and tests.
func KindName(tag byte) string {
	if n, ok := kindNames[tag]; ok {
		return n
	}
	return fmt.Sprintf("tag(%d)", tag)
}
