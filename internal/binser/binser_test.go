package binser

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/typemap"
)

type inner struct {
	Label string
}

type outer struct {
	Name    string
	Count   int
	Big     int64
	Small   int8
	U       uint32
	Ratio   float64
	F32     float32
	Flag    bool
	Blob    []byte
	Tags    []string
	Inner   inner
	PtrTo   *inner
	Items   []inner
	Mapping map[string]string
}

type hidden struct {
	Public string
	secret int //nolint:unused
}

func newTestCodec(t *testing.T) *Codec {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: "urn:t", Local: "Inner"}, inner{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(typemap.QName{Space: "urn:t", Local: "Outer"}, outer{}); err != nil {
		t.Fatal(err)
	}
	return NewCodec(reg)
}

func TestRoundTripPrimitives(t *testing.T) {
	c := newTestCodec(t)
	cases := []any{
		nil, "hello", "", true, false,
		int(42), int(-42), int(0),
		float64(3.14159), float64(0), math.Inf(1),
		[]byte{0, 1, 2, 255},
	}
	for _, v := range cases {
		data, err := c.Marshal(v)
		if err != nil {
			t.Fatalf("%#v: %v", v, err)
		}
		got, err := c.Unmarshal(data)
		if err != nil {
			t.Fatalf("%#v: %v", v, err)
		}
		if b, ok := v.([]byte); ok {
			if !bytes.Equal(got.([]byte), b) {
				t.Errorf("bytes: got %v", got)
			}
			continue
		}
		if got != v {
			t.Errorf("got %#v (%T), want %#v (%T)", got, got, v, v)
		}
	}
}

func TestRoundTripStruct(t *testing.T) {
	c := newTestCodec(t)
	orig := &outer{
		Name:    "x",
		Count:   7,
		Big:     1 << 40,
		Small:   -5,
		U:       123456,
		Ratio:   2.5,
		F32:     1.25,
		Flag:    true,
		Blob:    []byte{9, 8},
		Tags:    []string{"a", "b"},
		Inner:   inner{Label: "in"},
		PtrTo:   &inner{Label: "ptr"},
		Items:   []inner{{Label: "i1"}, {Label: "i2"}},
		Mapping: map[string]string{"k": "v"},
	}
	data, err := c.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := got.(*outer)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	// Maps decode as map[string]any; compare the rest directly.
	wantMap := orig.Mapping
	origNoMap := *orig
	origNoMap.Mapping = nil
	outMap := out.Mapping
	outNoMap := *out
	outNoMap.Mapping = nil
	if !reflect.DeepEqual(&origNoMap, &outNoMap) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", &origNoMap, &outNoMap)
	}
	if len(outMap) != len(wantMap) || outMap["k"] != "v" {
		t.Errorf("map = %v", outMap)
	}
}

func TestNilFieldsStayNil(t *testing.T) {
	c := newTestCodec(t)
	data, err := c.Marshal(&outer{Name: "n"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	out := got.(*outer)
	if out.PtrTo != nil {
		t.Error("nil pointer materialized")
	}
	if out.Name != "n" {
		t.Errorf("name = %q", out.Name)
	}
}

func TestDecodedIsIndependent(t *testing.T) {
	c := newTestCodec(t)
	orig := &outer{Blob: []byte{1}, Tags: []string{"t"}, Items: []inner{{Label: "x"}}}
	data, err := c.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.Unmarshal(data)
	out := got.(*outer)
	out.Blob[0] = 99
	out.Tags[0] = "mutated"
	out.Items[0].Label = "mutated"
	if orig.Blob[0] != 1 || orig.Tags[0] != "t" || orig.Items[0].Label != "x" {
		t.Error("decode aliased the original")
	}
	// Payload itself is immune too: decode again.
	got2, _ := c.Unmarshal(data)
	if got2.(*outer).Tags[0] != "t" {
		t.Error("payload mutated")
	}
}

func TestUnregisteredStructRejected(t *testing.T) {
	c := newTestCodec(t)
	type unknown struct{ X int }
	_, err := c.Marshal(&unknown{})
	var nse *NotSerializableError
	if !errors.As(err, &nse) {
		t.Errorf("err = %v, want NotSerializableError", err)
	}
}

func TestUnexportedFieldsRejected(t *testing.T) {
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Local: "Hidden"}, hidden{}); err != nil {
		t.Fatal(err)
	}
	c := NewCodec(reg)
	if _, err := c.Marshal(&hidden{Public: "x"}); err == nil {
		t.Error("struct with unexported field accepted")
	}
}

func TestUnsupportedKinds(t *testing.T) {
	c := newTestCodec(t)
	if _, err := c.Marshal(func() {}); err == nil {
		t.Error("func accepted")
	}
	if _, err := c.Marshal(make(chan int)); err == nil {
		t.Error("chan accepted")
	}
}

func TestCycleDetected(t *testing.T) {
	type node struct {
		Next *node
	}
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Local: "Node"}, node{}); err != nil {
		t.Fatal(err)
	}
	c := NewCodec(reg)
	n := &node{}
	n.Next = n
	if _, err := c.Marshal(n); err == nil {
		t.Error("cycle accepted (should exceed depth limit)")
	}
}

func TestTruncatedAndMalformedInput(t *testing.T) {
	c := newTestCodec(t)
	data, err := c.Marshal(&outer{Name: "x", Tags: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := c.Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := c.Unmarshal([]byte{255}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := c.Unmarshal(append(append([]byte{}, data...), 0xEE)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUnknownStructNameRejected(t *testing.T) {
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: "urn:t", Local: "Inner"}, inner{}); err != nil {
		t.Fatal(err)
	}
	data, err := NewCodec(reg).Marshal(&inner{Label: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// A decoder without the registration must reject it.
	empty := NewCodec(typemap.NewRegistry())
	if _, err := empty.Unmarshal(data); err == nil {
		t.Error("unknown struct type accepted")
	}
}

func TestAppendComposesKeys(t *testing.T) {
	c := newTestCodec(t)
	buf := []byte("prefix")
	buf, err := c.Append(buf, "a")
	if err != nil {
		t.Fatal(err)
	}
	buf, err = c.Append(buf, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte("prefix")) {
		t.Error("prefix lost")
	}
	// Different values yield different buffers.
	buf2, _ := c.Append([]byte("prefix"), "a")
	buf2, _ = c.Append(buf2, 43)
	if bytes.Equal(buf, buf2) {
		t.Error("different values, same bytes")
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := newTestCodec(t)
	f := func(name string, count int, ratio float64, flag bool, tags []string, blob []byte) bool {
		orig := &outer{Name: name, Count: count, Ratio: ratio, Flag: flag, Tags: tags, Blob: blob}
		data, err := c.Marshal(orig)
		if err != nil {
			return false
		}
		got, err := c.Unmarshal(data)
		if err != nil {
			return false
		}
		out := got.(*outer)
		if out.Name != name || out.Count != count || out.Flag != flag {
			return false
		}
		if ratio == ratio && out.Ratio != ratio { // NaN-tolerant
			return false
		}
		if len(out.Tags) != len(tags) || len(out.Blob) != len(blob) {
			return false
		}
		for i := range tags {
			if out.Tags[i] != tags[i] {
				return false
			}
		}
		return bytes.Equal(out.Blob, blob) || (len(blob) == 0 && len(out.Blob) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	c := newTestCodec(t)
	v := &outer{Name: "same", Count: 1, Tags: []string{"a", "b"}}
	d1, err := c.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("encoding not deterministic")
	}
}

func TestKindName(t *testing.T) {
	if KindName(tagStruct) != "struct" || KindName(200) == "" {
		t.Error("KindName broken")
	}
}

func TestMapEncodingDeterministic(t *testing.T) {
	c := newTestCodec(t)
	v := &outer{Mapping: map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"}}
	d1, err := c.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d2, err := c.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d1, d2) {
			t.Fatal("map encoding not deterministic (iteration order leaked)")
		}
	}
}
