package rep

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/client"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// KeySpec is one registered cache key strategy: the generator plus its
// Table 2 row.
type KeySpec struct {
	// Name is the short resolvable name ("string", "gob", ...).
	Name string
	// Gen is the strategy itself.
	Gen KeyGenerator
	// Info is the strategy's Table 2 row.
	Info RepresentationInfo
}

// ValueSpec is one registered cache value representation: the store,
// its Table 3 row, an applicability predicate, and the label its stage
// latencies are recorded under in the obs layer.
type ValueSpec struct {
	// Name is the short resolvable name ("sax", "ref", ...).
	Name string
	// Store is the representation itself.
	Store ValueStore
	// Info is the representation's Table 3 row.
	Info RepresentationInfo
	// Stage is the representation label used for obs stage series; by
	// convention Store.Name(), matching the copyin/copyout series the
	// cache core records.
	Stage string
	// Applicable reports whether the representation can hold this
	// invocation's result — the Table 3 limitation as a predicate. It
	// must be cheap (the selector consults it per fill); a
	// representation may still decline at Store time for concrete
	// values the type-level check cannot see.
	Applicable func(ictx *client.Context) bool
}

// Registry is the name → representation catalog the other layers
// resolve against: core's config, the server-side response cache, and
// the cmd/* -rep flags all name representations instead of
// constructing concrete stores. It wraps the typemap registry (type
// analysis) and the SOAP codec (message-level representations) the
// concrete stores need.
//
// The two selection policies resolve like representations: "auto" is
// the static Section 6 classifier and "adaptive" the measured-cost
// selector; Store returns a fresh selector per call so independent
// caches keep independent cost models.
type Registry struct {
	types *typemap.Registry
	codec *soap.Codec

	mu         sync.RWMutex
	keys       map[string]*KeySpec
	keyOrder   []string
	values     map[string]*ValueSpec
	valueOrder []string
}

// NewRegistry returns a registry pre-populated with every built-in key
// strategy and value representation, bound to the given type registry
// and codec.
func NewRegistry(types *typemap.Registry, codec *soap.Codec) *Registry {
	r := &Registry{
		types:  types,
		codec:  codec,
		keys:   make(map[string]*KeySpec),
		values: make(map[string]*ValueSpec),
	}
	r.registerBuiltins()
	return r
}

// Types returns the underlying type registry.
func (r *Registry) Types() *typemap.Registry { return r.types }

// Codec returns the underlying SOAP codec.
func (r *Registry) Codec() *soap.Codec { return r.codec }

// RegisterType binds an XML qualified name to the Go type of prototype
// in the underlying type registry — the same contract as
// typemap.Registry.Register, re-exported so application packages can
// write their RegisterTypes hook against the representation layer
// alone.
func (r *Registry) RegisterType(name typemap.QName, prototype any) error {
	return r.types.Register(name, prototype)
}

// RegisterKey adds (or replaces) a key strategy under spec.Name.
func (r *Registry) RegisterKey(spec KeySpec) error {
	if spec.Name == "" || spec.Gen == nil {
		return fmt.Errorf("rep: registry: key spec needs a name and a generator")
	}
	name := strings.ToLower(spec.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.keys[name]; !ok {
		r.keyOrder = append(r.keyOrder, name)
	}
	r.keys[name] = &spec
	return nil
}

// RegisterValue adds (or replaces) a value representation under
// spec.Name. A nil Applicable means "always applicable"; an empty
// Stage defaults to Store.Name().
func (r *Registry) RegisterValue(spec ValueSpec) error {
	if spec.Name == "" || spec.Store == nil {
		return fmt.Errorf("rep: registry: value spec needs a name and a store")
	}
	if spec.Stage == "" {
		spec.Stage = spec.Store.Name()
	}
	if spec.Applicable == nil {
		spec.Applicable = func(*client.Context) bool { return true }
	}
	name := strings.ToLower(spec.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.values[name]; !ok {
		r.valueOrder = append(r.valueOrder, name)
	}
	r.values[name] = &spec
	return nil
}

// Key resolves a key strategy by short name or display name
// (case-insensitive).
func (r *Registry) Key(name string) (KeyGenerator, error) {
	spec, err := r.KeySpecFor(name)
	if err != nil {
		return nil, err
	}
	return spec.Gen, nil
}

// KeySpecFor resolves a key spec by short name or display name.
func (r *Registry) KeySpecFor(name string) (*KeySpec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if spec, ok := r.keys[strings.ToLower(name)]; ok {
		return spec, nil
	}
	for _, spec := range r.keys {
		if strings.EqualFold(spec.Gen.Name(), name) {
			return spec, nil
		}
	}
	return nil, fmt.Errorf("rep: registry: unknown key strategy %q (have %s)",
		name, strings.Join(r.keyNamesLocked(), ", "))
}

// Store resolves a value store by short name or display name
// (case-insensitive). Two names resolve to selection policies rather
// than registered representations: "auto" returns the static Section 6
// classifier and "adaptive" a fresh AdaptiveSelector over this
// registry's representations (fresh per call, so independent caches
// keep independent cost models).
func (r *Registry) Store(name string) (ValueStore, error) {
	switch strings.ToLower(name) {
	case "auto":
		return NewAutoStore(r.types, r.codec), nil
	case "adaptive":
		return NewAdaptiveSelector(SelectorConfig{Registry: r})
	}
	spec, err := r.ValueSpecFor(name)
	if err != nil {
		return nil, err
	}
	return spec.Store, nil
}

// ValueSpecFor resolves a value spec by short name or display name.
// The selection policies ("auto", "adaptive") are not specs; resolve
// those through Store.
func (r *Registry) ValueSpecFor(name string) (*ValueSpec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if spec, ok := r.values[strings.ToLower(name)]; ok {
		return spec, nil
	}
	for _, spec := range r.values {
		if strings.EqualFold(spec.Store.Name(), name) {
			return spec, nil
		}
	}
	return nil, fmt.Errorf("rep: registry: unknown value representation %q (have %s, auto, adaptive)",
		name, strings.Join(r.valueNamesLocked(), ", "))
}

// Keys returns the registered key specs in registration order.
func (r *Registry) Keys() []*KeySpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*KeySpec, 0, len(r.keyOrder))
	for _, name := range r.keyOrder {
		out = append(out, r.keys[name])
	}
	return out
}

// Values returns the registered value specs in registration order.
func (r *Registry) Values() []*ValueSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ValueSpec, 0, len(r.valueOrder))
	for _, name := range r.valueOrder {
		out = append(out, r.values[name])
	}
	return out
}

// KeyNames returns the resolvable short key names, sorted.
func (r *Registry) KeyNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.keyNamesLocked()
}

// ValueNames returns the resolvable short value names, sorted. The
// selection policies "auto" and "adaptive" are additionally accepted
// by Store but are not listed here.
func (r *Registry) ValueNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.valueNamesLocked()
}

func (r *Registry) keyNamesLocked() []string {
	out := append([]string(nil), r.keyOrder...)
	sort.Strings(out)
	return out
}

func (r *Registry) valueNamesLocked() []string {
	out := append([]string(nil), r.valueOrder...)
	sort.Strings(out)
	return out
}

// registerBuiltins populates the catalog with the Table 2 key
// strategies and Table 3 value representations this implementation
// provides, in the order the tables list them.
func (r *Registry) registerBuiltins() {
	types, codec := r.types, r.codec
	keyRows := KeyRepresentations()
	_ = r.RegisterKey(KeySpec{Name: "xml", Gen: NewXMLMessageKey(codec), Info: keyRows[0]})
	_ = r.RegisterKey(KeySpec{Name: "binser", Gen: NewBinserKey(types), Info: keyRows[1]})
	_ = r.RegisterKey(KeySpec{Name: "gob", Gen: NewGobKey(), Info: keyRows[1]})
	_ = r.RegisterKey(KeySpec{Name: "string", Gen: NewStringKey(), Info: keyRows[2]})

	valueRows := ValueRepresentations()
	hasMessage := func(ictx *client.Context) bool {
		return len(ictx.ResponseEvents) > 0 || len(ictx.ResponseXML) > 0
	}
	info := func(ictx *client.Context) *typemap.TypeInfo {
		return types.InfoFor(ictx.Result)
	}
	_ = r.RegisterValue(ValueSpec{
		Name: "xml", Store: NewXMLMessageStore(codec), Info: valueRows[0],
		Applicable: func(ictx *client.Context) bool { return len(ictx.ResponseXML) > 0 },
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "sax", Store: NewSAXEventsStore(codec), Info: valueRows[1],
		Applicable: hasMessage,
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "compact-sax", Store: NewCompactSAXStore(codec), Info: valueRows[1],
		Applicable: hasMessage,
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "dom", Store: NewDOMStore(codec), Info: valueRows[1],
		Applicable: hasMessage,
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "binser", Store: NewBinserStore(types), Info: valueRows[2],
		Applicable: func(ictx *client.Context) bool { return info(ictx).IsBean },
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "gob", Store: NewGobStore(types), Info: valueRows[2],
		Applicable: func(ictx *client.Context) bool { return info(ictx).IsGobSafe },
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "reflect", Store: NewReflectCopyStore(types), Info: valueRows[3],
		Applicable: func(ictx *client.Context) bool { return info(ictx).IsBean },
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "clone", Store: NewCloneCopyStore(), Info: valueRows[4],
		Applicable: func(ictx *client.Context) bool { return info(ictx).IsCloneable },
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "ref", Store: NewRefStore(types, false), Info: valueRows[5],
		Applicable: func(ictx *client.Context) bool { return info(ictx).IsImmutable },
	})
	// The streaming representations (DESIGN.md §5i) are gated on the
	// invocation's consent (Context.AcceptStream): their hits yield
	// byte streams, not decoded objects, so only consumers that declared
	// they relay bytes may be served by them.
	_ = r.RegisterValue(ValueSpec{
		Name: "raw", Store: NewRawStreamStore(), Info: valueRows[6],
		Applicable: func(ictx *client.Context) bool {
			return ictx.AcceptStream && len(ictx.ResponseXML) > 0
		},
	})
	_ = r.RegisterValue(ValueSpec{
		Name: "xmltmpl", Store: NewTemplateStore(), Info: valueRows[7],
		Applicable: func(ictx *client.Context) bool {
			return ictx.AcceptStream && (len(ictx.ResponseEvents) > 0 || len(ictx.ResponseXML) > 0)
		},
	})
}
