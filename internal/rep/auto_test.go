package rep

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/client"
)

// fakeChainStore is a scripted chain member for cascade tests.
type fakeChainStore struct {
	name   string
	err    error // returned by Store when non-nil
	calls  int
	loaded int
}

func (s *fakeChainStore) Name() string { return s.name }

func (s *fakeChainStore) Store(ictx *client.Context) (any, int, error) {
	s.calls++
	if s.err != nil {
		return nil, 0, s.err
	}
	return s.name, len(s.name), nil
}

func (s *fakeChainStore) Load(payload any) (any, error) {
	s.loaded++
	//lint:ignore aliascopy scripted fake: payloads are immutable strings, so aliasing cannot leak mutable cache state
	return payload, nil
}

// chainAuto builds an AutoStore whose Section 6 chain (ref..xml) is
// fully scripted; the leading raw slot gets a declining fake, so the
// scripted indices keep their Section 6 positions.
func chainAuto(f *fixture, stores [6]ValueStore) *AutoStore {
	var chain [7]ValueStore
	chain[autoRaw] = &fakeChainStore{name: "raw", err: fmt.Errorf("raw: %w", ErrNotApplicable)}
	copy(chain[autoRef:], stores[:])
	return &AutoStore{reg: f.reg, chain: chain}
}

// cloneableBox is cloneable through its pointer type and mutable (the
// slice field), so a *cloneableBox classifies to clone — but a plain
// cloneableBox value does not satisfy the Cloner assertion.
type cloneableBox struct {
	Name string
	Tags []string
}

func (c *cloneableBox) CloneDeep() any {
	out := *c
	out.Tags = append([]string(nil), c.Tags...)
	return &out
}

func TestAutoStoreCascadesOnNotApplicable(t *testing.T) {
	// A cloneable *type* holding a non-pointer value: classification
	// says clone (the pointer type implements Cloner), but the clone
	// store's interface assertion on the value fails with
	// ErrNotApplicable, so Store must fall through to reflection copy —
	// the exact gap the ErrNotApplicable doc promises to bridge.
	f := newFixture(t)
	auto := NewAutoStore(f.reg, f.codec)

	val := cloneableBox{Name: "value-not-pointer", Tags: []string{"t"}}
	ictx := f.ictx(t, "get", &item{Name: "carrier"})
	ictx.Result = val

	if got := auto.Classify(ictx); got != "Copy by clone" {
		t.Fatalf("classified %q, want Copy by clone (value of cloneable type)", got)
	}
	payload, _, err := auto.Store(ictx)
	if err != nil {
		t.Fatalf("cascade did not rescue the fill: %v", err)
	}
	ap := payload.(*autoPayload)
	if ap.store.Name() != "Copy by reflection" {
		t.Errorf("cascaded to %q, want Copy by reflection", ap.store.Name())
	}
	got, err := auto.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(cloneableBox).Name != "value-not-pointer" {
		t.Errorf("loaded %+v", got)
	}
}

func TestAutoStoreCascadeOrderAndStart(t *testing.T) {
	// Scripted chain: the classified start index is honored (earlier
	// candidates are never consulted) and ErrNotApplicable walks the
	// chain in order until a candidate accepts.
	f := newFixture(t)
	na := func(name string) *fakeChainStore {
		return &fakeChainStore{name: name, err: fmt.Errorf("%s: %w", name, ErrNotApplicable)}
	}
	ref := na("ref")
	clone := na("clone")
	refl := na("reflect")
	gob := &fakeChainStore{name: "gob"}
	sax := &fakeChainStore{name: "sax"}
	xml := &fakeChainStore{name: "xml"}
	auto := chainAuto(f, [6]ValueStore{ref, clone, refl, gob, sax, xml})

	// A cloneable pointer classifies to the clone slot: ref must not be
	// consulted, clone and reflect decline, gob accepts.
	ictx := f.ictx(t, "get", &cloneableItem{Name: "c"})
	payload, size, err := auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if ref.calls != 0 {
		t.Errorf("ref consulted %d times; cascade must start at the classified index", ref.calls)
	}
	if clone.calls != 1 || refl.calls != 1 || gob.calls != 1 {
		t.Errorf("calls = clone %d, reflect %d, gob %d; want 1 each", clone.calls, refl.calls, gob.calls)
	}
	if sax.calls != 0 || xml.calls != 0 {
		t.Errorf("cascade overshot the first accepting candidate (sax %d, xml %d)", sax.calls, xml.calls)
	}
	if size != len("gob") {
		t.Errorf("size = %d", size)
	}
	if got, err := auto.Load(payload); err != nil || got != "gob" {
		t.Errorf("load = %#v, %v", got, err)
	}
}

func TestAutoStoreHardErrorAborts(t *testing.T) {
	// A non-ErrNotApplicable failure must abort the cascade, wrapped
	// with the failing representation's name.
	f := newFixture(t)
	boom := errors.New("disk on fire")
	clone := &fakeChainStore{name: "clone-x", err: fmt.Errorf("clone-x: %w", ErrNotApplicable)}
	refl := &fakeChainStore{name: "reflect-x", err: boom}
	sax := &fakeChainStore{name: "sax-x"}
	auto := chainAuto(f, [6]ValueStore{
		&fakeChainStore{name: "ref-x", err: fmt.Errorf("%w", ErrNotApplicable)},
		clone, refl, &fakeChainStore{name: "gob-x"}, sax, &fakeChainStore{name: "xml-x"},
	})

	ictx := f.ictx(t, "get", &cloneableItem{Name: "c"})
	_, _, err := auto.Store(ictx)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the hard error", err)
	}
	if !strings.Contains(err.Error(), "reflect-x") {
		t.Errorf("error %q does not name the failing representation", err)
	}
	if sax.calls != 0 {
		t.Errorf("cascade continued past a hard error")
	}
}

func TestAutoStoreExhaustedCascade(t *testing.T) {
	// Nothing captured, opaque result: the chain starts at the XML
	// fallback, which declines too — the error must carry
	// ErrNotApplicable so the cache records a representation miss, not
	// a crash.
	f := newFixture(t)
	auto := NewAutoStore(f.reg, f.codec)
	ictx := f.reqCtx("get")
	ictx.Result = &opaqueResult{Name: "o"}
	_, _, err := auto.Store(ictx)
	if !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("err = %v, want ErrNotApplicable", err)
	}
}

func TestAutoStoreNilResultRoundTrip(t *testing.T) {
	// nil classifies as immutable and is shared by reference.
	f := newFixture(t)
	auto := NewAutoStore(f.reg, f.codec)
	ictx := f.ictx(t, "get", &item{Name: "carrier"})
	ictx.Result = nil
	payload, _, err := auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if payload.(*autoPayload).store.Name() != "Pass by reference" {
		t.Errorf("nil stored as %q", payload.(*autoPayload).store.Name())
	}
	got, err := auto.Load(payload)
	if err != nil || got != nil {
		t.Errorf("load = %#v, %v", got, err)
	}
}

func TestAutoStoreSAXFallsThroughToXML(t *testing.T) {
	// Opaque result with response XML but events that cannot serve:
	// drop the recorded events and corrupt re-recording is not possible
	// here, so instead verify the sax→xml leg with a scripted chain.
	f := newFixture(t)
	sax := &fakeChainStore{name: "sax-s", err: fmt.Errorf("sax: %w", ErrNotApplicable)}
	xml := &fakeChainStore{name: "xml-s"}
	auto := chainAuto(f, [6]ValueStore{
		&fakeChainStore{name: "r"}, &fakeChainStore{name: "c"}, &fakeChainStore{name: "f"},
		&fakeChainStore{name: "g"}, sax, xml,
	})
	ictx := f.ictx(t, "get", &item{Name: "x"})
	ictx.Result = &opaqueResult{Name: "o"} // classifies to the sax slot
	payload, _, err := auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if sax.calls != 1 || xml.calls != 1 {
		t.Errorf("calls = sax %d, xml %d; want 1 each", sax.calls, xml.calls)
	}
	if payload.(*autoPayload).store.Name() != "xml-s" {
		t.Errorf("stored with %q", payload.(*autoPayload).store.Name())
	}
}
