package rep

import (
	"strings"
	"testing"
)

func TestRawBodyStoreRoundTrip(t *testing.T) {
	store := NewRawBodyStore()
	body := []byte(`<x>hello</x>`)
	payload, size, err := store.Store(body)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(body) {
		t.Errorf("size = %d, want %d", size, len(body))
	}
	body[1] = '!' // the caller's buffer must not be retained
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `<x>hello</x>` {
		t.Errorf("load = %q", got)
	}
	if _, err := store.Load(42); err == nil {
		t.Error("bad payload accepted")
	}
}

func TestCompactBodyStoreRoundTrip(t *testing.T) {
	f := newFixture(t)
	body, err := f.codec.EncodeResponse(testNS, "get", &item{Name: "x", Tags: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	store := NewCompactBodyStore()
	payload, size, err := store.Store(body)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || size >= len(body)*4 {
		t.Errorf("resident size = %d for a %d-byte body", size, len(body))
	}
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	// The re-rendered envelope must decode to the same result.
	msg, err := f.codec.DecodeEnvelope(got)
	if err != nil {
		t.Fatalf("re-rendered body does not decode: %v\n%s", err, got)
	}
	gi, ok := msg.Result().(*item)
	if !ok || gi.Name != "x" || len(gi.Tags) != 2 {
		t.Errorf("decoded %#v", msg.Result())
	}
	if _, err := store.Load(42); err == nil {
		t.Error("bad payload accepted")
	}
	if _, _, err := store.Store([]byte("not xml <<<")); err == nil {
		t.Error("unparseable body accepted")
	}
}

func TestBodyStoreFor(t *testing.T) {
	for name, want := range map[string]string{
		"":            "Raw bytes",
		"raw":         "Raw bytes",
		"compact-sax": "SAX events (compact)",
		"compact":     "SAX events (compact)",
	} {
		s, err := BodyStoreFor(name)
		if err != nil {
			t.Errorf("BodyStoreFor(%q): %v", name, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("BodyStoreFor(%q) = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := BodyStoreFor("zip"); err == nil || !strings.Contains(err.Error(), "zip") {
		t.Errorf("err = %v", err)
	}
}
