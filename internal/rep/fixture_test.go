package rep

import (
	"context"
	"testing"

	"repro/internal/client"
	"repro/internal/sax"
	"repro/internal/soap"
	"repro/internal/typemap"
)

// The fixture mirrors core's test fixture: the same registered types
// and fabricated invocation contexts, so the representation tests read
// identically on either side of the package boundary.

const testNS = "urn:CacheTest"

type item struct {
	Name  string
	Score float64
	Tags  []string
}

type cloneableItem struct {
	Name string
}

func (c *cloneableItem) CloneDeep() any { out := *c; return &out }

type opaqueResult struct {
	Name   string
	secret int
}

// fixture bundles the registry/codec and fabricates invocation contexts
// as the client middleware would populate them.
type fixture struct {
	reg   *typemap.Registry
	codec *soap.Codec
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := typemap.NewRegistry()
	if err := reg.Register(typemap.QName{Space: testNS, Local: "Item"}, item{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(typemap.QName{Space: testNS, Local: "CloneableItem"}, cloneableItem{}); err != nil {
		t.Fatal(err)
	}
	return &fixture{reg: reg, codec: soap.NewCodec(reg)}
}

// ictx fabricates a post-pivot invocation context: result plus response
// XML and recorded events, exactly what a real invocation captures.
func (f *fixture) ictx(t *testing.T, op string, result any, params ...soap.Param) *client.Context {
	t.Helper()
	respXML, err := f.codec.EncodeResponse(testNS, op, result)
	if err != nil {
		t.Fatal(err)
	}
	events, err := sax.Record(respXML)
	if err != nil {
		t.Fatal(err)
	}
	return &client.Context{
		Ctx:            context.Background(),
		Endpoint:       "http://test/endpoint",
		Namespace:      testNS,
		Operation:      op,
		Params:         params,
		ResponseXML:    respXML,
		ResponseEvents: events,
		Result:         result,
	}
}

// reqCtx fabricates a pre-invocation context (request side only).
func (f *fixture) reqCtx(op string, params ...soap.Param) *client.Context {
	return &client.Context{
		Ctx:       context.Background(),
		Endpoint:  "http://test/endpoint",
		Namespace: testNS,
		Operation: op,
		Params:    params,
	}
}
