package rep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/sax"
	"repro/internal/soap"
)

// streamCtx fabricates a stream-accepting invocation context.
func (f *fixture) streamCtx(t *testing.T, op string, result any, params ...soap.Param) *client.Context {
	t.Helper()
	ictx := f.ictx(t, op, result, params...)
	ictx.AcceptStream = true
	return ictx
}

func TestRawStreamStoreRoundTrip(t *testing.T) {
	f := newFixture(t)
	st := NewRawStreamStore()
	ictx := f.streamCtx(t, "get", &item{Name: "alpha", Score: 1.5})

	payload, size, err := st.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(ictx.ResponseXML) {
		t.Errorf("size = %d, want %d", size, len(ictx.ResponseXML))
	}

	// The payload must be a copy: the transport owns the context buffer.
	want := append([]byte(nil), ictx.ResponseXML...)
	for i := range ictx.ResponseXML {
		ictx.ResponseXML[i] = 'X'
	}

	got, err := st.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	stream, ok := got.(Streamed)
	if !ok {
		t.Fatalf("Load returned %T, want Streamed", got)
	}
	if stream.Len() != len(want) {
		t.Errorf("Len = %d, want %d", stream.Len(), len(want))
	}
	var buf bytes.Buffer
	n, err := stream.WriteTo(&buf)
	if err != nil || n != int64(len(want)) {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("replayed bytes diverge from the stored envelope")
	}
}

func TestRawStreamStoreDeclinesWithoutResponse(t *testing.T) {
	f := newFixture(t)
	ictx := f.reqCtx("get")
	ictx.AcceptStream = true
	if _, _, err := NewRawStreamStore().Store(ictx); err == nil {
		t.Fatal("Store must decline an invocation with no captured response")
	}
}

func TestTemplateStoreSharesSkeletonAcrossEntries(t *testing.T) {
	f := newFixture(t)
	st := NewTemplateStore()

	first := f.streamCtx(t, "get", &item{Name: "first", Score: 1, Tags: []string{"a"}})
	second := f.streamCtx(t, "get", &item{Name: "second & <longer>", Score: 2, Tags: []string{"b"}})

	for _, ictx := range []*client.Context{first, second} {
		payload, _, err := st.Store(ictx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Load(payload)
		if err != nil {
			t.Fatal(err)
		}
		stream := got.(Streamed)
		// Byte identity: the spliced document must equal the full
		// re-serialization of this response's event sequence.
		want, err := sax.WriteSequence(ictx.ResponseEvents)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := stream.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != want {
			t.Errorf("spliced output diverges from full serialization\n got: %s\nwant: %s", buf.String(), want)
		}
	}

	stats := st.Stats()
	if stats.Builds != 1 || stats.Splices != 1 {
		t.Errorf("stats = %d builds, %d splices; want 1 build (first fill) and 1 splice (same shape)",
			stats.Builds, stats.Splices)
	}
	if stats.Skeletons != 1 {
		t.Errorf("skeletons = %d, want 1 shared skeleton", stats.Skeletons)
	}
	if stats.SkeletonBytes == 0 {
		t.Error("skeleton bytes not accounted")
	}
}

func TestTemplateStoreResidentSizeExcludesSkeleton(t *testing.T) {
	f := newFixture(t)
	st := NewTemplateStore()
	ictx := f.streamCtx(t, "get", &item{Name: "x", Score: 1})
	payload, size, err := st.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	rendered := payload.(*SplicedResponse).Len()
	if size >= rendered {
		t.Errorf("resident size %d is not smaller than the rendered document (%d); the shared skeleton must not be charged per entry",
			size, rendered)
	}
}

func TestTemplateStoreWireReInternsSkeleton(t *testing.T) {
	f := newFixture(t)
	sender := NewTemplateStore()
	receiver := NewTemplateStore()

	ictx := f.streamCtx(t, "get", &item{Name: "wire", Score: 3})
	payload, _, err := sender.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	data, err := sender.EncodeWire(payload)
	if err != nil {
		t.Fatal(err)
	}
	back, err := receiver.DecodeWire(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.(*SplicedResponse).Bytes(); !bytes.Equal(got, data) {
		t.Errorf("decoded payload renders differently from the wire bytes")
	}
	if s := receiver.Stats(); s.Builds != 1 || s.Skeletons != 1 {
		t.Errorf("receiver stats = %+v; DecodeWire must intern the shape like a local fill", s)
	}
	// A second entry of the same shape arriving over the wire splices.
	if _, err := receiver.DecodeWire(append([]byte(nil), data...)); err != nil {
		t.Fatal(err)
	}
	if s := receiver.Stats(); s.Splices != 1 || s.Skeletons != 1 {
		t.Errorf("receiver stats after second decode = %+v; want a splice against the interned skeleton", s)
	}
}

func TestStreamingRepsGatedOnAcceptStream(t *testing.T) {
	f := newFixture(t)
	reg := NewRegistry(f.reg, f.codec)
	plain := f.ictx(t, "get", &item{Name: "n"})
	stream := f.streamCtx(t, "get", &item{Name: "n"})
	for _, name := range []string{"raw", "xmltmpl"} {
		spec, err := reg.ValueSpecFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Applicable(plain) {
			t.Errorf("%s applicable without AcceptStream; streaming hits would hand bytes to object consumers", name)
		}
		if !spec.Applicable(stream) {
			t.Errorf("%s not applicable to a stream-accepting invocation", name)
		}
	}
}

func TestAutoStorePrefersRawForStreamConsumers(t *testing.T) {
	f := newFixture(t)
	auto := NewAutoStore(f.reg, f.codec)
	ictx := f.streamCtx(t, "get", &item{Name: "n"})
	if got := auto.Classify(ictx); got != "Raw response replay" {
		t.Fatalf("classified %q, want Raw response replay", got)
	}
	payload, _, err := auto.Store(ictx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := auto.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(Streamed); !ok {
		t.Errorf("stream consumer loaded %T, want Streamed", got)
	}
	// Without the opt-in the same result must classify to an object
	// representation.
	if got := auto.Classify(f.ictx(t, "get", &item{Name: "n"})); got == "Raw response replay" {
		t.Error("non-stream consumer classified to raw replay")
	}
}

// TestAdaptiveSelectorPicksStreamingRep drives a repeat-heavy
// stream-accepting workload through the measured-cost selector and
// asserts it converges on one of the streaming representations — the
// acceptance criterion of DESIGN.md §5i. Real clock: the decision must
// come from genuinely measured costs (a raw replay load is a type
// assertion; every object representation pays a decode or copy).
func TestAdaptiveSelectorPicksStreamingRep(t *testing.T) {
	f := newFixture(t)
	reg := NewRegistry(f.reg, f.codec)
	sel, err := NewAdaptiveSelector(SelectorConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	result := &item{Name: "steady", Score: 4.5, Tags: []string{"hot", "path"}}
	for i := 0; i < 64; i++ {
		ictx := f.streamCtx(t, "get", result)
		payload, _, serr := sel.Store(ictx)
		if serr != nil {
			t.Fatal(serr)
		}
		if _, lerr := sel.Load(payload); lerr != nil {
			t.Fatal(lerr)
		}
	}
	table := sel.DecisionTable()
	if len(table) != 1 {
		t.Fatalf("decision table has %d classes, want 1", len(table))
	}
	d := table[0]
	if d.Source != "measured" {
		t.Fatalf("decision source = %q after 64 fills, want measured", d.Source)
	}
	if !strings.Contains(d.Chosen, "Raw response replay") && !strings.Contains(d.Chosen, "XML template") {
		t.Errorf("repeat-heavy stream workload chose %q, want a streaming representation", d.Chosen)
	}
}
