package rep

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/obs"
)

// SelectorConfig configures an AdaptiveSelector. Registry is required;
// everything else defaults.
type SelectorConfig struct {
	// Registry supplies the candidate representations and the static
	// classifier's type analysis. Required.
	Registry *Registry

	// ProbeEvery probes the candidate set on one in this many Store
	// calls per (operation, result type) class; the other calls pay a
	// single atomic increment over the static path. Default 8.
	ProbeEvery int

	// SampleLoadEvery times one in this many Load calls per class to
	// keep the load-cost estimate live after the probe phase; the
	// other hits pay only an atomic increment, keeping the hit path
	// within the obs layer's 5% overhead budget. Default 16.
	SampleLoadEvery int

	// MinSamples is how many probe samples a representation needs
	// before the cost model may override the static prior. Default 3.
	MinSamples int

	// Alpha is the EWMA smoothing factor applied to new samples, in
	// (0, 1]. Default 0.25.
	Alpha float64

	// ByteBudget is the byte budget the cost model scores payload size
	// against — per-shard capacity when the selector serves a core
	// cache (core wires MaxBytes/shards in), process-wide otherwise.
	// Larger payloads are charged a pro-rata share of a refill.
	// Default 1 MiB.
	ByteBudget int64

	// Clock injects time for probe measurements (clockinject
	// discipline); nil means the system clock.
	Clock clock.Func

	// Obs, when non-nil, receives StageRepProbe latencies per candidate
	// and serves the live decision table at /debug/wscache under the
	// "rep_selector" inspection key.
	Obs *obs.Registry
}

// AdaptiveSelector is a ValueStore that picks the value representation
// per (operation, result type) from measured cost, closing the loop
// the paper's static Section 6 classifier leaves open. It records
// Store/Load latency and payload size per candidate representation via
// EWMA samples gathered on 1-in-N probe fills, scores each applicable
// candidate by expected hit cost under the byte budget, and switches a
// class's representation when the measured best disagrees with the
// static choice. Until a class has MinSamples probe rounds — and
// permanently, for candidates that keep failing — the static AutoStore
// classifier is the prior and fallback.
type AdaptiveSelector struct {
	cfg   SelectorConfig
	now   clock.Func
	prior *AutoStore
	// candidates is the registry's value specs at construction time,
	// in registration order (= Table 3 preference order for ties).
	candidates []*ValueSpec
	classes    sync.Map // classKey -> *classState

	// netMu guards the network cost model the wire-selection path
	// (StoreWire) charges payload size against: EWMAs of remote round
	// trip latency and payload size, fed by ObserveNet. Selector-wide,
	// not per class — the wire is shared by every operation.
	netMu    sync.Mutex
	netNS    ewma
	netBytes ewma
}

// classKey identifies one decision class: an operation and the dynamic
// result type it returned.
type classKey struct {
	op  string
	typ reflect.Type
}

// classState is one class's cost model and current decision.
type classState struct {
	stores atomic.Int64 // Store calls, gates probing
	loads  atomic.Int64 // Load calls, gates sampling
	// chosen is the measured-cost decision; nil until the model has
	// MinSamples for some candidate, whereupon the static prior stops
	// deciding (but keeps serving as the Store-failure fallback).
	chosen atomic.Pointer[ValueSpec]

	mu     sync.Mutex
	models map[string]*costModel // candidate name -> model
}

// costModel is the EWMA cost estimate for one (class, representation).
type costModel struct {
	samples int64
	storeNS ewma
	loadNS  ewma
	bytes   ewma
}

// ewma is an exponentially weighted moving average.
type ewma struct {
	val float64
	set bool
}

// observe folds a sample in with smoothing factor alpha.
func (e *ewma) observe(v, alpha float64) {
	if !e.set {
		e.val, e.set = v, true
		return
	}
	e.val += alpha * (v - e.val)
}

var _ ValueStore = (*AdaptiveSelector)(nil)

// Selector defaults.
const (
	defaultProbeEvery      = 8
	defaultSampleLoadEvery = 16
	defaultMinSamples      = 3
	defaultAlpha           = 0.25
	defaultByteBudget      = 1 << 20
)

// NewAdaptiveSelector returns a selector over cfg.Registry's
// representations.
func NewAdaptiveSelector(cfg SelectorConfig) (*AdaptiveSelector, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("rep: selector: SelectorConfig.Registry is required")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = defaultProbeEvery
	}
	if cfg.SampleLoadEvery <= 0 {
		cfg.SampleLoadEvery = defaultSampleLoadEvery
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = defaultMinSamples
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = defaultAlpha
	}
	if cfg.ByteBudget <= 0 {
		cfg.ByteBudget = defaultByteBudget
	}
	s := &AdaptiveSelector{
		cfg:        cfg,
		now:        clock.Or(cfg.Clock),
		prior:      NewAutoStore(cfg.Registry.Types(), cfg.Registry.Codec()),
		candidates: cfg.Registry.Values(),
	}
	cfg.Obs.SetInspection("rep_selector", func() any { return s.DecisionTable() })
	return s, nil
}

// Name implements ValueStore.
func (s *AdaptiveSelector) Name() string { return "Adaptive (cost model)" }

// Store implements ValueStore. One call in ProbeEvery per class runs a
// probe round — every applicable candidate's Store plus one Load,
// timed, folded into the class's cost model, and the decision
// re-scored; the winner's payload from the round is what gets cached,
// so probing never doubles the fill work for the chosen
// representation. Other calls delegate to the current decision (the
// measured choice when the model is warm, the static classifier
// before that), falling back to the static cascade if the chosen
// representation declines the concrete value.
func (s *AdaptiveSelector) Store(ictx *client.Context) (any, int, error) {
	st := s.classFor(ictx)
	n := st.stores.Add(1)
	if n == 1 || n%int64(s.cfg.ProbeEvery) == 0 {
		if payload, size, ok := s.probe(st, ictx); ok {
			//lint:ignore aliascopy probe's payload comes from a registered representation's Store, which already enforces the copy discipline
			return payload, size, nil
		}
		// Probe found no workable candidate; the static cascade's
		// error is the authoritative one.
	}
	if spec := st.chosen.Load(); spec != nil && spec.Applicable(ictx) {
		payload, size, err := spec.Store.Store(ictx)
		if err == nil {
			//lint:ignore aliascopy the payload comes from a registered representation's Store, which already enforces the copy discipline; the wrapper only routes Load back to it
			return &selPayload{store: spec.Store, stage: spec.Stage, state: st,
				model: st.model(spec.Name), payload: payload}, size, nil
		}
		// The measured choice declined this concrete value (type-level
		// applicability is a prediction); fall back to the prior.
	}
	payload, size, err := s.prior.Store(ictx)
	if err != nil {
		return nil, 0, err
	}
	//lint:ignore aliascopy the payload is AutoStore's, which already enforces the copy discipline per classified representation
	return &selPayload{store: s.prior, stage: s.prior.Name(), state: st, payload: payload}, size, nil
}

// Load implements ValueStore. One call in SampleLoadEvery per class is
// timed and folded into the producing representation's load-cost
// estimate; the rest pay one atomic increment over the direct Load.
func (s *AdaptiveSelector) Load(payload any) (any, error) {
	sp, ok := payload.(*selPayload)
	if !ok {
		return nil, fmt.Errorf("rep: selector: payload is %T", payload)
	}
	if sp.model != nil {
		if n := sp.state.loads.Add(1); n%int64(s.cfg.SampleLoadEvery) == 0 {
			start := s.now()
			v, err := sp.store.Load(sp.payload)
			d := s.now().Sub(start)
			if err == nil {
				sp.state.mu.Lock()
				sp.model.loadNS.observe(float64(d.Nanoseconds()), s.cfg.Alpha)
				sp.state.mu.Unlock()
			}
			return v, err
		}
	}
	return sp.store.Load(sp.payload)
}

// selPayload routes a cached payload back to the representation that
// produced it and to the class state for sampled load timing. model is
// nil when the static prior produced the payload (its own autoPayload
// already routes the load).
type selPayload struct {
	store   ValueStore
	stage   string
	state   *classState
	model   *costModel
	payload any
}

// classFor returns (creating if needed) the decision class for an
// invocation.
func (s *AdaptiveSelector) classFor(ictx *client.Context) *classState {
	key := classKey{op: ictx.Operation, typ: reflect.TypeOf(ictx.Result)}
	if v, ok := s.classes.Load(key); ok {
		return v.(*classState)
	}
	v, _ := s.classes.LoadOrStore(key, &classState{models: make(map[string]*costModel)})
	return v.(*classState)
}

// model returns (creating if needed) the cost model for one candidate
// within a class.
func (st *classState) model(name string) *costModel {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, ok := st.models[name]
	if !ok {
		m = &costModel{}
		st.models[name] = m
	}
	return m
}

// probe runs one probe round: every applicable candidate stores the
// invocation and loads it back once, timed; samples are folded into
// the class's models and the decision re-scored. The winner's payload
// is returned for caching (so the probe round costs extra candidate
// encodes, never an extra winner encode). ok is false when no
// candidate produced a payload.
func (s *AdaptiveSelector) probe(st *classState, ictx *client.Context) (any, int, bool) {
	type outcome struct {
		spec    *ValueSpec
		payload any
		size    int
	}
	var produced []outcome
	reg := s.cfg.Obs
	for _, spec := range s.candidates {
		if !spec.Applicable(ictx) {
			continue
		}
		start := s.now()
		payload, size, err := spec.Store.Store(ictx)
		storeD := s.now().Sub(start)
		if err != nil {
			// Applicability said yes but the concrete value disagreed;
			// record the failure so the model never picks this
			// candidate, and move on.
			reg.Stage(obs.StageRepProbe, spec.Stage, storeD, err)
			continue
		}
		start = s.now()
		_, lerr := spec.Store.Load(payload)
		loadD := s.now().Sub(start)
		reg.Stage(obs.StageRepProbe, spec.Stage, storeD+loadD, lerr)
		if lerr != nil {
			continue
		}
		st.mu.Lock()
		m, ok := st.models[spec.Name]
		if !ok {
			m = &costModel{}
			st.models[spec.Name] = m
		}
		m.samples++
		m.storeNS.observe(float64(storeD.Nanoseconds()), s.cfg.Alpha)
		m.loadNS.observe(float64(loadD.Nanoseconds()), s.cfg.Alpha)
		m.bytes.observe(float64(size), s.cfg.Alpha)
		st.mu.Unlock()
		produced = append(produced, outcome{spec: spec, payload: payload, size: size})
	}
	if len(produced) == 0 {
		return nil, 0, false
	}
	best := s.decide(st)
	if best == nil {
		// The published decision is still cold (MinSamples not reached),
		// but this round measured every produced candidate: the entry
		// being filled may live for a long time, so pick the
		// currently-cheapest rather than defaulting to Table 3 order
		// (which leads with the most expensive hit, the XML message).
		st.mu.Lock()
		bestScore := 0.0
		for _, o := range produced {
			m, ok := st.models[o.spec.Name]
			if !ok {
				continue
			}
			if score := s.score(m); best == nil || score < bestScore {
				best, bestScore = o.spec, score
			}
		}
		st.mu.Unlock()
	}
	for _, o := range produced {
		if o.spec == best {
			return &selPayload{store: o.spec.Store, stage: o.spec.Stage, state: st,
				model: st.model(o.spec.Name), payload: o.payload}, o.size, true
		}
	}
	// The scored best was not producible this round (e.g. its probe
	// failed); cache the first produced payload.
	o := produced[0]
	return &selPayload{store: o.spec.Store, stage: o.spec.Stage, state: st,
		model: st.model(o.spec.Name), payload: o.payload}, o.size, true
}

// decide re-scores the class and publishes the measured-cost choice
// once some candidate has MinSamples. It returns the published choice
// (nil while the model is cold).
func (s *AdaptiveSelector) decide(st *classState) *ValueSpec {
	st.mu.Lock()
	var best *ValueSpec
	bestScore := 0.0
	for _, spec := range s.candidates {
		m, ok := st.models[spec.Name]
		if !ok || m.samples < int64(s.cfg.MinSamples) {
			continue
		}
		score := s.score(m)
		if best == nil || score < bestScore {
			best, bestScore = spec, score
		}
	}
	st.mu.Unlock()
	if best != nil {
		st.chosen.Store(best)
	}
	return st.chosen.Load()
}

// score is a model's expected cost of serving one hit: the measured
// load (copy-out) latency, plus a capacity charge — the payload's
// pro-rata share of the byte budget times the cost of refilling it
// (its store latency). A representation whose payloads crowd out
// budget pays for the evictions it causes; a compact one gets credit
// even when its copy-out is a shade slower.
func (s *AdaptiveSelector) score(m *costModel) float64 {
	return m.loadNS.val + m.bytes.val/float64(s.cfg.ByteBudget)*m.storeNS.val
}

// Decision is one row of the selector's live decision table.
type Decision struct {
	Operation  string          `json:"operation"`
	ResultType string          `json:"result_type"`
	Chosen     string          `json:"chosen"`
	Source     string          `json:"source"` // "measured" or "prior"
	Stores     int64           `json:"stores"`
	Costs      []CandidateCost `json:"costs,omitempty"`
}

// CandidateCost is one candidate's current cost estimate within a
// decision class.
type CandidateCost struct {
	Rep     string  `json:"rep"`
	Samples int64   `json:"samples"`
	StoreNS float64 `json:"store_ns"`
	LoadNS  float64 `json:"load_ns"`
	Bytes   float64 `json:"bytes"`
	Score   float64 `json:"score"`
}

// DecisionTable returns the selector's current per-class decisions and
// cost estimates, sorted by operation then result type. It is what
// /debug/wscache serves under inspections.rep_selector and what the
// representations example prints.
func (s *AdaptiveSelector) DecisionTable() []Decision {
	var out []Decision
	s.classes.Range(func(k, v any) bool {
		key := k.(classKey)
		st := v.(*classState)
		d := Decision{
			Operation:  key.op,
			ResultType: typeName(key.typ),
			Stores:     st.stores.Load(),
		}
		if spec := st.chosen.Load(); spec != nil {
			d.Chosen, d.Source = spec.Store.Name(), "measured"
		} else {
			d.Chosen, d.Source = s.prior.Name(), "prior"
		}
		st.mu.Lock()
		for name, m := range st.models {
			spec, err := s.cfg.Registry.ValueSpecFor(name)
			repName := name
			if err == nil {
				repName = spec.Store.Name()
			}
			d.Costs = append(d.Costs, CandidateCost{
				Rep:     repName,
				Samples: m.samples,
				StoreNS: m.storeNS.val,
				LoadNS:  m.loadNS.val,
				Bytes:   m.bytes.val,
				Score:   s.score(m),
			})
		}
		st.mu.Unlock()
		sort.Slice(d.Costs, func(i, j int) bool { return d.Costs[i].Score < d.Costs[j].Score })
		out = append(out, d)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Operation != out[j].Operation {
			return out[i].Operation < out[j].Operation
		}
		return out[i].ResultType < out[j].ResultType
	})
	return out
}

// typeName renders a class's result type for the decision table.
func typeName(t reflect.Type) string {
	if t == nil {
		return "<nil>"
	}
	return t.String()
}
