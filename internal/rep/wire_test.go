package rep

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// wireFixtureRegistry builds the full representation registry over the
// test types.
func wireFixtureRegistry(t *testing.T) (*Registry, *fixture) {
	t.Helper()
	f := newFixture(t)
	return NewRegistry(f.reg, f.codec), f
}

// TestWireStoresRoundTrip proves every wire-capable representation
// survives the process boundary: Store → EncodeWire → DecodeWire →
// Load reproduces the result.
func TestWireStoresRoundTrip(t *testing.T) {
	reg, f := wireFixtureRegistry(t)
	want := &item{Name: "alpha", Score: 1.5, Tags: []string{"a", "b"}}
	ictx := f.ictx(t, "doGetItem", want)

	specs := reg.WireSpecs()
	if len(specs) != 6 {
		t.Fatalf("WireSpecs: got %d specs, want 6 (raw, xmltmpl, binser, compact-sax, xml, gob)", len(specs))
	}
	for _, spec := range specs {
		ws := spec.Store.(WireStore)
		payload, _, err := spec.Store.Store(ictx)
		if err != nil {
			t.Fatalf("%s: Store: %v", spec.Name, err)
		}
		data, err := ws.EncodeWire(payload)
		if err != nil {
			t.Fatalf("%s: EncodeWire: %v", spec.Name, err)
		}
		// Simulate the remote side: fresh buffer, fresh payload.
		back, err := ws.DecodeWire(append([]byte(nil), data...))
		if err != nil {
			t.Fatalf("%s: DecodeWire: %v", spec.Name, err)
		}
		got, err := spec.Store.Load(back)
		if err != nil {
			t.Fatalf("%s: Load: %v", spec.Name, err)
		}
		if st, ok := got.(Streamed); ok {
			// Streaming representations round-trip bytes, not objects:
			// the decoded payload must replay exactly the wire form.
			var buf bytes.Buffer
			if n, err := st.WriteTo(&buf); err != nil || n != int64(len(data)) {
				t.Fatalf("%s: WriteTo: n=%d err=%v (want %d bytes)", spec.Name, n, err, len(data))
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Errorf("%s: streamed round trip diverges from wire bytes", spec.Name)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip: got %+v, want %+v", spec.Name, got, want)
		}
	}
}

// TestWireSpecsExcludeObjectReps pins the per-tier admission rule: the
// copy/ref representations hold live object graphs and must never be
// offered to a remote tier.
func TestWireSpecsExcludeObjectReps(t *testing.T) {
	reg, _ := wireFixtureRegistry(t)
	for _, spec := range reg.WireSpecs() {
		switch spec.Name {
		case "reflect", "clone", "ref", "sax", "dom":
			t.Errorf("object representation %q offered for the wire", spec.Name)
		}
	}
}

// TestStaticWireSelection: first applicable in preference order wins,
// and the name round-trips through LoadWire.
func TestStaticWireSelection(t *testing.T) {
	reg, f := wireFixtureRegistry(t)
	w := NewStaticWire(reg)
	want := &item{Name: "beta", Score: 2}
	rep, data, size, err := w.StoreWire(f.ictx(t, "doGetItem", want))
	if err != nil {
		t.Fatal(err)
	}
	if rep != "binser" {
		t.Errorf("static choice = %q, want binser", rep)
	}
	if size != len(data) || size == 0 {
		t.Errorf("size = %d, len(data) = %d", size, len(data))
	}
	payload, store, err := w.LoadWire(rep, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LoadWire round trip: got %+v, want %+v", got, want)
	}
}

// TestStaticWireFallsThroughTypeLimits: a result binser cannot hold
// (unexported fields → not a bean) falls through to a message-level
// representation instead of failing.
func TestStaticWireFallsThroughTypeLimits(t *testing.T) {
	reg, f := wireFixtureRegistry(t)
	w := NewStaticWire(reg)
	ictx := f.ictx(t, "doGetOpaque", "plain string result")
	ictx.Result = &opaqueResult{Name: "x", secret: 1}
	rep, _, _, err := w.StoreWire(ictx)
	if err != nil {
		t.Fatalf("StoreWire: %v", err)
	}
	if rep == "binser" {
		t.Errorf("binser chosen for a non-bean result")
	}
}

// TestAdaptiveStoreWireUsesNetCost: with warmed models, a large
// network cost per byte must steer the wire choice toward the most
// compact representation even if its load is not the cheapest.
func TestAdaptiveStoreWireUsesNetCost(t *testing.T) {
	reg, f := wireFixtureRegistry(t)
	sel, err := NewAdaptiveSelector(SelectorConfig{Registry: reg, ProbeEvery: 1, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := &item{Name: "gamma", Score: 3, Tags: []string{"t1", "t2", "t3"}}
	// Warm the class models through probe rounds.
	for i := 0; i < 4; i++ {
		ictx := f.ictx(t, "doGetItem", want)
		if _, _, err := sel.Store(ictx); err != nil {
			t.Fatal(err)
		}
	}
	rep1, data, _, err := sel.StoreWire(f.ictx(t, "doGetItem", want))
	if err != nil {
		t.Fatal(err)
	}
	payload, store, err := sel.LoadWire(rep1, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("adaptive wire round trip: got %+v, want %+v", got, want)
	}
	// An absurd net cost: every byte costs a millisecond. The choice
	// must be the smallest-payload candidate among the warm ones.
	sel.ObserveNet(time.Second, 1000)
	rep2, data2, _, err := sel.StoreWire(f.ictx(t, "doGetItem", want))
	if err != nil {
		t.Fatal(err)
	}
	smallest, smallestName := -1, ""
	for _, spec := range reg.WireSpecs() {
		p, n, err := spec.Store.Store(f.ictx(t, "doGetItem", want))
		if err != nil {
			continue
		}
		d, err := spec.Store.(WireStore).EncodeWire(p)
		if err != nil {
			continue
		}
		_ = n
		if smallest < 0 || len(d) < smallest {
			smallest, smallestName = len(d), spec.Name
		}
	}
	if rep2 != smallestName {
		t.Errorf("net-dominated choice = %q (%d bytes), want smallest %q (%d bytes)",
			rep2, len(data2), smallestName, smallest)
	}
}

// TestLoadWireRejectsNonWireRep: asking to decode under an
// object-graph representation is an error, not a panic.
func TestLoadWireRejectsNonWireRep(t *testing.T) {
	reg, _ := wireFixtureRegistry(t)
	w := NewStaticWire(reg)
	if _, _, err := w.LoadWire("ref", []byte("x")); err == nil {
		t.Fatal("LoadWire(ref) succeeded")
	}
	if _, _, err := w.LoadWire("nonesuch", []byte("x")); err == nil {
		t.Fatal("LoadWire(nonesuch) succeeded")
	}
}
