package rep

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
)

// fakeClock is a manually advanced clock; fake stores advance it to
// simulate deterministic representation costs.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time { return c.t }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// costedStore simulates a representation with fixed Store/Load cost
// and payload size by advancing the fake clock.
type costedStore struct {
	name      string
	clk       *fakeClock
	storeCost time.Duration
	loadCost  time.Duration
	size      int
	stores    int
	loads     int
}

func (s *costedStore) Name() string { return s.name }

func (s *costedStore) Store(ictx *client.Context) (any, int, error) {
	s.stores++
	s.clk.advance(s.storeCost)
	return s.name, s.size, nil
}

func (s *costedStore) Load(payload any) (any, error) {
	s.loads++
	s.clk.advance(s.loadCost)
	//lint:ignore aliascopy cost-model probe: payloads are immutable strings, so aliasing cannot leak mutable cache state
	return payload, nil
}

// costedRegistry builds a registry whose value catalog is exactly the
// given costed stores (replacing the builtins), mirroring a crafted
// workload where measured costs disagree with the static prior.
func costedRegistry(f *fixture, stores ...*costedStore) *Registry {
	r := NewRegistry(f.reg, f.codec)
	r.mu.Lock()
	r.values = make(map[string]*ValueSpec)
	r.valueOrder = nil
	r.mu.Unlock()
	for _, s := range stores {
		_ = r.RegisterValue(ValueSpec{Name: s.name, Store: s})
	}
	return r
}

func newTestSelector(t *testing.T, r *Registry, clk *fakeClock, mutate func(*SelectorConfig)) *AdaptiveSelector {
	t.Helper()
	cfg := SelectorConfig{
		Registry:        r,
		ProbeEvery:      4,
		SampleLoadEvery: 2,
		MinSamples:      2,
	}
	if clk != nil {
		cfg.Clock = clk.Now
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sel, err := NewAdaptiveSelector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestSelectorRequiresRegistry(t *testing.T) {
	if _, err := NewAdaptiveSelector(SelectorConfig{}); err == nil {
		t.Fatal("selector built without a registry")
	}
}

func TestSelectorSwitchesToMeasuredBest(t *testing.T) {
	// Crafted skew: the representation registered first (the static
	// Table 3 preference on ties) is expensive to load; a later one is
	// cheap. The selector must converge on the cheap one — the switch
	// the static classifier can never make.
	f := newFixture(t)
	clk := &fakeClock{}
	slow := &costedStore{name: "slow", clk: clk, storeCost: 10 * time.Microsecond,
		loadCost: 500 * time.Microsecond, size: 256}
	fast := &costedStore{name: "fast", clk: clk, storeCost: 10 * time.Microsecond,
		loadCost: 5 * time.Microsecond, size: 256}
	r := costedRegistry(f, slow, fast)
	sel := newTestSelector(t, r, clk, nil)

	ictx := f.ictx(t, "get", &item{Name: "b"})
	for i := 0; i < 12; i++ {
		payload, _, err := sel.Store(ictx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sel.Load(payload); err != nil {
			t.Fatal(err)
		}
	}

	table := sel.DecisionTable()
	if len(table) != 1 {
		t.Fatalf("decision table = %+v, want one class", table)
	}
	d := table[0]
	if d.Chosen != "fast" || d.Source != "measured" {
		t.Fatalf("decision = %+v, want measured choice of fast", d)
	}
	if len(d.Costs) != 2 || d.Costs[0].Rep != "fast" {
		t.Errorf("costs not ranked with fast first: %+v", d.Costs)
	}
	// Post-convergence fills use the winner outside probe rounds too.
	before := fast.stores
	if _, _, err := sel.Store(ictx); err != nil {
		t.Fatal(err)
	}
	if fast.stores != before+1 {
		t.Error("non-probe fill did not use the measured choice")
	}
}

// classCostStore simulates a representation whose load cost depends on
// the result type, so per-class decisions can diverge deterministically.
type classCostStore struct {
	name      string
	clk       *fakeClock
	storeCost time.Duration
	loadCosts map[string]time.Duration // result type string -> load cost
	size      int
}

func (s *classCostStore) Name() string { return s.name }

func (s *classCostStore) Store(ictx *client.Context) (any, int, error) {
	s.clk.advance(s.storeCost)
	return reflect.TypeOf(ictx.Result).String(), s.size, nil
}

func (s *classCostStore) Load(payload any) (any, error) {
	s.clk.advance(s.loadCosts[payload.(string)])
	//lint:ignore aliascopy cost-model probe: payloads are immutable strings, so aliasing cannot leak mutable cache state
	return payload, nil
}

func TestSelectorPerTypeDecisions(t *testing.T) {
	// Two result types through one selector, two representations with
	// opposite per-type load costs: the decisions must diverge per
	// (operation, result type) class — the switch the paper's static
	// per-type classifier cannot express once types look alike at the
	// type level.
	f := newFixture(t)
	clk := &fakeClock{}
	itemT, cloneT := "*rep.item", "*rep.cloneableItem"
	alpha := &classCostStore{name: "alpha", clk: clk, storeCost: 10 * time.Microsecond,
		size: 128, loadCosts: map[string]time.Duration{
			itemT: 5 * time.Microsecond, cloneT: 500 * time.Microsecond,
		}}
	beta := &classCostStore{name: "beta", clk: clk, storeCost: 10 * time.Microsecond,
		size: 128, loadCosts: map[string]time.Duration{
			itemT: 500 * time.Microsecond, cloneT: 5 * time.Microsecond,
		}}
	r := NewRegistry(f.reg, f.codec)
	r.mu.Lock()
	r.values = make(map[string]*ValueSpec)
	r.valueOrder = nil
	r.mu.Unlock()
	_ = r.RegisterValue(ValueSpec{Name: "alpha", Store: alpha})
	_ = r.RegisterValue(ValueSpec{Name: "beta", Store: beta})
	sel := newTestSelector(t, r, clk, nil)

	small := f.ictx(t, "get", &item{Name: "small"})
	big := f.ictx(t, "get", &cloneableItem{Name: "big"})
	for i := 0; i < 12; i++ {
		for _, ictx := range []*client.Context{small, big} {
			payload, _, err := sel.Store(ictx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sel.Load(payload); err != nil {
				t.Fatal(err)
			}
		}
	}

	chosen := map[string]string{}
	for _, d := range sel.DecisionTable() {
		chosen[d.ResultType] = d.Chosen
	}
	if len(chosen) != 2 {
		t.Fatalf("decision table classes = %v, want two", chosen)
	}
	if chosen[itemT] != "alpha" {
		t.Errorf("%s chose %q, want alpha", itemT, chosen[itemT])
	}
	if chosen[cloneT] != "beta" {
		t.Errorf("%s chose %q, want beta", cloneT, chosen[cloneT])
	}
}

func TestSelectorByteBudgetPenalizesBulkyPayloads(t *testing.T) {
	// Without a capacity charge the bulky representation's faster load
	// would win; under the shard byte budget its payload pays a full
	// refill per hit and the compact one must be chosen.
	f := newFixture(t)
	clk := &fakeClock{}
	bulky := &costedStore{name: "bulky", clk: clk, storeCost: 20 * time.Microsecond,
		loadCost: 2 * time.Microsecond, size: 1 << 20}
	compact := &costedStore{name: "compact", clk: clk, storeCost: 20 * time.Microsecond,
		loadCost: 10 * time.Microsecond, size: 1 << 10}
	r := costedRegistry(f, bulky, compact)
	sel := newTestSelector(t, r, clk, func(cfg *SelectorConfig) {
		cfg.ByteBudget = 1 << 20 // a bulky payload fills the whole budget
	})

	ictx := f.ictx(t, "get", &item{Name: "b"})
	for i := 0; i < 12; i++ {
		payload, _, err := sel.Store(ictx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sel.Load(payload); err != nil {
			t.Fatal(err)
		}
	}
	table := sel.DecisionTable()
	if len(table) != 1 || table[0].Chosen != "compact" {
		t.Fatalf("decision = %+v, want compact under the byte budget", table)
	}
}

func TestSelectorMatchesStaticOnUniformWorkload(t *testing.T) {
	// Uniform immutable workload over the real representations: the
	// measured-cost choice must agree with the static Section 6
	// classifier (pass by reference), since nothing beats a shared
	// reference on load cost.
	f := newFixture(t)
	r := NewRegistry(f.reg, f.codec)
	sel := newTestSelector(t, r, nil, nil) // system clock: real costs

	ictx := f.ictx(t, "spell", "suggestion")
	staticChoice := NewAutoStore(f.reg, f.codec).Classify(ictx)
	for i := 0; i < 24; i++ {
		payload, _, err := sel.Store(ictx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sel.Load(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != "suggestion" {
			t.Fatalf("load = %#v", got)
		}
	}

	table := sel.DecisionTable()
	if len(table) != 1 {
		t.Fatalf("decision table = %+v", table)
	}
	if table[0].Source != "measured" {
		t.Fatalf("selector did not warm up: %+v", table[0])
	}
	if table[0].Chosen != staticChoice {
		t.Errorf("adaptive chose %q, static classifier %q; uniform workload must agree",
			table[0].Chosen, staticChoice)
	}
}

func TestSelectorFallsBackToPriorWhenCold(t *testing.T) {
	// Before MinSamples probes, non-probe fills ride the static
	// classifier; payloads still round-trip.
	f := newFixture(t)
	r := NewRegistry(f.reg, f.codec)
	sel := newTestSelector(t, r, nil, func(cfg *SelectorConfig) {
		cfg.MinSamples = 1000 // never warm
		cfg.ProbeEvery = 1000
	})
	ictx := f.ictx(t, "get", &item{Name: "bean", Tags: []string{"t"}})
	var payload any
	var err error
	for i := 0; i < 3; i++ {
		payload, _, err = sel.Store(ictx)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := sel.Load(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*item).Name != "bean" {
		t.Errorf("load = %+v", got)
	}
	table := sel.DecisionTable()
	if len(table) != 1 || table[0].Source != "prior" {
		t.Errorf("cold class must report the prior: %+v", table)
	}
}

func TestSelectorExposesDecisionTableViaObs(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	r := NewRegistry(f.reg, f.codec)
	sel := newTestSelector(t, r, nil, func(cfg *SelectorConfig) { cfg.Obs = reg })

	ictx := f.ictx(t, "get", &item{Name: "b"})
	if _, _, err := sel.Store(ictx); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	v, ok := snap.Inspections["rep_selector"]
	if !ok {
		t.Fatal("snapshot has no rep_selector inspection")
	}
	table, ok := v.([]Decision)
	if !ok || len(table) != 1 {
		t.Fatalf("inspection = %#v", v)
	}
	// The probe round must have recorded StageRepProbe series.
	var sawProbe bool
	for _, st := range snap.Stages {
		if st.Stage == obs.StageRepProbe {
			sawProbe = true
		}
	}
	if !sawProbe {
		t.Error("no StageRepProbe series recorded")
	}
}

func TestSelectorBadPayload(t *testing.T) {
	f := newFixture(t)
	r := NewRegistry(f.reg, f.codec)
	sel := newTestSelector(t, r, nil, nil)
	if _, err := sel.Load(42); err == nil {
		t.Error("selector accepted a foreign payload")
	}
}

func TestSelectorNoApplicableCandidate(t *testing.T) {
	// Nothing captured, opaque result: probe produces nothing and the
	// static cascade's ErrNotApplicable is surfaced.
	f := newFixture(t)
	r := NewRegistry(f.reg, f.codec)
	sel := newTestSelector(t, r, nil, nil)
	ictx := f.reqCtx("get")
	ictx.Result = &opaqueResult{Name: "o"}
	if _, _, err := sel.Store(ictx); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("err = %v, want ErrNotApplicable", err)
	}
}
