package rep

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/sax"
)

// This file holds the byte-oriented streaming representations
// (DESIGN.md §5i): representations whose Load does not rebuild an
// application object at all but hands back the serialized response,
// ready to replay into an io.Writer. They exist for consumers that
// relay the response rather than compute on it — the portal scenario's
// section renderer, proxies, the server-side response cache — where
// deserializing on a hit is pure waste. Both are opt-in: the selector
// only considers them when the invocation declares
// client.Context.AcceptStream, because their hit result is a Streamed,
// not the decoded object.
//
//   - "raw" stores the exact response bytes; a hit is one buffer write.
//   - "xmltmpl" stores a splice template: the serialized skeleton is
//     interned per response shape and shared across entries, so each
//     entry holds only its escaped text values; a hit re-serializes by
//     memcpy interleave (sax.Template).

// Streamed is the hit result of the streaming representations: the
// serialized response, replayable into a writer without materializing
// an intermediate []byte. Implementations are immutable — WriteTo is
// safe to call concurrently and repeatedly.
type Streamed interface {
	io.WriterTo
	// Len returns the rendered byte length of the response.
	Len() int
}

// Static errors for the hot replay paths (fmt is banned there by the
// hotpath analyzer).
var (
	errRawPayload     = errors.New("rep: raw stream store: payload is not *RawResponse")
	errSplicedPayload = errors.New("rep: template store: payload is not *SplicedResponse")
	errRawBodyPayload = errors.New("rep: raw body store: payload is not []byte")
)

// RawResponse is the "raw" payload and hit result: the exact response
// envelope bytes, immutable once stored.
type RawResponse struct {
	data []byte
}

var _ Streamed = (*RawResponse)(nil)

// Len implements Streamed.
func (p *RawResponse) Len() int { return len(p.data) }

// Bytes returns the response bytes. The slice is the cached payload
// itself: callers must treat it as read-only.
func (p *RawResponse) Bytes() []byte { return p.data }

// WriteTo implements io.WriterTo: one write, zero copies.
//
//lint:hotpath
func (p *RawResponse) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(p.data)
	return int64(n), err
}

// RawStreamStore is the zero-copy streaming representation: Store
// copies the response envelope once, Load returns the stored
// *RawResponse itself. Safe as pass-by-reference because the payload
// is immutable; the registry additionally gates it behind
// Context.AcceptStream so only consumers that declared they want bytes
// ever see it.
type RawStreamStore struct{}

var _ ValueStore = RawStreamStore{}

// NewRawStreamStore returns the raw streaming representation.
func NewRawStreamStore() RawStreamStore { return RawStreamStore{} }

// Name implements ValueStore.
func (RawStreamStore) Name() string { return "Raw response replay" }

// Store implements ValueStore.
func (RawStreamStore) Store(ictx *client.Context) (any, int, error) {
	if len(ictx.ResponseXML) == 0 {
		return nil, 0, fmt.Errorf("rep: raw stream store: %w: invocation captured no response XML", ErrNotApplicable)
	}
	// Copy: the context's buffer belongs to the transport.
	data := make([]byte, len(ictx.ResponseXML))
	copy(data, ictx.ResponseXML)
	return &RawResponse{data: data}, len(data), nil
}

// Load implements ValueStore: the payload is the result. No copy is
// needed — the bytes are immutable.
//
//lint:hotpath
func (RawStreamStore) Load(payload any) (any, error) {
	p, ok := payload.(*RawResponse)
	if !ok {
		return nil, errRawPayload
	}
	return p, nil
}

// EncodeWire implements WireStore (the payload already is wire bytes).
func (RawStreamStore) EncodeWire(payload any) ([]byte, error) {
	p, ok := payload.(*RawResponse)
	if !ok {
		return nil, errRawPayload
	}
	return p.data, nil
}

// DecodeWire implements WireStore. The input slice is retained.
func (RawStreamStore) DecodeWire(data []byte) (any, error) {
	return &RawResponse{data: data}, nil
}

// spliceBufPool holds the replay buffers for SplicedResponse.WriteTo:
// the splice is assembled in a pooled buffer and written once, so a
// steady-state replay allocates nothing.
var spliceBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// SplicedResponse is the "xmltmpl" payload and hit result: a shared,
// interned skeleton plus this entry's escaped text values. Immutable.
type SplicedResponse struct {
	tpl    *sax.Template
	values []string // escaped (sax.EscapeValue), one per template slot
	size   int      // rendered byte length
}

var _ Streamed = (*SplicedResponse)(nil)

// Len implements Streamed.
func (p *SplicedResponse) Len() int { return p.size }

// Bytes materializes the rendered response into a fresh slice.
func (p *SplicedResponse) Bytes() []byte {
	return p.tpl.AppendSplice(make([]byte, 0, p.size), p.values)
}

// WriteTo implements io.WriterTo: the splice is assembled in a pooled
// buffer and written once.
//
//lint:hotpath
func (p *SplicedResponse) WriteTo(w io.Writer) (int64, error) {
	bp := spliceBufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < p.size {
		buf = make([]byte, 0, p.size)
	}
	n, err := p.tpl.SpliceTo(w, buf[:0], p.values)
	*bp = buf
	spliceBufPool.Put(bp)
	return n, err
}

// TemplateStats is a snapshot of a template interner's differential
// serialization activity.
type TemplateStats struct {
	// Builds counts full serializations that recorded a new skeleton.
	Builds int64 `json:"builds"`
	// Splices counts fills that reused an interned skeleton and paid
	// only value escaping — the differential wins.
	Splices int64 `json:"splices"`
	// Skeletons is the number of distinct response shapes interned.
	Skeletons int `json:"skeletons"`
	// SkeletonBytes is the total interned skeleton size: memory paid
	// once per shape rather than per entry.
	SkeletonBytes int64 `json:"skeleton_bytes"`
}

// templateCache interns sax.Templates per 128-bit response shape; it
// is the shared engine behind TemplateStore (client values) and
// TemplateBodyStore (server bodies). Counters live in an obs registry
// (private until instrument is called) so template hits versus full
// re-serializations are visible wherever the registry is served.
type templateCache struct {
	mu        sync.Mutex
	skeletons map[[2]uint64]*sax.Template

	builds  *obs.Counter
	splices *obs.Counter
	reg     *obs.Registry
	timed   bool
	now     func() time.Time
}

func newTemplateCache() *templateCache {
	tc := &templateCache{skeletons: make(map[[2]uint64]*sax.Template)}
	tc.instrument(nil, nil)
	return tc
}

// instrument (re)binds the cache's counters and stage histograms to an
// obs registry; nil keeps a private registry (counters still count,
// nothing is served, and no clock is read).
func (tc *templateCache) instrument(reg *obs.Registry, clk clock.Func) {
	r := obs.Or(reg)
	builds := r.Counter("rep.template.builds")
	splices := r.Counter("rep.template.splices")
	tc.mu.Lock()
	if tc.builds != nil {
		builds.Add(tc.builds.Load())
		splices.Add(tc.splices.Load())
	}
	tc.builds, tc.splices = builds, splices
	tc.reg = r
	tc.timed = reg != nil
	tc.now = clock.Or(clk)
	tc.mu.Unlock()
}

// spliceFor builds the spliced payload for an event sequence, interning
// (or reusing) the shape's skeleton. The returned resident size counts
// only the per-entry values — the skeleton is shared and accounted in
// TemplateStats.SkeletonBytes.
func (tc *templateCache) spliceFor(events []sax.Event) (*SplicedResponse, int, error) {
	var start time.Time
	if tc.timed {
		start = tc.now()
	}
	lo, hi := sax.ShapeHash(events)
	key := [2]uint64{lo, hi}
	tc.mu.Lock()
	tpl := tc.skeletons[key]
	tc.mu.Unlock()

	var texts []string
	built := false
	if tpl != nil {
		texts = sax.SpliceTexts(events)
		if len(texts) != tpl.Slots() {
			// A 128-bit shape collision (or a corrupted sequence): use a
			// private template rather than splicing into the wrong
			// skeleton.
			tpl = nil
		}
	}
	if tpl == nil {
		var err error
		tpl, texts, err = sax.BuildTemplate(events)
		if err != nil {
			return nil, 0, err
		}
		built = true
		tc.mu.Lock()
		if cur, ok := tc.skeletons[key]; ok && cur.Slots() == tpl.Slots() {
			tpl = cur // lost a concurrent build race; share the winner
		} else {
			tc.skeletons[key] = tpl
		}
		tc.mu.Unlock()
	}

	values := make([]string, len(texts))
	total := 0
	for i, raw := range texts {
		values[i] = sax.EscapeValue(raw)
		total += len(values[i])
	}
	p := &SplicedResponse{tpl: tpl, values: values, size: tpl.SkeletonSize() + total}

	if built {
		tc.builds.Add(1)
	} else {
		tc.splices.Add(1)
	}
	if tc.timed {
		stage := obs.StageTemplateSplice
		if built {
			stage = obs.StageTemplateBuild
		}
		tc.reg.Stage(stage, "", tc.now().Sub(start), nil)
	}
	const stringHeader = 16
	resident := total + len(values)*stringHeader + 48
	return p, resident, nil
}

// stats snapshots the interner.
func (tc *templateCache) stats() TemplateStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	s := TemplateStats{
		Builds:    tc.builds.Load(),
		Splices:   tc.splices.Load(),
		Skeletons: len(tc.skeletons),
	}
	for _, tpl := range tc.skeletons {
		s.SkeletonBytes += int64(tpl.SkeletonSize())
	}
	return s
}

// TemplateStore is the template/differential serialization
// representation ("xmltmpl"): the first fill of a response shape
// serializes once and records the splice template; every later fill of
// the same shape copies only its escaped text values, and every hit
// replays by memcpy interleave. Front-loaded store cost, near-zero
// load cost, and per-entry memory that excludes the shared skeleton —
// exactly the profile the adaptive selector's cost model rewards for
// repeat-heavy workloads.
type TemplateStore struct {
	tc *templateCache
}

var _ ValueStore = (*TemplateStore)(nil)

// NewTemplateStore returns the template serialization representation.
func NewTemplateStore() *TemplateStore {
	return &TemplateStore{tc: newTemplateCache()}
}

// Name implements ValueStore.
func (s *TemplateStore) Name() string { return "XML template (splice)" }

// Store implements ValueStore.
func (s *TemplateStore) Store(ictx *client.Context) (any, int, error) {
	events := ictx.ResponseEvents
	if len(events) == 0 {
		if len(ictx.ResponseXML) == 0 {
			return nil, 0, fmt.Errorf("rep: template store: %w: invocation captured neither events nor XML", ErrNotApplicable)
		}
		var err error
		events, err = sax.Record(ictx.ResponseXML)
		if err != nil {
			return nil, 0, fmt.Errorf("rep: template store: %w", err)
		}
	}
	p, resident, err := s.tc.spliceFor(events)
	if err != nil {
		return nil, 0, fmt.Errorf("rep: template store: %w", err)
	}
	//lint:ignore aliascopy the payload's values are immutable Go strings taken from the event texts; nothing reachable from it can mutate cached state
	return p, resident, nil
}

// Load implements ValueStore: the payload is the result (immutable).
//
//lint:hotpath
func (s *TemplateStore) Load(payload any) (any, error) {
	p, ok := payload.(*SplicedResponse)
	if !ok {
		return nil, errSplicedPayload
	}
	//lint:ignore aliascopy SplicedResponse is immutable (template + escaped string values); sharing it by reference is the whole point of the streaming hit
	return p, nil
}

// EncodeWire implements WireStore: the rendered document. A remote
// tier holds plain bytes; the receiving process re-derives (and
// interns) the template on decode, so skeleton sharing is preserved on
// both sides without shipping interner state.
func (s *TemplateStore) EncodeWire(payload any) ([]byte, error) {
	p, ok := payload.(*SplicedResponse)
	if !ok {
		return nil, errSplicedPayload
	}
	return p.Bytes(), nil
}

// DecodeWire implements WireStore.
func (s *TemplateStore) DecodeWire(data []byte) (any, error) {
	events, err := sax.Record(data)
	if err != nil {
		return nil, fmt.Errorf("rep: template store: wire payload: %w", err)
	}
	p, _, err := s.tc.spliceFor(events)
	if err != nil {
		return nil, fmt.Errorf("rep: template store: wire payload: %w", err)
	}
	return p, nil
}

// Stats snapshots the store's template interner.
func (s *TemplateStore) Stats() TemplateStats { return s.tc.stats() }

// Instrument binds the store's counters and build/splice stage
// histograms to an obs registry (clk for stage timing; nil uses the
// system clock).
func (s *TemplateStore) Instrument(reg *obs.Registry, clk clock.Func) {
	s.tc.instrument(reg, clk)
}

var (
	_ WireStore = RawStreamStore{}
	_ WireStore = (*TemplateStore)(nil)
)
